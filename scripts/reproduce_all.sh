#!/usr/bin/env bash
# Regenerate every table, figure, ablation and extension experiment of the
# reproduction into results/ (markdown). Takes a few minutes in release.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

bins=(
  repro_table1 repro_table2 repro_table4 repro_table5 repro_table6
  repro_load_ycsb repro_refresh
  repro_fig2 repro_fig3 repro_fig4 repro_fig5 repro_fig6
  ablation_join_order ablation_rcfile ablation_columnar ablation_readsize
  ablation_mongods ablation_isolation ablation_presplit ablation_pdw_indexes
  ablation_durability ablation_fault_tolerance sensitivity_k
)
for b in "${bins[@]}"; do
  echo "== $b"
  cargo run --release -p bench --bin "$b" > "results/$b.txt"
done
echo "== repro_table3 (the full 22x4 suite)"
cargo run --release -p bench --bin repro_table3 -- --sf 0.02 > results/repro_table3.txt
echo "== repro_fig1"
cargo run --release -p bench --bin repro_fig1 -- --sf 0.02 > results/repro_fig1.txt
echo "== pdw_steps (DES span trace + resource utilization)"
cargo run --release -p bench --bin pdw_steps -- --queries 1,5,19 > results/pdw_steps.txt
echo "== compare_paper (per-query calibration at the two headline scales)"
cargo run --release -p bench --bin compare_paper -- --sf 0.02 --scale 250 > results/compare_paper_250.txt
cargo run --release -p bench --bin compare_paper -- --sf 0.02 --scale 16000 > results/compare_paper_16000.txt
echo "== profile_q5 (passive-probe ASCII timeline for explain Q5)"
cargo run --release -p bench --bin explain -- 5 --sf 0.02 --timeline > results/profile_q5.txt
echo "== profile_ycsb_a (windowed serving-side latency percentiles)"
cargo run --release -p bench --bin profile_ycsb > results/profile_ycsb_a.txt
echo "== concurrent_mix (admission-scheduled mix + measured-wait feedback)"
cargo run --release -p bench --bin concurrent_mix > results/concurrent_mix.txt
echo "== adaptive_mix (mid-flight re-planning from live blame)"
cargo run --release -p bench --bin adaptive_mix > results/adaptive_mix.txt
echo "== critpath_q5 (critical-path blame per phase, both engines)"
cargo run --release -p bench --bin critpath -- 5 --sf 0.02 > results/critpath_q5.txt
echo "== slo_report_a (per-tenant SLO burn rates from the streaming registry)"
cargo run --release -p bench --bin slo_report > results/slo_report_a.txt
echo "== bench_scan (REAL wall-clock decode throughput — host-dependent, not diff-gated)"
cargo run --release -p bench --bin bench_scan > results/BENCH_scan.json
echo "== bench_simlint (REAL wall-clock lint speed over the workspace — host-dependent, not diff-gated)"
cargo run --release -p bench --bin bench_simlint > results/BENCH_simlint.json
echo "== bench_kernel (REAL wall-clock kernel event throughput vs the pre-rework baseline — host-dependent, not diff-gated)"
cargo run --release -p bench --bin bench_kernel > results/BENCH_kernel.json
echo "== bench_obs (REAL wall-clock probe overhead + passivity proof — host-dependent, not diff-gated)"
cargo run --release -p bench --bin bench_obs > results/BENCH_obs.json
echo "== validate_bench (schema gate over the perf-trajectory artifacts)"
cargo run --release -p bench --bin validate_bench -- results/BENCH_*.json
echo "done — see results/ and EXPERIMENTS.md"
