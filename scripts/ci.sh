#!/usr/bin/env bash
# The CI gate, runnable locally: formatting, lints (warnings are errors),
# and the full test suite. Mirrors .github/workflows/ci.yml exactly.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== simlint"
# The determinism lint must pass on the tree...
cargo run -q -p simlint
# ...every inline suppression must still suppress something (a stale allow
# is dead policy and rots silently otherwise)...
cargo run -q -p simlint -- --list-allows --strict >/dev/null
# ...and the gate must still *bite*: a deliberately seeded violation tree
# has to make it exit nonzero, or the gates above are vacuous.
if cargo run -q -p simlint -- --root crates/simlint/tests/fixtures/selftest \
    >/dev/null 2>&1; then
  echo "simlint self-test FAILED: expected violations in the selftest tree" >&2
  exit 1
fi

echo "== cargo doc (-D warnings)"
# Doc rot (broken intra-doc links, malformed rustdoc) fails the build.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "== cargo test"
cargo test -q --workspace

echo "== observability (trace export + passive-probe artifact diff)"
# The probe layer must stay passive and deterministic: regenerating the
# committed profile artifact — with a Chrome trace export riding along —
# must reproduce it byte-for-byte, and the trace must parse as well-formed
# Trace Event JSON with both engine processes present.
obs_tmp=$(mktemp -d)
trap 'rm -rf "$obs_tmp"' EXIT
cargo run -q --release -p bench --bin explain -- 5 --sf 0.02 --timeline \
  --trace "$obs_tmp/q5.json" > "$obs_tmp/profile_q5.txt"
cargo run -q --release -p bench --bin validate_trace -- "$obs_tmp/q5.json" hive pdw
diff -u results/profile_q5.txt "$obs_tmp/profile_q5.txt"

echo "== critical-path blame (deterministic blame artifact + annotated trace)"
# The blame layer sits on the same passive probe stream: the per-phase
# critical-path attribution must regenerate byte-for-byte, and the
# blame-annotated trace export must satisfy the structural validator
# (balanced lanes, nested spans) like every other trace.
cargo run -q --release -p bench --bin critpath -- 5 --sf 0.02 \
  --trace "$obs_tmp/critpath_q5.json" > "$obs_tmp/critpath_q5.txt"
cargo run -q --release -p bench --bin validate_trace -- "$obs_tmp/critpath_q5.json" hive pdw
diff -u results/critpath_q5.txt "$obs_tmp/critpath_q5.txt"

echo "== per-tenant SLO report (streaming registry + burn-rate artifact diff)"
# The streaming metric registry and burn-rate evaluation are deterministic
# end to end — same windows, same verdicts, same bytes.
cargo run -q --release -p bench --bin slo_report > "$obs_tmp/slo_report_a.txt"
diff -u results/slo_report_a.txt "$obs_tmp/slo_report_a.txt"

echo "== obs overhead smoke (probe passivity at the kernel's own counters)"
# bench_obs asserts probed == unprobed kernel event counts and simulated
# times internally; the smoke run proves that holds on this tree, and the
# schema gate below re-checks the committed artifact's embedded proof.
cargo run -q --release -p bench --bin bench_obs -- --iters 1 > "$obs_tmp/BENCH_obs_smoke.json"

echo "== concurrent mix (admission determinism + feedback-flip artifact diff)"
# The concurrent-mix artifact is the determinism contract for run_mix and
# the measured-wait feedback loop: regenerating it (with a Chrome trace of
# both mixes riding along) must be byte-identical, and the trace must parse.
cargo run -q --release -p bench --bin concurrent_mix -- \
  --trace "$obs_tmp/mix.json" > "$obs_tmp/concurrent_mix.txt"
cargo run -q --release -p bench --bin validate_trace -- "$obs_tmp/mix.json" mix mix-feedback
diff -u results/concurrent_mix.txt "$obs_tmp/concurrent_mix.txt"

echo "== adaptive mix (mid-flight re-planning artifact diff + equivalence assert)"
# The adaptive-mix artifact is the determinism contract for boundary
# re-planning: the bin itself asserts that identity re-planners reproduce
# the fixed run bitwise, and the recorded swaps (with their blame
# evidence) must regenerate byte-for-byte.
cargo run -q --release -p bench --bin adaptive_mix > "$obs_tmp/adaptive_mix.txt"
diff -u results/adaptive_mix.txt "$obs_tmp/adaptive_mix.txt"

echo "== columnar ablation (three-way storage artifact diff)"
# The colblock scan path (block pruning order, vectorized decode, shared
# format-cost table) is deterministic by construction; regenerating the
# three-way text/RCFile/colblock ablation must be byte-identical.
cargo run -q --release -p bench --bin ablation_columnar > "$obs_tmp/ablation_columnar.txt"
diff -u results/ablation_columnar.txt "$obs_tmp/ablation_columnar.txt"

echo "== kernel bench smoke (runs end-to-end + schema gate over BENCH_*.json)"
# BENCH_*.json artifacts are host-dependent timings, exempt from the
# byte-diff gates above; the schema gate keeps them honest instead. The
# smoke run proves the harness (both kernels, fan-out, engine points)
# still executes; validate_bench then checks the smoke output AND every
# committed trajectory artifact for the machine/config annotations and
# per-bench fields the docs read.
cargo run -q --release -p bench --bin bench_kernel -- --smoke > "$obs_tmp/BENCH_kernel_smoke.json"
cargo run -q --release -p bench --bin validate_bench -- \
  "$obs_tmp/BENCH_kernel_smoke.json" "$obs_tmp/BENCH_obs_smoke.json" results/BENCH_*.json

echo "== stale-fixture check (every results/ file named in EXPERIMENTS.md exists)"
# EXPERIMENTS.md is the map of the results/ directory; a renamed or
# deleted artifact must not leave a dangling reference behind.
missing=0
for f in $(grep -o 'results/[A-Za-z0-9_.-]*\.[a-z]*' EXPERIMENTS.md | sort -u); do
  if [ ! -f "$f" ]; then
    echo "EXPERIMENTS.md names $f but it does not exist" >&2
    missing=1
  fi
done
[ "$missing" -eq 0 ]

echo "ci: all green"
