#!/usr/bin/env bash
# The CI gate, runnable locally: formatting, lints (warnings are errors),
# and the full test suite. Mirrors .github/workflows/ci.yml exactly.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test -q --workspace

echo "ci: all green"
