//! Independent answer verification: several TPC-H queries recomputed
//! naively, straight off the base tables with hand-rolled loops — no shared
//! operator kernels, no plan machinery. Guards against a bug common to the
//! engines *and* the reference executor.

use elephants::relational::date::date;
use elephants::relational::{execute, Catalog, Value};
use elephants::tpch::{generate, schema, GenConfig};
use std::collections::{HashMap, HashSet};

fn catalog() -> Catalog {
    generate(&GenConfig::new(0.01))
}

#[test]
fn q4_matches_naive_exists_count() {
    let cat = catalog();
    let (out_schema, rows) = execute(&elephants::tpch::query(4), &cat);

    // Naive: orders in [1993-07-01, 1993-10-01) with any late lineitem.
    let ls = schema::lineitem();
    let (l_ok, l_cd, l_rd) = (
        ls.col("l_orderkey"),
        ls.col("l_commitdate"),
        ls.col("l_receiptdate"),
    );
    let late_orders: HashSet<i64> = cat
        .get("lineitem")
        .rows
        .iter()
        .filter(|r| r[l_cd].as_i64().unwrap() < r[l_rd].as_i64().unwrap())
        .map(|r| r[l_ok].as_i64().unwrap())
        .collect();
    let os = schema::orders();
    let (o_ok, o_od, o_pr) = (
        os.col("o_orderkey"),
        os.col("o_orderdate"),
        os.col("o_orderpriority"),
    );
    let (lo, hi) = (date(1993, 7, 1) as i64, date(1993, 10, 1) as i64);
    let mut want: HashMap<String, i64> = HashMap::new();
    for r in &cat.get("orders").rows {
        let d = r[o_od].as_i64().unwrap();
        if d >= lo && d < hi && late_orders.contains(&r[o_ok].as_i64().unwrap()) {
            *want
                .entry(r[o_pr].as_str().unwrap().to_string())
                .or_default() += 1;
        }
    }

    let (p_col, c_col) = (
        out_schema.col("o_orderpriority"),
        out_schema.col("order_count"),
    );
    assert_eq!(rows.len(), want.len());
    for r in &rows {
        let pri = r[p_col].as_str().unwrap();
        assert_eq!(
            r[c_col].as_i64().unwrap(),
            want[pri],
            "Q4 count for priority {pri}"
        );
    }
}

#[test]
fn q12_matches_naive_mode_counts() {
    let cat = catalog();
    let (out_schema, rows) = execute(&elephants::tpch::query(12), &cat);

    let ls = schema::lineitem();
    let os = schema::orders();
    let pri_of: HashMap<i64, String> = cat
        .get("orders")
        .rows
        .iter()
        .map(|r| {
            (
                r[os.col("o_orderkey")].as_i64().unwrap(),
                r[os.col("o_orderpriority")].as_str().unwrap().to_string(),
            )
        })
        .collect();
    let (lo, hi) = (date(1994, 1, 1) as i64, date(1995, 1, 1) as i64);
    let mut want: HashMap<String, (i64, i64)> = HashMap::new();
    for r in &cat.get("lineitem").rows {
        let mode = r[ls.col("l_shipmode")].as_str().unwrap();
        if mode != "MAIL" && mode != "SHIP" {
            continue;
        }
        let commit = r[ls.col("l_commitdate")].as_i64().unwrap();
        let receipt = r[ls.col("l_receiptdate")].as_i64().unwrap();
        let ship = r[ls.col("l_shipdate")].as_i64().unwrap();
        if !(commit < receipt && ship < commit && receipt >= lo && receipt < hi) {
            continue;
        }
        let pri = &pri_of[&r[ls.col("l_orderkey")].as_i64().unwrap()];
        let slot = want.entry(mode.to_string()).or_default();
        if pri == "1-URGENT" || pri == "2-HIGH" {
            slot.0 += 1;
        } else {
            slot.1 += 1;
        }
    }

    let (m, h, l) = (
        out_schema.col("l_shipmode"),
        out_schema.col("high_line_count"),
        out_schema.col("low_line_count"),
    );
    for r in &rows {
        let mode = r[m].as_str().unwrap();
        let (wh, wl) = want[mode];
        assert_eq!(r[h].as_f64().unwrap() as i64, wh, "Q12 high for {mode}");
        assert_eq!(r[l].as_f64().unwrap() as i64, wl, "Q12 low for {mode}");
    }
}

#[test]
fn q14_promo_fraction_matches_naive() {
    let cat = catalog();
    let (_, rows) = execute(&elephants::tpch::query(14), &cat);
    let got = rows[0][0].as_f64().unwrap();

    let ls = schema::lineitem();
    let type_of: HashMap<i64, String> = {
        let ps = schema::part();
        cat.get("part")
            .rows
            .iter()
            .map(|r| {
                (
                    r[ps.col("p_partkey")].as_i64().unwrap(),
                    r[ps.col("p_type")].as_str().unwrap().to_string(),
                )
            })
            .collect()
    };
    let (lo, hi) = (date(1995, 9, 1) as i64, date(1995, 10, 1) as i64);
    let (mut promo, mut total) = (0f64, 0f64);
    for r in &cat.get("lineitem").rows {
        let d = r[ls.col("l_shipdate")].as_i64().unwrap();
        if d < lo || d >= hi {
            continue;
        }
        let rev = r[ls.col("l_extendedprice")].as_f64().unwrap()
            * (1.0 - r[ls.col("l_discount")].as_f64().unwrap());
        total += rev;
        let pk = r[ls.col("l_partkey")].as_i64().unwrap();
        if type_of[&pk].starts_with("PROMO") {
            promo += rev;
        }
    }
    let want = 100.0 * promo / total;
    assert!(
        (got - want).abs() < 1e-6 * want.abs().max(1.0),
        "Q14 {got} vs naive {want}"
    );
    assert!((0.0..=100.0).contains(&got));
}

#[test]
fn q18_only_reports_orders_over_300_units() {
    let cat = catalog();
    let (out_schema, rows) = execute(&elephants::tpch::query(18), &cat);
    let qty_col = out_schema.col("sum_qty");
    let ls = schema::lineitem();
    // Recompute each reported order's quantity from the base table.
    let ok_col = out_schema.col("o_orderkey");
    for r in &rows {
        let okey = r[ok_col].as_i64().unwrap();
        let naive: f64 = cat
            .get("lineitem")
            .rows
            .iter()
            .filter(|lr| lr[ls.col("l_orderkey")].as_i64().unwrap() == okey)
            .map(|lr| lr[ls.col("l_quantity")].as_f64().unwrap())
            .sum();
        assert!(naive > 300.0, "Q18 order {okey} has only {naive} units");
        assert!(
            (r[qty_col].as_f64().unwrap() - naive).abs() < 1e-9,
            "Q18 quantity mismatch for {okey}"
        );
    }
}

/// The ported PDW path (DES-backed `cluster::exec` phases) against the
/// hand-rolled naive recomputation: integer outputs must match exactly —
/// byte-identical, no tolerance — proving the execution substrate change
/// left the data path untouched.
#[test]
fn pdw_q4_matches_naive_exactly() {
    use elephants::cluster::Params;
    use elephants::pdw::{load_pdw, PdwEngine};

    let cat = catalog();
    let params = Params::paper_dss().scaled(250.0 / 0.01);
    let (pdw_cat, _) = load_pdw(&cat, &params);
    let engine = PdwEngine::new(pdw_cat);
    let run = engine.run_query(&elephants::tpch::query(4));

    // Same naive recomputation as q4_matches_naive_exists_count.
    let ls = schema::lineitem();
    let late_orders: HashSet<i64> = cat
        .get("lineitem")
        .rows
        .iter()
        .filter(|r| {
            r[ls.col("l_commitdate")].as_i64().unwrap()
                < r[ls.col("l_receiptdate")].as_i64().unwrap()
        })
        .map(|r| r[ls.col("l_orderkey")].as_i64().unwrap())
        .collect();
    let os = schema::orders();
    let (lo, hi) = (date(1993, 7, 1) as i64, date(1993, 10, 1) as i64);
    let mut want: HashMap<String, i64> = HashMap::new();
    for r in &cat.get("orders").rows {
        let d = r[os.col("o_orderdate")].as_i64().unwrap();
        if d >= lo && d < hi && late_orders.contains(&r[os.col("o_orderkey")].as_i64().unwrap()) {
            *want
                .entry(r[os.col("o_orderpriority")].as_str().unwrap().to_string())
                .or_default() += 1;
        }
    }

    assert_eq!(run.rows.len(), want.len());
    for r in &run.rows {
        let pri = r[0].as_str().unwrap();
        assert_eq!(
            r[1],
            Value::I64(want[pri]),
            "PDW Q4 count for priority {pri} must be byte-identical to naive"
        );
    }
}

#[test]
fn q22_balances_match_naive() {
    let cat = catalog();
    let (out_schema, rows) = execute(&elephants::tpch::query(22), &cat);

    let cs = schema::customer();
    let os = schema::orders();
    let codes = ["13", "31", "23", "29", "30", "18", "17"];
    let has_orders: HashSet<i64> = cat
        .get("orders")
        .rows
        .iter()
        .map(|r| r[os.col("o_custkey")].as_i64().unwrap())
        .collect();
    // Average positive balance among code-matching customers.
    let mut bal_sum = 0f64;
    let mut bal_n = 0f64;
    for r in &cat.get("customer").rows {
        let phone = r[cs.col("c_phone")].as_str().unwrap();
        if !codes.contains(&&phone[..2]) {
            continue;
        }
        let b = r[cs.col("c_acctbal")].as_f64().unwrap();
        if b > 0.0 {
            bal_sum += b;
            bal_n += 1.0;
        }
    }
    let avg = bal_sum / bal_n;
    let mut want: HashMap<String, (i64, f64)> = HashMap::new();
    for r in &cat.get("customer").rows {
        let phone = r[cs.col("c_phone")].as_str().unwrap();
        let code = &phone[..2];
        if !codes.contains(&code) {
            continue;
        }
        let b = r[cs.col("c_acctbal")].as_f64().unwrap();
        let k = r[cs.col("c_custkey")].as_i64().unwrap();
        if b > avg && !has_orders.contains(&k) {
            let slot = want.entry(code.to_string()).or_default();
            slot.0 += 1;
            slot.1 += b;
        }
    }

    let (code_col, n_col, tot_col) = (
        out_schema.col("cntrycode"),
        out_schema.col("numcust"),
        out_schema.col("totacctbal"),
    );
    assert_eq!(rows.len(), want.len(), "country-code group count");
    for r in &rows {
        let code = r[code_col].as_str().unwrap();
        let (wn, wb) = want[code];
        assert_eq!(r[n_col], Value::I64(wn), "Q22 numcust for {code}");
        assert!(
            (r[tot_col].as_f64().unwrap() - wb).abs() < 1e-6 * wb.abs().max(1.0),
            "Q22 balance for {code}"
        );
    }
}
