//! S3: the probe layer is *passive* and *deterministic*.
//!
//! Passive: attaching a probe changes no timing cell and no result byte,
//! for every engine. Deterministic: running the same workload twice with
//! probes attached produces byte-identical Chrome-trace and JSONL exports.
//! Aligned: exported span slices sit exactly on the engines' reported
//! phase boundaries.

use elephants::cluster::Params;
use elephants::hive::{load_warehouse, HiveEngine};
use elephants::obs::{chrome_trace, jsonl, TimelineProbe};
use elephants::pdw::{load_pdw, PdwEngine};
use elephants::simkit::probe::Probe;
use elephants::simkit::{as_secs, secs};
use elephants::tpch::{generate, GenConfig};
use std::cell::RefCell;
use std::rc::Rc;

fn probe() -> Rc<RefCell<TimelineProbe>> {
    Rc::new(RefCell::new(TimelineProbe::new(secs(1.0))))
}

fn unwrap(p: Rc<RefCell<TimelineProbe>>) -> TimelineProbe {
    Rc::try_unwrap(p)
        .expect("engine released the probe")
        .into_inner()
}

fn engines() -> (HiveEngine, PdwEngine) {
    let cat = generate(&GenConfig::new(0.01));
    let params = Params::paper_dss().scaled(25_000.0);
    let (w, _) = load_warehouse(&cat, &params, None).expect("hive load");
    let (pc, _) = load_pdw(&cat, &params);
    (HiveEngine::new(w), PdwEngine::new(pc))
}

#[test]
fn probes_change_no_timing_cell_or_row() {
    let (hive, pdw) = engines();
    for q in [1, 5, 19] {
        let plan = elephants::tpch::query(q);

        let bare = hive.run_query(&plan).expect("hive");
        let p = probe();
        let probed = hive
            .run_query_probed(&plan, Some(p.clone() as Rc<RefCell<dyn Probe>>))
            .expect("hive probed");
        assert_eq!(
            format!("{:?}", (&bare.rows, bare.total_secs, &bare.jobs)),
            format!("{:?}", (&probed.rows, probed.total_secs, &probed.jobs)),
            "Q{q}: Hive run must be byte-identical with a probe attached"
        );
        assert!(unwrap(p).end() > 0, "Q{q}: probe saw the Hive run");

        let bare = pdw.run_query(&plan);
        let p = probe();
        let probed = pdw.run_query_probed(&plan, Some(p.clone() as Rc<RefCell<dyn Probe>>));
        assert_eq!(
            format!("{:?}", (&bare.rows, bare.total_secs, &bare.steps)),
            format!("{:?}", (&probed.rows, probed.total_secs, &probed.steps)),
            "Q{q}: PDW run must be byte-identical with a probe attached"
        );
        assert!(unwrap(p).end() > 0, "Q{q}: probe saw the PDW run");
    }
}

#[test]
fn exports_are_byte_identical_across_runs() {
    let run = || {
        let (hive, pdw) = engines();
        let plan = elephants::tpch::query(5);
        let hp = probe();
        hive.run_query_probed(&plan, Some(hp.clone() as Rc<RefCell<dyn Probe>>))
            .expect("hive");
        let pp = probe();
        pdw.run_query_probed(&plan, Some(pp.clone() as Rc<RefCell<dyn Probe>>));
        let (hp, pp) = (unwrap(hp), unwrap(pp));
        (
            chrome_trace(&[("hive", &hp), ("pdw", &pp)]),
            jsonl("hive", &hp) + &jsonl("pdw", &pp),
        )
    };
    let (trace_a, jsonl_a) = run();
    let (trace_b, jsonl_b) = run();
    assert_eq!(trace_a, trace_b, "Chrome trace must be deterministic");
    assert_eq!(jsonl_a, jsonl_b, "JSONL export must be deterministic");
}

#[test]
fn exported_spans_align_with_reported_phase_boundaries() {
    let (hive, pdw) = engines();
    let plan = elephants::tpch::query(5);

    // Hive: every traced job's map/shuffle/reduce spans appear in the
    // probe's span list at the executor-absolute boundaries the report
    // locates via `start_secs`.
    let hp = probe();
    let run = hive
        .run_query_probed(&plan, Some(hp.clone() as Rc<RefCell<dyn Probe>>))
        .expect("hive");
    let hp = unwrap(hp);
    let spans = hp.spans();
    assert!(
        spans.iter().any(|s| s.name == "map"),
        "probe saw map spans: {:?}",
        spans.iter().map(|s| s.name.clone()).collect::<Vec<_>>()
    );
    let mut checked = 0;
    for job in run.jobs.iter().filter(|j| !j.report.spans.is_empty()) {
        for (i, want) in job.report.spans.iter().enumerate() {
            let got = spans
                .iter()
                .find(|s| s.start == want.start && s.name == want.name)
                .unwrap_or_else(|| {
                    panic!(
                        "job {} span {i} ({}) missing from probe",
                        job.label, want.name
                    )
                });
            assert_eq!(got.end, want.end, "span end matches");
            checked += 1;
        }
        // The job's relative phase boundaries reconcile through start_secs.
        let last = job.report.spans.last().expect("spans");
        assert!(
            (as_secs(last.end) - (job.report.start_secs + job.report.total)).abs() < 1e-9,
            "job {}: absolute end == start_secs + total",
            job.label
        );
    }
    assert!(checked >= 3, "at least one full map/shuffle/reduce checked");

    // PDW: probe spans mirror the engine's own trace exactly.
    let pp = probe();
    let run = pdw.run_query_probed(&plan, Some(pp.clone() as Rc<RefCell<dyn Probe>>));
    let pp = unwrap(pp);
    let got: Vec<_> = pp
        .spans()
        .iter()
        .map(|s| (s.name.clone(), s.start, s.end))
        .collect();
    let want: Vec<_> = run
        .trace
        .spans
        .iter()
        .map(|s| (s.name.clone(), s.start, s.end))
        .collect();
    assert_eq!(got, want, "PDW probe spans == engine trace spans");
}
