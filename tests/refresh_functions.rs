//! Extension: the TPC-H refresh functions end to end — PDW runs RF1+RF2
//! and queries see the changes; Hive 0.7 rejects both (the paper's reason
//! for skipping them); Hive 0.8 accepts RF1.

use elephants::cluster::Params;
use elephants::hive::{load_warehouse, HiveEngine, HiveError};
use elephants::pdw::{load_pdw, PdwEngine};
use elephants::tpch::refresh::generate_refresh;
use elephants::tpch::{generate, GenConfig};
use std::collections::HashSet;

#[test]
fn pdw_refresh_round_trips_and_queries_see_it() {
    let cfg = GenConfig::new(0.01);
    let cat = generate(&cfg);
    let params = Params::paper_dss().scaled(25_000.0);
    let (mut pdw_cat, _) = load_pdw(&cat, &params);
    let rf = generate_refresh(&cfg, 0);

    let orders_before = pdw_cat.table("orders").n_rows();
    let line_before = pdw_cat.table("lineitem").n_rows();

    // RF1: insert.
    let t1 = pdw_cat.refresh_insert("orders", rf.orders.clone());
    let t1b = pdw_cat.refresh_insert("lineitem", rf.lineitems.clone());
    assert!(t1 > 0.0 && t1b > 0.0);
    assert_eq!(
        pdw_cat.table("orders").n_rows(),
        orders_before + rf.orders.len()
    );
    assert_eq!(
        pdw_cat.table("lineitem").n_rows(),
        line_before + rf.lineitems.len()
    );

    // A query sees the inserted rows: count lineitems with the marker
    // comment via Q-style scan (use the reference path through PDW).
    let engine = PdwEngine::new(pdw_cat);
    let plan = elephants::relational::LogicalPlan::scan("lineitem")
        .filter(
            elephants::relational::expr::col(15)
                .eq(elephants::relational::expr::lit_str("refresh")),
        )
        .aggregate(
            vec![],
            vec![elephants::relational::AggCall::count_star("n")],
        );
    let run = engine.run_query(&plan);
    assert_eq!(
        run.rows[0][0],
        elephants::relational::Value::I64(rf.lineitems.len() as i64)
    );

    // RF2: delete the victims; counts drop accordingly.
    let mut pdw_cat = engine.catalog;
    let victims: HashSet<i64> = rf.delete_keys.iter().copied().collect();
    let deleted_orders: usize = victims.len();
    let t2 = pdw_cat.refresh_delete("orders", 0, &victims);
    assert!(t2 > 0.0);
    assert_eq!(
        pdw_cat.table("orders").n_rows(),
        orders_before + rf.orders.len() - deleted_orders
    );
    let t3 = pdw_cat.refresh_delete("lineitem", 0, &victims);
    assert!(t3 > 0.0);
    assert!(pdw_cat.table("lineitem").n_rows() < line_before + rf.lineitems.len());
}

#[test]
fn hive_07_rejects_refresh_but_08_inserts() {
    let cfg = GenConfig::new(0.01);
    let cat = generate(&cfg);
    let params = Params::paper_dss().scaled(25_000.0);
    let rf = generate_refresh(&cfg, 0);

    // 0.7: both refused.
    let (w7, _) = load_warehouse(&cat, &params, None).unwrap();
    let mut h7 = HiveEngine::new(w7);
    assert!(matches!(
        h7.refresh_insert("orders", rf.orders.clone()),
        Err(HiveError::Unsupported(_))
    ));
    assert!(matches!(
        h7.refresh_delete("orders"),
        Err(HiveError::Unsupported(_))
    ));

    // 0.8: INSERT INTO works and queries see the rows; DELETE still fails.
    let (mut w8, _) = load_warehouse(&cat, &params, None).unwrap();
    w8.version = elephants::hive::meta::HiveVersion::V0_8;
    let before = w8.table("orders").files.len();
    let mut h8 = HiveEngine::new(w8);
    let secs = h8
        .refresh_insert("orders", rf.orders.clone())
        .expect("hive 0.8 INSERT INTO");
    assert!(secs > 0.0);
    assert!(
        h8.warehouse.table("orders").files.len() > before,
        "INSERT INTO appends files"
    );
    assert!(matches!(
        h8.refresh_delete("orders"),
        Err(HiveError::Unsupported(_))
    ));

    // The inserted orders are visible to a query.
    let plan = elephants::relational::LogicalPlan::scan("orders")
        .filter(
            elephants::relational::expr::col(8).eq(elephants::relational::expr::lit_str("refresh")),
        )
        .aggregate(
            vec![],
            vec![elephants::relational::AggCall::count_star("n")],
        );
    let run = h8.run_query(&plan).expect("query after insert");
    assert_eq!(
        run.rows[0][0],
        elephants::relational::Value::I64(rf.orders.len() as i64)
    );
}
