//! The similitude property behind the whole methodology: simulated times
//! for a given *paper* scale factor are (approximately) invariant to the
//! choice of the real generated scale — running SF 0.005 with k = 50000
//! and SF 0.01 with k = 25000 must produce close times for "250 GB".
//! Fixed overheads (task startup, job setup) are exactly invariant;
//! bandwidth terms carry small quantization noise from file/block counts.

use elephants::cluster::Params;
use elephants::hive::{load_warehouse, HiveEngine};
use elephants::pdw::{load_pdw, PdwEngine};
use elephants::tpch::{generate, GenConfig};

fn hive_time(sim_scale: f64, paper: f64, q: usize) -> f64 {
    let catalog = generate(&GenConfig::new(sim_scale));
    let params = Params::paper_dss().scaled(paper / sim_scale);
    let (w, _) = load_warehouse(&catalog, &params, None).expect("load");
    HiveEngine::new(w)
        .run_query(&elephants::tpch::query(q))
        .expect("query")
        .total_secs
}

fn pdw_time(sim_scale: f64, paper: f64, q: usize) -> f64 {
    let catalog = generate(&GenConfig::new(sim_scale));
    let params = Params::paper_dss().scaled(paper / sim_scale);
    let (c, _) = load_pdw(&catalog, &params);
    PdwEngine::new(c)
        .run_query(&elephants::tpch::query(q))
        .total_secs
}

#[test]
fn hive_q1_time_invariant_to_sim_scale() {
    let a = hive_time(0.005, 250.0, 1);
    let b = hive_time(0.01, 250.0, 1);
    let rel = (a - b).abs() / a.max(b);
    assert!(
        rel < 0.25,
        "Q1@250GB from different sim scales: {a:.0}s vs {b:.0}s ({rel:.2} apart)"
    );
}

#[test]
fn hive_q6_time_invariant_to_sim_scale() {
    let a = hive_time(0.005, 1000.0, 6);
    let b = hive_time(0.02, 1000.0, 6);
    let rel = (a - b).abs() / a.max(b);
    assert!(
        rel < 0.25,
        "Q6@1TB from different sim scales: {a:.0}s vs {b:.0}s"
    );
}

#[test]
fn pdw_q6_time_invariant_to_sim_scale() {
    let a = pdw_time(0.005, 1000.0, 6);
    let b = pdw_time(0.02, 1000.0, 6);
    let rel = (a - b).abs() / a.max(b);
    assert!(
        rel < 0.25,
        "PDW Q6@1TB from different sim scales: {a:.1}s vs {b:.1}s"
    );
}

#[test]
fn bandwidth_bound_work_scales_linearly_with_paper_sf() {
    // Q6 at 4 TB should take ~4x its 1 TB time on Hive once past the
    // overhead-dominated regime (Table 3's right columns).
    let t1 = hive_time(0.01, 4000.0, 6);
    let t2 = hive_time(0.01, 16000.0, 6);
    let factor = t2 / t1;
    assert!(
        (2.8..=4.6).contains(&factor),
        "4x data should be ~3-4x time, got {factor:.2}"
    );
}
