//! Properties the active observability layer must hold on *real* engine
//! runs, not hand-built fixtures:
//!
//! 1. Critical-path blame is exhaustive and exclusive — every span's
//!    blame components sum to exactly its elapsed time, the extracted
//!    path tiles `[start, end]` with no gaps or overlaps, and no span
//!    outlives the query it belongs to.
//! 2. The streaming metric registry is a lossless refactoring of the
//!    post-hoc [`WindowedLatencies`] fold: same stream in, bit-identical
//!    windows (histograms, shard spreads, rendered bytes) out.
//! 3. The blame-annotated Chrome trace export passes the structural
//!    validator (balanced lanes, nested spans) that gates CI traces.

use elephants::cluster::Params;
use elephants::hive::{load_warehouse, HiveEngine};
use elephants::obs::{CritPathProbe, CritPathReport, MetricKey, MetricRegistry, WindowedLatencies};
use elephants::pdw::{load_pdw, PdwEngine};
use elephants::simkit::probe::Probe;
use elephants::simkit::{as_secs, millis, secs, SimTime};
use elephants::tpch::{generate, GenConfig};
use std::cell::RefCell;
use std::rc::Rc;

fn engines() -> (HiveEngine, PdwEngine) {
    let cat = generate(&GenConfig::new(0.01));
    let params = Params::paper_dss().scaled(25_000.0);
    let (w, _) = load_warehouse(&cat, &params, None).expect("hive load");
    let (pc, _) = load_pdw(&cat, &params);
    (HiveEngine::new(w), PdwEngine::new(pc))
}

fn probed_reports(q: usize) -> Vec<(&'static str, f64, CritPathReport)> {
    let (hive, pdw) = engines();
    let plan = elephants::tpch::query(q);
    let cp = Rc::new(RefCell::new(CritPathProbe::new()));
    let hrun = hive
        .run_query_probed(&plan, Some(cp.clone() as Rc<RefCell<dyn Probe>>))
        .expect("hive");
    let hreport = Rc::try_unwrap(cp)
        .map(|c| c.into_inner().report())
        .unwrap_or_else(|_| panic!("sole owner"));
    let cp = Rc::new(RefCell::new(CritPathProbe::new()));
    let prun = pdw.run_query_probed(&plan, Some(cp.clone() as Rc<RefCell<dyn Probe>>));
    let preport = Rc::try_unwrap(cp)
        .map(|c| c.into_inner().report())
        .unwrap_or_else(|_| panic!("sole owner"));
    vec![
        ("hive", hrun.total_secs, hreport),
        ("pdw", prun.total_secs, preport),
    ]
}

#[test]
fn blame_sums_to_elapsed_and_path_tiles_every_span() {
    for q in [1, 5, 19] {
        for (engine, total_secs, report) in probed_reports(q) {
            assert_eq!(report.orphaned, 0, "{engine} Q{q}: events without a span");
            assert!(!report.spans.is_empty(), "{engine} Q{q}: no spans blamed");
            for b in &report.spans {
                // Exhaustive: the seven components are a partition of the
                // span's lifetime — nothing unattributed, nothing twice.
                let parts: SimTime = b.components().iter().map(|(_, t)| t).sum();
                assert_eq!(
                    parts,
                    b.elapsed(),
                    "{engine} Q{q} {}: blame must sum to elapsed",
                    b.name
                );
                assert_eq!(
                    b.path_len(),
                    b.elapsed(),
                    "{engine} Q{q} {}: critical path must tile the span",
                    b.name
                );
                // Exclusive: segments are contiguous from start to end.
                let mut at = b.start;
                for seg in &b.path {
                    assert_eq!(seg.from, at, "{engine} Q{q} {}: gap in path", b.name);
                    assert!(seg.to >= seg.from);
                    at = seg.to;
                }
                assert_eq!(at, b.end, "{engine} Q{q} {}: path stops early", b.name);
                // Bounded: no span outlives the query's wall clock.
                assert!(
                    as_secs(b.end) <= total_secs + 1e-9,
                    "{engine} Q{q} {}: span ends at {}s, query at {total_secs}s",
                    b.name,
                    as_secs(b.end)
                );
            }
        }
    }
}

#[test]
fn streaming_registry_windows_are_bit_identical_to_the_posthoc_fold() {
    // A deterministic pseudo-random op stream (LCG — no external crates):
    // two ops over five shards and three tenants, latencies spanning four
    // orders of magnitude, timestamps in non-decreasing order.
    let (t0, width, n) = (secs(2.0), secs(0.5), 6usize);
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    let mut wl = WindowedLatencies::new(t0, width, n);
    // The fold silently drops samples past window n-1; the ring *evicts
    // old windows* when the stream runs past its capacity. Retention must
    // cover the whole stream (≤ 5000 × 1.2ms = 6s = 12 windows) or the
    // comparison would read back evicted (cleared) early windows.
    let mut reg = MetricRegistry::new(t0, width, 16);
    let mut at = t0;
    for _ in 0..5_000 {
        at += rng() as u64 % millis(1.2);
        let op = if rng() % 3 == 0 { "update" } else { "read" };
        let shard = Some(rng() as usize % 5);
        let tenant = rng() % 3;
        let latency = millis(0.01) + rng() as u64 % millis(40.0);
        wl.record(op, shard, at, latency);
        reg.observe(MetricKey::new("sim", op, shard, Some(tenant)), at, latency);
    }
    let folded = reg.to_windowed("sim", n);

    assert_eq!(wl.labels(), folded.labels());
    for label in wl.labels() {
        assert_eq!(wl.shards(label), folded.shards(label), "{label}: shards");
        for w in 0..n {
            // Histogram equality is structural (buckets, counts, sums) —
            // stronger than matching percentiles.
            assert_eq!(
                wl.merged(label, w),
                folded.merged(label, w),
                "{label} window {w}: merged histogram"
            );
            for q in [0.5, 0.95, 0.99] {
                assert_eq!(
                    wl.shard_spread(label, w, q),
                    folded.shard_spread(label, w, q),
                    "{label} window {w}: p{q} shard spread"
                );
            }
            // Tenancy is a partition of the merged stream, never a rescale.
            let by_tenant: u64 = reg
                .tenants("sim", label)
                .into_iter()
                .map(|t| reg.tenant_window("sim", label, Some(t), w as u64).count())
                .sum();
            assert_eq!(
                by_tenant,
                reg.merged_window("sim", label, w as u64).count(),
                "{label} window {w}: tenant counts partition the merge"
            );
        }
    }
    // The rendered report — the actual artifact bytes — matches too.
    assert_eq!(wl.render("stream"), folded.render("stream"));
}

#[test]
fn annotated_trace_export_passes_structural_validation() {
    let (hive, pdw) = engines();
    let plan = elephants::tpch::query(5);
    let probes = || {
        let tl = Rc::new(RefCell::new(elephants::obs::TimelineProbe::new(secs(1.0))));
        let cp = Rc::new(RefCell::new(CritPathProbe::new()));
        let tee = elephants::obs::Tee::of(vec![tl.clone(), cp.clone()]);
        (tl, cp, Rc::new(RefCell::new(tee)) as Rc<RefCell<dyn Probe>>)
    };
    let (htl, hcp, htee) = probes();
    hive.run_query_probed(&plan, Some(htee)).expect("hive");
    let (ptl, pcp, ptee) = probes();
    pdw.run_query_probed(&plan, Some(ptee));
    let unwrap_tl = |tl: Rc<RefCell<elephants::obs::TimelineProbe>>| {
        Rc::try_unwrap(tl).expect("sole owner").into_inner()
    };
    let unwrap_cp = |cp: Rc<RefCell<CritPathProbe>>| {
        Rc::try_unwrap(cp)
            .map(|c| c.into_inner().report())
            .unwrap_or_else(|_| panic!("sole owner"))
    };
    let doc = elephants::obs::chrome::chrome_trace_annotated(&[
        ("hive", &unwrap_tl(htl), Some(&unwrap_cp(hcp))),
        ("pdw", &unwrap_tl(ptl), Some(&unwrap_cp(pcp))),
    ]);
    let sum = elephants::obs::validate::validate_text(&doc)
        .expect("annotated export must satisfy the trace validator");
    assert_eq!(sum.procs, vec!["hive", "pdw"]);
    assert!(sum.spans > 0 && sum.counters > 0);
}
