//! S4: concurrent workload mixes are deterministic.
//!
//! `ClusterExec::run_mix` interleaves multiple jobs through the same
//! simulated resources with fair round-robin dispatch. Three invariants:
//!
//! * same seed + same mix → byte-identical outcomes, resource reports,
//!   span trace, *and* probe event stream, across independent executors;
//! * the result is a function of the mix, not the submission `Vec` order
//!   (admission order is canonicalized to `(arrival, name)`);
//! * the probe is passive: attaching one changes no outcome byte.
//!
//! The mix used here is the `concurrent_mix` bench shape in miniature:
//! a recorded PDW query, a background all-node transfer job, and a pure
//! CPU job, with seeded arrival offsets.

use elephants::cluster::{ClusterExec, JobSpec, MixJob, Params, Phase};
use elephants::pdw::{load_pdw, PdwEngine};
use elephants::simkit::probe::{Probe, ProbeEvent};
use elephants::tpch::{generate, GenConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;

/// Records the full probe stream as Debug lines (timestamps, waits, queue
/// depths — everything), so two runs can be compared event-for-event.
#[derive(Debug, Default)]
struct StreamProbe(Vec<String>);

impl Probe for StreamProbe {
    fn on_event(&mut self, ev: &ProbeEvent<'_>) {
        self.0.push(format!("{ev:?}"));
    }
}

fn params() -> Params {
    Params::paper_dss().scaled(25_000.0)
}

/// The test mix: Q5's recorded phases + a ring-transfer job + a CPU job,
/// arrivals drawn from `seed`.
fn mix(seed: u64) -> Vec<JobSpec> {
    let p = params();
    let cat = generate(&GenConfig::new(0.01));
    let (pdwcat, _) = load_pdw(&cat, &p);
    let engine = PdwEngine::new(pdwcat);
    let (_, q5_phases) = engine.run_query_recorded(&elephants::tpch::query(5));

    let mut rng = StdRng::seed_from_u64(seed);
    let mut transfer = Phase::new("ring");
    for n in 0..p.nodes {
        transfer.net_send(n, 200_000.0, p.dms_bw_per_node);
        transfer.net_recv((n + 1) % p.nodes, 200_000.0, p.dms_bw_per_node);
    }
    let mut crunch = Phase::new("crunch");
    for n in 0..p.nodes {
        crunch.cpu(n, 5.0, p.cores_per_node as usize);
    }
    vec![
        JobSpec {
            name: "q5".into(),
            arrival_secs: rng.gen_range(0.0..10.0),
            phases: q5_phases,
        },
        JobSpec {
            name: "etl".into(),
            arrival_secs: rng.gen_range(0.0..10.0),
            phases: vec![transfer.clone(), transfer],
        },
        JobSpec {
            name: "crunch".into(),
            arrival_secs: rng.gen_range(0.0..10.0),
            phases: vec![crunch],
        },
    ]
}

/// Run `jobs` on a fresh executor; fingerprint = Debug rendering of the
/// outcomes, every resource report, and every span (order included).
fn run(jobs: Vec<JobSpec>, probe: bool) -> (String, Vec<String>) {
    let mut exec = ClusterExec::new(params());
    let stream = probe.then(|| Rc::new(RefCell::new(StreamProbe::default())));
    if let Some(s) = &stream {
        exec.set_probe(Some(s.clone() as Rc<RefCell<dyn Probe>>));
    }
    let outcomes = exec.run_mix(jobs);
    let fingerprint = format!(
        "{:?}\n{:?}\n{:?}",
        outcomes,
        exec.resource_reports(),
        exec.trace().spans
    );
    exec.set_probe(None);
    let events = match stream {
        Some(s) => {
            Rc::try_unwrap(s)
                .expect("exec released the probe")
                .into_inner()
                .0
        }
        None => Vec::new(),
    };
    (fingerprint, events)
}

/// Like [`run`], but through `run_mix_adaptive`: q5 gets a re-planner that
/// actually rewrites its tail (rotates the remaining phases once, at the
/// boundary after its second phase), the other jobs run fixed. The rewrite
/// is a pure function of the boundary, so reruns must still be
/// byte-identical.
fn run_adaptive(jobs: Vec<JobSpec>, probe: bool) -> (String, Vec<String>) {
    let mut exec = ClusterExec::new(params());
    let stream = probe.then(|| Rc::new(RefCell::new(StreamProbe::default())));
    if let Some(s) = &stream {
        exec.set_probe(Some(s.clone() as Rc<RefCell<dyn Probe>>));
    }
    let mix_jobs = jobs
        .into_iter()
        .map(|spec| {
            if spec.name == "q5" {
                MixJob::adaptive(spec, |ctx| {
                    if ctx.completed == 2 && ctx.remaining.len() >= 2 {
                        let mut tail = ctx.remaining.to_vec();
                        tail.rotate_left(1);
                        Some(tail)
                    } else {
                        None
                    }
                })
            } else {
                MixJob::fixed(spec)
            }
        })
        .collect();
    let outcomes = exec.run_mix_adaptive(mix_jobs);
    let fingerprint = format!(
        "{:?}\n{:?}\n{:?}",
        outcomes,
        exec.resource_reports(),
        exec.trace().spans
    );
    exec.set_probe(None);
    let events = match stream {
        Some(s) => {
            Rc::try_unwrap(s)
                .expect("exec released the probe")
                .into_inner()
                .0
        }
        None => Vec::new(),
    };
    (fingerprint, events)
}

#[test]
fn same_seed_same_mix_is_byte_identical() {
    let (fp1, ev1) = run(mix(7), true);
    let (fp2, ev2) = run(mix(7), true);
    assert_eq!(fp1, fp2, "outcomes/reports/trace must replay identically");
    assert_eq!(ev1.len(), ev2.len(), "probe stream length must replay");
    assert_eq!(ev1, ev2, "probe streams must be event-for-event identical");
    assert!(
        ev1.iter().any(|e| e.contains("ServiceStarted")),
        "the stream actually observed the run"
    );
}

#[test]
fn different_seed_changes_the_interleaving() {
    // Sanity check that the fingerprint is sensitive at all: different
    // arrival offsets must yield a different trace.
    let (fp1, _) = run(mix(7), false);
    let (fp2, _) = run(mix(8), false);
    assert_ne!(fp1, fp2, "distinct seeds should shift arrivals");
}

#[test]
fn submission_order_permutation_is_invariant() {
    let jobs = mix(7);
    let mut rotated = jobs.clone();
    rotated.rotate_left(1);
    let mut reversed = jobs.clone();
    reversed.reverse();
    let (fp, _) = run(jobs, false);
    let (fp_rot, _) = run(rotated, false);
    let (fp_rev, _) = run(reversed, false);
    assert_eq!(fp, fp_rot, "rotating the submission Vec must not matter");
    assert_eq!(fp, fp_rev, "reversing the submission Vec must not matter");
}

#[test]
fn probe_is_passive_on_mixes() {
    let (bare, _) = run(mix(7), false);
    let (probed, events) = run(mix(7), true);
    assert_eq!(
        bare, probed,
        "attaching a probe must not change a single outcome byte"
    );
    assert!(!events.is_empty());
}

#[test]
fn adaptive_mix_same_seed_is_byte_identical() {
    // The re-planned run is as deterministic as the fixed one: same seed,
    // same rewriting callback → byte-identical outcomes, reports, trace,
    // and probe stream.
    let (fp1, ev1) = run_adaptive(mix(7), true);
    let (fp2, ev2) = run_adaptive(mix(7), true);
    assert_eq!(fp1, fp2, "adaptive outcomes/reports/trace must replay");
    assert_eq!(ev1, ev2, "adaptive probe streams must replay");
    // The rewrite really happened: the tail rotation moves q5's third
    // phase to the end, so the fixed run's trace differs.
    let (fp_fixed, _) = run(mix(7), false);
    assert_ne!(fp1, fp_fixed, "the re-planner should have rewritten q5");
}

#[test]
fn adaptive_submission_permutation_is_invariant() {
    // Canonical admission order applies to adaptive jobs too: permuting
    // the submission Vec changes nothing, including re-plan boundaries.
    let jobs = mix(7);
    let mut reversed = jobs.clone();
    reversed.reverse();
    let (fp, _) = run_adaptive(jobs, false);
    let (fp_rev, _) = run_adaptive(reversed, false);
    assert_eq!(fp, fp_rev, "submission order must not matter when adaptive");
}

#[test]
fn identity_replanners_match_the_fixed_run_exactly() {
    // `run_mix_adaptive` with callbacks that never rewrite is the fixed
    // run, bit for bit — outcomes, reports, trace, and probe stream.
    let run_identity = |jobs: Vec<JobSpec>, probe: bool| {
        let mut exec = ClusterExec::new(params());
        let stream = probe.then(|| Rc::new(RefCell::new(StreamProbe::default())));
        if let Some(s) = &stream {
            exec.set_probe(Some(s.clone() as Rc<RefCell<dyn Probe>>));
        }
        let mix_jobs = jobs
            .into_iter()
            .map(|spec| MixJob::adaptive(spec, |ctx| Some(ctx.remaining.to_vec())))
            .collect();
        let outcomes = exec.run_mix_adaptive(mix_jobs);
        let fingerprint = format!(
            "{:?}\n{:?}\n{:?}",
            outcomes,
            exec.resource_reports(),
            exec.trace().spans
        );
        exec.set_probe(None);
        let events = match stream {
            Some(s) => {
                Rc::try_unwrap(s)
                    .expect("exec released the probe")
                    .into_inner()
                    .0
            }
            None => Vec::new(),
        };
        (fingerprint, events)
    };
    let (fp_fixed, ev_fixed) = run(mix(7), true);
    let (fp_id, ev_id) = run_identity(mix(7), true);
    assert_eq!(fp_fixed, fp_id, "identity re-plan must not change a byte");
    assert_eq!(ev_fixed, ev_id, "identity re-plan must not shift an event");
}
