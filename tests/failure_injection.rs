//! End-to-end failure reproduction: the three failures the paper reports.

use elephants::cluster::Params;
use elephants::core::dss::{paper_disk_capacity, run_dss, DssConfig};
use elephants::core::serving::{run_point, ServingConfig, SystemKind};
use elephants::docstore::{MongoCluster, Sharding};
use elephants::hive::{load_warehouse, HiveEngine};
use elephants::simkit::Sim;
use elephants::tpch::{generate, GenConfig};
use elephants::ycsb::workload::{OpType, Workload};

/// §3.3.4: "Query 9 did not complete in Hive at the 16TB scale factor due
/// to lack of disk space" — and only Q9, only at 16 TB.
#[test]
fn q9_is_the_only_disk_space_casualty() {
    let cfg = DssConfig {
        sim_scale: 0.01,
        paper_scales: vec![4000.0, 16000.0],
        queries: vec![7, 9, 21], // the other intermediate-heavy queries
        disk_capacity_per_node: Some(paper_disk_capacity()),
    };
    let res = run_dss(&cfg);
    let at = |scale: usize, q: usize| {
        res.runs[scale]
            .cells
            .iter()
            .find(|c| c.query == q)
            .expect("cell")
            .hive_secs
    };
    // 4 TB: everything completes.
    for q in [7, 9, 21] {
        assert!(at(0, q).is_some(), "Q{q} must complete at 4 TB");
    }
    // 16 TB: Q9 dies, Q7/Q21 (also large intermediates) survive.
    assert!(at(1, 7).is_some(), "Q7 completes at 16 TB (paper: 24887 s)");
    assert!(at(1, 9).is_none(), "Q9 must run out of disk at 16 TB");
    assert!(
        at(1, 21).is_some(),
        "Q21 completes at 16 TB (paper: 40748 s)"
    );
}

/// §3.3.4.2: Q22's hinted map-side join fails after ~400 s at *every*
/// scale factor and falls back to a common join.
#[test]
fn q22_map_join_fails_at_every_scale() {
    let catalog = generate(&GenConfig::new(0.01));
    for paper in [250.0, 16000.0] {
        let params = Params::paper_dss().scaled(paper / 0.01);
        let (w, _) = load_warehouse(&catalog, &params, None).expect("load");
        let run = HiveEngine::new(w)
            .run_query(&elephants::tpch::query(22))
            .expect("q22");
        let failed: f64 = run.secs_for("mapjoin-failed");
        assert!(
            (350.0..=450.0).contains(&failed),
            "@{paper:.0} GB the failed attempt costs ~400s, got {failed:.0}"
        );
    }
}

/// §3.4.3, workload D: Mongo-AS's order-preserving sharding routes every
/// append — and most "latest" reads — to the final chunk, collapsing it to
/// a fraction of what the hash-sharded systems sustain (the paper's system
/// additionally crashed outright above a 20 k target; the open-loop flood
/// that reproduces the crash lives in the docstore unit tests and the
/// autosharding_demo example — a throttled closed-loop driver bounds the
/// queue and stops short of socket timeouts).
#[test]
fn mongo_as_collapses_under_workload_d() {
    let cfg = ServingConfig {
        k: 10_000.0,
        warmup_secs: 2.0,
        measure_secs: 8.0,
        threads: 800,
        seed: 3,
    };
    let target = 320_000.0;
    let p_as = run_point(&cfg, SystemKind::MongoAs, Workload::D, target);
    let p_sql = run_point(&cfg, SystemKind::SqlCs, Workload::D, target);
    let p_cs = run_point(&cfg, SystemKind::MongoCs, Workload::D, target);
    assert!(
        !p_sql.crashed && !p_cs.crashed,
        "hash-sharded systems survive"
    );
    assert!(
        p_as.crashed || p_as.achieved_ops < 0.25 * p_sql.achieved_ops,
        "Mongo-AS must collapse: AS {} vs SQL {}",
        p_as.achieved_ops,
        p_sql.achieved_ops
    );
    // The hotspot also shows in append latency.
    let alat = |p: &elephants::core::serving::SweepPoint| {
        p.latency(OpType::Insert).unwrap_or(f64::INFINITY)
    };
    assert!(
        alat(&p_as) > 5.0 * alat(&p_sql),
        "AS appends {}ms vs SQL {}ms",
        alat(&p_as),
        alat(&p_sql)
    );
}

/// The crash mechanism itself: appends route to the last chunk, the chunk
/// splits, the balancer migration seizes the hot shard's global lock.
#[test]
fn crash_is_driven_by_migrations_not_randomness() {
    let params = Params::paper_ycsb().scaled_ycsb(10_000.0);
    let mut sim: Sim<()> = Sim::new();
    let m = MongoCluster::build(&mut sim, &params, Sharding::Range);
    m.load(64_000);
    // All appends route to the last shard.
    let last = m.shards() - 1;
    for _ in 0..100 {
        assert_eq!(m.shard_of(m.next_append_key()), last);
    }
}
