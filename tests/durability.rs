//! The durability contrast §3.4.1 sets up and §3.5 drives home:
//! SQL Server's acknowledged writes survive a crash (WAL replay);
//! MongoDB's paper configuration — no journal — loses them; journaling
//! (the ablation) restores the guarantee at a latency cost.

use elephants::cluster::Params;
use elephants::docstore::{MongoCluster, Sharding};
use elephants::simkit::Sim;
use elephants::sqlengine::SqlCluster;
use std::cell::Cell;
use std::rc::Rc;

type S = Sim<()>;

fn params() -> Params {
    Params::paper_ycsb().scaled_ycsb(100_000.0)
}

/// Run `n` acknowledged updates on distinct keys, returning after all acks.
fn run_updates_sql(sim: &mut S, sql: &Rc<SqlCluster>, keys: &[u64]) {
    for &k in keys {
        sql.update(sim, k, Box::new(|_, _| {}));
    }
    sim.run(&mut ());
}

#[test]
fn sql_acknowledged_writes_survive_a_crash() {
    let mut sim: S = Sim::new();
    let sql = SqlCluster::build(&mut sim, &params());
    sql.load(5_000);
    let keys: Vec<u64> = (0..200).map(|i| i * 7 % 5_000).collect();
    run_updates_sql(&mut sim, &sql, &keys);

    sql.simulate_crash_and_recover();

    // Every acknowledged update is still there (reads go through the same
    // simulation whose resources the cluster registered).
    for &k in &keys[..20] {
        let got: Rc<Cell<u64>> = Rc::default();
        let g = got.clone();
        sql.read(&mut sim, k, Box::new(move |_, v| g.set(v)));
        sim.run(&mut ());
        assert!(got.get() >= 1, "key {k} lost its committed update");
    }
}

#[test]
fn mongo_without_journal_loses_writes_with_journal_keeps_them() {
    // Paper configuration: no journal → a crash reverts to the load image.
    let mut sim: S = Sim::new();
    let plain = MongoCluster::build(&mut sim, &params(), Sharding::Hash);
    plain.load(5_000);
    for k in 0..100u64 {
        plain.write(&mut sim, k, false, Box::new(|_, _| {}));
    }
    sim.run(&mut ());
    plain.simulate_crash_and_recover();
    let mut lost = 0;
    for k in 0..100u64 {
        let shard = plain.shard_of(k);
        if plain.mongods[shard].borrow().docs.get(&k) == Some(&0) {
            lost += 1;
        }
    }
    assert_eq!(lost, 100, "without a journal every write must be lost");

    // Journaled configuration: flushed writes replay.
    let mut sim2: S = Sim::new();
    let journaled = MongoCluster::build(&mut sim2, &params(), Sharding::Hash);
    journaled.load(5_000);
    journaled.journaled.set(true);
    for k in 0..100u64 {
        journaled.write(&mut sim2, k, false, Box::new(|_, _| {}));
    }
    sim2.run(&mut ());
    journaled.simulate_crash_and_recover();
    let mut kept = 0;
    for k in 0..100u64 {
        let shard = journaled.shard_of(k);
        if journaled.mongods[shard].borrow().docs.get(&k) == Some(&1) {
            kept += 1;
        }
    }
    assert_eq!(kept, 100, "journal-flushed writes must survive");
}

#[test]
fn recovery_restores_consistency_under_mixed_traffic() {
    // Mixed updates + inserts on SQL, crash, recover: reads agree with the
    // acknowledged history (inserts included).
    let mut sim: S = Sim::new();
    let sql = SqlCluster::build(&mut sim, &params());
    sql.load(1_000);
    for k in 0..50u64 {
        sql.update(&mut sim, k, Box::new(|_, _| {}));
        sql.update(&mut sim, k, Box::new(|_, _| {})); // version 2
    }
    for k in 1_000..1_020u64 {
        sql.insert(&mut sim, k, Box::new(|_, _| {}));
    }
    sim.run(&mut ());
    sql.simulate_crash_and_recover();

    let node_of = |k: u64| elephants::sqlengine::sharded::shard_of(k, sql.nodes.len());
    for k in 0..50u64 {
        let v = sql.nodes[node_of(k)].borrow().rows.get(&k).copied();
        assert_eq!(v, Some(2), "key {k} must recover to version 2");
    }
    for k in 1_000..1_020u64 {
        let v = sql.nodes[node_of(k)].borrow().rows.get(&k).copied();
        assert!(v.is_some(), "inserted key {k} must survive recovery");
    }
}
