//! The central correctness property of the reproduction: for every one of
//! the 22 TPC-H queries, the Hive engine, the PDW engine, and the
//! single-node reference executor produce identical answers on the same
//! generated data — so the performance comparison compares equals.

use elephants::cluster::Params;
use elephants::hive::{load_warehouse, HiveEngine};
use elephants::pdw::{load_pdw, PdwEngine};
use elephants::relational::testing::assert_rows_match;
use elephants::relational::execute;
use elephants::tpch::{generate, GenConfig};

const SIM_SCALE: f64 = 0.008;
const K: f64 = 250.0 / 0.008;

fn engines() -> (HiveEngine, PdwEngine, elephants::relational::Catalog) {
    let catalog = generate(&GenConfig::new(SIM_SCALE));
    let params = Params::paper_dss().scaled(K);
    let (warehouse, _) = load_warehouse(&catalog, &params, None).expect("hive load");
    let (pdw_cat, _) = load_pdw(&catalog, &params);
    (HiveEngine::new(warehouse), PdwEngine::new(pdw_cat), catalog)
}

#[test]
fn all_22_queries_agree_across_engines() {
    let (hive, pdw, catalog) = engines();
    for q in 1..=elephants::tpch::QUERY_COUNT {
        let plan = elephants::tpch::query(q);
        let (_, reference) = execute(&plan, &catalog);
        let hive_run = hive.run_query(&plan).unwrap_or_else(|e| {
            panic!("hive failed Q{q}: {e}");
        });
        assert_rows_match(&format!("hive Q{q}"), &hive_run.rows, &reference);
        let pdw_run = pdw.run_query(&plan);
        assert_rows_match(&format!("pdw Q{q}"), &pdw_run.rows, &reference);
        // And the headline: PDW is faster on every query (Table 3 shows no
        // exception at any scale factor).
        assert!(
            pdw_run.total_secs < hive_run.total_secs,
            "Q{q}: pdw {:.0}s must beat hive {:.0}s",
            pdw_run.total_secs,
            hive_run.total_secs
        );
    }
}

/// The engines' strategy choices are data-dependent (map-join thresholds,
/// bucketing, chain ordering); equality must hold at other sim scales too,
/// not just the one the main test uses.
#[test]
fn representative_queries_agree_at_a_second_scale() {
    let catalog = generate(&GenConfig::new(0.02));
    let params = Params::paper_dss().scaled(16000.0 / 0.02);
    let (warehouse, _) = load_warehouse(&catalog, &params, None).expect("hive load");
    let (pdw_cat, _) = load_pdw(&catalog, &params);
    let hive = HiveEngine::new(warehouse);
    let pdw = PdwEngine::new(pdw_cat);
    for q in [1usize, 5, 12, 17, 21, 22] {
        let plan = elephants::tpch::query(q);
        let (_, reference) = execute(&plan, &catalog);
        let h = hive.run_query(&plan).expect("hive");
        assert_rows_match(&format!("hive Q{q} @0.02"), &h.rows, &reference);
        let p = pdw.run_query(&plan);
        assert_rows_match(&format!("pdw Q{q} @0.02"), &p.rows, &reference);
    }
}

#[test]
fn ordered_outputs_respect_order_by() {
    // Q1's ORDER BY (returnflag, linestatus) must hold row-for-row on
    // every engine, not just as a set.
    let (hive, pdw, catalog) = engines();
    let plan = elephants::tpch::query(1);
    let (_, reference) = execute(&plan, &catalog);
    let h = hive.run_query(&plan).expect("hive");
    let p = pdw.run_query(&plan);
    assert!(elephants::relational::testing::rows_approx_eq_ordered(
        &h.rows, &reference, 1e-9
    ));
    assert!(elephants::relational::testing::rows_approx_eq_ordered(
        &p.rows, &reference, 1e-9
    ));
}
