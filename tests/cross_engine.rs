//! The central correctness property of the reproduction: for every one of
//! the 22 TPC-H queries, the Hive engine, the PDW engine, and the
//! single-node reference executor produce identical answers on the same
//! generated data — so the performance comparison compares equals.

use elephants::cluster::Params;
use elephants::hive::{load_warehouse, HiveEngine};
use elephants::pdw::{load_pdw, PdwEngine};
use elephants::relational::execute;
use elephants::relational::testing::assert_rows_match;
use elephants::tpch::{generate, GenConfig};

const SIM_SCALE: f64 = 0.008;
const K: f64 = 250.0 / 0.008;

fn engines() -> (HiveEngine, PdwEngine, elephants::relational::Catalog) {
    let catalog = generate(&GenConfig::new(SIM_SCALE));
    let params = Params::paper_dss().scaled(K);
    let (warehouse, _) = load_warehouse(&catalog, &params, None).expect("hive load");
    let (pdw_cat, _) = load_pdw(&catalog, &params);
    (HiveEngine::new(warehouse), PdwEngine::new(pdw_cat), catalog)
}

#[test]
fn all_22_queries_agree_across_engines() {
    let (hive, pdw, catalog) = engines();
    for q in 1..=elephants::tpch::QUERY_COUNT {
        let plan = elephants::tpch::query(q);
        let (_, reference) = execute(&plan, &catalog);
        let hive_run = hive.run_query(&plan).unwrap_or_else(|e| {
            panic!("hive failed Q{q}: {e}");
        });
        assert_rows_match(&format!("hive Q{q}"), &hive_run.rows, &reference);
        let pdw_run = pdw.run_query(&plan);
        assert_rows_match(&format!("pdw Q{q}"), &pdw_run.rows, &reference);
        // And the headline: PDW is faster on every query (Table 3 shows no
        // exception at any scale factor).
        assert!(
            pdw_run.total_secs < hive_run.total_secs,
            "Q{q}: pdw {:.0}s must beat hive {:.0}s",
            pdw_run.total_secs,
            hive_run.total_secs
        );
    }
}

/// The engines' strategy choices are data-dependent (map-join thresholds,
/// bucketing, chain ordering); equality must hold at other sim scales too,
/// not just the one the main test uses.
#[test]
fn representative_queries_agree_at_a_second_scale() {
    let catalog = generate(&GenConfig::new(0.02));
    let params = Params::paper_dss().scaled(16000.0 / 0.02);
    let (warehouse, _) = load_warehouse(&catalog, &params, None).expect("hive load");
    let (pdw_cat, _) = load_pdw(&catalog, &params);
    let hive = HiveEngine::new(warehouse);
    let pdw = PdwEngine::new(pdw_cat);
    for q in [1usize, 5, 12, 17, 21, 22] {
        let plan = elephants::tpch::query(q);
        let (_, reference) = execute(&plan, &catalog);
        let h = hive.run_query(&plan).expect("hive");
        assert_rows_match(&format!("hive Q{q} @0.02"), &h.rows, &reference);
        let p = pdw.run_query(&plan);
        assert_rows_match(&format!("pdw Q{q} @0.02"), &p.rows, &reference);
    }
}

/// The DES port moved PDW's step makespans from closed-form arithmetic
/// into `cluster::exec` phases on the simkit event loop. Timing is allowed
/// to change; answers are not: rows must be byte-identical run-to-run and
/// match the reference executor, and the span trace must be consistent
/// with the reported totals.
#[test]
fn pdw_answers_unchanged_by_des_port() {
    let (_, pdw, catalog) = engines();
    for q in [1usize, 5, 6, 19] {
        let plan = elephants::tpch::query(q);
        let (_, reference) = execute(&plan, &catalog);
        let a = pdw.run_query(&plan);
        let b = pdw.run_query(&plan);
        // Byte-identical rows across runs: execution on the DES is
        // deterministic and never perturbs the data path.
        assert_eq!(
            format!("{:?}", a.rows),
            format!("{:?}", b.rows),
            "Q{q}: PDW rows must be byte-identical across runs"
        );
        assert_eq!(a.total_secs, b.total_secs, "Q{q}: timing is deterministic");
        assert_rows_match(&format!("pdw Q{q} (DES path)"), &a.rows, &reference);
        // StepReport is a derived view over the trace: same count, same
        // durations, and the step sum is the query total (steps serial).
        assert_eq!(a.steps.len(), a.trace.spans.len());
        let step_sum: f64 = a.steps.iter().map(|s| s.secs).sum();
        assert!(
            (step_sum - a.total_secs).abs() < 1e-6 * a.total_secs.max(1.0),
            "Q{q}: serial steps must sum to the total ({step_sum} vs {})",
            a.total_secs
        );
        assert!(
            !a.resources.is_empty() && a.resources.iter().any(|r| r.busy_secs > 0.0),
            "Q{q}: resource reports must show work"
        );
    }
}

/// The substrate port moved MapReduce's map/shuffle/reduce timing from
/// engine-private resource bookkeeping onto `cluster::exec` phases — the
/// same code path PDW uses. As with the PDW port, timing may shift; Hive
/// answers may not: rows must be byte-identical run-to-run and match the
/// reference executor for every query the repro binaries emit, and every
/// job's span trace must carry the canonical map/shuffle/reduce phases
/// consistent with the reported phase boundaries.
#[test]
fn hive_answers_unchanged_by_substrate_port() {
    let (hive, _, catalog) = engines();
    for q in 1..=elephants::tpch::QUERY_COUNT {
        let plan = elephants::tpch::query(q);
        let (_, reference) = execute(&plan, &catalog);
        let a = hive.run_query(&plan).expect("hive");
        let b = hive.run_query(&plan).expect("hive");
        assert_eq!(
            format!("{:?}", a.rows),
            format!("{:?}", b.rows),
            "Q{q}: Hive rows must be byte-identical across runs"
        );
        assert_eq!(a.total_secs, b.total_secs, "Q{q}: timing is deterministic");
        assert_rows_match(&format!("hive Q{q} (substrate path)"), &a.rows, &reference);
        let mut real_jobs = 0;
        for job in &a.jobs {
            if job.report.spans.is_empty() {
                // Fixed-cost charges (fs-merge, planner overhead) are not MR
                // jobs and carry no trace.
                continue;
            }
            real_jobs += 1;
            let names: Vec<&str> = job.report.spans.iter().map(|s| s.name.as_str()).collect();
            assert_eq!(
                names,
                ["map", "shuffle", "reduce"],
                "Q{q} job {}: every job reports the three phases",
                job.label
            );
            // Spans carry the shared executor's absolute time; the report's
            // phase boundaries are job-relative. `start_secs` reconciles.
            assert!(
                (elephants::simkit::as_secs(job.report.spans[0].end)
                    - (job.report.start_secs + job.report.map_done))
                    .abs()
                    < 1e-9
                    && (elephants::simkit::as_secs(job.report.spans[2].end)
                        - (job.report.start_secs + job.report.total))
                        .abs()
                        < 1e-9,
                "Q{q} job {}: span ends must match the phase boundaries",
                job.label
            );
        }
        assert!(real_jobs > 0, "Q{q}: at least one traced MR job");
        let util = a.util();
        assert!(
            util.disk_busy > 0.0 || util.cpu_busy > 0.0,
            "Q{q}: the shared substrate must report resource time"
        );
    }
}

#[test]
fn ordered_outputs_respect_order_by() {
    // Q1's ORDER BY (returnflag, linestatus) must hold row-for-row on
    // every engine, not just as a set.
    let (hive, pdw, catalog) = engines();
    let plan = elephants::tpch::query(1);
    let (_, reference) = execute(&plan, &catalog);
    let h = hive.run_query(&plan).expect("hive");
    let p = pdw.run_query(&plan);
    assert!(elephants::relational::testing::rows_approx_eq_ordered(
        &h.rows, &reference, 1e-9
    ));
    assert!(elephants::relational::testing::rows_approx_eq_ordered(
        &p.rows, &reference, 1e-9
    ));
}

/// The vectorized executor is a drop-in for the row executor: identical
/// output — including accumulation order, so exact equality, not just
/// multiset equality — on every TPC-H query.
#[test]
fn vectorized_executor_matches_row_executor_on_all_22() {
    let catalog = generate(&GenConfig::new(SIM_SCALE));
    for q in 1..=elephants::tpch::QUERY_COUNT {
        let plan = elephants::tpch::query(q);
        let (row_schema, row_out) = execute(&plan, &catalog);
        let (batch_schema, batch_out) =
            elephants::relational::batch::execute_batch(&plan, &catalog);
        assert_eq!(row_schema, batch_schema, "Q{q}: schemas diverge");
        assert_eq!(row_out, batch_out, "Q{q}: vectorized output diverges");
    }
}

/// Both engines on colblock storage answer every query identically to the
/// reference executor, and block-level min/max pruning demonstrably skips
/// blocks where the predicates allow it. Hive prunes only predicates
/// written against the clustered column (it derives no implied
/// predicates — the paper's §3.3.4.1 gap), so Q19 prunes there only via
/// PDW's optimizer, which pushes the implied `p_size` bound into the part
/// scan.
#[test]
fn colblock_engines_agree_and_prune() {
    let catalog = generate(&GenConfig::new(SIM_SCALE));
    let params = Params::paper_dss().scaled(K);
    let (warehouse, _) = elephants::hive::load_warehouse_fmt(
        &catalog,
        &params,
        None,
        elephants::hive::StorageFormat::ColBlock,
    )
    .expect("hive colblock load");
    let hive = HiveEngine::new(warehouse);
    let (pdw_cat, _) = load_pdw(&catalog, &params);
    let pdw = PdwEngine::with_colblock(pdw_cat);
    for q in 1..=elephants::tpch::QUERY_COUNT {
        let plan = elephants::tpch::query(q);
        let (_, reference) = execute(&plan, &catalog);
        let h = hive.run_query(&plan).unwrap_or_else(|e| {
            panic!("hive colblock failed Q{q}: {e}");
        });
        assert_rows_match(&format!("hive colblock Q{q}"), &h.rows, &reference);
        let p = pdw.run_query(&plan);
        assert_rows_match(&format!("pdw colblock Q{q}"), &p.rows, &reference);
        let (hs, ps) = (h.scan_stats, p.scan_stats);
        assert!(
            hs.blocks_pruned < hs.blocks_total && ps.blocks_pruned < ps.blocks_total,
            "Q{q}: pruning must never eat the whole table"
        );
        if [6usize, 12].contains(&q) {
            assert!(hs.blocks_pruned > 0, "hive Q{q} should skip blocks: {hs:?}");
        }
        if [6usize, 12, 19].contains(&q) {
            assert!(ps.blocks_pruned > 0, "pdw Q{q} should skip blocks: {ps:?}");
        }
    }
}
