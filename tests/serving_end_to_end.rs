//! End-to-end YCSB sanity across all systems and workloads, plus the
//! qualitative relationships Figures 2-6 rest on.

use elephants::core::serving::{run_point, ServingConfig, SystemKind};
use elephants::ycsb::workload::{OpType, Workload};

fn cfg() -> ServingConfig {
    ServingConfig {
        k: 10_000.0,
        warmup_secs: 1.5,
        measure_secs: 4.0,
        threads: 200,
        seed: 11,
    }
}

#[test]
fn every_system_serves_every_workload_at_modest_load() {
    let cfg = cfg();
    for system in SystemKind::all() {
        for w in Workload::all() {
            // Scans are drastically more expensive (Mongo-CS touches all
            // 128 shards per scan), so "modest" differs per workload.
            let target = if w == Workload::E { 100.0 } else { 4_000.0 };
            let p = run_point(&cfg, system, w, target);
            assert!(
                p.achieved_ops > target * 0.5,
                "{} on workload {} achieved only {:.0}/{}",
                system.label(),
                w.name(),
                p.achieved_ops,
                target
            );
            assert!(!p.crashed, "{} crashed on {}", system.label(), w.name());
            for (ty, lat) in &p.latency_ms {
                assert!(*lat > 0.0, "{:?} latency must be positive", ty);
                assert!(*lat < 5_000.0, "{:?} latency insane: {lat} ms", ty);
            }
        }
    }
}

/// Figure 2's relationship: on the disk-bound read-only workload, SQL-CS
/// sustains at least as much as either MongoDB flavour at a saturating
/// target, with lower read latency.
#[test]
fn sql_cs_wins_read_only_saturation() {
    let cfg = cfg();
    let target = 100_000.0;
    let sql = run_point(&cfg, SystemKind::SqlCs, Workload::C, target);
    let mas = run_point(&cfg, SystemKind::MongoAs, Workload::C, target);
    let mcs = run_point(&cfg, SystemKind::MongoCs, Workload::C, target);
    assert!(
        sql.achieved_ops >= mas.achieved_ops && sql.achieved_ops >= mcs.achieved_ops,
        "SQL {} vs Mongo-AS {} vs Mongo-CS {}",
        sql.achieved_ops,
        mas.achieved_ops,
        mcs.achieved_ops
    );
    let rl = |p: &elephants::core::serving::SweepPoint| p.latency(OpType::Read).unwrap();
    assert!(
        rl(&sql) <= rl(&mas) && rl(&sql) <= rl(&mcs),
        "SQL reads must be cheapest at saturation: {} vs {} vs {}",
        rl(&sql),
        rl(&mas),
        rl(&mcs)
    );
}

/// Figure 6's relationship: range partitioning gives Mongo-AS the scan
/// crown — higher achieved scan throughput than both hash-sharded systems
/// at a saturating target.
#[test]
fn mongo_as_wins_scans() {
    let cfg = cfg();
    let target = 6_000.0;
    let mas = run_point(&cfg, SystemKind::MongoAs, Workload::E, target);
    let sql = run_point(&cfg, SystemKind::SqlCs, Workload::E, target);
    let mcs = run_point(&cfg, SystemKind::MongoCs, Workload::E, target);
    assert!(
        mas.achieved_ops > sql.achieved_ops && mas.achieved_ops > mcs.achieved_ops,
        "Mongo-AS {} vs SQL {} vs Mongo-CS {}",
        mas.achieved_ops,
        sql.achieved_ops,
        mcs.achieved_ops
    );
}

/// All three systems agree on what a range scan returns (the range
/// semantics of workload E), whatever their sharding scheme.
#[test]
fn scan_results_agree_across_systems() {
    use elephants::docstore::{MongoCluster, Sharding};
    use elephants::simkit::Sim;
    use elephants::sqlengine::SqlCluster;
    use std::cell::Cell;
    use std::rc::Rc;

    let cfg = cfg();
    let n = cfg.n_records();
    let params = cfg.params();
    let cases: Vec<(&str, u64)> = vec![("mid", n / 2), ("near-end", n - 10), ("start", 0)];
    for (label, start) in cases {
        let len = 100usize;
        let expect = (n - start).min(len as u64);

        let mut sim: Sim<()> = Sim::new();
        let sql = SqlCluster::build(&mut sim, &params);
        sql.load(n);
        let got: Rc<Cell<u64>> = Rc::default();
        let g = got.clone();
        sql.scan(&mut sim, start, len, Box::new(move |_, v| g.set(v)));
        sim.run(&mut ());
        assert_eq!(got.get(), expect, "SQL-CS scan {label}");

        for sharding in [Sharding::Range, Sharding::Hash] {
            let mut sim2: Sim<()> = Sim::new();
            let m = MongoCluster::build(&mut sim2, &params, sharding);
            m.load(n);
            let got2: Rc<Cell<u64>> = Rc::default();
            let g2 = got2.clone();
            m.scan(&mut sim2, start, len, Box::new(move |_, v| g2.set(v)));
            sim2.run(&mut ());
            assert_eq!(got2.get(), expect, "{sharding:?} scan {label}");
        }
    }
}

/// The whole pipeline is a deterministic simulation: identical configs
/// yield bit-identical results (the property resumable research depends
/// on).
#[test]
fn runs_are_deterministic() {
    let cfg = cfg();
    let a = run_point(&cfg, SystemKind::SqlCs, Workload::A, 20_000.0);
    let b = run_point(&cfg, SystemKind::SqlCs, Workload::A, 20_000.0);
    assert_eq!(a.achieved_ops, b.achieved_ops);
    for (ty, lat) in &a.latency_ms {
        assert_eq!(Some(lat), b.latency_ms.get(ty), "{ty:?} latency differs");
    }
    let m1 = run_point(&cfg, SystemKind::MongoAs, Workload::E, 2_000.0);
    let m2 = run_point(&cfg, SystemKind::MongoAs, Workload::E, 2_000.0);
    assert_eq!(m1.achieved_ops, m2.achieved_ops);
}

/// §3.4.3's lock observation: under the update-heavy workload A the
/// mongods spend a sizable fraction of time holding the global write lock;
/// under read-heavy B the fraction is much smaller.
#[test]
fn write_lock_fraction_tracks_update_share() {
    use elephants::docstore::{MongoCluster, Sharding};
    use elephants::simkit::Sim;
    use elephants::ycsb::driver::{run_workload, RunConfig};

    let cfg = cfg();
    let mut fractions = Vec::new();
    for w in [Workload::A, Workload::B] {
        let params = cfg.params();
        let mut sim: Sim<()> = Sim::new();
        let m = MongoCluster::build(&mut sim, &params, Sharding::Hash);
        m.load(cfg.n_records());
        let rc = RunConfig {
            target_ops_per_sec: 20_000.0,
            threads: cfg.threads,
            warmup_secs: cfg.warmup_secs,
            measure_secs: cfg.measure_secs,
            seed: cfg.seed,
            n_records: cfg.n_records(),
            max_scan_len: 1000,
        };
        run_workload(&mut sim, m.clone(), w, &rc);
        fractions.push(m.write_lock_fraction(cfg.warmup_secs + cfg.measure_secs));
    }
    assert!(
        fractions[0] > fractions[1] * 3.0,
        "A's lock time {:.3} should dwarf B's {:.3}",
        fractions[0],
        fractions[1]
    );
}
