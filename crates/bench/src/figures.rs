//! Shared runner for the YCSB figures (2–6): sweep the paper's target
//! throughputs for all three systems, print achieved throughput and
//! per-operation-type mean latency.

use elephants_core::report::TableBuilder;
use elephants_core::serving::{run_point, ServingConfig, SystemKind};
use ycsb::workload::{OpType, Workload};

/// Run one figure: `targets` in ops/sec, reporting latencies for `ops`.
/// Renders markdown, or CSV when the process args contain `--csv`.
pub fn run_figure(
    title: &str,
    workload: Workload,
    targets: &[f64],
    ops: &[OpType],
    cfg: &ServingConfig,
) -> String {
    let t = run_figure_table(title, workload, targets, ops, cfg);
    if std::env::args().any(|a| a == "--csv") {
        t.to_csv()
    } else {
        t.to_markdown()
    }
}

/// The underlying table for custom rendering.
pub fn run_figure_table(
    title: &str,
    workload: Workload,
    targets: &[f64],
    ops: &[OpType],
    cfg: &ServingConfig,
) -> TableBuilder {
    let mut header = vec![
        "System".to_string(),
        "Target ops/s".to_string(),
        "Achieved".to_string(),
    ];
    for op in ops {
        header.push(format!("{} latency (ms)", op.label()));
    }
    header.push("Crashed".to_string());
    let headers: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TableBuilder::new(title, &headers);

    for system in SystemKind::all() {
        for &target in targets {
            eprintln!("  {} @ target {:.0} ops/s ...", system.label(), target);
            let p = run_point(cfg, system, workload, target);
            let mut row = vec![
                system.label().to_string(),
                format!("{target:.0}"),
                format!("{:.0}", p.achieved_ops),
            ];
            for op in ops {
                row.push(match p.latency(*op) {
                    Some(l) => {
                        let se = p.latency_stderr_ms.get(op).copied().unwrap_or(0.0);
                        format!("{l:.1} ±{se:.1}")
                    }
                    None => "--".to_string(),
                });
            }
            row.push(if p.crashed {
                "CRASH".into()
            } else {
                String::new()
            });
            t.row(row);
            // Once a system crashes at a target, higher targets only crash
            // harder (the paper stops plotting Mongo-AS there too).
            if p.crashed {
                break;
            }
        }
    }
    t
}

/// Parse the standard figure-binary arguments into a config.
pub fn figure_config(args: &[String]) -> ServingConfig {
    ServingConfig {
        k: crate::arg_f64(args, "--k", 2_500.0),
        warmup_secs: crate::arg_f64(args, "--warmup", 3.0),
        measure_secs: crate::arg_f64(args, "--measure", 6.0),
        threads: crate::arg_usize(args, "--threads", 800),
        seed: 42,
    }
}
