//! Shared runner for the YCSB figures (2–6): sweep the paper's target
//! throughputs for all three systems, print achieved throughput and
//! per-operation-type mean latency.
//!
//! Passing `--timeline` to a figure binary additionally attaches a passive
//! windowed-latency observer to every point and appends per-window
//! p50/p95/p99 tables (with per-shard p95 spread) after the figure — the
//! figure numbers themselves are byte-identical either way.

use elephants_core::report::TableBuilder;
use elephants_core::serving::{run_point, run_point_profiled, ServingConfig, SystemKind};
use ycsb::workload::{OpType, Workload};

/// Windows the measurement interval is cut into for `--timeline` profiles.
const PROFILE_WINDOWS: usize = 4;

/// Run one figure: `targets` in ops/sec, reporting latencies for `ops`.
/// Renders markdown, or CSV when the process args contain `--csv`; appends
/// windowed latency profiles when they contain `--timeline`.
pub fn run_figure(
    title: &str,
    workload: Workload,
    targets: &[f64],
    ops: &[OpType],
    cfg: &ServingConfig,
) -> String {
    let timeline = std::env::args().any(|a| a == "--timeline");
    let (t, profiles) = figure_inner(title, workload, targets, ops, cfg, timeline);
    let mut out = if std::env::args().any(|a| a == "--csv") {
        t.to_csv()
    } else {
        t.to_markdown()
    };
    out.push_str(&profiles);
    out
}

/// The underlying table for custom rendering.
pub fn run_figure_table(
    title: &str,
    workload: Workload,
    targets: &[f64],
    ops: &[OpType],
    cfg: &ServingConfig,
) -> TableBuilder {
    figure_inner(title, workload, targets, ops, cfg, false).0
}

fn figure_inner(
    title: &str,
    workload: Workload,
    targets: &[f64],
    ops: &[OpType],
    cfg: &ServingConfig,
    timeline: bool,
) -> (TableBuilder, String) {
    let mut header = vec![
        "System".to_string(),
        "Target ops/s".to_string(),
        "Achieved".to_string(),
    ];
    for op in ops {
        header.push(format!("{} latency (ms)", op.label()));
    }
    header.push("Crashed".to_string());
    let headers: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TableBuilder::new(title, &headers);
    let mut profiles = String::new();

    for system in SystemKind::all() {
        for &target in targets {
            eprintln!("  {} @ target {:.0} ops/s ...", system.label(), target);
            let p = if timeline {
                let (p, wl) = run_point_profiled(cfg, system, workload, target, PROFILE_WINDOWS);
                profiles.push('\n');
                profiles.push_str(&wl.render(&format!(
                    "{} @ target {:.0} ops/s",
                    system.label(),
                    target
                )));
                p
            } else {
                run_point(cfg, system, workload, target)
            };
            let mut row = vec![
                system.label().to_string(),
                format!("{target:.0}"),
                format!("{:.0}", p.achieved_ops),
            ];
            for op in ops {
                row.push(match p.latency(*op) {
                    Some(l) => {
                        let se = p.latency_stderr_ms.get(op).copied().unwrap_or(0.0);
                        format!("{l:.1} ±{se:.1}")
                    }
                    None => "--".to_string(),
                });
            }
            row.push(if p.crashed {
                "CRASH".into()
            } else {
                String::new()
            });
            t.row(row);
            // Once a system crashes at a target, higher targets only crash
            // harder (the paper stops plotting Mongo-AS there too).
            if p.crashed {
                break;
            }
        }
    }
    (t, profiles)
}

/// Parse the standard figure-binary arguments into a config.
pub fn figure_config(args: &[String]) -> ServingConfig {
    ServingConfig {
        k: crate::arg_f64(args, "--k", 2_500.0),
        warmup_secs: crate::arg_f64(args, "--warmup", 3.0),
        measure_secs: crate::arg_f64(args, "--measure", 6.0),
        threads: crate::arg_usize(args, "--threads", 800),
        seed: 42,
    }
}
