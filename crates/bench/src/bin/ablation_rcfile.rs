//! Ablation — storage format (§3.3.4.3 point 1): RCFile's compression
//! saves I/O but costs decode CPU. Compare Hive query times with RCFile vs
//! plain text storage.

use cluster::Params;
use elephants_core::report::TableBuilder;
use hive::{load_warehouse_fmt, HiveEngine, StorageFormat};
use tpch::{generate, GenConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sf = bench::arg_f64(&args, "--sf", 0.01);
    let paper = bench::arg_f64(&args, "--paper", 250.0);
    let cat = generate(&GenConfig::new(sf));
    let params = Params::paper_dss().scaled(paper / sf);

    let mut t = TableBuilder::new(
        format!("Ablation: RCFile vs text @ {paper:.0} GB (Hive seconds)"),
        &["Query", "RCFile", "Text", "Text/RCFile"],
    );
    let (wr, _) = load_warehouse_fmt(&cat, &params, None, StorageFormat::RcFile).unwrap();
    let (wt, _) = load_warehouse_fmt(&cat, &params, None, StorageFormat::Text).unwrap();
    let er = HiveEngine::new(wr);
    let et = HiveEngine::new(wt);
    for q in [1usize, 3, 6, 12, 19] {
        let plan = tpch::query(q);
        let a = er.run_query(&plan).unwrap().total_secs;
        let b = et.run_query(&plan).unwrap().total_secs;
        t.row(vec![
            format!("Q{q}"),
            format!("{a:.0}"),
            format!("{b:.0}"),
            format!("{:.2}", b / a),
        ]);
    }
    println!("{}", t.to_markdown());
    println!(
        "RCFile reads fewer bytes (compressed, column-pruned) but decodes at ~70 MB/s;\n\
         text reads everything but scans cheaply — the trade the paper discusses.\n\
         See results/ablation_columnar.txt for the three-way ablation that adds\n\
         a min/max-pruning columnar block format on both engines."
    );
}
