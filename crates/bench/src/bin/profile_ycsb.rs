//! Windowed serving-side latency profile: one YCSB point per system with a
//! passive windowed-latency observer attached, reporting p50/p95/p99 **over
//! time** (fixed windows across the measurement interval) and the per-shard
//! p95 spread — the skew a single aggregate percentile hides.
//!
//! ```text
//! cargo run --release -p bench --bin profile_ycsb -- \
//!     [--workload A] [--target 40000] [--windows 4] [--k 2500]
//! ```
//!
//! The observer is passive: the same point run through `repro_fig*` yields
//! byte-identical throughput/latency numbers.

use bench::figures::figure_config;
use elephants_core::serving::{run_point_profiled, SystemKind};
use ycsb::workload::Workload;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = figure_config(&args);
    let target = bench::arg_f64(&args, "--target", 40e3);
    let windows = bench::arg_usize(&args, "--windows", 4);
    let workload = match bench::arg_str(&args, "--workload").as_deref() {
        None | Some("A") | Some("a") => Workload::A,
        Some("B") | Some("b") => Workload::B,
        Some("C") | Some("c") => Workload::C,
        Some("D") | Some("d") => Workload::D,
        Some("E") | Some("e") => Workload::E,
        Some(other) => panic!("unknown workload {other}"),
    };

    println!(
        "# Windowed latency profile — YCSB workload {:?} @ target {target:.0} ops/s",
        workload
    );
    println!(
        "# ({windows} windows over the {:.0}s measurement interval; shard p95 = min–max over shards)",
        cfg.measure_secs
    );
    for system in SystemKind::all() {
        eprintln!("  {} ...", system.label());
        let (point, wl) = run_point_profiled(&cfg, system, workload, target, windows);
        println!();
        print!(
            "{}",
            wl.render(&format!(
                "{} — achieved {:.0} ops/s{}",
                system.label(),
                point.achieved_ops,
                if point.crashed { " (CRASHED)" } else { "" }
            ))
        );
    }
}
