//! Windowed serving-side latency profile: one YCSB point per system with a
//! passive windowed-latency observer attached, reporting p50/p95/p99 **over
//! time** (fixed windows across the measurement interval) and the per-shard
//! p95 spread — the skew a single aggregate percentile hides.
//!
//! ```text
//! cargo run --release -p bench --bin profile_ycsb -- \
//!     [--workload A] [--target 40000] [--windows 4] [--k 2500]
//!     [--tenants 4] [--slo]
//! ```
//!
//! The observer is passive: the same point run through `repro_fig*` yields
//! byte-identical throughput/latency numbers.
//!
//! `--tenants N` reruns the point with client threads partitioned into N
//! tenants feeding the streaming metric registry; the windowed section is
//! then *derived* from the registry — bit-identical to the direct fold, so
//! the default output doesn't change — and a per-tenant ops table is
//! appended. `--slo` (with `--tenants`) also appends per-tenant SLO burn
//! rates (same policies as the `slo_report` bin).

use bench::figures::figure_config;
use elephants_core::serving::{run_point_profiled, run_point_profiled_tenants, SystemKind};
use obs::SloPolicy;
use ycsb::workload::Workload;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = figure_config(&args);
    let target = bench::arg_f64(&args, "--target", 40e3);
    let windows = bench::arg_usize(&args, "--windows", 4);
    let tenants = bench::arg_usize(&args, "--tenants", 0) as u32;
    let slo = bench::has_flag(&args, "--slo");
    let workload = match bench::arg_str(&args, "--workload").as_deref() {
        None | Some("A") | Some("a") => Workload::A,
        Some("B") | Some("b") => Workload::B,
        Some("C") | Some("c") => Workload::C,
        Some("D") | Some("d") => Workload::D,
        Some("E") | Some("e") => Workload::E,
        Some(other) => panic!("unknown workload {other}"),
    };

    println!(
        "# Windowed latency profile — YCSB workload {:?} @ target {target:.0} ops/s",
        workload
    );
    println!(
        "# ({windows} windows over the {:.0}s measurement interval; shard p95 = min–max over shards)",
        cfg.measure_secs
    );
    for system in SystemKind::all() {
        eprintln!("  {} ...", system.label());
        let (point, wl, reg) = if tenants > 0 {
            let (p, w, r) =
                run_point_profiled_tenants(&cfg, system, workload, target, windows, tenants);
            (p, w, Some(r))
        } else {
            let (p, w) = run_point_profiled(&cfg, system, workload, target, windows);
            (p, w, None)
        };
        println!();
        print!(
            "{}",
            wl.render(&format!(
                "{} — achieved {:.0} ops/s{}",
                system.label(),
                point.achieved_ops,
                if point.crashed { " (CRASHED)" } else { "" }
            ))
        );
        let Some(reg) = reg else { continue };
        println!("per-tenant ops ({tenants} tenants, client threads round-robin):");
        for (engine, op) in reg.ops() {
            for t in reg.tenants(engine, op) {
                let ops: u64 = (0..windows as u64)
                    .map(|w| reg.tenant_window(engine, op, Some(t), w).count())
                    .sum();
                println!("  tenant {t} {op:<8} {ops:>8}");
            }
        }
        if slo {
            let policies = [
                SloPolicy::new("read", simkit::millis(25.0), 0.95),
                SloPolicy::new("update", simkit::millis(30.0), 0.99),
            ];
            let evals = obs::slo::evaluate(&reg, system.label(), &policies, 2);
            print!("{}", obs::slo::render(system.label(), &evals));
        }
    }
}
