//! Extension — the fault-tolerance trade-off the paper's introduction
//! frames but never measures: the MapReduce systems "assume that
//! hardware/software failures are common, and incorporate mechanisms to
//! deal with such failures" (task-level retry), while a parallel RDBMS
//! restarts the whole query.
//!
//! Injects a per-map-task failure probability into Hive and charges PDW
//! the expected cost of query restarts under a matched per-node MTBF.

use cluster::Params;
use elephants_core::report::TableBuilder;
use hive::{load_warehouse, HiveEngine};
use pdw::{load_pdw, PdwEngine};
use tpch::{generate, GenConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sf = bench::arg_f64(&args, "--sf", 0.01);
    let paper = bench::arg_f64(&args, "--paper", 16000.0);
    let q = bench::arg_usize(&args, "--query", 5);

    let cat = generate(&GenConfig::new(sf));
    let params = Params::paper_dss().scaled(paper / sf);
    let plan = tpch::query(q);

    let (pdw_cat, _) = load_pdw(&cat, &params);
    let pdw = PdwEngine::new(pdw_cat);
    let pdw_healthy = pdw.run_query(&plan).total_secs;

    let mut t = TableBuilder::new(
        format!("Extension: fault tolerance on Q{q} @ {paper:.0} GB (seconds)"),
        &[
            "Map-task failure rate",
            "Hive (task retry)",
            "Hive overhead",
            "PDW (query restart, expected)",
            "PDW overhead",
        ],
    );
    let mut measured: Vec<(f64, f64, f64)> = Vec::new();
    for fail in [0.0, 0.01, 0.05, 0.10] {
        let (w, _) = load_warehouse(&cat, &params, None).expect("load");
        let mut hive = HiveEngine::new(w);
        hive.map_failure_fraction = fail;
        let run = hive.run_query(&plan).expect("query");

        // PDW under the same fault process: any task-equivalent failure
        // kills the query; expected time follows a geometric distribution
        // over whole-query attempts. Use the same unit count Hive exposed
        // (its map + reduce tasks) as the per-attempt exposure.
        let n_units: u32 = run
            .jobs
            .iter()
            .map(|j| j.report.n_maps as u32 + j.report.n_reduces as u32)
            .sum();
        let p_clean = (1.0 - fail).powi(n_units.min(10_000) as i32);
        let pdw_expected = if p_clean > 1e-9 {
            pdw_healthy / p_clean
        } else {
            f64::INFINITY
        };
        measured.push((fail, run.total_secs, pdw_expected));
    }
    let hive_base = measured[0].1;
    for (fail, hive_secs, pdw_expected) in measured {
        t.row(vec![
            format!("{:.0}%", fail * 100.0),
            format!("{hive_secs:.0}"),
            format!("+{:.0}%", 100.0 * (hive_secs / hive_base - 1.0)),
            if pdw_expected.is_finite() {
                format!("{pdw_expected:.0}")
            } else {
                "never finishes".to_string()
            },
            if pdw_expected.is_finite() {
                format!("+{:.0}%", 100.0 * (pdw_expected / pdw_healthy - 1.0))
            } else {
                "--".to_string()
            },
        ]);
    }
    println!("{}", t.to_markdown());
    println!(
        "task-level retry degrades gracefully; whole-query restart compounds\n\
         with the number of task-equivalents a long query exposes to failure —\n\
         the availability argument behind the MapReduce design (§1)."
    );
}
