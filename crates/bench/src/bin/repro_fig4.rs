//! Regenerates Figure 4: latency vs throughput for SQL-CS,
//! Mongo-AS and Mongo-CS.

use bench::figures::{figure_config, run_figure};
use ycsb::workload::{OpType, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = figure_config(&args);
    eprintln!("{} records per run (k = {})", cfg.n_records(), cfg.k);
    let out = run_figure(
        "Figure 4 — Workload A: 50% reads, 50% updates",
        Workload::A,
        &[1e3, 2e3, 5e3, 10e3, 20e3, 40e3],
        &[OpType::Read, OpType::Update],
        &cfg,
    );
    println!("{out}");
    println!(
        "paper: lock contention dominates — mongods spend 25-45% of time in the global write lock"
    );
}
