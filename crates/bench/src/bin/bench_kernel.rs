//! Kernel perf-trajectory harness: REAL wall-clock event throughput of
//! the simulation kernel itself, measured against the preserved
//! pre-rework kernel (`bench::legacy`) on the same host in the same
//! process. Output is JSON on stdout (committed as
//! `results/BENCH_kernel.json`, schema-gated but not byte-diff gated:
//! timings are host-dependent by design — see PERFORMANCE.md for how to
//! read the trajectory).
//!
//! Sections of the artifact:
//!   * `workloads` — synthetic kernel stress runs executed on all three
//!     scheduling stacks: the legacy heap kernel (baseline), and the
//!     current kernel under its calendar-queue and binary-heap backends.
//!     `timers` holds a large pending population (the regime where the
//!     legacy heap's O(log n) sifts over fat boxed nodes hurt most);
//!     `queueing` is a closed queueing network hammering the resource
//!     grant/completion path (where the legacy double-Box lived).
//!   * `headline` — the acceptance number: current-kernel default backend
//!     vs legacy, both events/sec recorded.
//!   * `engine_points` — the same kernel doing real work: a PDW TPC-H Q5
//!     phase replay on `ClusterExec` and a YCSB workload-A serving run.
//!     These are the numbers to watch across PRs.
//!   * `fanout` — the parallel sweep runner over per-seed replicas
//!     (serial vs parallel wall-clock; identical results asserted).
//!
//! `--smoke` shrinks every dimension for CI; `--iters N` sets the
//! best-of-N repeat count (default 3).

use std::rc::Rc;
use std::time::Instant;

use bench::{fanout, legacy, meta};
use cluster::{ClusterExec, Params};
use docstore::{MongoCluster, Sharding};
use elephants_core::serving::ServingConfig;
use pdw::{load_pdw, PdwEngine};
use simkit::{SchedulerKind, Sim};
use tpch::{generate, GenConfig};
use ycsb::driver::{run_workload, RunConfig};
use ycsb::workload::Workload;

/// World state shared by the synthetic workloads on every kernel.
struct World {
    fired: u64,
    reschedules_left: u64,
}

/// A boxed event closure for kernel `K` (both kernels box identically).
type Ev<K> = Box<dyn FnOnce(&mut K, &mut World)>;

/// The kernel surface the synthetic workloads need. Implemented by the
/// current simkit kernel and by the preserved legacy baseline, so one
/// workload definition drives both and the comparison cannot drift.
trait Kernel: Sized + 'static {
    type Res: Copy + 'static;
    fn after_boxed(&mut self, delay: u64, f: Ev<Self>);
    fn add_server_pool(&mut self, servers: u32) -> Self::Res;
    fn request(&mut self, r: Self::Res, service: u64, done: Ev<Self>);
    fn drain(&mut self, w: &mut World) -> u64;
    fn events_executed(&self) -> u64;
}

impl Kernel for legacy::Sim<World> {
    type Res = legacy::ResourceId;
    fn after_boxed(&mut self, delay: u64, f: Ev<Self>) {
        self.schedule_in(delay, f);
    }
    fn add_server_pool(&mut self, servers: u32) -> Self::Res {
        self.add_resource(servers)
    }
    fn request(&mut self, r: Self::Res, service: u64, done: Ev<Self>) {
        legacy::Sim::request(self, r, service, done);
    }
    fn drain(&mut self, w: &mut World) -> u64 {
        self.run(w)
    }
    fn events_executed(&self) -> u64 {
        legacy::Sim::events_executed(self)
    }
}

impl Kernel for Sim<World> {
    type Res = simkit::ResourceId;
    fn after_boxed(&mut self, delay: u64, f: Ev<Self>) {
        self.schedule_in(delay, f);
    }
    fn add_server_pool(&mut self, servers: u32) -> Self::Res {
        self.add_resource("pool", servers)
    }
    fn request(&mut self, r: Self::Res, service: u64, done: Ev<Self>) {
        Sim::request(self, r, service, done);
    }
    fn drain(&mut self, w: &mut World) -> u64 {
        self.run(w)
    }
    fn events_executed(&self) -> u64 {
        Sim::events_executed(self)
    }
}

/// splitmix64 finalizer: deterministic integer mixing in place of an RNG
/// (no random stream, so nothing to seed — every run is identical).
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One self-rescheduling timer: fires, then reschedules itself with a new
/// pseudo-random delay while the shared budget lasts. Keeps the pending
/// population near-constant until the tail drains.
fn tick<K: Kernel>(sim: &mut K, id: u64, round: u64) {
    let delay = mix(id.wrapping_mul(0x0100_0000_01B3).wrapping_add(round)) % 1_000_000 + 1;
    sim.after_boxed(
        delay,
        Box::new(move |s, w| {
            w.fired += 1;
            if w.reschedules_left > 0 {
                w.reschedules_left -= 1;
                tick(s, id, round + 1);
            }
        }),
    );
}

/// Pure dequeue stress: bulk-inject a pre-generated arrival trace of
/// `total` one-shot events (untimed — trace replay injects up front),
/// then time draining it. This isolates the scheduler's pop path, the
/// part the rework replaced: the legacy heap pays an O(log n) sift-down
/// over 32-byte boxed nodes per event (cold cache lines at this
/// population), the calendar queue an O(1) short-bucket scan.
fn run_drain<K: Kernel>(mut sim: K, total: u64) -> (u64, f64) {
    let mut w = World {
        fired: 0,
        reschedules_left: 0,
    };
    // ~500 ns mean spacing: a dense arrival trace spanning total/2 µs.
    let span = total.saturating_mul(500);
    for id in 0..total {
        let at = mix(id) % span + 1;
        sim.after_boxed(at, Box::new(move |_s, w| w.fired += 1));
    }
    let t0 = Instant::now();
    sim.drain(&mut w);
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(w.fired, total, "every injected arrival must fire");
    assert_eq!(sim.events_executed(), total);
    (total, secs)
}

/// Timer stress: `pending` concurrent timers, `total` events overall.
/// Returns (events executed, wall-clock seconds including scheduling).
fn run_timers<K: Kernel>(mut sim: K, pending: u64, total: u64) -> (u64, f64) {
    let mut w = World {
        fired: 0,
        reschedules_left: total.saturating_sub(pending),
    };
    let t0 = Instant::now();
    for id in 0..pending {
        tick(&mut sim, id, 0);
    }
    sim.drain(&mut w);
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(w.fired, total, "timer budget must be fully consumed");
    assert_eq!(sim.events_executed(), total);
    (total, secs)
}

/// One customer hop in the closed queueing network: request a
/// pseudo-random pool for a pseudo-random service time, and on completion
/// hop again while the shared budget lasts.
fn hop<K: Kernel>(sim: &mut K, pools: Rc<Vec<K::Res>>, customer: u64, round: u64) {
    let h = mix(customer
        .wrapping_mul(0x0000_0100_0000_01B3)
        .wrapping_add(round));
    let r = pools[(h as usize) % pools.len()];
    let service = (h >> 32) % 9_900 + 100;
    sim.request(
        r,
        service,
        Box::new(move |s, w| {
            w.fired += 1;
            if w.reschedules_left > 0 {
                w.reschedules_left -= 1;
                hop(s, pools, customer, round + 1);
            }
        }),
    );
}

/// Closed queueing network: `customers` customers cycling over `pools`
/// 4-server pools until `total` completions have fired. Hammers the
/// grant/completion path.
fn run_queueing<K: Kernel>(mut sim: K, customers: u64, pools: usize, total: u64) -> (u64, f64) {
    let pools: Rc<Vec<K::Res>> = Rc::new((0..pools).map(|_| sim.add_server_pool(4)).collect());
    let mut w = World {
        fired: 0,
        reschedules_left: total.saturating_sub(customers),
    };
    let t0 = Instant::now();
    for c in 0..customers {
        hop(&mut sim, Rc::clone(&pools), c, 0);
    }
    sim.drain(&mut w);
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(w.fired, total, "queueing budget must be fully consumed");
    (sim.events_executed(), secs)
}

/// Best-of-N wall-clock over a workload closure returning (events, secs).
fn best_of(iters: usize, f: impl Fn() -> (u64, f64)) -> (u64, f64) {
    let mut best = f64::INFINITY;
    let mut events = 0;
    for _ in 0..iters.max(1) {
        let (e, s) = f();
        events = e;
        best = best.min(s);
    }
    (events, best)
}

/// PDW TPC-H Q5 phase replay: record the resolved plan once, then replay
/// its phases on a fresh `ClusterExec` per iteration. This is the kernel
/// doing engine-grade work — phase barriers, per-node disk/CPU/NIC
/// requests — rather than synthetic ticks.
fn pdw_q5_point(sf: f64, paper: f64, iters: usize) -> (u64, f64) {
    let cat = generate(&GenConfig::new(sf));
    let params = Params::paper_dss().scaled(paper / sf);
    let (pdwcat, _) = load_pdw(&cat, &params);
    let engine = PdwEngine::new(pdwcat);
    let (_, phases) = engine.run_query_recorded(&tpch::query(5));
    best_of(iters, || {
        let mut exec = ClusterExec::new(Params::paper_dss().scaled(paper / sf));
        let t0 = Instant::now();
        for ph in &phases {
            exec.run(ph.clone());
        }
        (exec.events_executed(), t0.elapsed().as_secs_f64())
    })
}

/// YCSB workload-A serving run on a sharded Mongo cluster: the serving
/// side's open-loop arrival stream is the other engine-grade shape (many
/// small events, deep timer population).
fn ycsb_point(measure_secs: f64, iters: usize) -> (u64, f64) {
    let cfg = ServingConfig::default();
    best_of(iters, || {
        let params = cfg.params();
        let mut sim: Sim<()> = Sim::new();
        let m = MongoCluster::build(&mut sim, &params, Sharding::Hash);
        m.load(cfg.n_records());
        let rc = RunConfig {
            target_ops_per_sec: 20_000.0,
            threads: cfg.threads,
            warmup_secs: cfg.warmup_secs.min(measure_secs),
            measure_secs,
            seed: cfg.seed,
            n_records: cfg.n_records(),
            max_scan_len: 1000,
        };
        let t0 = Instant::now();
        run_workload(&mut sim, m, Workload::A, &rc);
        (sim.events_executed(), t0.elapsed().as_secs_f64())
    })
}

/// Fan-out demo: the same per-seed timer replica sweep run serially and
/// through the parallel runner; asserts the results are identical, so the
/// artifact records measured proof that parallelism changes wall-clock
/// only.
fn fanout_section(jobs: usize, pending: u64, total: u64) -> (usize, usize, f64, f64) {
    let make_jobs = || -> Vec<Box<dyn FnOnce() -> (u64, f64) + Send>> {
        (0..jobs as u64)
            .map(|seed| {
                let f: Box<dyn FnOnce() -> (u64, f64) + Send> = Box::new(move || {
                    run_timers(
                        Sim::<World>::with_scheduler(SchedulerKind::Calendar),
                        pending + seed, // vary the replica shape a little
                        total,
                    )
                });
                f
            })
            .collect()
    };
    let threads = fanout::default_threads();
    let t0 = Instant::now();
    let serial = fanout::run_with_threads(make_jobs(), 1);
    let serial_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let parallel = fanout::run_with_threads(make_jobs(), threads);
    let parallel_secs = t0.elapsed().as_secs_f64();
    let ev = |r: &[(u64, f64)]| -> Vec<u64> { r.iter().map(|(e, _)| *e).collect() };
    assert_eq!(
        ev(&serial),
        ev(&parallel),
        "fan-out must not change results"
    );
    (jobs, threads, serial_secs, parallel_secs)
}

struct KernelRow {
    kernel: &'static str,
    events: u64,
    secs: f64,
}

impl KernelRow {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.secs
    }
}

fn print_workload(name: &str, note: &str, rows: &[KernelRow], last: bool) {
    println!("    {{");
    println!("      \"name\": \"{name}\",");
    println!("      \"note\": \"{note}\",");
    println!("      \"kernels\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!(
            "        {{ \"kernel\": \"{}\", \"events\": {}, \"secs\": {:.4}, \
             \"events_per_sec\": {:.0} }}{comma}",
            r.kernel,
            r.events,
            r.secs,
            r.events_per_sec()
        );
    }
    println!("      ],");
    let legacy_eps = rows[0].events_per_sec();
    let calendar_eps = rows[1].events_per_sec();
    println!(
        "      \"speedup_calendar_vs_legacy\": {:.2}",
        calendar_eps / legacy_eps
    );
    println!("    }}{}", if last { "" } else { "," });
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = bench::has_flag(&args, "--smoke");
    let iters = bench::arg_usize(&args, "--iters", if smoke { 1 } else { 3 });

    // Workload dimensions: the timer population is the headline regime
    // (large pending set → deep heap), sized well past L2 so node
    // locality matters; totals keep full runs under a minute per kernel.
    let (t_pending, t_total) = if smoke {
        (2_048, 50_000)
    } else {
        (131_072, 2_000_000)
    };
    let t_pending = bench::arg_usize(&args, "--pending", t_pending as usize) as u64;
    let t_total = bench::arg_usize(&args, "--events", t_total as usize) as u64;
    let (q_customers, q_pools, q_total) = if smoke {
        (200, 8, 20_000)
    } else {
        (2_000, 16, 1_000_000)
    };
    let d_total = if smoke { 16_384 } else { 4_000_000 };
    let d_total = bench::arg_usize(&args, "--drain-events", d_total as usize) as u64;

    let row = |kernel, (events, secs)| KernelRow {
        kernel,
        events,
        secs,
    };
    let drain = vec![
        row(
            "legacy_heap",
            best_of(iters, || run_drain(legacy::Sim::new(), d_total)),
        ),
        row(
            "calendar",
            best_of(iters, || {
                run_drain(Sim::with_scheduler(SchedulerKind::Calendar), d_total)
            }),
        ),
        row(
            "heap",
            best_of(iters, || {
                run_drain(Sim::with_scheduler(SchedulerKind::Heap), d_total)
            }),
        ),
    ];
    let timers = vec![
        row(
            "legacy_heap",
            best_of(iters, || run_timers(legacy::Sim::new(), t_pending, t_total)),
        ),
        row(
            "calendar",
            best_of(iters, || {
                run_timers(
                    Sim::with_scheduler(SchedulerKind::Calendar),
                    t_pending,
                    t_total,
                )
            }),
        ),
        row(
            "heap",
            best_of(iters, || {
                run_timers(Sim::with_scheduler(SchedulerKind::Heap), t_pending, t_total)
            }),
        ),
    ];
    let queueing = vec![
        row(
            "legacy_heap",
            best_of(iters, || {
                run_queueing(legacy::Sim::new(), q_customers, q_pools, q_total)
            }),
        ),
        row(
            "calendar",
            best_of(iters, || {
                run_queueing(
                    Sim::with_scheduler(SchedulerKind::Calendar),
                    q_customers,
                    q_pools,
                    q_total,
                )
            }),
        ),
        row(
            "heap",
            best_of(iters, || {
                run_queueing(
                    Sim::with_scheduler(SchedulerKind::Heap),
                    q_customers,
                    q_pools,
                    q_total,
                )
            }),
        ),
    ];

    // Engine-grade trajectory points on the default (calendar) backend.
    let (pdw_events, pdw_secs) = if smoke {
        pdw_q5_point(0.01, 250.0, 1)
    } else {
        pdw_q5_point(0.02, 1000.0, iters)
    };
    let (ycsb_events, ycsb_secs) = ycsb_point(if smoke { 2.0 } else { 30.0 }, iters);

    let (fo_jobs, fo_threads, fo_serial, fo_parallel) = if smoke {
        fanout_section(4, 1_024, 10_000)
    } else {
        fanout_section(8, 16_384, 200_000)
    };

    // ---- JSON artifact --------------------------------------------------
    println!("{{");
    println!("  \"bench\": \"kernel\",");
    println!("  \"smoke\": {smoke},");
    println!("{},", meta::machine_json("  "));
    println!(
        "{},",
        meta::config_json("  ", iters, "best_of_n_wall_clock")
    );
    println!("  \"workloads\": [");
    print_workload(
        "drain",
        &format!(
            "pre-injected arrival trace, {d_total} events; timed region is the drain loop only"
        ),
        &drain,
        false,
    );
    print_workload(
        "timers",
        &format!("{t_pending} pending self-rescheduling timers, {t_total} events"),
        &timers,
        false,
    );
    print_workload(
        "queueing",
        &format!(
            "closed network: {q_customers} customers over {q_pools} 4-server pools, {q_total} completions"
        ),
        &queueing,
        true,
    );
    println!("  ],");
    let baseline_eps = drain[0].events_per_sec();
    let new_eps = drain[1].events_per_sec();
    println!("  \"headline\": {{");
    println!("    \"workload\": \"drain\",");
    println!("    \"baseline_kernel\": \"legacy_heap\",");
    println!("    \"baseline_events_per_sec\": {baseline_eps:.0},");
    println!("    \"new_kernel\": \"calendar\",");
    println!("    \"new_events_per_sec\": {new_eps:.0},");
    println!("    \"speedup\": {:.2}", new_eps / baseline_eps);
    println!("  }},");
    println!("  \"engine_points\": [");
    println!(
        "    {{ \"name\": \"pdw_q5_phase_replay\", \"events\": {pdw_events}, \"secs\": {pdw_secs:.4}, \
         \"events_per_sec\": {:.0} }},",
        pdw_events as f64 / pdw_secs
    );
    println!(
        "    {{ \"name\": \"ycsb_workload_a\", \"events\": {ycsb_events}, \"secs\": {ycsb_secs:.4}, \
         \"events_per_sec\": {:.0} }}",
        ycsb_events as f64 / ycsb_secs
    );
    println!("  ],");
    println!("  \"fanout\": {{");
    println!("    \"jobs\": {fo_jobs},");
    println!("    \"threads\": {fo_threads},");
    println!("    \"serial_secs\": {fo_serial:.4},");
    println!("    \"parallel_secs\": {fo_parallel:.4}");
    println!("  }}");
    println!("}}");
}
