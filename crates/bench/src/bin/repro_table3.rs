//! Regenerates Table 3: the 22 TPC-H queries on Hive and PDW at the four
//! paper scale factors, with speedups, per-engine scaling factors, and the
//! AM/GM/AM-9/GM-9 summary rows.
//!
//! Usage: `repro_table3 [--sf 0.02] [--queries 1,5,19] [--scales 250,1000]`
//! Paper values for comparison live in EXPERIMENTS.md.

use elephants_core::dss::{paper_disk_capacity, run_dss, DssConfig, DssResults};
use elephants_core::report::{fmt_ratio, fmt_secs, TableBuilder};

fn parse_list(args: &[String], key: &str) -> Vec<f64> {
    args.windows(2)
        .find(|w| w[0] == key)
        .map(|w| {
            w[1].split(',')
                .filter_map(|s| s.parse().ok())
                .collect::<Vec<f64>>()
        })
        .unwrap_or_default()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sim_scale = bench::arg_f64(&args, "--sf", 0.02);
    let queries: Vec<usize> = parse_list(&args, "--queries")
        .into_iter()
        .map(|q| q as usize)
        .collect();
    let mut scales = parse_list(&args, "--scales");
    if scales.is_empty() {
        scales = vec![250.0, 1000.0, 4000.0, 16000.0];
    }

    let config = DssConfig {
        sim_scale,
        paper_scales: scales,
        queries,
        disk_capacity_per_node: Some(paper_disk_capacity()),
    };
    eprintln!(
        "running TPC-H suite: sim SF {} → paper scales {:?}",
        config.sim_scale, config.paper_scales
    );
    let results = run_dss(&config);
    let table = render(&results);
    if bench::has_flag(&args, "--csv") {
        println!("{}", table.to_csv());
    } else {
        println!("{}", table.to_markdown());
        print_utilization(&results);
    }
}

/// Per-resource busy time and queue waits per engine per scale, summed
/// over all queries (from the DES traces backing every cell).
fn print_utilization(results: &DssResults) {
    use elephants_core::report::util_line;
    use simkit::trace::UtilSummary;
    println!("Cluster resource totals per scale (summed over queries):\n");
    for run in &results.runs {
        let mut pdw = UtilSummary::default();
        let mut hive = UtilSummary::default();
        let mut hive_peak: (usize, String) = (0, String::new());
        let mut pdw_peak: (usize, String) = (0, String::new());
        let mut left_over = 0usize;
        let mut pending_wait = 0.0f64;
        for c in &run.cells {
            pdw.merge(&c.pdw_util);
            if let Some(u) = &c.hive_util {
                hive.merge(u);
            }
            if let Some((name, depth, left, pending)) = &c.hive_peak_queue {
                if *depth > hive_peak.0 {
                    hive_peak = (*depth, name.clone());
                }
                left_over += left;
                pending_wait += pending;
            }
            let (name, depth, left, pending) = &c.pdw_peak_queue;
            if *depth > pdw_peak.0 {
                pdw_peak = (*depth, name.clone());
            }
            left_over += left;
            pending_wait += pending;
        }
        println!(
            "  @{:>6.0} GB  HIVE  {}  peak queue {} ({})",
            run.paper_scale,
            util_line(&hive),
            hive_peak.0,
            hive_peak.1
        );
        println!(
            "  @{:>6.0} GB  PDW   {}  peak queue {} ({})",
            run.paper_scale,
            util_line(&pdw),
            pdw_peak.0,
            pdw_peak.1
        );
        if left_over > 0 {
            println!(
                "  @{:>6.0} GB  WARNING: {left_over} requests still queued at run end \
                 ({pending_wait:.1}s pending wait accrued, uncounted in mean queue wait)",
                run.paper_scale
            );
        }
    }
}

fn render(results: &DssResults) -> TableBuilder {
    let mut header = vec!["Query".to_string()];
    for run in &results.runs {
        header.push(format!("HIVE {:.0}", run.paper_scale));
        header.push(format!("PDW {:.0}", run.paper_scale));
        header.push(format!("Speedup {:.0}", run.paper_scale));
    }
    // Per-engine scaling columns between adjacent scale factors.
    for w in results.runs.windows(2) {
        header.push(format!(
            "PDW {:.0}→{:.0}",
            w[0].paper_scale, w[1].paper_scale
        ));
    }
    for w in results.runs.windows(2) {
        header.push(format!(
            "HIVE {:.0}→{:.0}",
            w[0].paper_scale, w[1].paper_scale
        ));
    }

    let headers: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TableBuilder::new(
        "Table 3 — TPC-H on Hive and PDW (seconds; '--' = failed)",
        &headers,
    );

    let n_queries = results.runs[0].cells.len();
    for qi in 0..n_queries {
        let qnum = results.runs[0].cells[qi].query;
        let mut row = vec![format!("Q{qnum}")];
        for run in &results.runs {
            let c = &run.cells[qi];
            row.push(fmt_secs(c.hive_secs));
            row.push(fmt_secs(Some(c.pdw_secs)));
            row.push(fmt_ratio(c.speedup()));
        }
        for w in results.runs.windows(2) {
            let a = w[0].cells[qi].pdw_secs;
            let b = w[1].cells[qi].pdw_secs;
            row.push(fmt_ratio(Some(b / a.max(1e-9))));
        }
        for w in results.runs.windows(2) {
            let r = match (w[0].cells[qi].hive_secs, w[1].cells[qi].hive_secs) {
                (Some(a), Some(b)) => Some(b / a.max(1e-9)),
                _ => None,
            };
            row.push(fmt_ratio(r));
        }
        t.row(row);
    }

    // Summary rows.
    for (label, exclude_q9) in [("AM", false), ("GM", false), ("AM-9", true), ("GM-9", true)] {
        let mut row = vec![label.to_string()];
        for run in &results.runs {
            let hive = run.means("hive", exclude_q9);
            let pdw = run.means("pdw", exclude_q9).expect("pdw always finishes");
            let idx = if label.starts_with("AM") { 0 } else { 1 };
            let h = hive.map(|m| if idx == 0 { m.0 } else { m.1 });
            let p = if idx == 0 { pdw.0 } else { pdw.1 };
            row.push(fmt_secs(h));
            row.push(fmt_secs(Some(p)));
            row.push(fmt_ratio(h.map(|h| h / p)));
        }
        for _ in 0..results.runs.len().saturating_sub(1) * 2 {
            row.push(String::new());
        }
        t.row(row);
    }
    t
}
