//! Regenerates Figure 6: latency vs throughput for SQL-CS,
//! Mongo-AS and Mongo-CS.

use bench::figures::{figure_config, run_figure};
use ycsb::workload::{OpType, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = figure_config(&args);
    eprintln!("{} records per run (k = {})", cfg.n_records(), cfg.k);
    let out = run_figure(
        "Figure 6 — Workload E: 95% scans, 5% appends",
        Workload::E,
        &[250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0],
        &[OpType::Scan, OpType::Insert],
        &cfg,
    );
    println!("{out}");
    println!("paper: Mongo-AS wins (6,337 ops/s, 30.4 ms scans) thanks to range partitioning, but appends cost 1,832 ms; SQL-CS appends take 2 ms");
}
