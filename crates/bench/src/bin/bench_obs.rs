//! Observability overhead + passivity smoke: run one TPC-H query per
//! engine twice — bare, then with the full probe stack attached (a `Tee`
//! of counting, timeline, and critical-path probes) — and report both the
//! real wall-clock cost of observing and the proof that observing changed
//! nothing: kernel event counts and simulated query times must be
//! identical probed vs unprobed (asserted here, recorded in the JSON for
//! the schema gate).
//!
//!     cargo run --release -p bench --bin bench_obs -- [--q 5] [--sf 0.02]
//!         [--paper 16000] [--iters 3]
//!
//! Output is JSON on stdout (committed as `results/BENCH_obs.json`, not
//! byte-diff gated: the wall-clock numbers are host-dependent by design).

use cluster::Params;
use hive::{load_warehouse, HiveEngine};
use obs::{CritPathProbe, Tee, TimelineProbe};
use pdw::{load_pdw, PdwEngine};
use simkit::probe::{CountingProbe, Probe};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;
use tpch::{generate, GenConfig};

/// One engine's probed-vs-unprobed measurement.
struct Row {
    engine: &'static str,
    events_bare: u64,
    events_probed: u64,
    sim_secs: f64,
    /// Probe-event deliveries the counting probe saw (all classes).
    probe_events: u64,
    spans: u64,
    best_bare_secs: f64,
    best_probed_secs: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let q = bench::arg_usize(&args, "--q", 5);
    let sf = bench::arg_f64(&args, "--sf", 0.02);
    let paper = bench::arg_f64(&args, "--paper", 16000.0);
    let iters = bench::arg_usize(&args, "--iters", 3).max(1);

    let plan = tpch::query(q);
    let cat = generate(&GenConfig::new(sf));
    let params = Params::paper_dss().scaled(paper / sf);

    // One runner per engine: (kernel events executed, simulated secs).
    type Run<'a> = Box<dyn Fn(Option<Rc<RefCell<dyn Probe>>>) -> (u64, f64) + 'a>;
    let (w, _) = load_warehouse(&cat, &params, None).expect("hive load");
    let hive = HiveEngine::new(w);
    let (pc, _) = load_pdw(&cat, &params);
    let pdw = PdwEngine::new(pc);
    let engines: Vec<(&'static str, Run)> = vec![
        (
            "hive",
            Box::new(|p| {
                let r = hive.run_query_probed(&plan, p).expect("hive run");
                (r.events_executed, r.total_secs)
            }),
        ),
        (
            "pdw",
            Box::new(|p| {
                let r = pdw.run_query_probed(&plan, p);
                (r.events_executed, r.total_secs)
            }),
        ),
    ];

    let mut rows = Vec::new();
    for (name, run) in &engines {
        let mut best_bare = f64::INFINITY;
        let mut bare = (0u64, 0f64);
        for _ in 0..iters {
            let t0 = Instant::now();
            bare = run(None);
            best_bare = best_bare.min(t0.elapsed().as_secs_f64());
        }
        let mut best_probed = f64::INFINITY;
        let mut probed = (0u64, 0f64);
        let mut counts = CountingProbe::default();
        for _ in 0..iters {
            let counter = Rc::new(RefCell::new(CountingProbe::default()));
            let tee = Tee::of(vec![
                counter.clone(),
                Rc::new(RefCell::new(TimelineProbe::new(simkit::secs(1.0)))),
                Rc::new(RefCell::new(CritPathProbe::new())),
            ]);
            let t0 = Instant::now();
            probed = run(Some(Rc::new(RefCell::new(tee))));
            best_probed = best_probed.min(t0.elapsed().as_secs_f64());
            counts = counter.borrow().clone();
        }
        // The passivity contract, checked at the kernel's own yardsticks.
        assert_eq!(bare.0, probed.0, "{name}: probe changed the event count");
        assert_eq!(
            bare.1.to_bits(),
            probed.1.to_bits(),
            "{name}: probe changed the simulated time"
        );
        rows.push(Row {
            engine: name,
            events_bare: bare.0,
            events_probed: probed.0,
            sim_secs: probed.1,
            probe_events: counts.registered
                + counts.enqueued
                + counts.started
                + counts.completed
                + counts.spans_opened
                + counts.spans_closed
                + counts.tasks_started
                + counts.tasks_finished
                + counts.tasks_retried,
            spans: counts.spans_closed,
            best_bare_secs: best_bare,
            best_probed_secs: best_probed,
        });
    }

    println!("{{");
    println!("  \"bench\": \"obs_overhead\",");
    println!("{},", bench::meta::machine_json("  "));
    println!(
        "{},",
        bench::meta::config_json("  ", iters, "best_of_n_wall_clock")
    );
    println!("  \"query\": {q},");
    println!("  \"sf\": {sf},");
    println!("  \"engines\": [");
    for (i, r) in rows.iter().enumerate() {
        let overhead = if r.best_bare_secs > 0.0 {
            (r.best_probed_secs / r.best_bare_secs - 1.0) * 100.0
        } else {
            0.0
        };
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!(
            "    {{ \"name\": \"{}\", \"events_bare\": {}, \"events_probed\": {}, \
             \"sim_secs\": {:.3}, \"probe_events\": {}, \"spans\": {}, \
             \"bare_secs\": {:.6}, \"probed_secs\": {:.6}, \"overhead_pct\": {:.1} }}{comma}",
            r.engine,
            r.events_bare,
            r.events_probed,
            r.sim_secs,
            r.probe_events,
            r.spans,
            r.best_bare_secs,
            r.best_probed_secs,
            overhead
        );
    }
    println!("  ]");
    println!("}}");
}
