//! Ablation — §3.4.2's pre-split-chunks loading strategy for Mongo-AS:
//! defining chunk bounds up front avoids balancer migrations during the
//! load.

use docstore::{MongoCluster, Sharding};
use elephants_core::report::TableBuilder;
use elephants_core::serving::ServingConfig;
use simkit::Sim;

fn main() {
    let cfg = ServingConfig::default();
    let params = cfg.params();
    let mut sim: Sim<()> = Sim::new();
    let m = MongoCluster::build(&mut sim, &params, Sharding::Range);
    m.load(cfg.n_records());
    let mut t = TableBuilder::new(
        "Ablation: Mongo-AS load with vs without pre-split chunks (640 M records)",
        &["Strategy", "Minutes"],
    );
    t.row(vec![
        "pre-split chunk bounds (paper)".into(),
        format!("{:.0}", m.load_time_secs(640_000_000, true) / 60.0),
    ]);
    t.row(vec![
        "cold balancer (splits + migrations during load)".into(),
        format!("{:.0}", m.load_time_secs(640_000_000, false) / 60.0),
    ]);
    println!("{}", t.to_markdown());
}
