//! Ablation — what durability would have cost MongoDB (§3.4.1/§3.5): the
//! paper ran Mongo without journaling or replica sets and *still* lost to
//! the fully-ACID SQL Server. This ablation turns the safety features on.

use docstore::{MongoCluster, Sharding};
use elephants_core::report::TableBuilder;
use elephants_core::serving::ServingConfig;
use simkit::Sim;
use ycsb::driver::{run_workload, RunConfig};
use ycsb::workload::{OpType, Workload};

fn main() {
    let cfg = ServingConfig::default();
    let mut t = TableBuilder::new(
        "Ablation: MongoDB durability (Mongo-CS, workload A, target 20k ops/s)",
        &["Configuration", "Achieved", "Update latency (ms)"],
    );
    let cases: &[(&str, bool, u32, bool)] = &[
        ("paper config (no journal, no replicas)", false, 0, false),
        ("journal + commit ack (durable)", true, 0, false),
        ("async replica set (1 secondary)", false, 1, false),
        ("journal + replica w=2", true, 1, true),
    ];
    for &(label, journal, replicas, ack) in cases {
        let params = cfg.params();
        let mut sim: Sim<()> = Sim::new();
        let m = MongoCluster::build(&mut sim, &params, Sharding::Hash);
        m.load(cfg.n_records());
        m.journaled.set(journal);
        m.replicas.set(replicas);
        m.replica_ack.set(ack);
        let rc = RunConfig {
            target_ops_per_sec: 20_000.0,
            threads: cfg.threads,
            warmup_secs: cfg.warmup_secs,
            measure_secs: cfg.measure_secs,
            seed: cfg.seed,
            n_records: cfg.n_records(),
            max_scan_len: 1000,
        };
        let r = run_workload(&mut sim, m, Workload::A, &rc);
        t.row(vec![
            label.to_string(),
            format!("{:.0}", r.achieved_ops),
            format!("{:.1}", r.latencies[&OpType::Update].mean_ms),
        ]);
    }
    println!("{}", t.to_markdown());
    println!(
        "the paper's comparison gave MongoDB every break — SQL Server paid for\n\
         full ACID durability and won anyway (§3.5)."
    );
}
