//! Diagnostic: per-query Hive scratch-space demand at a paper scale factor,
//! vs the per-node headroom (drives the Q9-only failure calibration).

use cluster::Params;
use hive::{load_warehouse, HiveEngine};
use tpch::{generate, GenConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sf = bench::arg_f64(&args, "--sf", 0.01);
    let paper = bench::arg_f64(&args, "--paper", 16000.0);
    let k = paper / sf;
    let cat = generate(&GenConfig::new(sf));
    let params = Params::paper_dss().scaled(k);
    let (w, report) = load_warehouse(&cat, &params, None).unwrap();
    let base_per_node = report.stored_bytes * params.hdfs_replication as u64 / params.nodes as u64;
    let engine = HiveEngine::new(w);
    println!(
        "base/node: {:.1} (paper-scale GB: {:.0})",
        base_per_node as f64,
        base_per_node as f64 * k / 1e9
    );
    for q in 1..=22 {
        let run = engine.run_query(&tpch::query(q)).unwrap();
        let per_node = run.scratch_bytes / params.nodes as u64;
        println!(
            "Q{q:02}: scratch/node {:>12} (paper-scale GB: {:>8.0})",
            per_node,
            per_node as f64 * k / 1e9
        );
    }
}
