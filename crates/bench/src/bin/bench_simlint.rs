//! Lint-speed microbench: REAL wall-clock time for a full simlint pass
//! over the workspace, phase by phase (lex+parse, per-file rules, call
//! graph + graph rules), plus tree-size counters so throughput is
//! interpretable. Output is JSON on stdout (committed as
//! `results/BENCH_simlint.json`, not byte-diff gated: the timings are
//! host-dependent by design; the counters are not).

use std::path::PathBuf;
use std::time::Instant;

/// Nearest ancestor holding `simlint.toml` — the workspace root.
fn find_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd is readable");
    loop {
        if dir.join("simlint.toml").is_file() {
            return dir;
        }
        assert!(dir.pop(), "no simlint.toml above the current directory");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iters = bench::arg_usize(&args, "--iters", 3);
    let root = find_root();
    let toml = std::fs::read_to_string(root.join("simlint.toml")).expect("simlint.toml reads");
    let config = simlint::config::parse(&toml).expect("simlint.toml parses");

    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        let r = simlint::lint_tree(&config, &root, &[]).expect("workspace tree walks");
        best = best.min(t0.elapsed().as_secs_f64());
        report = Some(r);
    }
    let report = report.expect("at least one iteration ran");
    assert!(
        report.is_clean(),
        "workspace must lint clean for the bench to be meaningful:\n{}",
        report.render()
    );

    // Tree-size counters from a separate instrumented pass (cheap relative
    // to the full lint; excluded from the timing above).
    let mut files = 0usize;
    let mut lines = 0usize;
    let mut fns = 0usize;
    let mut walk = vec![root.clone()];
    while let Some(dir) = walk.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with('.') || name == "target" {
                continue;
            }
            let rel = path
                .strip_prefix(&root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if config
                .exclude
                .iter()
                .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
            {
                continue;
            }
            if path.is_dir() {
                walk.push(path);
            } else if name.ends_with(".rs") {
                let src = std::fs::read_to_string(&path).unwrap_or_default();
                files += 1;
                lines += src.lines().count();
                fns += simlint::parser::parse(&simlint::lexer::lex(&src)).fns.len();
            }
        }
    }

    let rules = config.rules.len();
    let allows = report.allows.len();
    let lines_per_sec = lines as f64 / best;
    println!("{{");
    println!("  \"bench\": \"simlint_workspace\",");
    println!("{},", bench::meta::machine_json("  "));
    println!(
        "{},",
        bench::meta::config_json("  ", iters, "best_of_n_wall_clock")
    );
    println!("  \"files\": {files},");
    println!("  \"lines\": {lines},");
    println!("  \"fns\": {fns},");
    println!("  \"rules\": {rules},");
    println!("  \"allows\": {allows},");
    println!("  \"best_secs\": {best:.4},");
    println!("  \"lines_per_sec\": {lines_per_sec:.0}");
    println!("}}");
}
