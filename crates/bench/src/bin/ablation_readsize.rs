//! Ablation — MongoDB's 32 KB reads per page miss vs an 8 KB configuration
//! (the paper: "Mongo-AS and Mongo-CS waste disk bandwidth by reading in
//! data that is not needed", workload C).

use docstore::{MongoCluster, Sharding};
use elephants_core::report::TableBuilder;
use elephants_core::serving::ServingConfig;
use simkit::Sim;
use ycsb::driver::{run_workload, RunConfig};
use ycsb::workload::{OpType, Workload};

fn main() {
    let cfg = ServingConfig::default();
    let mut t = TableBuilder::new(
        "Ablation: bytes read per page miss (Mongo-AS, workload C)",
        &["Read size", "Target", "Achieved", "Read latency (ms)"],
    );
    for (label, bytes) in [("32 KB (paper)", 32 * 1024u64), ("8 KB", 8 * 1024)] {
        for target in [40e3, 160e3] {
            let mut params = cfg.params();
            params.mongo_read_per_miss = bytes;
            let mut sim: Sim<()> = Sim::new();
            let m = MongoCluster::build(&mut sim, &params, Sharding::Range);
            m.load(cfg.n_records());
            let rc = RunConfig {
                target_ops_per_sec: target,
                threads: cfg.threads,
                warmup_secs: cfg.warmup_secs,
                measure_secs: cfg.measure_secs,
                seed: cfg.seed,
                n_records: cfg.n_records(),
                max_scan_len: 1000,
            };
            let r = run_workload(&mut sim, m, Workload::C, &rc);
            t.row(vec![
                label.to_string(),
                format!("{target:.0}"),
                format!("{:.0}", r.achieved_ops),
                format!("{:.1}", r.latencies[&OpType::Read].mean_ms),
            ]);
        }
    }
    println!("{}", t.to_markdown());
}
