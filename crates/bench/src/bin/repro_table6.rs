//! Regenerates Table 6: the YCSB workload definitions (printed from the
//! live workload objects the driver executes).

use elephants_core::report::TableBuilder;
use ycsb::workload::Workload;

fn main() {
    let mut t = TableBuilder::new(
        "Table 6 — YCSB benchmark workloads",
        &["Workload", "Operations"],
    );
    for w in Workload::all() {
        t.row(vec![w.name().to_string(), w.description().to_string()]);
    }
    println!("{}", t.to_markdown());
}
