//! Adaptive mid-mix re-planning: TPC-H Q5 + Q1 + a background ETL scan job
//! on the shared simulated cluster, with Q5's recorded plan re-planned
//! *while it runs* — at every phase boundary the live critical-path blame
//! (`obs::CritPathProbe`) and streaming NIC-wait windows
//! (`obs::MetricRegistry`) are distilled into effective movement costs
//! (`pdw::adaptive::live_costs`), and the not-yet-started join movements
//! swap shuffle↔replicate when the live ranking disagrees with the plan
//! (`pdw::AdaptiveTail` + `cluster::ClusterExec::run_mix_adaptive`).
//!
//! Sections of the artifact:
//!   1. Q5's solo plan and its movement decisions (closed-form options),
//!   2. the fixed-plan mix — the baseline schedule,
//!   3. non-adaptive equivalence — the same mix through
//!      `run_mix_adaptive` with identity re-planners is asserted
//!      bitwise-identical (outcomes and span trace) to the fixed path,
//!   4. the adaptive mix — every mid-flight swap with the blame verdict
//!      and live effective costs that justified it,
//!   5. makespan comparison.
//!
//! Determinism: re-plans fire only at phase boundaries and compute pure
//! arithmetic over the deterministic probe stream, so the adaptive run is
//! byte-reproducible (same seed → same swaps → same bytes; pinned by the
//! CI artifact diff).
//!
//! `--trace <path>` writes a Chrome Trace Event JSON of both mixes.

use cluster::{ClusterExec, JobOutcome, JobSpec, MixJob, Params, Phase};
use obs::{CritPathProbe, MetricKey, MetricRegistry, Tee, TimelineProbe};
use pdw::adaptive::{live_costs, AdaptiveTail, BlameVerdict};
use pdw::{load_pdw, JoinDecision, PdwEngine};
use rand::{rngs::StdRng, Rng, SeedableRng};
use simkit::probe::{Probe, ProbeEvent};
use simkit::trace::Trace;
use std::cell::RefCell;
use std::rc::Rc;
use tpch::{generate, GenConfig};

/// Background ETL backfill: `waves` sequential all-node phases, each node
/// scanning a slice from disk and forwarding it to its ring neighbour at
/// DMS bandwidth (same job the `concurrent_mix` artifact uses).
fn etl_job(p: &Params, lineitem_bytes: u64, waves: usize, arrival_secs: f64) -> JobSpec {
    let per_node = lineitem_bytes as f64 / p.nodes as f64;
    let mut phases = Vec::new();
    for w in 0..waves {
        let mut ph = Phase::new(format!("wave{w}"));
        for n in 0..p.nodes {
            ph.disk_seq(n, per_node, p.pdw_scan_bw_per_node);
            ph.net_send(n, per_node, p.dms_bw_per_node);
            ph.net_recv((n + 1) % p.nodes, per_node, p.dms_bw_per_node);
        }
        phases.push(ph);
    }
    JobSpec {
        name: "etl-backfill".into(),
        arrival_secs,
        phases,
    }
}

fn nic_wait_key() -> MetricKey {
    MetricKey::new("mix", "nic.wait", None, None)
}

/// Passive live sensor: streams every network request's queue wait into a
/// [`MetricRegistry`] sliding window as service starts. The re-planner
/// reads the merged windows at phase boundaries for its additive
/// per-movement wait term — the live twin of the NIC-depth series the
/// offline feedback loop folds after the run.
struct NicWaitSensor {
    net: Vec<bool>,
    reg: MetricRegistry,
}

impl NicWaitSensor {
    fn new() -> NicWaitSensor {
        NicWaitSensor {
            net: Vec::new(),
            reg: MetricRegistry::new(0, simkit::secs(10.0), 4096),
        }
    }

    /// Mean network queue wait over every request observed so far, seconds.
    fn mean_nic_wait_secs(&self) -> f64 {
        match self.reg.latency(&nic_wait_key()) {
            Some(sw) => sw.merged(0, sw.hi()).mean() / 1e9,
            None => 0.0,
        }
    }
}

impl Probe for NicWaitSensor {
    fn on_event(&mut self, ev: &ProbeEvent<'_>) {
        match *ev {
            ProbeEvent::ResourceRegistered { res, name, .. } => {
                let i = res.index();
                if self.net.len() <= i {
                    self.net.resize(i + 1, false);
                }
                self.net[i] =
                    name.contains("nic") || name.ends_with(".rx") || name.ends_with(".tx");
            }
            ProbeEvent::ServiceStarted { at, res, wait, .. }
                if self.net.get(res.index()).copied().unwrap_or(false) =>
            {
                self.reg.observe(nic_wait_key(), at, wait);
            }
            _ => {}
        }
    }
}

fn print_outcomes(outcomes: &[JobOutcome]) {
    println!(
        "  {:<14} {:>9} {:>9} {:>10} {:>7}",
        "job", "arrival", "end", "makespan", "phases"
    );
    for o in outcomes {
        println!(
            "  {:<14} {:>8.1}s {:>8.1}s {:>9.1}s {:>7}",
            o.name,
            o.arrival_secs,
            o.end_secs,
            o.makespan_secs(),
            o.phases
        );
    }
}

fn print_decision(d: &JoinDecision) {
    println!(
        "  {} (l {:.2} MB, r {:.2} MB): chosen {}",
        d.name,
        d.l_bytes as f64 / (1u64 << 20) as f64,
        d.r_bytes as f64 / (1u64 << 20) as f64,
        d.chosen
    );
    for (label, closed, eff) in &d.options {
        let mark = if *label == d.chosen { "<- chosen" } else { "" };
        let line = format!(
            "      {:<16} closed {:>8.1}s   effective {:>8.1}s  {}",
            label, closed, eff, mark
        );
        println!("{}", line.trim_end());
    }
}

/// Fingerprint a mix run for the bitwise-equivalence assertion: outcomes
/// with exact end bits plus the full span trace (contribs included).
fn fingerprint(outcomes: &[JobOutcome], trace: &Trace) -> String {
    let mut s = String::new();
    for o in outcomes {
        s.push_str(&format!(
            "{} {} {:x} {}\n",
            o.name,
            o.arrival_secs,
            o.end_secs.to_bits(),
            o.phases
        ));
    }
    s.push_str(&format!("{:?}", trace.spans));
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sf = bench::arg_f64(&args, "--sf", 0.01);
    let paper = bench::arg_f64(&args, "--paper", 250.0);
    let seed = bench::arg_f64(&args, "--seed", 42.0) as u64;
    let waves = bench::arg_usize(&args, "--etl-waves", 6);
    let trace_path = bench::arg_str(&args, "--trace");

    let cat = generate(&GenConfig::new(sf));
    let params = Params::paper_dss().scaled(paper / sf);
    let (pdwcat, _) = load_pdw(&cat, &params);
    let lineitem_bytes = pdwcat.table("lineitem").data_bytes();
    let engine = PdwEngine::new(pdwcat);

    // Q1 lands early (its agg shuffle is the mix's first contended
    // network movement); Q5 a few minutes in, so live blame about that
    // shuffle exists by the time Q5's own movements are still pending —
    // the window where re-planning can act.
    let mut rng = StdRng::seed_from_u64(seed);
    let q1_at = rng.gen_range(5.0..15.0);
    let q5_at = rng.gen_range(120.0..240.0);

    println!("adaptive mid-mix re-planning — live blame swaps join movements at phase boundaries");
    println!(
        "  catalog TPC-H SF {sf}, params scaled to paper SF {paper} (similitude x{})",
        paper / sf
    );
    println!(
        "  seed {seed}: arrivals etl-backfill @ 0.0s ({waves} waves), q1 @ {q1_at:.1}s, q5 @ {q5_at:.1}s"
    );
    println!();

    // ---- 1. Q5's solo plan and movement decisions -----------------------
    let (q1_run, q1_phases) = engine.run_query_recorded(&tpch::query(1));
    let (q5_run, q5_phases) = engine.run_query_recorded(&tpch::query(5));
    println!("== solo q5 plan (idle cluster, closed-form) ==");
    println!(
        "  total {:.1}s, {} phases; join movement decisions:",
        q5_run.total_secs,
        q5_phases.len()
    );
    for d in q5_run.decisions.iter().filter(|d| d.chosen != "none") {
        print_decision(d);
    }
    println!();
    drop(q1_run);

    let jobs = |q1p: Vec<Phase>, q5p: Vec<Phase>| {
        vec![
            etl_job(&params, lineitem_bytes, waves, 0.0),
            JobSpec {
                name: "q1".into(),
                arrival_secs: q1_at,
                phases: q1p,
            },
            JobSpec {
                name: "q5".into(),
                arrival_secs: q5_at,
                phases: q5p,
            },
        ]
    };

    // ---- 2. fixed-plan mix (baseline) -----------------------------------
    let mut exec = ClusterExec::new(params.clone());
    let timeline = Rc::new(RefCell::new(TimelineProbe::new(simkit::secs(10.0))));
    exec.set_probe(Some(timeline.clone() as Rc<RefCell<dyn Probe>>));
    let fixed_outcomes = exec.run_mix(jobs(q1_phases.clone(), q5_phases.clone()));
    exec.set_probe(None);
    let fixed_trace = exec.take_trace();
    let fixed_fp = fingerprint(&fixed_outcomes, &fixed_trace);
    println!("== fixed-plan mix (baseline) ==");
    print_outcomes(&fixed_outcomes);
    println!();

    // ---- 3. non-adaptive equivalence ------------------------------------
    // The adaptive path with identity re-planners must replay the fixed
    // schedule bit for bit: phases bind lazily but binding is pure, and a
    // `None` re-plan never touches the tail.
    let mut exec_id = ClusterExec::new(params.clone());
    let id_outcomes = exec_id.run_mix_adaptive(
        jobs(q1_phases.clone(), q5_phases.clone())
            .into_iter()
            .map(|spec| MixJob::adaptive(spec, |_| None))
            .collect(),
    );
    let id_fp = fingerprint(&id_outcomes, exec_id.trace());
    assert_eq!(
        fixed_fp, id_fp,
        "identity re-planners must not perturb the schedule"
    );
    println!("== non-adaptive equivalence ==");
    println!("  run_mix_adaptive with identity re-planners vs run_mix:");
    println!("  outcomes and span trace bitwise identical (asserted in-process)");
    println!();

    // ---- 4. the adaptive mix --------------------------------------------
    let mut exec_ad = ClusterExec::new(params.clone());
    let crit = Rc::new(RefCell::new(CritPathProbe::new()));
    let sensor = Rc::new(RefCell::new(NicWaitSensor::new()));
    let ad_timeline = Rc::new(RefCell::new(TimelineProbe::new(simkit::secs(10.0))));
    let tee = Tee::of(vec![
        crit.clone() as Rc<RefCell<dyn Probe>>,
        sensor.clone() as Rc<RefCell<dyn Probe>>,
        ad_timeline.clone() as Rc<RefCell<dyn Probe>>,
    ]);
    exec_ad.set_probe(Some(Rc::new(RefCell::new(tee)) as Rc<RefCell<dyn Probe>>));

    let tail = Rc::new(RefCell::new(AdaptiveTail::new(
        params.clone(),
        &q5_run.decisions,
    )));
    let replanner = {
        let (crit, sensor, tail) = (crit.clone(), sensor.clone(), tail.clone());
        move |ctx: &cluster::ReplanCtx<'_>| {
            let verdicts: Vec<BlameVerdict> = crit
                .borrow()
                .spans()
                .iter()
                .map(|s| {
                    let v = s.verdict();
                    BlameVerdict {
                        span: v.span,
                        label: v.label.to_string(),
                        share: v.share,
                        net_svc_secs: v.net_svc_secs,
                        net_que_secs: v.net_que_secs,
                    }
                })
                .collect();
            let mean_wait = sensor.borrow().mean_nic_wait_secs();
            let (fb, evidence) = live_costs(&verdicts, mean_wait);
            tail.borrow_mut()
                .replan(ctx.remaining, &fb, &evidence, ctx.now_secs)
        }
    };
    let mix_jobs: Vec<MixJob> = jobs(q1_phases, q5_phases)
        .into_iter()
        .map(|spec| {
            if spec.name == "q5" {
                // `replanner` is FnMut and q5 is unique, so moving it into
                // the one adaptive job is fine.
                MixJob::adaptive(spec, replanner.clone())
            } else {
                MixJob::fixed(spec)
            }
        })
        .collect();
    let ad_outcomes = exec_ad.run_mix_adaptive(mix_jobs);
    exec_ad.set_probe(None);
    drop(replanner);

    println!("== adaptive mix (q5 re-planned at phase boundaries from live blame) ==");
    print_outcomes(&ad_outcomes);
    let tail = Rc::try_unwrap(tail)
        .ok()
        .expect("replanner dropped")
        .into_inner();
    println!("  mid-flight swaps: {}", tail.swaps().len());
    for s in tail.swaps() {
        println!();
        println!(
            "  {}: {} -> {}  (l {:.2} MB, r {:.2} MB)",
            s.name,
            s.closed_form,
            s.chosen,
            s.l_bytes as f64 / (1u64 << 20) as f64,
            s.r_bytes as f64 / (1u64 << 20) as f64
        );
        if let Some(e) = &s.evidence {
            println!("      evidence: {e}");
        }
        for (label, closed, eff) in &s.options {
            let mark = if *label == s.chosen {
                "<- swapped in"
            } else if *label == s.closed_form {
                "<- was scheduled"
            } else {
                ""
            };
            let line = format!(
                "      {:<16} closed {:>8.1}s   live effective {:>8.1}s  {}",
                label, closed, eff, mark
            );
            println!("{}", line.trim_end());
        }
    }
    println!();

    // ---- 5. makespan comparison -----------------------------------------
    let span = |outs: &[JobOutcome], name: &str| {
        outs.iter()
            .find(|o| o.name == name)
            .map(|o| o.makespan_secs())
            .unwrap_or(0.0)
    };
    println!("== makespans under contention ==");
    println!(
        "  q5: fixed plan {:.1}s -> adaptive {:.1}s",
        span(&fixed_outcomes, "q5"),
        span(&ad_outcomes, "q5")
    );
    let delta = span(&fixed_outcomes, "q5") - span(&ad_outcomes, "q5");
    if delta.abs() < 1e-9 && !tail.swaps().is_empty() {
        println!(
            "  (every flip was reverted before its movement ran, so the realized \
             plan — and the clock — match the fixed plan)"
        );
    }

    if let Some(path) = trace_path {
        let fixed_tl = timeline.borrow();
        let ad_tl = ad_timeline.borrow();
        let procs: Vec<(&str, &TimelineProbe)> =
            vec![("mix-fixed", &fixed_tl), ("mix-adaptive", &ad_tl)];
        std::fs::write(&path, obs::chrome_trace(&procs)).expect("write trace");
        eprintln!("(wrote Chrome trace to {path} — load it in Perfetto)");
    }
}
