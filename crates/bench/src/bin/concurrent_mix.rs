//! Concurrent workload mix: TPC-H Q5 + Q1 + a background ETL scan job
//! admission-scheduled through the same simulated cluster, then the
//! measured queue waits fed back into the PDW optimizer's movement cost
//! estimates (`pdw::FeedbackCosts`).
//!
//! Sections of the artifact:
//!   1. solo baselines — Q1/Q5 on an idle cluster (closed-form planning),
//!   2. the mix — `ClusterExec::run_mix` interleaves the three jobs with
//!      fair per-job round-robin dispatch; busiest-resource footer shows
//!      the contention (incl. pending queue wait),
//!   3. measured feedback — per-class inflation + per-movement wait derived
//!      from the mix's span trace and NIC timeline,
//!   4. re-planning all 22 queries under that feedback, printing every
//!      join decision that flips away from the closed-form choice,
//!   5. the mix re-run with feedback-planned queries.
//!
//! `--trace <path>` writes a Chrome Trace Event JSON of the mix;
//! `--timeline` appends ASCII timelines. The probe is attached either way
//! (the feedback needs the NIC depth series); it is passive, so the
//! printed tables are identical with and without the flags.

use cluster::{ClusterExec, JobSpec, Params, Phase};
use obs::TimelineProbe;
use pdw::{load_pdw, FeedbackCosts, PdwEngine};
use rand::{rngs::StdRng, Rng, SeedableRng};
use simkit::probe::Probe;
use simkit::trace::{ResKind, Trace};
use std::cell::RefCell;
use std::rc::Rc;
use tpch::{generate, GenConfig};

/// Background ETL backfill: `waves` sequential all-node phases, each node
/// scanning a slice from disk and forwarding it to its ring neighbour at
/// DMS bandwidth. Per-wave per-node volume is sized off the lineitem table
/// so the NIC pressure tracks the catalog scale.
fn etl_job(p: &Params, lineitem_bytes: u64, waves: usize, arrival_secs: f64) -> JobSpec {
    let per_node = lineitem_bytes as f64 / p.nodes as f64;
    let mut phases = Vec::new();
    for w in 0..waves {
        let mut ph = Phase::new(format!("wave{w}"));
        for n in 0..p.nodes {
            ph.disk_seq(n, per_node, p.pdw_scan_bw_per_node);
            ph.net_send(n, per_node, p.dms_bw_per_node);
            ph.net_recv((n + 1) % p.nodes, per_node, p.dms_bw_per_node);
        }
        phases.push(ph);
    }
    JobSpec {
        name: "etl-backfill".into(),
        arrival_secs,
        phases,
    }
}

/// Sum (service, wait) over the Net contributions of spans whose name
/// contains `marker` — the same classification `FeedbackCosts` uses, kept
/// here so the artifact can print the raw measurements behind the ratios.
fn net_service_wait(trace: &Trace, marker: &str) -> (f64, f64) {
    let (mut service, mut wait) = (0.0, 0.0);
    for span in &trace.spans {
        if !span.name.contains(marker) {
            continue;
        }
        for c in &span.contribs {
            if matches!(c.kind, ResKind::Net) {
                service += c.service;
                wait += c.queue_wait;
            }
        }
    }
    (service, wait)
}

fn print_footer(reports: &[simkit::resource::ResourceReport]) {
    let mut res: Vec<_> = reports.iter().filter(|r| r.busy_secs > 0.0).collect();
    res.sort_by(|a, b| b.busy_secs.total_cmp(&a.busy_secs));
    println!("busiest resources (simkit resource report):");
    for r in res.iter().take(8) {
        println!(
            "  {:>8.1}s busy  {:<16} {:>5} reqs  mean queue wait {:.3}s  pending wait {:.3}s  peak queue {}",
            r.busy_secs,
            r.name,
            r.completions,
            r.mean_queue_wait_secs,
            r.pending_wait_secs,
            r.max_queue_depth
        );
    }
    let left: usize = reports.iter().map(|r| r.queued_at_end).sum();
    if left > 0 {
        println!("  WARNING: {left} requests still queued at run end");
    }
}

struct MixResult {
    outcomes: Vec<cluster::JobOutcome>,
    reports: Vec<simkit::resource::ResourceReport>,
    trace: Trace,
    probe: TimelineProbe,
}

fn run_mix(params: &Params, jobs: Vec<JobSpec>) -> MixResult {
    let mut exec = ClusterExec::new(params.clone());
    let probe = Rc::new(RefCell::new(TimelineProbe::new(simkit::secs(10.0))));
    exec.set_probe(Some(probe.clone() as Rc<RefCell<dyn Probe>>));
    let outcomes = exec.run_mix(jobs);
    let reports = exec.resource_reports();
    exec.set_probe(None);
    let probe = Rc::try_unwrap(probe)
        .expect("exec released the probe")
        .into_inner();
    MixResult {
        outcomes,
        reports,
        trace: exec.take_trace(),
        probe,
    }
}

fn print_outcomes(outcomes: &[cluster::JobOutcome]) {
    println!(
        "  {:<14} {:>9} {:>9} {:>10} {:>7}",
        "job", "arrival", "end", "makespan", "phases"
    );
    for o in outcomes {
        println!(
            "  {:<14} {:>8.1}s {:>8.1}s {:>9.1}s {:>7}",
            o.name,
            o.arrival_secs,
            o.end_secs,
            o.makespan_secs(),
            o.phases
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sf = bench::arg_f64(&args, "--sf", 0.01);
    let paper = bench::arg_f64(&args, "--paper", 250.0);
    let seed = bench::arg_f64(&args, "--seed", 42.0) as u64;
    let waves = bench::arg_usize(&args, "--etl-waves", 6);
    let trace_path = bench::arg_str(&args, "--trace");
    let timeline = bench::has_flag(&args, "--timeline");

    let cat = generate(&GenConfig::new(sf));
    let params = Params::paper_dss().scaled(paper / sf);
    let (pdwcat, _) = load_pdw(&cat, &params);
    let lineitem_bytes = pdwcat.table("lineitem").data_bytes();
    let engine = PdwEngine::new(pdwcat);

    let mut rng = StdRng::seed_from_u64(seed);
    let q1_at = rng.gen_range(5.0..15.0);
    let q5_at = rng.gen_range(30.0..90.0);

    println!("concurrent workload mix — admission scheduling + measured-wait feedback");
    println!(
        "  catalog TPC-H SF {sf}, params scaled to paper SF {paper} (similitude x{})",
        paper / sf
    );
    println!(
        "  seed {seed}: arrivals etl-backfill @ 0.0s ({waves} waves), q1 @ {q1_at:.1}s, q5 @ {q5_at:.1}s"
    );
    println!();

    // ---- 1. solo baselines (idle cluster, closed-form planning) ---------
    let (q1_solo, q1_phases) = engine.run_query_recorded(&tpch::query(1));
    let (q5_solo, q5_phases) = engine.run_query_recorded(&tpch::query(5));
    println!("== solo baselines (idle cluster) ==");
    println!(
        "  Q1  total {:>7.1}s  ({} steps, {} rows)",
        q1_solo.total_secs,
        q1_solo.steps.len(),
        q1_solo.rows.len()
    );
    println!(
        "  Q5  total {:>7.1}s  ({} steps, {} rows)",
        q5_solo.total_secs,
        q5_solo.steps.len(),
        q5_solo.rows.len()
    );
    println!();

    // ---- 2. the mix (closed-form plans) ---------------------------------
    let jobs = vec![
        etl_job(&params, lineitem_bytes, waves, 0.0),
        JobSpec {
            name: "q1".into(),
            arrival_secs: q1_at,
            phases: q1_phases.clone(),
        },
        JobSpec {
            name: "q5".into(),
            arrival_secs: q5_at,
            phases: q5_phases,
        },
    ];
    let mix = run_mix(&params, jobs);
    println!("== mix run (closed-form plans) ==");
    print_outcomes(&mix.outcomes);
    print_footer(&mix.reports);
    println!();

    // ---- 3. measured feedback -------------------------------------------
    let width = mix.probe.bucket_width();
    let mut depth_windows = Vec::new();
    for i in 0..mix.probe.bucket_count() {
        let nic: Vec<_> = mix
            .probe
            .resources()
            .iter()
            .filter(|s| s.name.contains("nic"))
            .collect();
        let depth: f64 = nic.iter().map(|s| s.mean_depth(i, width)).sum::<f64>() / nic.len() as f64;
        if depth > 0.0 {
            depth_windows.push(depth);
        }
    }
    let fb = FeedbackCosts::from_observation(&mix.reports, &mix.trace, &depth_windows);
    let (sh_service, sh_wait) = net_service_wait(&mix.trace, "shuffle:");
    let (rp_service, rp_wait) = net_service_wait(&mix.trace, "replicate:");
    println!("== measured feedback (from the mix trace + NIC timeline) ==");
    println!(
        "  shuffle inflation   {:>6.3}  (Net service {:.1}s, queue wait {:.1}s over shuffle: spans)",
        fb.shuffle_inflation, sh_service, sh_wait
    );
    println!(
        "  replicate inflation {:>6.3}  (Net service {:.1}s, queue wait {:.1}s over replicate: spans)",
        fb.replicate_inflation, rp_service, rp_wait
    );
    println!(
        "  net wait / movement {:>6.1}s  (mean NIC queue depth over {} active {:.0}s windows × mean NIC service)",
        fb.net_wait_per_move_secs,
        depth_windows.len(),
        simkit::as_secs(width)
    );
    println!();

    // ---- 4. re-plan all 22 queries under feedback -----------------------
    let fb_engine = engine.with_feedback(fb);
    println!("== optimizer re-planning under measured feedback (22 queries) ==");
    let (mut n_decisions, mut n_flips, mut q_flipped) = (0usize, 0usize, 0usize);
    for q in 1..=tpch::QUERY_COUNT {
        let run = fb_engine.run_query(&tpch::query(q));
        n_decisions += run.decisions.len();
        let flips: Vec<_> = run.decisions.iter().filter(|d| d.flipped()).collect();
        if flips.is_empty() {
            continue;
        }
        q_flipped += 1;
        n_flips += flips.len();
        for d in flips {
            println!(
                "  Q{q} {} (l {:.2} MB, r {:.2} MB): closed-form {} -> feedback {}",
                d.name,
                d.l_bytes as f64 / (1u64 << 20) as f64,
                d.r_bytes as f64 / (1u64 << 20) as f64,
                d.closed_form,
                d.chosen
            );
            for (label, closed, eff) in &d.options {
                let mark = if *label == d.chosen {
                    "<- chosen"
                } else if *label == d.closed_form {
                    "<- closed-form pick"
                } else {
                    ""
                };
                let line = format!(
                    "      {:<16} closed {:>8.1}s   effective {:>8.1}s  {}",
                    label, closed, eff, mark
                );
                println!("{}", line.trim_end());
            }
        }
    }
    println!(
        "  {n_flips} of {n_decisions} join movement decisions flipped, across {q_flipped} of {} queries",
        tpch::QUERY_COUNT
    );
    println!();

    // ---- 5. feedback-planned mix re-run ---------------------------------
    let (_, q1_fb_phases) = fb_engine.run_query_recorded(&tpch::query(1));
    let (_, q5_fb_phases) = fb_engine.run_query_recorded(&tpch::query(5));
    let jobs = vec![
        etl_job(&params, lineitem_bytes, waves, 0.0),
        JobSpec {
            name: "q1".into(),
            arrival_secs: q1_at,
            phases: q1_fb_phases,
        },
        JobSpec {
            name: "q5".into(),
            arrival_secs: q5_at,
            phases: q5_fb_phases,
        },
    ];
    let remix = run_mix(&params, jobs);
    println!("== mix re-run (feedback-planned queries) ==");
    print_outcomes(&remix.outcomes);
    let span = |r: &MixResult, name: &str| {
        r.outcomes
            .iter()
            .find(|o| o.name == name)
            .map(|o| o.makespan_secs())
            .unwrap_or(0.0)
    };
    println!(
        "  q5 makespan under contention: closed-form plan {:.1}s -> feedback plan {:.1}s",
        span(&mix, "q5"),
        span(&remix, "q5")
    );

    if timeline {
        println!();
        print!(
            "{}",
            obs::ascii_timeline("mix (closed-form plans)", &mix.probe)
        );
    }
    if let Some(path) = trace_path {
        let procs: Vec<(&str, &TimelineProbe)> =
            vec![("mix", &mix.probe), ("mix-feedback", &remix.probe)];
        std::fs::write(&path, obs::chrome_trace(&procs)).expect("write trace");
        eprintln!("(wrote Chrome trace to {path} — load it in Perfetto)");
    }
}
