//! Ablation — §3.4.3's isolation experiment: SQL-CS workload A at a 40 k
//! target under read committed vs read uncommitted (paper: read latency
//! dropped to 15 ms with uncommitted reads; updates stayed ~69 ms).

use elephants_core::report::TableBuilder;
use elephants_core::serving::ServingConfig;
use simkit::Sim;
use sqlengine::{IsolationLevel, SqlCluster};
use ycsb::driver::{run_workload, RunConfig};
use ycsb::workload::{OpType, Workload};

fn main() {
    let cfg = ServingConfig::default();
    let mut t = TableBuilder::new(
        "Ablation: SQL-CS isolation level (workload A, saturating target)",
        &[
            "Isolation",
            "Achieved",
            "Read latency (ms)",
            "Update latency (ms)",
        ],
    );
    for (label, iso) in [
        ("read committed", IsolationLevel::ReadCommitted),
        ("read uncommitted", IsolationLevel::ReadUncommitted),
    ] {
        let params = cfg.params();
        let mut sim: Sim<()> = Sim::new();
        let sql = SqlCluster::build_with_isolation(&mut sim, &params, iso);
        sql.load(cfg.n_records());
        let horizon = simkit::secs(cfg.warmup_secs + cfg.measure_secs);
        sql.start_checkpoints(&mut sim, horizon);
        // The paper's effect shows at saturation: writers hold X locks
        // across queued disk reads, and read-committed readers of hot keys
        // wait behind them. (Our scaled-down keyspace saturates later than
        // the paper's 40 k point — see EXPERIMENTS.md.)
        let rc = RunConfig {
            target_ops_per_sec: 160e3,
            threads: cfg.threads,
            warmup_secs: cfg.warmup_secs,
            measure_secs: cfg.measure_secs,
            seed: cfg.seed,
            n_records: cfg.n_records(),
            max_scan_len: 1000,
        };
        let r = run_workload(&mut sim, sql, Workload::A, &rc);
        t.row(vec![
            label.to_string(),
            format!("{:.0}", r.achieved_ops),
            format!("{:.2}", r.latencies[&OpType::Read].mean_ms),
            format!("{:.2}", r.latencies[&OpType::Update].mean_ms),
        ]);
    }
    println!("{}", t.to_markdown());
    println!("paper @40k: uncommitted reads 15 ms vs higher under read committed");
}
