//! Regenerates Table 5: the time breakdown of Q22's four sub-queries at
//! each scale factor (paper rows: sub1 85/104/169/263, sub2 38/51/51/63,
//! sub3 109/236/658/2234, sub4 654/735/797/813 — sub4 is dominated by the
//! ~400 s failed map-side join at every scale).

use cluster::Params;
use elephants_core::report::TableBuilder;
use hive::{load_warehouse, HiveEngine};
use tpch::{generate, GenConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sim_scale = bench::arg_f64(&args, "--sf", 0.01);
    let cat = generate(&GenConfig::new(sim_scale));

    let mut t = TableBuilder::new(
        "Table 5 — Time breakdown for Query 22 (seconds)",
        &[
            "Sub-query",
            "SF = 250 GB",
            "SF = 1 TB",
            "SF = 4 TB",
            "SF = 16 TB",
        ],
    );
    let mut rows: Vec<Vec<String>> = vec![
        vec!["Sub-query 1".into()],
        vec!["Sub-query 2".into()],
        vec!["Sub-query 3".into()],
        vec!["Sub-query 4".into()],
    ];
    for paper in [250.0, 1000.0, 4000.0, 16000.0] {
        let params = Params::paper_dss().scaled(paper / sim_scale);
        let (w, _) = load_warehouse(&cat, &params, None).expect("load");
        let engine = HiveEngine::new(w);
        let run = engine.run_query(&tpch::query(22)).expect("q22");
        let sub1 = run.secs_for("q22_sub1");
        let sub2 = run.secs_for("q22_sub2");
        let sub3 = run.secs_for("q22_sub3");
        let sub4 = run.total_secs - sub1 - sub2 - sub3;
        rows[0].push(format!("{sub1:.0}"));
        rows[1].push(format!("{sub2:.0}"));
        rows[2].push(format!("{sub3:.0}"));
        rows[3].push(format!("{sub4:.0}"));
    }
    for r in rows {
        t.row(r);
    }
    println!("{}", t.to_markdown());
    println!(
        "paper: sub1 85/104/169/263  sub2 38/51/51/63  sub3 109/236/658/2234  sub4 654/735/797/813"
    );
}
