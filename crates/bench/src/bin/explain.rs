//! EXPLAIN for a TPC-H query: the logical plan as written (Hive's
//! execution order), the Hive job DAG with simulated phase times, and the
//! PDW step list — side by side, the paper's §3.3.4.1 plan narratives as a
//! tool.
//!
//!     cargo run --release -p bench --bin explain -- 5 [--sf 0.01] [--paper 16000]
//!         [--trace out.json] [--timeline]
//!
//! `--trace` writes a Chrome Trace Event JSON (load it in Perfetto or
//! `chrome://tracing`) with one process per engine; `--timeline` appends an
//! ASCII phase/utilization timeline. Both come from a passive probe — the
//! numbers above them are byte-identical with and without the flags.

use cluster::Params;
use hive::{load_warehouse, HiveEngine};
use obs::TimelineProbe;
use pdw::{load_pdw, PdwEngine};
use relational::display::plan_to_string;
use simkit::probe::Probe;
use std::cell::RefCell;
use std::rc::Rc;
use tpch::{generate, GenConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let q: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let sf = bench::arg_f64(&args, "--sf", 0.01);
    let paper = bench::arg_f64(&args, "--paper", 16000.0);
    let trace_path = bench::arg_str(&args, "--trace");
    let timeline = bench::has_flag(&args, "--timeline");
    let observing = trace_path.is_some() || timeline;
    let mk_probe = || Rc::new(RefCell::new(TimelineProbe::new(simkit::secs(1.0))));
    let as_dyn = |p: &Rc<RefCell<TimelineProbe>>| p.clone() as Rc<RefCell<dyn Probe>>;
    let unwrap = |p: Rc<RefCell<TimelineProbe>>| {
        Rc::try_unwrap(p)
            .expect("engine released the probe")
            .into_inner()
    };

    let plan = tpch::query(q);
    println!("== Q{q} logical plan (written order = Hive's execution order) ==\n");
    println!("{}", plan_to_string(&plan));

    let cat = generate(&GenConfig::new(sf));
    let params = Params::paper_dss().scaled(paper / sf);

    let (w, _) = load_warehouse(&cat, &params, None).expect("hive load");
    let hive = HiveEngine::new(w);
    let hprobe = observing.then(mk_probe);
    let hrun = hive
        .run_query_probed(&plan, hprobe.as_ref().map(as_dyn))
        .expect("hive run");
    println!(
        "== Hive job DAG @ {paper:.0} GB — total {:.0}s ==\n",
        hrun.total_secs
    );
    for j in &hrun.jobs {
        println!(
            "  {:>8.1}s  {:<28} maps={:<6} reduces={:<4} map_phase={:.0}s",
            j.report.total, j.label, j.report.n_maps, j.report.n_reduces, j.report.map_done
        );
    }
    let hu = hrun.util();
    println!(
        "\n  resource totals: {}",
        elephants_core::report::util_line(&hu)
    );

    let (pc, _) = load_pdw(&cat, &params);
    let pdw = PdwEngine::new(pc);
    let pprobe = observing.then(mk_probe);
    let prun = pdw.run_query_probed(&plan, pprobe.as_ref().map(as_dyn));
    println!(
        "\n== PDW step list @ {paper:.0} GB — total {:.0}s (speedup {:.1}x) ==\n",
        prun.total_secs,
        hrun.total_secs / prun.total_secs
    );
    for s in &prun.trace.spans {
        let u = s.util();
        println!(
            "  {:>8.1}s  {:<28} disk {:>7.1}s  cpu {:>7.1}s  net {:>7.1}s  wait {:.3}s",
            s.secs(),
            s.name,
            u.disk_busy,
            u.cpu_busy,
            u.net_busy,
            u.mean_wait()
        );
    }
    println!(
        "\n  resource totals: {}",
        elephants_core::report::util_line(&prun.trace.util())
    );

    assert!(
        relational::testing::rows_approx_eq(&hrun.rows, &prun.rows, 1e-6),
        "engines disagree"
    );
    println!("\n(answers verified identical: {} rows)", prun.rows.len());

    if observing {
        let hp = unwrap(hprobe.expect("observing"));
        let pp = unwrap(pprobe.expect("observing"));
        if timeline {
            println!();
            print!("{}", obs::ascii_timeline(&format!("hive Q{q}"), &hp));
            println!();
            print!("{}", obs::ascii_timeline(&format!("pdw Q{q}"), &pp));
        }
        if let Some(path) = trace_path {
            let doc = obs::chrome_trace(&[("hive", &hp), ("pdw", &pp)]);
            std::fs::write(&path, doc).expect("write trace");
            eprintln!("(wrote Chrome trace to {path} — load it in Perfetto)");
        }
    }
}
