//! EXPLAIN for a TPC-H query: the logical plan as written (Hive's
//! execution order), the Hive job DAG with simulated phase times, and the
//! PDW step list — side by side, the paper's §3.3.4.1 plan narratives as a
//! tool.
//!
//!     cargo run --release -p bench --bin explain -- 5 [--sf 0.01] [--paper 16000]

use cluster::Params;
use hive::{load_warehouse, HiveEngine};
use pdw::{load_pdw, PdwEngine};
use relational::display::plan_to_string;
use tpch::{generate, GenConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let q: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let sf = bench::arg_f64(&args, "--sf", 0.01);
    let paper = bench::arg_f64(&args, "--paper", 16000.0);

    let plan = tpch::query(q);
    println!("== Q{q} logical plan (written order = Hive's execution order) ==\n");
    println!("{}", plan_to_string(&plan));

    let cat = generate(&GenConfig::new(sf));
    let params = Params::paper_dss().scaled(paper / sf);

    let (w, _) = load_warehouse(&cat, &params, None).expect("hive load");
    let hive = HiveEngine::new(w);
    let hrun = hive.run_query(&plan).expect("hive run");
    println!(
        "== Hive job DAG @ {paper:.0} GB — total {:.0}s ==\n",
        hrun.total_secs
    );
    for j in &hrun.jobs {
        println!(
            "  {:>8.1}s  {:<28} maps={:<6} reduces={:<4} map_phase={:.0}s",
            j.report.total, j.label, j.report.n_maps, j.report.n_reduces, j.report.map_done
        );
    }
    let hu = hrun.util();
    println!(
        "\n  resource totals: {}",
        elephants_core::report::util_line(&hu)
    );

    let (pc, _) = load_pdw(&cat, &params);
    let pdw = PdwEngine::new(pc);
    let prun = pdw.run_query(&plan);
    println!(
        "\n== PDW step list @ {paper:.0} GB — total {:.0}s (speedup {:.1}x) ==\n",
        prun.total_secs,
        hrun.total_secs / prun.total_secs
    );
    for s in &prun.trace.spans {
        let u = s.util();
        println!(
            "  {:>8.1}s  {:<28} disk {:>7.1}s  cpu {:>7.1}s  net {:>7.1}s  wait {:.3}s",
            s.secs(),
            s.name,
            u.disk_busy,
            u.cpu_busy,
            u.net_busy,
            u.mean_wait()
        );
    }
    println!(
        "\n  resource totals: {}",
        elephants_core::report::util_line(&prun.trace.util())
    );

    assert!(
        relational::testing::rows_approx_eq(&hrun.rows, &prun.rows, 1e-6),
        "engines disagree"
    );
    println!("\n(answers verified identical: {} rows)", prun.rows.len());
}
