//! Ablation — cost-based join ordering (§3.3.4.3 point 2): how much of the
//! Hive-vs-PDW gap closes if Hive executes Q5 with a PDW-style join order
//! (selective `orders` filter applied before touching `lineitem`), instead
//! of the hand-written script order (nation ⋈ region ⋈ supplier ⋈ lineitem
//! first, the expensive common join the paper dissects).

use cluster::Params;
use elephants_core::report::TableBuilder;
use hive::{load_warehouse, HiveEngine};
use relational::expr::{and, col, lit_date, lit_f64, lit_str};
use relational::{AggCall, JoinKind, LogicalPlan, SortKey};
use tpch::{generate, GenConfig};

/// Q5 rewritten in the join order PDW's optimizer picks: filter orders by
/// date first, join customer (pruning by nation via region), and only then
/// touch lineitem, supplier last.
fn q5_optimized() -> LogicalPlan {
    let scan = |t: &str, cols: &[&str]| {
        let schema = tpch::schema::table_schema(t);
        LogicalPlan::scan(t).project(
            cols.iter()
                .map(|c| (col(schema.col(c)), *c))
                .collect::<Vec<_>>(),
        )
    };
    // orders filtered by date: 0 o_orderkey, 1 o_custkey
    let orders = {
        let s = tpch::schema::orders();
        LogicalPlan::scan("orders")
            .filter(and(vec![
                col(s.col("o_orderdate")).ge(lit_date(1994, 1, 1)),
                col(s.col("o_orderdate")).lt(lit_date(1995, 1, 1)),
            ]))
            .project(vec![
                (col(s.col("o_orderkey")), "o_orderkey"),
                (col(s.col("o_custkey")), "o_custkey"),
            ])
    };
    // customer: 0 c_custkey, 1 c_nationkey → orders ⋈ customer
    let t = orders.join(
        scan("customer", &["c_custkey", "c_nationkey"]),
        vec![(1, 0)],
    );
    // nation(⋈ region ASIA): 0 n_nationkey, 1 n_name, 2 n_regionkey, 3 r_regionkey
    let nr = scan("nation", &["n_nationkey", "n_name", "n_regionkey"]).join(
        {
            let s = tpch::schema::region();
            LogicalPlan::scan("region")
                .filter(col(s.col("r_name")).eq(lit_str("ASIA")))
                .project(vec![(col(s.col("r_regionkey")), "r_regionkey")])
        },
        vec![(2, 0)],
    );
    // t(0..=3) ⋈ nr on c_nationkey: + 4 n_nationkey, 5 n_name, 6.., 7
    let t = t.join(nr, vec![(3, 0)]);
    // lineitem: 0 l_orderkey, 1 l_suppkey, 2 price, 3 disc → + 8..11
    let t = t.join(
        scan(
            "lineitem",
            &["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"],
        ),
        vec![(0, 0)],
    );
    // supplier last, with the nation-consistency residual: + 12, 13
    let t = t.join_kind(
        scan("supplier", &["s_suppkey", "s_nationkey"]),
        JoinKind::Inner,
        vec![(9, 0)],
        Some(col(13).eq(col(3))),
    );
    t.aggregate(
        vec![(col(5), "n_name")],
        vec![AggCall::sum(
            col(10).mul(lit_f64(1.0).sub(col(11))),
            "revenue",
        )],
    )
    .sort(vec![SortKey::desc(col(1))])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sf = bench::arg_f64(&args, "--sf", 0.01);
    let paper = bench::arg_f64(&args, "--paper", 1000.0);
    let cat = generate(&GenConfig::new(sf));
    let params = Params::paper_dss().scaled(paper / sf);
    let (w, _) = load_warehouse(&cat, &params, None).unwrap();
    let engine = HiveEngine::new(w);

    let script = engine.run_query(&tpch::query(5)).unwrap();
    let optimized = engine.run_query(&q5_optimized()).unwrap();
    assert!(
        relational::testing::rows_approx_eq(&script.rows, &optimized.rows, 1e-9),
        "both orders must compute the same answer"
    );

    let mut t = TableBuilder::new(
        format!("Ablation: Q5 join order on Hive @ {paper:.0} GB"),
        &["Plan", "Seconds"],
    );
    t.row(vec![
        "script order (nation⋈region⋈supplier⋈lineitem first)".into(),
        format!("{:.0}", script.total_secs),
    ]);
    t.row(vec![
        "cost-based order (filtered orders first, lineitem late)".into(),
        format!("{:.0}", optimized.total_secs),
    ]);
    println!("{}", t.to_markdown());
    let ratio = script.total_secs / optimized.total_secs;
    println!("script/optimized = {ratio:.2}x");
    if ratio > 1.1 {
        println!("join order alone recovers part of PDW's Q5 win (§3.3.4.3 point 2).");
    } else {
        println!(
            "join order alone does NOT close the gap: every order still shuffles\n\
             lineitem with a common join, because intermediate results lose their\n\
             bucketing — the paper's deeper point (§3.3.4.3 point 3). PDW wins by\n\
             combining ordering with partitioning-aware local joins."
        );
    }
}
