//! Per-tenant SLO burn rates over one YCSB point per system: client
//! threads are partitioned round-robin into tenants, every completed op
//! feeds the streaming metric registry, and each (tenant, policy) cell is
//! judged by multi-window burn rate — long horizon (all windows) and
//! short horizon (the most recent few) both have to run hot before the
//! verdict escalates (`obs::slo`).
//!
//! ```text
//! cargo run --release -p bench --bin slo_report -- \
//!     [--workload A] [--target 40000] [--windows 8] [--tenants 4]
//!     [--short 2] [--k 2500]
//! ```
//!
//! The observer is passive and the registry deterministic, so the default
//! output is the byte-diff-gated `results/slo_report_a.txt`.

use bench::figures::figure_config;
use elephants_core::serving::{run_point_profiled_tenants, SystemKind};
use obs::SloPolicy;
use ycsb::workload::Workload;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = figure_config(&args);
    let target = bench::arg_f64(&args, "--target", 40e3);
    let windows = bench::arg_usize(&args, "--windows", 8);
    let tenants = bench::arg_usize(&args, "--tenants", 4) as u32;
    let short = bench::arg_usize(&args, "--short", 2) as u64;
    let workload = match bench::arg_str(&args, "--workload").as_deref() {
        None | Some("A") | Some("a") => Workload::A,
        Some("B") | Some("b") => Workload::B,
        Some("C") | Some("c") => Workload::C,
        Some("D") | Some("d") => Workload::D,
        Some("E") | Some("e") => Workload::E,
        Some(other) => panic!("unknown workload {other}"),
    };
    // Targets sit between SQL-CS's latencies (~11 ms p95 at this point)
    // and the Mongo variants' (~45–70 ms p95), so the committed artifact
    // shows all three verdicts: healthy tenants, a slow warning burn, and
    // a tight tail objective burning hot enough to page.
    let policies = [
        SloPolicy::new("read", simkit::millis(25.0), 0.95),
        SloPolicy::new("update", simkit::millis(30.0), 0.99),
    ];

    println!("# Per-tenant SLO burn rates — YCSB workload {workload:?} @ target {target:.0} ops/s");
    println!(
        "# {tenants} tenants (client threads round-robin); {windows} windows over {:.0}s; short horizon = last {short} windows",
        cfg.measure_secs
    );
    println!(
        "# burn 1.0 = spending exactly the error budget; WARN when both horizons ≥2x, PAGE when both ≥10x"
    );
    for system in SystemKind::all() {
        eprintln!("  {} ...", system.label());
        let (point, _wl, reg) =
            run_point_profiled_tenants(&cfg, system, workload, target, windows, tenants);
        let evals = obs::slo::evaluate(&reg, system.label(), &policies, short);
        println!();
        print!(
            "{}",
            obs::slo::render(
                &format!(
                    "{} — achieved {:.0} ops/s{}",
                    system.label(),
                    point.achieved_ops,
                    if point.crashed { " (CRASHED)" } else { "" }
                ),
                &evals
            )
        );
    }
}
