//! Diagnostic: print the PDW step breakdown for chosen queries (the Q5/Q19
//! plan narratives of §3.3.4.1), with per-step disk/CPU/NIC busy time and
//! queue waits from the DES trace, plus the busiest cluster resources from
//! the simkit resource reports.

use cluster::Params;
use elephants_core::report::span_table;
use pdw::{load_pdw, PdwEngine};
use tpch::{generate, GenConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sf = bench::arg_f64(&args, "--sf", 0.01);
    let paper = bench::arg_f64(&args, "--paper", 250.0);
    let queries: Vec<usize> = args
        .windows(2)
        .find(|w| w[0] == "--queries")
        .map(|w| w[1].split(',').filter_map(|s| s.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 5, 19]);

    let cat = generate(&GenConfig::new(sf));
    let params = Params::paper_dss().scaled(paper / sf);
    let (pdwcat, _) = load_pdw(&cat, &params);
    let engine = PdwEngine::new(pdwcat);
    for q in queries {
        let run = engine.run_query(&tpch::query(q));
        let spans: Vec<_> = run
            .trace
            .spans
            .iter()
            .filter(|s| s.secs() > 0.05)
            .cloned()
            .collect();
        println!(
            "{}",
            span_table(
                format!("Q{q} @ paper SF {paper} — total {:.1}s", run.total_secs),
                &spans
            )
            .to_markdown()
        );

        let mut res: Vec<_> = run
            .resources
            .iter()
            .filter(|r| r.busy_secs > 0.0)
            .cloned()
            .collect();
        res.sort_by(|a, b| b.busy_secs.total_cmp(&a.busy_secs));
        println!("busiest resources (simkit resource report):");
        for r in res.iter().take(6) {
            println!(
                "  {:>8.1}s busy  {:<16} {:>5} reqs  mean queue wait {:.3}s",
                r.busy_secs, r.name, r.completions, r.mean_queue_wait_secs
            );
        }
        println!();
    }
}
