//! Diagnostic: print the PDW step breakdown for chosen queries (the Q5/Q19
//! plan narratives of §3.3.4.1), with per-step disk/CPU/NIC busy time and
//! queue waits from the DES trace, plus the busiest cluster resources from
//! the simkit resource reports.

//! `--trace <path>` writes a Chrome Trace Event JSON (one process per
//! query — load in Perfetto); `--timeline` appends ASCII timelines. Both
//! come from a passive probe: the tables are identical with and without.

use cluster::Params;
use elephants_core::report::span_table;
use obs::TimelineProbe;
use pdw::{load_pdw, PdwEngine};
use simkit::probe::Probe;
use std::cell::RefCell;
use std::rc::Rc;
use tpch::{generate, GenConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sf = bench::arg_f64(&args, "--sf", 0.01);
    let paper = bench::arg_f64(&args, "--paper", 250.0);
    let trace_path = bench::arg_str(&args, "--trace");
    let timeline = bench::has_flag(&args, "--timeline");
    let observing = trace_path.is_some() || timeline;
    let queries: Vec<usize> = args
        .windows(2)
        .find(|w| w[0] == "--queries")
        .map(|w| w[1].split(',').filter_map(|s| s.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 5, 19]);

    let cat = generate(&GenConfig::new(sf));
    let params = Params::paper_dss().scaled(paper / sf);
    let (pdwcat, _) = load_pdw(&cat, &params);
    let engine = PdwEngine::new(pdwcat);
    let mut probes: Vec<(String, TimelineProbe)> = Vec::new();
    for q in queries {
        let probe = observing.then(|| Rc::new(RefCell::new(TimelineProbe::new(simkit::secs(1.0)))));
        let run = engine.run_query_probed(
            &tpch::query(q),
            probe.clone().map(|p| p as Rc<RefCell<dyn Probe>>),
        );
        if let Some(p) = probe {
            let p = Rc::try_unwrap(p)
                .expect("engine released the probe")
                .into_inner();
            probes.push((format!("Q{q}"), p));
        }
        let spans: Vec<_> = run
            .trace
            .spans
            .iter()
            .filter(|s| s.secs() > 0.05)
            .cloned()
            .collect();
        println!(
            "{}",
            span_table(
                format!("Q{q} @ paper SF {paper} — total {:.1}s", run.total_secs),
                &spans
            )
            .to_markdown()
        );

        let mut res: Vec<_> = run
            .resources
            .iter()
            .filter(|r| r.busy_secs > 0.0)
            .cloned()
            .collect();
        res.sort_by(|a, b| b.busy_secs.total_cmp(&a.busy_secs));
        println!("busiest resources (simkit resource report):");
        for r in res.iter().take(6) {
            println!(
                "  {:>8.1}s busy  {:<16} {:>5} reqs  mean queue wait {:.3}s  pending wait {:.3}s  peak queue {}",
                r.busy_secs,
                r.name,
                r.completions,
                r.mean_queue_wait_secs,
                r.pending_wait_secs,
                r.max_queue_depth
            );
        }
        let left: usize = run.resources.iter().map(|r| r.queued_at_end).sum();
        if left > 0 {
            let pending: f64 = run.resources.iter().map(|r| r.pending_wait_secs).sum();
            println!(
                "  WARNING: {left} requests still queued at run end \
                 ({pending:.1}s pending wait accrued, uncounted in mean queue wait)"
            );
        }
        println!();
    }

    if timeline {
        for (name, p) in &probes {
            print!("{}", obs::ascii_timeline(name, p));
            println!();
        }
    }
    if let Some(path) = trace_path {
        let procs: Vec<(&str, &TimelineProbe)> =
            probes.iter().map(|(n, p)| (n.as_str(), p)).collect();
        std::fs::write(&path, obs::chrome_trace(&procs)).expect("write trace");
        eprintln!("(wrote Chrome trace to {path} — load it in Perfetto)");
    }
}
