//! Diagnostic: print the PDW step breakdown for chosen queries (the Q5/Q19
//! plan narratives of §3.3.4.1).

use cluster::Params;
use pdw::{load_pdw, PdwEngine};
use tpch::{generate, GenConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sf = bench::arg_f64(&args, "--sf", 0.01);
    let paper = bench::arg_f64(&args, "--paper", 250.0);
    let queries: Vec<usize> = args
        .windows(2)
        .find(|w| w[0] == "--queries")
        .map(|w| w[1].split(',').filter_map(|s| s.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 5, 19]);

    let cat = generate(&GenConfig::new(sf));
    let params = Params::paper_dss().scaled(paper / sf);
    let (pdwcat, _) = load_pdw(&cat, &params);
    let engine = PdwEngine::new(pdwcat);
    for q in queries {
        let run = engine.run_query(&tpch::query(q));
        println!("== Q{q} @ paper SF {paper}: total {:.1}s", run.total_secs);
        for s in &run.steps {
            if s.secs > 0.05 {
                println!("   {:>8.1}s  {}", s.secs, s.name);
            }
        }
    }
}
