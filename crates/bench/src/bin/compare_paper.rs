//! Per-query calibration report: measured vs. the paper's Table 3, with
//! measured/paper ratios and outlier flags. The regression dashboard for
//! the DSS cost model.
//!
//!     cargo run --release -p bench --bin compare_paper [--sf 0.02] [--scale 250]

use elephants_core::dss::{paper_disk_capacity, run_dss, DssConfig};
use elephants_core::report::TableBuilder;

/// Table 3 of the paper: Hive seconds at SF {250, 1000, 4000, 16000}.
/// `None` = did not complete (Q9 at 16 TB).
const PAPER_HIVE: [[Option<f64>; 4]; 22] = [
    [Some(207.0), Some(443.0), Some(1376.0), Some(5357.0)],
    [Some(411.0), Some(530.0), Some(1081.0), Some(3191.0)],
    [Some(508.0), Some(1125.0), Some(3789.0), Some(11644.0)],
    [Some(367.0), Some(855.0), Some(2120.0), Some(6508.0)],
    [Some(536.0), Some(1686.0), Some(5481.0), Some(19812.0)],
    [Some(79.0), Some(166.0), Some(537.0), Some(2131.0)],
    [Some(1007.0), Some(2447.0), Some(7694.0), Some(24887.0)],
    [Some(967.0), Some(2003.0), Some(6150.0), Some(18112.0)],
    [Some(2033.0), Some(7243.0), Some(27522.0), None],
    [Some(489.0), Some(1107.0), Some(2958.0), Some(13195.0)],
    [Some(242.0), Some(258.0), Some(695.0), Some(1964.0)],
    [Some(253.0), Some(490.0), Some(1597.0), Some(5123.0)],
    [Some(392.0), Some(629.0), Some(1428.0), Some(4577.0)],
    [Some(154.0), Some(353.0), Some(769.0), Some(2556.0)],
    [Some(444.0), Some(585.0), Some(1145.0), Some(2768.0)],
    [Some(460.0), Some(654.0), Some(1732.0), Some(5695.0)],
    [Some(654.0), Some(1717.0), Some(6334.0), Some(25662.0)],
    [Some(786.0), Some(2249.0), Some(8264.0), Some(25964.0)],
    [Some(376.0), Some(1069.0), Some(4005.0), Some(17644.0)],
    [Some(606.0), Some(1296.0), Some(2461.0), Some(11041.0)],
    [Some(1431.0), Some(3217.0), Some(13071.0), Some(40748.0)],
    [Some(908.0), Some(1145.0), Some(1744.0), Some(3402.0)],
];

/// Table 3 of the paper: PDW seconds at SF {250, 1000, 4000, 16000}.
const PAPER_PDW: [[f64; 4]; 22] = [
    [54.0, 212.0, 864.0, 3607.0],
    [7.0, 25.0, 115.0, 495.0],
    [32.0, 112.0, 606.0, 2572.0],
    [8.0, 54.0, 187.0, 629.0],
    [33.0, 80.0, 253.0, 1060.0],
    [5.0, 41.0, 142.0, 526.0],
    [19.0, 80.0, 240.0, 955.0],
    [9.0, 89.0, 238.0, 814.0],
    [207.0, 844.0, 3962.0, 15494.0],
    [14.0, 67.0, 265.0, 981.0],
    [3.0, 18.0, 99.0, 302.0],
    [5.0, 44.0, 192.0, 631.0],
    [51.0, 190.0, 772.0, 3061.0],
    [7.0, 64.0, 164.0, 640.0],
    [21.0, 99.0, 377.0, 1397.0],
    [36.0, 71.0, 223.0, 549.0],
    [93.0, 406.0, 1679.0, 6757.0],
    [20.0, 103.0, 482.0, 2880.0],
    [16.0, 73.0, 272.0, 958.0],
    [20.0, 101.0, 425.0, 1611.0],
    [31.0, 138.0, 927.0, 4736.0],
    [19.0, 71.0, 255.0, 1270.0],
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sim_scale = bench::arg_f64(&args, "--sf", 0.02);
    let scale = bench::arg_f64(&args, "--scale", 250.0);
    let scale_idx = match scale as u64 {
        250 => 0,
        1000 => 1,
        4000 => 2,
        16000 => 3,
        other => panic!("paper scale factors are 250/1000/4000/16000, got {other}"),
    };

    let config = DssConfig {
        sim_scale,
        paper_scales: vec![scale],
        queries: Vec::new(),
        disk_capacity_per_node: Some(paper_disk_capacity()),
    };
    eprintln!("running all 22 queries @ {scale:.0} GB (sim SF {sim_scale})...");
    let results = run_dss(&config);
    let run = &results.runs[0];

    let mut t = TableBuilder::new(
        format!("Calibration vs paper Table 3 @ {scale:.0} GB (seconds; ratio = measured/paper)"),
        &[
            "Query",
            "HIVE measured",
            "HIVE paper",
            "HIVE ratio",
            "PDW measured",
            "PDW paper",
            "PDW ratio",
            "flag",
        ],
    );
    let (mut h_sum, mut p_sum, mut n) = (0.0, 0.0, 0);
    for (i, cell) in run.cells.iter().enumerate() {
        let paper_h = PAPER_HIVE[i][scale_idx];
        let paper_p = PAPER_PDW[i][scale_idx];
        let h_ratio = match (cell.hive_secs, paper_h) {
            (Some(m), Some(p)) => Some(m / p),
            _ => None,
        };
        let p_ratio = cell.pdw_secs / paper_p;
        if let Some(hr) = h_ratio {
            h_sum += hr.ln();
            p_sum += p_ratio.ln();
            n += 1;
        }
        let flag = match h_ratio {
            Some(hr) if !(0.5..=2.0).contains(&hr) || !(0.5..=2.0).contains(&p_ratio) => ">2x off",
            None if paper_h.is_some() != cell.hive_secs.is_some() => "failure mismatch",
            None => "both failed (Q9@16TB)",
            _ => "",
        };
        t.row(vec![
            format!("Q{}", cell.query),
            cell.hive_secs
                .map(|v| format!("{v:.0}"))
                .unwrap_or("--".into()),
            paper_h.map(|v| format!("{v:.0}")).unwrap_or("--".into()),
            h_ratio.map(|v| format!("{v:.2}")).unwrap_or("--".into()),
            format!("{:.0}", cell.pdw_secs),
            format!("{paper_p:.0}"),
            format!("{p_ratio:.2}"),
            flag.to_string(),
        ]);
    }
    println!("{}", t.to_markdown());
    println!(
        "geometric-mean ratio: HIVE {:.2}, PDW {:.2} (1.00 = perfect calibration)",
        (h_sum / n as f64).exp(),
        (p_sum / n as f64).exp()
    );

    let mut pdw_u = simkit::trace::UtilSummary::default();
    let mut hive_u = simkit::trace::UtilSummary::default();
    for c in &run.cells {
        pdw_u.merge(&c.pdw_util);
        if let Some(u) = &c.hive_util {
            hive_u.merge(u);
        }
    }
    println!(
        "cluster totals @ {scale:.0} GB: HIVE {}",
        elephants_core::report::util_line(&hive_u)
    );
    println!(
        "cluster totals @ {scale:.0} GB: PDW  {}",
        elephants_core::report::util_line(&pdw_u)
    );
}
