//! Diagnostic: hit rates and lock fractions at one YCSB operating point.

use cluster::Params;
use elephants_core::serving::ServingConfig;
use simkit::Sim;
use sqlengine::SqlCluster;
use ycsb::driver::{run_workload, RunConfig};
use ycsb::workload::Workload;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = ServingConfig {
        k: bench::arg_f64(&args, "--k", 2500.0),
        warmup_secs: bench::arg_f64(&args, "--warmup", 3.0),
        measure_secs: bench::arg_f64(&args, "--measure", 6.0),
        ..ServingConfig::default()
    };
    let target = bench::arg_f64(&args, "--target", 160e3);
    let params: Params = cfg.params();
    let n = cfg.n_records();
    let mut sim: Sim<()> = Sim::new();
    let sql = SqlCluster::build(&mut sim, &params);
    sql.load(n);
    let rc = RunConfig {
        target_ops_per_sec: target,
        threads: 800,
        warmup_secs: cfg.warmup_secs,
        measure_secs: cfg.measure_secs,
        seed: 42,
        n_records: n,
        max_scan_len: 1000,
    };
    let r = run_workload(&mut sim, sql.clone(), Workload::C, &rc);
    println!(
        "records={} pool_pages/node={} achieved={:.0} hit_rate={:.3}",
        n,
        sql.nodes[0].borrow().pool.capacity(),
        r.achieved_ops,
        sql.hit_rate()
    );
    // Per-resource utilization for node 0 (simkit's accounting).
    let elapsed = simkit::as_secs(sim.now()).max(1e-9);
    let mut ids = vec![sql.cluster.nodes[0].cpu];
    ids.extend(sql.cluster.nodes[0].disks.iter().copied());
    for rep in simkit::resource::report(&sim, &ids) {
        println!(
            "  {:<14} busy {:>6.1}s ({:>5.1}%)  {:>8} ops  mean queue wait {:.2} ms",
            rep.name,
            rep.busy_secs,
            100.0 * rep.busy_secs / elapsed,
            rep.completions,
            rep.mean_queue_wait_secs * 1e3,
        );
    }
}
