//! Ablation — the paper's future-work configuration (§3.3.2): PDW ran
//! *without* indexes for fairness against Hive 0.7. How much faster would
//! PDW have been with secondary indexes on the predicate columns?

use cluster::Params;
use elephants_core::report::TableBuilder;
use pdw::{load_pdw, PdwEngine};
use tpch::{generate, GenConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sf = bench::arg_f64(&args, "--sf", 0.01);
    let paper = bench::arg_f64(&args, "--paper", 4000.0);
    let cat = generate(&GenConfig::new(sf));
    let params = Params::paper_dss().scaled(paper / sf);
    let (pdw_cat, _) = load_pdw(&cat, &params);
    let baseline = PdwEngine::new(pdw_cat);
    let (pdw_cat2, _) = load_pdw(&cat, &params);
    let indexed = PdwEngine::with_indexes(pdw_cat2);

    let mut t = TableBuilder::new(
        format!("Ablation: PDW with secondary indexes @ {paper:.0} GB (seconds)"),
        &["Query", "No indexes (paper)", "With indexes", "Speedup"],
    );
    for q in [1usize, 4, 6, 12, 14, 15, 19] {
        let plan = tpch::query(q);
        let a = baseline.run_query(&plan);
        let b = indexed.run_query(&plan);
        assert!(
            relational::testing::rows_approx_eq(&a.rows, &b.rows, 1e-9),
            "index path must not change Q{q}'s answer"
        );
        t.row(vec![
            format!("Q{q}"),
            format!("{:.0}", a.total_secs),
            format!("{:.0}", b.total_secs),
            format!("{:.2}", a.total_secs / b.total_secs),
        ]);
    }
    println!("{}", t.to_markdown());
    println!(
        "selective date-range queries (Q6, Q14, Q15) gain; Q1's 98% selectivity\n\
         keeps the full-scan path — indexing would widen PDW's lead further\n\
         (consistent with Pavlo et al. [19], which the paper cites)."
    );
}
