//! CI guard: parse a Chrome Trace Event JSON produced by `--trace` and
//! check its shape — valid JSON, a `traceEvents` array, at least one
//! process per expected engine, complete (`ph:"X"`) span events with
//! non-negative durations, and counter (`ph:"C"`) tracks.
//!
//!     cargo run --release -p bench --bin validate_trace -- trace.json [proc ...]

use obs::json::{parse, Json};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let path = args
        .get(1)
        .expect("usage: validate_trace <trace.json> [proc ...]");
    let text = std::fs::read_to_string(path).expect("read trace file");
    let doc = parse(&text).unwrap_or_else(|e| panic!("{path}: invalid JSON: {e}"));
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "empty trace");

    let mut procs = Vec::new();
    let mut spans = 0usize;
    let mut counters = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph field");
        match ph {
            "M" => {
                if ev.get("name").and_then(Json::as_str) == Some("process_name") {
                    let name = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .expect("process name");
                    procs.push(name.to_string());
                }
            }
            "X" => {
                spans += 1;
                let ts = ev.get("ts").and_then(Json::as_f64).expect("ts");
                let dur = ev.get("dur").and_then(Json::as_f64).expect("dur");
                assert!(
                    ts >= 0.0 && dur >= 0.0,
                    "negative span time: ts={ts} dur={dur}"
                );
                assert!(ev.get("name").and_then(Json::as_str).is_some(), "span name");
            }
            "C" => counters += 1,
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(spans > 0, "no span events");
    assert!(counters > 0, "no counter samples");
    for want in args.iter().skip(2) {
        assert!(
            procs.iter().any(|p| p == want),
            "missing process {want:?} (have {procs:?})"
        );
    }
    println!(
        "{path}: OK — {} events, {} processes {:?}, {spans} spans, {counters} counter samples",
        events.len(),
        procs.len(),
        procs
    );
}
