//! CI guard: validate a Chrome Trace Event JSON produced by `--trace`.
//!
//! The structural rules live in [`obs::validate`]: valid JSON with a
//! `traceEvents` array, known event phases, per-track `B`/`E` pairs
//! balanced LIFO by name, and `X` spans on one thread lane properly
//! nested (a child must not extend past its parent). This bin adds the
//! CI policy on top — the trace must contain spans and counter samples,
//! and every process named on the command line must be present.
//!
//!     cargo run --release -p bench --bin validate_trace -- trace.json [proc ...]

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let path = args
        .get(1)
        .expect("usage: validate_trace <trace.json> [proc ...]");
    let text = std::fs::read_to_string(path).expect("read trace file");
    let sum = obs::validate::validate_text(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
    assert!(sum.spans > 0, "no span events");
    assert!(sum.counters > 0, "no counter samples");
    for want in args.iter().skip(2) {
        assert!(
            sum.procs.iter().any(|p| p == want),
            "missing process {want:?} (have {:?})",
            sum.procs
        );
    }
    println!(
        "{path}: OK — {} events, {} processes {:?}, {} spans, {} B/E pairs, {} counter samples",
        sum.events,
        sum.procs.len(),
        sum.procs,
        sum.spans,
        sum.pairs,
        sum.counters
    );
}
