//! Scan/decode microbench over the three storage formats. Unlike the
//! ablations this measures REAL wall-clock decode throughput of the
//! simulator's own codecs — it answers "how fast does this host chew
//! through each layout", not "what would the 2012 cluster have done".
//! Output is JSON on stdout (committed as `results/BENCH_scan.json`,
//! not byte-diff gated: the numbers are host-dependent by design).

use std::time::Instant;
use storage::{ColBlockFile, RcFile};
use tpch::{generate, GenConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sf = bench::arg_f64(&args, "--sf", 0.01);
    let iters = bench::arg_usize(&args, "--iters", 3);
    let cat = generate(&GenConfig::new(sf));
    let table = cat.get("lineitem");
    let rows = &table.rows;
    let schema = &table.schema;

    let text_bytes = storage::text::encode(rows);
    let rc = RcFile::write(rows, schema, storage::rcfile::DEFAULT_ROW_GROUP);
    let cb = ColBlockFile::write(rows, schema, storage::colblock::DEFAULT_ROWS_PER_BLOCK);

    // (format, stored bytes, decode closure returning rows decoded)
    type Case<'a> = (&'a str, u64, Box<dyn Fn() -> usize + 'a>);
    let cases: Vec<Case> = vec![
        (
            "text",
            text_bytes.len() as u64,
            Box::new(|| storage::text::decode(&text_bytes, schema).len()),
        ),
        (
            "rcfile",
            rc.compressed_size(),
            Box::new(|| rc.read_all().len()),
        ),
        (
            "colblock",
            cb.compressed_size(),
            Box::new(|| cb.read_all().len()),
        ),
    ];

    println!("{{");
    println!("  \"bench\": \"scan_decode\",");
    println!("{},", bench::meta::machine_json("  "));
    println!(
        "{},",
        bench::meta::config_json("  ", iters, "best_of_n_wall_clock")
    );
    println!("  \"table\": \"lineitem\",");
    println!("  \"sf\": {sf},");
    println!("  \"rows\": {},", rows.len());
    println!("  \"formats\": [");
    for (i, (name, bytes, decode)) in cases.iter().enumerate() {
        let mut best = f64::INFINITY;
        let mut decoded = 0;
        for _ in 0..iters.max(1) {
            let t0 = Instant::now();
            decoded = decode();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        let rows_per_sec = decoded as f64 / best;
        let mb_per_sec = *bytes as f64 / best / 1e6;
        let comma = if i + 1 < cases.len() { "," } else { "" };
        println!(
            "    {{ \"format\": \"{name}\", \"stored_bytes\": {bytes}, \
             \"rows_per_sec\": {rows_per_sec:.0}, \"mb_per_sec\": {mb_per_sec:.1} }}{comma}"
        );
    }
    println!("  ]");
    println!("}}");
}
