//! Schema gate for the perf-trajectory artifacts. `BENCH_*.json` files
//! are exempt from the byte-diff gate (timings are host-dependent by
//! design), so this is the check that keeps them honest instead: every
//! committed bench artifact must parse, carry the machine/config
//! annotations that make a timing interpretable later, and have the
//! per-bench fields the trajectory docs read. Run by `scripts/ci.sh`
//! after the benches regenerate in smoke mode.
//!
//! Usage: `validate_bench <file.json>...` — exits non-zero listing every
//! violation.

use obs::json::{parse, Json};

/// One failed expectation about one file.
struct Violation {
    file: String,
    what: String,
}

/// Require `path` (dot-separated) to exist; returns the node.
fn need<'a>(root: &'a Json, path: &str, out: &mut Vec<String>) -> Option<&'a Json> {
    let mut cur = root;
    for part in path.split('.') {
        match cur.get(part) {
            Some(next) => cur = next,
            None => {
                out.push(format!("missing field `{path}`"));
                return None;
            }
        }
    }
    Some(cur)
}

/// Require `path` to be a finite number.
fn need_num(root: &Json, path: &str, out: &mut Vec<String>) {
    if let Some(v) = need(root, path, out) {
        match v.as_f64() {
            Some(n) if n.is_finite() => {}
            _ => out.push(format!("field `{path}` is not a finite number")),
        }
    }
}

/// Require `path` to be a non-empty string.
fn need_str(root: &Json, path: &str, out: &mut Vec<String>) {
    if let Some(v) = need(root, path, out) {
        match v.as_str() {
            Some(s) if !s.is_empty() => {}
            _ => out.push(format!("field `{path}` is not a non-empty string")),
        }
    }
}

/// Common envelope every bench artifact carries: the bench name plus the
/// machine/config annotations (cores, opt level, iteration count) that
/// make a committed timing comparable across PRs.
fn check_envelope(root: &Json, out: &mut Vec<String>) {
    need_str(root, "bench", out);
    need_num(root, "machine.cores", out);
    need_str(root, "machine.opt_level", out);
    need_str(root, "machine.arch", out);
    need_str(root, "machine.os", out);
    need_num(root, "config.iters", out);
    need_str(root, "config.timing", out);
    if let Some(Json::Str(s)) = root.get("machine").and_then(|m| m.get("opt_level")) {
        if s != "release" {
            out.push(format!(
                "machine.opt_level is `{s}`, committed benches must be release builds"
            ));
        }
    }
}

/// Per-bench body checks, keyed by the `bench` field.
fn check_body(root: &Json, out: &mut Vec<String>) {
    let Some(kind) = root.get("bench").and_then(|b| b.as_str()) else {
        return; // already reported by the envelope check
    };
    match kind {
        "kernel" => {
            for p in [
                "headline.baseline_events_per_sec",
                "headline.new_events_per_sec",
                "headline.speedup",
            ] {
                need_num(root, p, out);
            }
            need_str(root, "headline.workload", out);
            need_str(root, "headline.baseline_kernel", out);
            need_str(root, "headline.new_kernel", out);
            match need(root, "workloads", out).and_then(|w| w.as_arr()) {
                Some(ws) if !ws.is_empty() => {
                    for w in ws {
                        need_str(w, "name", out);
                        need_num(w, "speedup_calendar_vs_legacy", out);
                        match need(w, "kernels", out).and_then(|k| k.as_arr()) {
                            Some(ks) if !ks.is_empty() => {
                                for k in ks {
                                    need_str(k, "kernel", out);
                                    need_num(k, "events", out);
                                    need_num(k, "secs", out);
                                    need_num(k, "events_per_sec", out);
                                }
                            }
                            _ => out.push("workload without a non-empty `kernels` array".into()),
                        }
                    }
                }
                _ => out.push("`workloads` is not a non-empty array".into()),
            }
            match need(root, "engine_points", out).and_then(|e| e.as_arr()) {
                Some(es) if !es.is_empty() => {
                    for e in es {
                        need_str(e, "name", out);
                        need_num(e, "events_per_sec", out);
                    }
                }
                _ => out.push("`engine_points` is not a non-empty array".into()),
            }
            for p in [
                "fanout.jobs",
                "fanout.threads",
                "fanout.serial_secs",
                "fanout.parallel_secs",
            ] {
                need_num(root, p, out);
            }
        }
        "scan_decode" => {
            need_str(root, "table", out);
            need_num(root, "sf", out);
            need_num(root, "rows", out);
            match need(root, "formats", out).and_then(|f| f.as_arr()) {
                Some(fs) if !fs.is_empty() => {
                    for f in fs {
                        need_str(f, "format", out);
                        need_num(f, "stored_bytes", out);
                        need_num(f, "rows_per_sec", out);
                        need_num(f, "mb_per_sec", out);
                    }
                }
                _ => out.push("`formats` is not a non-empty array".into()),
            }
        }
        "obs_overhead" => {
            need_num(root, "query", out);
            need_num(root, "sf", out);
            match need(root, "engines", out).and_then(|e| e.as_arr()) {
                Some(es) if !es.is_empty() => {
                    for e in es {
                        need_str(e, "name", out);
                        for p in [
                            "events_bare",
                            "events_probed",
                            "sim_secs",
                            "probe_events",
                            "spans",
                            "bare_secs",
                            "probed_secs",
                            "overhead_pct",
                        ] {
                            need_num(e, p, out);
                        }
                        // The committed artifact must embody the passivity
                        // proof, not just gesture at it.
                        if let (Some(b), Some(p)) = (
                            e.get("events_bare").and_then(Json::as_f64),
                            e.get("events_probed").and_then(Json::as_f64),
                        ) {
                            if b != p {
                                out.push(format!(
                                    "probed event count {p} differs from bare {b} — probes must be passive"
                                ));
                            }
                        }
                    }
                }
                _ => out.push("`engines` is not a non-empty array".into()),
            }
        }
        "simlint_workspace" => {
            for p in [
                "files",
                "lines",
                "fns",
                "rules",
                "best_secs",
                "lines_per_sec",
            ] {
                need_num(root, p, out);
            }
        }
        other => out.push(format!("unknown bench kind `{other}`")),
    }
}

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    assert!(
        !files.is_empty(),
        "usage: validate_bench <results/BENCH_*.json>..."
    );
    let mut violations: Vec<Violation> = Vec::new();
    for file in &files {
        let mut out = Vec::new();
        match std::fs::read_to_string(file) {
            Err(e) => out.push(format!("unreadable: {e}")),
            Ok(text) => match parse(&text) {
                Err(e) => out.push(format!("invalid JSON: {e}")),
                Ok(root) => {
                    check_envelope(&root, &mut out);
                    check_body(&root, &mut out);
                }
            },
        }
        violations.extend(out.into_iter().map(|what| Violation {
            file: file.clone(),
            what,
        }));
    }
    if violations.is_empty() {
        println!("validate_bench: {} file(s) OK", files.len());
        return;
    }
    for v in &violations {
        eprintln!("validate_bench: {}: {}", v.file, v.what);
    }
    std::process::exit(1);
}
