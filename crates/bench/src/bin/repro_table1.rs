//! Regenerates Table 1: the physical data layouts used by Hive and PDW —
//! printed from the layouts the engines *actually* load with, plus the
//! resulting physical file counts at a small scale.

use cluster::Params;
use elephants_core::report::TableBuilder;
use hive::load_warehouse;
use tpch::layout::paper_layouts;
use tpch::{generate, GenConfig};

fn main() {
    let mut t = TableBuilder::new(
        "Table 1 — Data layout in Hive and PDW",
        &[
            "Table",
            "Hive partition column",
            "Hive buckets",
            "PDW partition column",
            "PDW replicated",
        ],
    );
    for l in paper_layouts() {
        t.row(vec![
            l.table.to_string(),
            l.hive.partition_col.unwrap_or("--").to_string(),
            match l.hive.buckets {
                Some((col, n)) => format!("{n} buckets on {col}"),
                None => "--".to_string(),
            },
            l.pdw.distribution_col.unwrap_or("--").to_string(),
            if l.pdw.distribution_col.is_none() {
                "Yes"
            } else {
                "No"
            }
            .to_string(),
        ]);
    }
    println!("{}", t.to_markdown());

    // Show the physical consequence: actual HDFS file counts per table.
    let cat = generate(&GenConfig::new(0.01));
    let params = Params::paper_dss().scaled(25_000.0);
    let (w, _) = load_warehouse(&cat, &params, None).expect("load");
    let mut t2 = TableBuilder::new(
        "Physical consequence (files in the loaded warehouse)",
        &["Table", "HDFS files", "non-empty files"],
    );
    for name in tpch::schema::TABLE_NAMES {
        let meta = w.table(name);
        let non_empty = meta
            .files
            .iter()
            .filter(|p| w.rcfile(p).n_rows() > 0)
            .count();
        t2.row(vec![
            name.to_string(),
            meta.files.len().to_string(),
            non_empty.to_string(),
        ]);
    }
    println!("{}", t2.to_markdown());
    println!(
        "note: lineitem/orders show the paper's sparse-orderkey effect — \
         only 128 of 512 buckets hold data."
    );
}
