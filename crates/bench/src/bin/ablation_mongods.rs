//! Ablation — mongod processes per node (§3.2.3: the paper ran 16 per node
//! because one global write lock per process strangles update concurrency;
//! their single-node tests found 16 > 8 > 1).

use docstore::{MongoCluster, Sharding};
use elephants_core::report::TableBuilder;
use elephants_core::serving::ServingConfig;
use simkit::Sim;
use ycsb::driver::{run_workload, RunConfig};
use ycsb::workload::{OpType, Workload};

fn main() {
    let cfg = ServingConfig::default();
    let mut t = TableBuilder::new(
        "Ablation: mongod processes per node (workload A, target 40k ops/s)",
        &[
            "Processes/node",
            "Achieved",
            "Update latency (ms)",
            "Write-lock fraction",
        ],
    );
    for per_node in [1usize, 8, 16] {
        let params = cfg.params();
        let mut sim: Sim<()> = Sim::new();
        let m = MongoCluster::build_with(&mut sim, &params, Sharding::Hash, per_node);
        m.load(cfg.n_records());
        let rc = RunConfig {
            target_ops_per_sec: 40e3,
            threads: cfg.threads,
            warmup_secs: cfg.warmup_secs,
            measure_secs: cfg.measure_secs,
            seed: cfg.seed,
            n_records: cfg.n_records(),
            max_scan_len: 1000,
        };
        let elapsed = cfg.warmup_secs + cfg.measure_secs;
        let r = run_workload(&mut sim, m.clone(), Workload::A, &rc);
        t.row(vec![
            per_node.to_string(),
            format!("{:.0}", r.achieved_ops),
            format!("{:.1}", r.latencies[&OpType::Update].mean_ms),
            format!("{:.0}%", m.write_lock_fraction(elapsed) * 100.0),
        ]);
    }
    println!("{}", t.to_markdown());
}
