//! Regenerates Figure 3: latency vs throughput for SQL-CS,
//! Mongo-AS and Mongo-CS.

use bench::figures::{figure_config, run_figure};
use ycsb::workload::{OpType, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = figure_config(&args);
    eprintln!("{} records per run (k = {})", cfg.n_records(), cfg.k);
    let out = run_figure(
        "Figure 3 — Workload B: 95% reads, 5% updates",
        Workload::B,
        &[5e3, 10e3, 20e3, 40e3, 80e3, 160e3],
        &[OpType::Read, OpType::Update],
        &cfg,
    );
    println!("{out}");
    println!("paper: SQL-CS reaches 103,789 ops/s (read 8.4 ms, update 12 ms); the Mongo systems fall over before 40k");
}
