//! Regenerates Figure 1: arithmetic and geometric means of TPC-H response
//! times, normalized to PDW at SF 250 (paper: HIVE 22/48/148/500 AM and
//! 26/52/144/474 GM; PDW 1/4/17/72 AM and 1/5/18/72 GM, computed on the
//! AM-9/GM-9 values).

use elephants_core::dss::{paper_disk_capacity, run_dss, DssConfig};
use elephants_core::report::TableBuilder;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sim_scale = bench::arg_f64(&args, "--sf", 0.01);
    let config = DssConfig {
        sim_scale,
        disk_capacity_per_node: Some(paper_disk_capacity()),
        ..DssConfig::default()
    };
    eprintln!("running the full TPC-H suite (22 queries x 4 scales)...");
    let results = run_dss(&config);

    let base_am = results.runs[0].means("pdw", true).unwrap().0;
    let base_gm = results.runs[0].means("pdw", true).unwrap().1;
    let mut t = TableBuilder::new(
        "Figure 1 — normalized AM-9 / GM-9 (PDW @ SF 250 = 1)",
        &[
            "SF",
            "HIVE norm AM",
            "PDW norm AM",
            "HIVE norm GM",
            "PDW norm GM",
        ],
    );
    for run in &results.runs {
        let hive = run.means("hive", true);
        let pdw = run.means("pdw", true).unwrap();
        t.row(vec![
            format!("{:.0}", run.paper_scale),
            hive.map(|m| format!("{:.0}", m.0 / base_am))
                .unwrap_or("--".into()),
            format!("{:.0}", pdw.0 / base_am),
            hive.map(|m| format!("{:.0}", m.1 / base_gm))
                .unwrap_or("--".into()),
            format!("{:.0}", pdw.1 / base_gm),
        ]);
    }
    println!("{}", t.to_markdown());
    println!("paper AM: HIVE 22/48/148/500, PDW 1/4/17/72;  GM: HIVE 26/52/144/474, PDW 1/5/18/72");
}
