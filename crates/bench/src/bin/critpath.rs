//! Critical-path blame for a TPC-H query, both engines side by side: every
//! nanosecond of each phase span attributed to disk/CPU/NIC service, queue
//! wait, or stall via the kernel's span↔resource linkage (`obs::critpath`).
//!
//!     cargo run --release -p bench --bin critpath -- 5 [--sf 0.02]
//!         [--paper 16000] [--trace out.json]
//!
//! `--trace` writes a Chrome Trace Event JSON whose span slices carry the
//! blame breakdown in `args.crit` (click a phase in Perfetto to see why it
//! was slow). The probes are passive: the engines' reported times are
//! byte-identical with and without them, and the default output is the
//! byte-diff-gated `results/critpath_q5.txt`.

use cluster::Params;
use hive::{load_warehouse, HiveEngine};
use obs::{CritPathProbe, Tee, TimelineProbe};
use pdw::{load_pdw, PdwEngine};
use simkit::probe::Probe;
use std::cell::RefCell;
use std::rc::Rc;
use tpch::{generate, GenConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let q: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let sf = bench::arg_f64(&args, "--sf", 0.02);
    let paper = bench::arg_f64(&args, "--paper", 16000.0);
    let trace_path = bench::arg_str(&args, "--trace");

    let plan = tpch::query(q);
    let cat = generate(&GenConfig::new(sf));
    let params = Params::paper_dss().scaled(paper / sf);

    let probes = || {
        let tl = Rc::new(RefCell::new(TimelineProbe::new(simkit::secs(1.0))));
        let cp = Rc::new(RefCell::new(CritPathProbe::new()));
        let tee = Rc::new(RefCell::new(Tee::of(vec![tl.clone(), cp.clone()])));
        (tl, cp, tee as Rc<RefCell<dyn Probe>>)
    };
    let unwrap_cp = |cp: Rc<RefCell<CritPathProbe>>| {
        Rc::try_unwrap(cp)
            .map(|c| c.into_inner())
            .unwrap_or_else(|_| panic!("engine released the probe"))
    };
    let unwrap_tl = |tl: Rc<RefCell<TimelineProbe>>| {
        Rc::try_unwrap(tl)
            .expect("engine released the probe")
            .into_inner()
    };

    println!("# Critical-path blame — Q{q} @ {paper:.0} GB (sf {sf})");
    println!("# elapsed = per-kind critical-path service + queue wait + stall, exactly");

    let (w, _) = load_warehouse(&cat, &params, None).expect("hive load");
    let hive = HiveEngine::new(w);
    let (htl, hcp, htee) = probes();
    let hrun = hive.run_query_probed(&plan, Some(htee)).expect("hive run");
    let hreport = unwrap_cp(hcp).report();
    println!();
    print!(
        "{}",
        hreport.render(&format!("hive Q{q} — total {:.0}s", hrun.total_secs))
    );

    let (pc, _) = load_pdw(&cat, &params);
    let pdw = PdwEngine::new(pc);
    let (ptl, pcp, ptee) = probes();
    let prun = pdw.run_query_probed(&plan, Some(ptee));
    let preport = unwrap_cp(pcp).report();
    println!();
    print!(
        "{}",
        preport.render(&format!("pdw Q{q} — total {:.0}s", prun.total_secs))
    );

    assert!(
        relational::testing::rows_approx_eq(&hrun.rows, &prun.rows, 1e-6),
        "engines disagree"
    );
    println!("\n(answers verified identical: {} rows)", prun.rows.len());

    if let Some(path) = trace_path {
        let doc = obs::chrome::chrome_trace_annotated(&[
            ("hive", &unwrap_tl(htl), Some(&hreport)),
            ("pdw", &unwrap_tl(ptl), Some(&preport)),
        ]);
        std::fs::write(&path, doc).expect("write trace");
        eprintln!("(wrote blame-annotated Chrome trace to {path})");
    }
}
