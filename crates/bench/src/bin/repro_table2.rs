//! Regenerates Table 2: load times for Hive and PDW at the four scale
//! factors (paper: Hive 38/125/519/2512 min, PDW 79/313/1180/4712 min).

use cluster::Params;
use elephants_core::report::TableBuilder;
use hive::load_warehouse;
use pdw::load_pdw;
use tpch::{generate, GenConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sim_scale = bench::arg_f64(&args, "--sf", 0.01);
    let cat = generate(&GenConfig::new(sim_scale));

    let mut t = TableBuilder::new(
        "Table 2 — Load times (minutes)",
        &["System", "250 GB", "1 TB", "4 TB", "16 TB"],
    );
    let mut hive_row = vec!["HIVE".to_string()];
    let mut pdw_row = vec!["PDW".to_string()];
    for paper in [250.0, 1000.0, 4000.0, 16000.0] {
        let params = Params::paper_dss().scaled(paper / sim_scale);
        let (_, hive_report) = load_warehouse(&cat, &params, None).expect("hive load");
        let (_, pdw_report) = load_pdw(&cat, &params);
        hive_row.push(format!("{:.0}", hive_report.total_secs / 60.0));
        pdw_row.push(format!("{:.0}", pdw_report.total_secs / 60.0));
    }
    t.row(hive_row);
    t.row(pdw_row);
    println!("{}", t.to_markdown());
    println!("paper: HIVE 38 / 125 / 519 / 2512   PDW 79 / 313 / 1180 / 4712");
}
