//! Ablation — columnar block storage: the three-way storage ladder the
//! paper's §3.3.4.3 trade implies. Text reads everything cheaply; RCFile
//! compresses but decodes at ~70 MB/s; colblock adds per-block min/max
//! pruning and a vectorized decode path, so clustered predicates skip
//! whole blocks before any CPU is spent. Run across BOTH engines: Hive
//! gets a colblock warehouse, PDW a columnar shadow catalog.

use cluster::Params;
use elephants_core::report::TableBuilder;
use hive::{load_warehouse_fmt, HiveEngine, StorageFormat};
use pdw::{load_pdw, PdwEngine};
use tpch::{generate, GenConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sf = bench::arg_f64(&args, "--sf", 0.01);
    let paper = bench::arg_f64(&args, "--paper", 250.0);
    let cat = generate(&GenConfig::new(sf));
    let params = Params::paper_dss().scaled(paper / sf);

    let (wt, _) = load_warehouse_fmt(&cat, &params, None, StorageFormat::Text).unwrap();
    let (wr, _) = load_warehouse_fmt(&cat, &params, None, StorageFormat::RcFile).unwrap();
    let (wc, _) = load_warehouse_fmt(&cat, &params, None, StorageFormat::ColBlock).unwrap();
    let hive_text = HiveEngine::new(wt);
    let hive_rc = HiveEngine::new(wr);
    let hive_col = HiveEngine::new(wc);
    let pdw_row = PdwEngine::new(load_pdw(&cat, &params).0);
    let pdw_col = PdwEngine::with_colblock(load_pdw(&cat, &params).0);

    let mut t = TableBuilder::new(
        format!("Ablation: text vs RCFile vs colblock @ {paper:.0} GB (seconds)"),
        &[
            "Query",
            "Hive text",
            "Hive RCFile",
            "Hive colblock",
            "Hive pruned",
            "PDW row",
            "PDW colblock",
            "PDW pruned",
        ],
    );
    for q in [1usize, 3, 6, 12, 19] {
        let plan = tpch::query(q);
        let ht = hive_text.run_query(&plan).unwrap().total_secs;
        let hr = hive_rc.run_query(&plan).unwrap().total_secs;
        let hc = hive_col.run_query(&plan).unwrap();
        let pr = pdw_row.run_query(&plan).total_secs;
        let pc = pdw_col.run_query(&plan);
        t.row(vec![
            format!("Q{q}"),
            format!("{ht:.0}"),
            format!("{hr:.0}"),
            format!("{:.0}", hc.total_secs),
            format!(
                "{}/{}",
                hc.scan_stats.blocks_pruned, hc.scan_stats.blocks_total
            ),
            format!("{pr:.0}"),
            format!("{:.0}", pc.total_secs),
            format!(
                "{}/{}",
                pc.scan_stats.blocks_pruned, pc.scan_stats.blocks_total
            ),
        ]);
    }
    println!("{}", t.to_markdown());
    println!(
        "Pruned columns count blocks skipped by min/max stats over blocks scanned.\n\
         Hive prunes only predicates written against the clustered column (no\n\
         implied-predicate derivation, the paper's §3.3.4.1 gap), so Q19 prunes\n\
         nothing there; PDW's optimizer pushes the implied p_size bound into the\n\
         part scan and skips blocks on Q6, Q12, and Q19. Colblock decodes at\n\
         ~400 MB/s vs RCFile's ~70 MB/s — the 2012 decode-CPU trade, revisited."
    );
}
