//! Sensitivity study — the similitude factor `k` and the zipfian-skew
//! artifact (EXPERIMENTS.md "known deviations" #1): YCSB's zipfian
//! normalization and the buffer pool's page granularity both shift with
//! the scaled keyspace, so absolute saturation points move with `k`
//! (non-monotonically), while the SQL-vs-Mongo *ordering* holds at every
//! `k` and the paper's 1.83x ratio is bracketed.
//!
//!     cargo run --release -p bench --bin sensitivity_k [--target 160000]

use elephants_core::report::TableBuilder;
use elephants_core::serving::{run_point, ServingConfig, SystemKind};
use ycsb::workload::{OpType, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let target = bench::arg_f64(&args, "--target", 160e3);
    let mut t = TableBuilder::new(
        format!("Sensitivity: workload C saturation vs similitude factor k (target {target:.0})"),
        &[
            "k",
            "records",
            "SQL-CS ops/s",
            "Mongo-AS ops/s",
            "SQL read ms",
            "SQL/Mongo ratio",
        ],
    );
    for k in [10_000.0, 2_500.0, 1_000.0] {
        let cfg = ServingConfig {
            k,
            warmup_secs: 3.0,
            measure_secs: 6.0,
            threads: 800,
            seed: 42,
        };
        eprintln!("k = {k} ({} records)...", cfg.n_records());
        let sql = run_point(&cfg, SystemKind::SqlCs, Workload::C, target);
        let mongo = run_point(&cfg, SystemKind::MongoAs, Workload::C, target);
        t.row(vec![
            format!("{k:.0}"),
            format!("{}", cfg.n_records()),
            format!("{:.0}", sql.achieved_ops),
            format!("{:.0}", mongo.achieved_ops),
            format!("{:.1}", sql.latency(OpType::Read).unwrap_or(0.0)),
            format!("{:.2}", sql.achieved_ops / mongo.achieved_ops.max(1.0)),
        ]);
    }
    println!("{}", t.to_markdown());
    println!(
        "paper-scale reference (k = 1, 640 M records): SQL-CS 125.5k, Mongo-AS 68.5k, 1.83x.\n\
         Absolute peaks move with k (zipfian normalization + cache granularity);\n\
         the ordering SQL > Mongo holds at every k and brackets the paper's ratio."
    );
}
