//! Regenerates Figure 2: latency vs throughput for SQL-CS,
//! Mongo-AS and Mongo-CS.

use bench::figures::{figure_config, run_figure};
use ycsb::workload::{OpType, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = figure_config(&args);
    eprintln!("{} records per run (k = {})", cfg.n_records(), cfg.k);
    let out = run_figure(
        "Figure 2 — Workload C: 100% reads",
        Workload::C,
        &[5e3, 10e3, 20e3, 40e3, 80e3, 160e3],
        &[OpType::Read],
        &cfg,
    );
    println!("{out}");
    println!("paper: SQL-CS peaks at 125,457 ops/s @ 6.4 ms; Mongo-AS 68,533 @ 11.8 ms; Mongo-CS 60,907 @ 13.2 ms");
}
