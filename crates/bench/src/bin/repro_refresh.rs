//! Extension experiment — the TPC-H refresh functions the paper had to
//! skip (§3.3.1: "We didn't execute the two TPC-H refresh functions,
//! because the Hive version that we used does not support deletes and
//! inserts into existing tables"). PDW runs both; Hive 0.7 can run
//! neither; Hive 0.8 can run RF1 (INSERT INTO) but still not RF2.

use cluster::Params;
use elephants_core::report::TableBuilder;
use hive::{load_warehouse, HiveEngine, HiveError};
use pdw::load_pdw;
use std::collections::HashSet;
use tpch::refresh::generate_refresh;
use tpch::{generate, GenConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sf = bench::arg_f64(&args, "--sf", 0.01);
    let cat = generate(&GenConfig::new(sf));

    let mut t = TableBuilder::new(
        "TPC-H refresh functions (seconds; the paper skipped these)",
        &[
            "SF (GB)",
            "PDW RF1",
            "PDW RF2",
            "Hive 0.7",
            "Hive 0.8 RF1",
            "Hive RF2",
        ],
    );
    for paper in [250.0, 1000.0, 4000.0, 16000.0] {
        let params = Params::paper_dss().scaled(paper / sf);
        let cfg = GenConfig::new(sf);
        let rf = generate_refresh(&cfg, 0);

        // PDW: both functions.
        let (mut pdw_cat, _) = load_pdw(&cat, &params);
        let rf1 = pdw_cat.refresh_insert("orders", rf.orders.clone())
            + pdw_cat.refresh_insert("lineitem", rf.lineitems.clone());
        let victims: HashSet<i64> = rf.delete_keys.iter().copied().collect();
        let rf2 = pdw_cat.refresh_delete("orders", 0, &victims)
            + pdw_cat.refresh_delete("lineitem", 0, &victims);

        // Hive 0.7: neither.
        let (w7, _) = load_warehouse(&cat, &params, None).expect("load");
        let mut hive7 = HiveEngine::new(w7);
        let h7 = match hive7.refresh_insert("orders", rf.orders.clone()) {
            Err(HiveError::Unsupported(_)) => "unsupported".to_string(),
            other => panic!("Hive 0.7 must reject INSERT INTO, got {other:?}"),
        };

        // Hive 0.8: RF1 only.
        let (mut w8, _) = load_warehouse(&cat, &params, None).expect("load");
        w8.version = hive::meta::HiveVersion::V0_8;
        let mut hive8 = HiveEngine::new(w8);
        let h8_rf1 = hive8
            .refresh_insert("orders", rf.orders.clone())
            .and_then(|a| {
                hive8
                    .refresh_insert("lineitem", rf.lineitems.clone())
                    .map(|b| a + b)
            })
            .expect("hive 0.8 supports INSERT INTO");
        let h_rf2 = match hive8.refresh_delete("orders") {
            Err(HiveError::Unsupported(_)) => "unsupported".to_string(),
            other => panic!("no Hive release deletes rows, got {other:?}"),
        };

        t.row(vec![
            format!("{paper:.0}"),
            format!("{rf1:.0}"),
            format!("{rf2:.0}"),
            h7,
            format!("{h8_rf1:.0}"),
            h_rf2,
        ]);
    }
    println!("{}", t.to_markdown());
    println!(
        "RF2 on index-less PDW is a full scan of orders+lineitem — with indexes\n\
         (ablation_pdw_indexes) it would be near-instant."
    );
}
