//! Regenerates Figure 5: latency vs throughput for SQL-CS,
//! Mongo-AS and Mongo-CS.

use bench::figures::{figure_config, run_figure};
use ycsb::workload::{OpType, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = figure_config(&args);
    eprintln!("{} records per run (k = {})", cfg.n_records(), cfg.k);
    let out = run_figure(
        "Figure 5 — Workload D: 95% reads (latest), 5% appends",
        Workload::D,
        &[20e3, 40e3, 80e3, 160e3, 320e3, 640e3],
        &[OpType::Read, OpType::Insert],
        &cfg,
    );
    println!("{out}");
    println!("paper: SQL-CS serves reads from the buffer pool (99.5% hits); Mongo-AS appends hit one chunk (320 ms latency) and crash above a 20k target");
}
