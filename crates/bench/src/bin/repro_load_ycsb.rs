//! Regenerates §3.4.2's load times: Mongo-AS (pre-split) 114 min,
//! SQL-CS 146 min, Mongo-CS 45 min — for 640 M records.

use elephants_core::report::TableBuilder;
use elephants_core::serving::{load_times_minutes, ServingConfig};

fn main() {
    let cfg = ServingConfig::default();
    let mut t = TableBuilder::new(
        "YCSB load times (640 M records, paper scale)",
        &["System", "Minutes"],
    );
    for (name, mins) in load_times_minutes(&cfg) {
        t.row(vec![name.to_string(), format!("{mins:.0}")]);
    }
    println!("{}", t.to_markdown());
    println!("paper: Mongo-AS 114, SQL-CS 146, Mongo-CS 45");
}
