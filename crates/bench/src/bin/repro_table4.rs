//! Regenerates Table 4: total map-phase time for Q1 at each scale factor
//! (paper: 148 / 339 / 1258 / 5220 s). The sub-linear growth at the small
//! end comes from the 384 empty lineitem buckets sharing map waves with the
//! 128 real ones.

use cluster::Params;
use elephants_core::report::TableBuilder;
use hive::{load_warehouse, HiveEngine};
use tpch::{generate, GenConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sim_scale = bench::arg_f64(&args, "--sf", 0.01);
    let cat = generate(&GenConfig::new(sim_scale));

    let mut t = TableBuilder::new(
        "Table 4 — Total time for the map phase of Query 1 (seconds)",
        &["SF = 250 GB", "SF = 1 TB", "SF = 4 TB", "SF = 16 TB"],
    );
    let mut row = Vec::new();
    for paper in [250.0, 1000.0, 4000.0, 16000.0] {
        let params = Params::paper_dss().scaled(paper / sim_scale);
        let (w, _) = load_warehouse(&cat, &params, None).expect("load");
        let engine = HiveEngine::new(w);
        let run = engine.run_query(&tpch::query(1)).expect("q1");
        // The first job is the scan+aggregate over lineitem's 512 buckets.
        let map_phase = run
            .jobs
            .iter()
            .find(|j| j.report.n_maps >= 128)
            .map(|j| j.report.map_done)
            .unwrap_or(0.0);
        row.push(format!("{map_phase:.0}"));
    }
    t.row(row);
    println!("{}", t.to_markdown());
    println!("paper: 148 / 339 / 1258 / 5220");
}
