//! Shared helpers for the `repro_*` binaries.

#![forbid(unsafe_code)]

pub mod fanout;
pub mod figures;
pub mod legacy;
pub mod meta;

/// Parse `--key value` style args with a default.
pub fn arg_f64(args: &[String], key: &str, default: f64) -> f64 {
    args.windows(2)
        .find(|w| w[0] == key)
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

pub fn arg_usize(args: &[String], key: &str, default: usize) -> usize {
    args.windows(2)
        .find(|w| w[0] == key)
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

pub fn has_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

/// Parse a `--key value` string argument (e.g. `--trace out.json`).
pub fn arg_str(args: &[String], key: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == key).map(|w| w[1].clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--sf", "0.05", "--fast"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_f64(&args, "--sf", 0.02), 0.05);
        assert_eq!(arg_f64(&args, "--missing", 7.0), 7.0);
        assert!(has_flag(&args, "--fast"));
        assert!(!has_flag(&args, "--slow"));
        assert_eq!(arg_str(&args, "--sf").as_deref(), Some("0.05"));
        assert_eq!(arg_str(&args, "--missing"), None);
    }
}
