//! Shared machine/config metadata for the `results/BENCH_*.json` files.
//!
//! Benchmark artifacts are trajectory points, not diff-gated fixtures:
//! their timings change host to host and run to run. For a timing to be
//! interpretable later, the artifact must say *where* it was measured and
//! *how* — core count, optimisation profile, iteration policy. Every
//! bench bin embeds the same `"machine"` / `"config"` objects via
//! [`machine_json`] and [`config_json`] so the files stay mutually
//! comparable and schema-checkable (`validate_bench` enforces presence
//! and types in CI).

/// The `"machine"` metadata object: stable facts about the host and build
/// that scale raw timings. Fields:
///
/// * `cores` — logical CPUs visible to the process (what the fan-out
///   runner parallelises over),
/// * `opt_level` — `"release"` or `"debug"`, from the compiled profile,
/// * `arch` / `os` — compile-target triple components.
pub fn machine_json(indent: &str) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let opt_level = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    format!(
        "{indent}\"machine\": {{\n\
         {indent}  \"cores\": {cores},\n\
         {indent}  \"opt_level\": \"{opt_level}\",\n\
         {indent}  \"arch\": \"{}\",\n\
         {indent}  \"os\": \"{}\"\n\
         {indent}}}",
        std::env::consts::ARCH,
        std::env::consts::OS
    )
}

/// The `"config"` metadata object: how the timings were taken.
/// `iters` is the measurement repeat count and `timing` names the
/// aggregation policy applied over those repeats (the repo convention is
/// `"best_of_n_wall_clock"`: report the minimum, the least-noisy
/// estimator of the code's true cost on a quiet machine).
pub fn config_json(indent: &str, iters: usize, timing: &str) -> String {
    format!(
        "{indent}\"config\": {{\n\
         {indent}  \"iters\": {iters},\n\
         {indent}  \"timing\": \"{timing}\"\n\
         {indent}}}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_json_is_valid_and_complete() {
        let j = format!("{{\n{}\n}}", machine_json("  "));
        let v = obs::json::parse(&j).expect("machine metadata parses");
        let m = v.get("machine").expect("machine key");
        assert!(m.get("cores").and_then(|c| c.as_f64()).unwrap_or(0.0) >= 1.0);
        let opt = m.get("opt_level").and_then(|o| o.as_str()).unwrap();
        assert!(opt == "debug" || opt == "release");
        assert!(m.get("arch").and_then(|a| a.as_str()).is_some());
        assert!(m.get("os").and_then(|o| o.as_str()).is_some());
    }

    #[test]
    fn config_json_is_valid_and_complete() {
        let j = format!("{{\n{}\n}}", config_json("  ", 5, "best_of_n_wall_clock"));
        let v = obs::json::parse(&j).expect("config metadata parses");
        let c = v.get("config").expect("config key");
        assert_eq!(c.get("iters").and_then(|i| i.as_f64()), Some(5.0));
        assert_eq!(
            c.get("timing").and_then(|t| t.as_str()),
            Some("best_of_n_wall_clock")
        );
    }
}
