//! Embarrassingly-parallel fan-out of independent simulations.
//!
//! A DES run is single-threaded by construction (the determinism contract
//! depends on one totally-ordered event stream), but a *sweep* of runs —
//! per-seed replicas, ablation grids, scale-factor ladders — is
//! embarrassingly parallel: each job builds its own `Sim`, its own world,
//! its own RNG streams, and shares nothing. [`run`] executes such a job
//! list across OS threads and returns results **in job order**, so output
//! bytes are identical whatever the thread count (including 1): parallelism
//! changes wall-clock only, never results. `tests/scheduler_equivalence.rs`
//! and the unit tests below hold that as an invariant.
//!
//! Scheduling is a shared atomic cursor (work stealing by index): threads
//! grab the next unstarted job, so a straggler job never serializes the
//! whole sweep behind it.
//!
//! Jobs must be `Send` (moved into a worker thread) but results only need
//! to be `Send` too — `Sim`, engines, and stores are created *inside* the
//! job closure, so their `Rc` internals never cross threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads [`run`] uses by default: one per available
/// core. A sweep of `n` jobs never spawns more than `n` threads.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run every job, up to `threads` at a time, and return their results in
/// job order. Panics in a job propagate (the sweep fails loudly rather
/// than returning partial results).
pub fn run_with_threads<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let threads = threads.clamp(1, n.max(1));
    // Each job/result cell is touched by exactly one worker; the mutexes
    // exist to hand ownership across the thread boundary, not to contend.
    let job_cells: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let result_cells: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = job_cells[i]
                    .lock()
                    .expect("job cell poisoned")
                    .take()
                    .expect("each job index is claimed exactly once");
                let out = job();
                *result_cells[i].lock().expect("result cell poisoned") = Some(out);
            });
        }
    });

    result_cells
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .expect("result cell poisoned")
                .expect("every claimed job stored a result")
        })
        .collect()
}

/// [`run_with_threads`] with one worker per available core.
pub fn run<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let threads = default_threads();
    run_with_threads(jobs, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_jobs(n: usize) -> Vec<impl FnOnce() -> usize + Send> {
        (0..n).map(|i| move || i * i).collect()
    }

    #[test]
    fn results_come_back_in_job_order() {
        let want: Vec<usize> = (0..64).map(|i| i * i).collect();
        assert_eq!(run(square_jobs(64)), want);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let want = run_with_threads(square_jobs(33), 1);
        for threads in [2, 3, 8, 64] {
            assert_eq!(run_with_threads(square_jobs(33), threads), want);
        }
    }

    #[test]
    fn empty_and_single_job_sweeps_work() {
        let empty: Vec<fn() -> usize> = Vec::new();
        assert_eq!(run(empty), Vec::<usize>::new());
        assert_eq!(run(vec![|| 7usize]), vec![7]);
    }

    #[test]
    fn independent_sims_fan_out_deterministically() {
        // The real use: each job runs its own Sim built inside the closure.
        let sweep = || {
            let jobs: Vec<_> = (0..8u64)
                .map(|seed| {
                    move || {
                        let mut sim: simkit::Sim<Vec<u64>> = simkit::Sim::new();
                        let mut w = Vec::new();
                        for i in 0..100 {
                            let t = (seed + 1) * 1_000 * (i + 1);
                            sim.after(t, move |s, w: &mut Vec<u64>| w.push(s.now()));
                        }
                        let end = sim.run(&mut w);
                        (seed, end, w.len())
                    }
                })
                .collect();
            run_with_threads(jobs, 4)
        };
        let a = sweep();
        assert_eq!(a, sweep());
        for (i, (seed, end, count)) in a.iter().enumerate() {
            assert_eq!(*seed, i as u64);
            assert_eq!(*end, (seed + 1) * 1_000 * 100);
            assert_eq!(*count, 100);
        }
    }
}
