//! The pre-rework simkit kernel, preserved as a live benchmark baseline.
//!
//! `bench_kernel` reports a *measured* speedup, not one transcribed from an
//! old lab notebook: both kernels run on the same host, same build, same
//! workload, in the same process. That requires the old kernel's hot paths
//! to still exist somewhere compilable. This module is that somewhere — a
//! faithful copy of `simkit::Sim` as it stood before the calendar-queue /
//! arena / batched-grant rework, trimmed to the surface the benchmark
//! workloads exercise:
//!
//! * **binary-heap event queue** whose nodes carry the boxed event inline
//!   (`Scheduled { Reverse<Key>, Box<dyn FnOnce> }`) — every sift moves
//!   32-byte nodes and every schedule heap-allocates;
//! * **per-grant closure re-dispatch**: a resource completion is a *second*
//!   boxed closure wrapping the caller's `done` box (the "double Box"),
//!   and each completion re-enters `begin_service` once;
//! * the same k-server FIFO `ResourceState` algorithm the current kernel
//!   uses (that file was not changed by the rework), so the two kernels
//!   differ only in the scheduling machinery being measured.
//!
//! Nothing outside `crates/bench` may depend on this module; the
//! `exec-substrate-only` lint keeps engine code on the real kernel.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Virtual time in nanoseconds (mirrors `simkit::SimTime`).
pub type SimTime = u64;

/// A scheduled action (mirrors `simkit::Event`).
pub type Event<W> = Box<dyn FnOnce(&mut Sim<W>, &mut W)>;

/// Handle to a registered resource.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ResourceId(usize);

#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    at: SimTime,
    seq: u64,
}

struct Scheduled<W> {
    key: Reverse<Key>,
    event: Event<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

struct Pending<W> {
    enqueued_at: SimTime,
    service: SimTime,
    done: Event<W>,
}

/// The old kernel's `ResourceState`, untagged-request subset (the
/// benchmark workloads issue only untagged requests, whose dispatch path
/// is identical in both kernels' resource layer).
struct ResourceState<W> {
    servers: u32,
    busy: u32,
    queue: VecDeque<Pending<W>>,
    completions: u64,
    total_queue_wait: SimTime,
}

impl<W> ResourceState<W> {
    fn enqueue(&mut self, now: SimTime, service: SimTime, done: Event<W>) -> bool {
        self.queue.push_back(Pending {
            enqueued_at: now,
            service,
            done,
        });
        self.busy < self.servers
    }

    fn start_next(&mut self, now: SimTime) -> Option<(SimTime, SimTime, Event<W>)> {
        if self.busy >= self.servers {
            return None;
        }
        let p = self.queue.pop_front()?;
        self.busy += 1;
        let wait = now - p.enqueued_at;
        self.total_queue_wait += wait;
        Some((p.service, wait, p.done))
    }

    fn finish_one(&mut self) -> bool {
        debug_assert!(self.busy > 0);
        self.busy -= 1;
        self.completions += 1;
        !self.queue.is_empty()
    }
}

/// The pre-rework discrete-event simulator (benchmark baseline).
pub struct Sim<W> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Scheduled<W>>,
    resources: Vec<ResourceState<W>>,
    executed: u64,
}

impl<W: 'static> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W: 'static> Sim<W> {
    pub fn new() -> Self {
        Sim {
            now: 0,
            seq: 0,
            heap: BinaryHeap::new(),
            resources: Vec::new(),
            executed: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Kernel events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Schedule `event` at absolute time `at` (clamped to `now`).
    pub fn schedule_at(&mut self, at: SimTime, event: Event<W>) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled {
            key: Reverse(Key { at, seq }),
            event,
        });
    }

    /// Schedule `event` after `delay`.
    pub fn schedule_in(&mut self, delay: SimTime, event: Event<W>) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Schedule a closure after `delay`.
    pub fn after(&mut self, delay: SimTime, f: impl FnOnce(&mut Sim<W>, &mut W) + 'static) {
        self.schedule_in(delay, Box::new(f));
    }

    /// Create a k-server FIFO resource.
    pub fn add_resource(&mut self, servers: u32) -> ResourceId {
        assert!(servers > 0, "resource must have at least one server");
        let id = ResourceId(self.resources.len());
        self.resources.push(ResourceState {
            servers,
            busy: 0,
            queue: VecDeque::new(),
            completions: 0,
            total_queue_wait: 0,
        });
        id
    }

    /// Request `service` time on `r`; `done` fires when service completes.
    pub fn request(&mut self, r: ResourceId, service: SimTime, done: Event<W>) {
        let now = self.now;
        let start = self.resources[r.0].enqueue(now, service, done);
        if start {
            self.begin_service(r);
        }
    }

    /// Request with a closure completion.
    pub fn use_resource(
        &mut self,
        r: ResourceId,
        service: SimTime,
        done: impl FnOnce(&mut Sim<W>, &mut W) + 'static,
    ) {
        self.request(r, service, Box::new(done));
    }

    // The measured path: each grant schedules a *new* boxed closure that
    // wraps the caller's already-boxed `done`, and each completion
    // re-enters begin_service once.
    fn begin_service(&mut self, r: ResourceId) {
        let now = self.now;
        let Some((service, _wait, done)) = self.resources[r.0].start_next(now) else {
            return;
        };
        self.schedule_in(
            service,
            Box::new(move |sim: &mut Sim<W>, w: &mut W| {
                done(sim, w);
                let more = sim.resources[r.0].finish_one();
                if more {
                    sim.begin_service(r);
                }
            }),
        );
    }

    /// Total completed services on `r`.
    pub fn resource_completions(&self, r: ResourceId) -> u64 {
        self.resources[r.0].completions
    }

    /// Time spent queued, summed over started requests on `r`.
    pub fn resource_queue_wait(&self, r: ResourceId) -> SimTime {
        self.resources[r.0].total_queue_wait
    }

    /// Drain every event. Returns the final clock value.
    pub fn run(&mut self, w: &mut W) -> SimTime {
        while let Some(s) = self.heap.pop() {
            let Reverse(Key { at, .. }) = s.key;
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            self.executed += 1;
            (s.event)(self, w);
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_the_old_kernel() {
        let mut sim: Sim<Vec<(SimTime, &'static str)>> = Sim::new();
        let mut w = Vec::new();
        sim.after(2_000, |s, w: &mut Vec<_>| w.push((s.now(), "b")));
        sim.after(1_000, |s, w: &mut Vec<_>| w.push((s.now(), "a")));
        let disk = sim.add_resource(1);
        for name in ["r1", "r2"] {
            sim.use_resource(disk, 5_000, move |s, w: &mut Vec<_>| {
                w.push((s.now(), name))
            });
        }
        let end = sim.run(&mut w);
        assert_eq!(
            w,
            vec![(1_000, "a"), (2_000, "b"), (5_000, "r1"), (10_000, "r2")]
        );
        assert_eq!(end, 10_000);
        assert_eq!(sim.resource_completions(disk), 2);
        assert_eq!(sim.resource_queue_wait(disk), 5_000);
        // 2 timers + 2 completion events.
        assert_eq!(sim.events_executed(), 4);
    }
}
