//! End-to-end engine benchmarks: wall-clock cost of simulating a query
//! (regression tracking for the reproduction itself, not the simulated
//! times it produces).

use cluster::Params;
use criterion::{criterion_group, criterion_main, Criterion};
use hive::{load_warehouse, HiveEngine};
use pdw::{load_pdw, PdwEngine};
use tpch::{generate, GenConfig};

fn bench_engines(c: &mut Criterion) {
    let cat = generate(&GenConfig::new(0.005));
    let params = Params::paper_dss().scaled(50_000.0);
    let (w, _) = load_warehouse(&cat, &params, None).unwrap();
    let hive = HiveEngine::new(w);
    let (pc, _) = load_pdw(&cat, &params);
    let pdw = PdwEngine::new(pc);

    let mut g = c.benchmark_group("engines");
    g.sample_size(10);
    for q in [1usize, 5, 6] {
        let plan = tpch::query(q);
        g.bench_function(format!("hive_q{q}"), |b| {
            b.iter(|| hive.run_query(&plan).unwrap().total_secs)
        });
        g.bench_function(format!("pdw_q{q}"), |b| {
            b.iter(|| pdw.run_query(&plan).total_secs)
        });
    }
    g.finish();
}

fn bench_dbgen(c: &mut Criterion) {
    let mut g = c.benchmark_group("dbgen");
    g.sample_size(10);
    g.bench_function("generate_sf_0_01", |b| {
        b.iter(|| generate(&GenConfig::new(0.01)))
    });
    g.finish();
}

fn bench_ycsb_sim(c: &mut Criterion) {
    use elephants_core::serving::{run_point, ServingConfig, SystemKind};
    use ycsb::workload::Workload;
    let cfg = ServingConfig {
        k: 50_000.0,
        warmup_secs: 0.5,
        measure_secs: 1.5,
        threads: 100,
        seed: 1,
    };
    let mut g = c.benchmark_group("ycsb_sim");
    g.sample_size(10);
    g.bench_function("sql_cs_workload_c_point", |b| {
        b.iter(|| run_point(&cfg, SystemKind::SqlCs, Workload::C, 5_000.0))
    });
    g.finish();
}

criterion_group!(benches, bench_engines, bench_dbgen, bench_ycsb_sim);
criterion_main!(benches);
