//! Criterion micro-benchmarks for the performance-critical building blocks:
//! the compressor, RCFile codec, B-tree, buffer pool, join kernel, hash
//! partitioner, and the zipfian generator.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use relational::expr::col;
use relational::{ops, DataType, JoinKind, Row, Schema, Value};
use storage::bufpool::BufferPool;
use storage::rcfile::RcFile;
use storage::{compress, BTree};
use ycsb::generators::Zipfian;

fn sample_rows(n: usize) -> Vec<Row> {
    (0..n)
        .map(|i| {
            vec![
                Value::I64(i as i64),
                Value::Decimal(10_000 + (i % 997) as i64),
                Value::str(if i % 3 == 0 { "AIR" } else { "TRUCK" }),
                Value::I64((i % 25) as i64),
            ]
        })
        .collect()
}

fn schema() -> Schema {
    Schema::of(&[
        ("k", DataType::I64),
        ("price", DataType::Decimal),
        ("mode", DataType::Str),
        ("nat", DataType::I64),
    ])
}

fn bench_compress(c: &mut Criterion) {
    let data: Vec<u8> = b"FURNITURE|BUILDING|AUTOMOBILE|HOUSEHOLD|"
        .iter()
        .cycle()
        .take(256 * 1024)
        .copied()
        .collect();
    let mut g = c.benchmark_group("compress");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("lz_compress_256k", |b| b.iter(|| compress::compress(&data)));
    let packed = compress::compress(&data);
    g.bench_function("lz_decompress_256k", |b| {
        b.iter(|| compress::decompress(&packed))
    });
    g.finish();
}

fn bench_rcfile(c: &mut Criterion) {
    let rows = sample_rows(16 * 1024);
    let s = schema();
    let mut g = c.benchmark_group("rcfile");
    g.bench_function("encode_16k_rows", |b| {
        b.iter(|| RcFile::write(&rows, &s, 4096))
    });
    let f = RcFile::write(&rows, &s, 4096);
    g.bench_function("decode_all_columns", |b| b.iter(|| f.read_all()));
    g.bench_function("decode_projection_1col", |b| {
        b.iter(|| f.read_columns(&[0]))
    });
    g.finish();
}

fn bench_btree(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree");
    g.bench_function("insert_10k", |b| {
        b.iter_batched(
            BTree::<u64, u32>::new,
            |mut t| {
                for i in 0..10_000u64 {
                    t.insert(i.wrapping_mul(0x9E3779B97F4A7C15), 0);
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    let mut t = BTree::new();
    for i in 0..100_000u64 {
        t.insert(i, i as u32);
    }
    g.bench_function("get_hit", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7919) % 100_000;
            t.get(&k)
        })
    });
    g.bench_function("scan_1000", |b| b.iter(|| t.scan_from(&50_000u64, 1000)));
    g.finish();
}

fn bench_bufpool(c: &mut Criterion) {
    let mut g = c.benchmark_group("bufpool");
    g.bench_function("access_zipf_mix", |b| {
        let mut pool = BufferPool::new(10_000);
        let z = Zipfian::new(100_000);
        let mut rng = rand::rngs::mock::StepRng::new(0x12345678, 0x9E3779B9);
        b.iter(|| {
            let page = z.next(&mut RngWrap(&mut rng));
            pool.access(page, page.is_multiple_of(4))
        })
    });
    g.finish();
}

/// Adapter so StepRng (deterministic, cheap) satisfies `Rng`.
struct RngWrap<'a>(&'a mut rand::rngs::mock::StepRng);
impl rand::RngCore for RngWrap<'_> {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.0.try_fill_bytes(dest)
    }
}

fn bench_join(c: &mut Criterion) {
    let left = sample_rows(50_000);
    let right = sample_rows(5_000);
    let mut g = c.benchmark_group("ops");
    g.bench_function("hash_join_50k_x_5k", |b| {
        b.iter(|| ops::hash_join(&left, &right, &[(0, 0)], JoinKind::Inner, None, 4))
    });
    g.bench_function("hash_partition_50k_128", |b| {
        b.iter_batched(
            || left.clone(),
            |rows| ops::hash_partition(rows, &[0], 128),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("aggregate_50k", |b| {
        b.iter(|| {
            ops::hash_aggregate(
                &left,
                &[(col(3), "nat".to_string())],
                &[relational::AggCall::sum(col(1), "s")],
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_compress,
    bench_rcfile,
    bench_btree,
    bench_bufpool,
    bench_join
);
criterion_main!(benches);
