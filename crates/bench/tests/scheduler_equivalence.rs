//! Scheduler-equivalence regression suite, engine level: real engine
//! workloads — a PDW TPC-H Q5 phase replay on `ClusterExec` and YCSB
//! serving mixes across several seeds — must produce bit-identical
//! results and probe streams on the calendar-queue and binary-heap
//! scheduler backends. This is the gate that lets the calendar queue be
//! the default: if it ever reorders two same-time events differently
//! from the heap, a committed `results/` artifact would drift and this
//! test names the divergence first. The kernel-level half of the suite
//! lives in `crates/simkit/tests/scheduler_equivalence.rs`.

use std::cell::RefCell;
use std::rc::Rc;

use cluster::{ClusterExec, Params};
use docstore::{MongoCluster, Sharding};
use elephants_core::serving::ServingConfig;
use pdw::{load_pdw, PdwEngine};
use simkit::probe::{Probe, ProbeEvent};
use simkit::{SchedulerKind, Sim};
use tpch::{generate, GenConfig};
use ycsb::driver::{run_workload, RunConfig};
use ycsb::workload::Workload;

/// Probe that renders every event to a line; streams compare with `==`.
#[derive(Default)]
struct RecordingProbe(Vec<String>);

impl Probe for RecordingProbe {
    fn on_event(&mut self, ev: &ProbeEvent<'_>) {
        self.0.push(format!("{ev:?}"));
    }
}

/// TPC-H Q5 on the PDW engine: record the resolved plan once, then
/// replay its phases on a probed `ClusterExec` under `kind`. Returns the
/// full probe stream plus every scalar observable of the run.
fn q5_replay(kind: SchedulerKind) -> (Vec<String>, Vec<u64>, u64, u64) {
    let _guard = simkit::sched::override_thread_default(kind);
    let sf = 0.01;
    let cat = generate(&GenConfig::new(sf));
    let params = Params::paper_dss().scaled(250.0 / sf);
    let (pdwcat, _) = load_pdw(&cat, &params);
    let engine = PdwEngine::new(pdwcat);
    let (_, phases) = engine.run_query_recorded(&tpch::query(5));
    assert!(!phases.is_empty(), "Q5 must resolve to at least one phase");

    let mut exec = ClusterExec::new(Params::paper_dss().scaled(250.0 / sf));
    let probe = Rc::new(RefCell::new(RecordingProbe::default()));
    exec.set_probe(Some(probe.clone()));
    let mut makespans = Vec::new();
    for ph in &phases {
        // Makespans in integer nanoseconds: exact comparison, no float slop.
        makespans.push((exec.run(ph.clone()) * 1e9).round() as u64);
    }
    let lines = std::mem::take(&mut probe.borrow_mut().0);
    (lines, makespans, exec.now(), exec.events_executed())
}

#[test]
fn q5_phase_replay_is_backend_invariant() {
    let cal = q5_replay(SchedulerKind::Calendar);
    let heap = q5_replay(SchedulerKind::Heap);
    assert_eq!(cal.1, heap.1, "phase makespans diverged");
    assert_eq!(cal.2, heap.2, "final clock diverged");
    assert_eq!(cal.3, heap.3, "event count diverged");
    assert_eq!(cal.0.len(), heap.0.len(), "probe stream length diverged");
    assert_eq!(cal.0, heap.0, "probe stream diverged");
}

/// One YCSB serving mix on a sharded Mongo cluster under `kind`, probed.
/// Returns the probe stream and a digest of the run result (latency
/// summaries rendered with a deterministic key order).
fn ycsb_mix(kind: SchedulerKind, seed: u64) -> (Vec<String>, String, u64, u64) {
    let _guard = simkit::sched::override_thread_default(kind);
    let cfg = ServingConfig::default();
    let params = cfg.params();
    let mut sim: Sim<()> = Sim::with_scheduler(kind);
    let probe = Rc::new(RefCell::new(RecordingProbe::default()));
    sim.set_probe(Some(probe.clone()));
    let m = MongoCluster::build(&mut sim, &params, Sharding::Hash);
    m.load(cfg.n_records());
    let rc = RunConfig {
        target_ops_per_sec: 5_000.0,
        threads: cfg.threads,
        warmup_secs: 0.5,
        measure_secs: 1.5,
        seed,
        n_records: cfg.n_records(),
        max_scan_len: 100,
    };
    let res = run_workload(&mut sim, m, Workload::A, &rc);
    let mut keys: Vec<_> = res.latencies.keys().copied().collect();
    keys.sort_by_key(|k| format!("{k:?}"));
    let mut digest = format!(
        "target={} achieved_bits={} crashed={}",
        res.target_ops,
        res.achieved_ops.to_bits(),
        res.crashed
    );
    for k in keys {
        digest.push_str(&format!(" {k:?}={:?}", res.latencies[&k]));
    }
    let lines = std::mem::take(&mut probe.borrow_mut().0);
    (lines, digest, sim.now(), sim.events_executed())
}

#[test]
fn ycsb_mix_is_backend_invariant_across_seeds() {
    for seed in [1, 42, 20_120_827] {
        let cal = ycsb_mix(SchedulerKind::Calendar, seed);
        let heap = ycsb_mix(SchedulerKind::Heap, seed);
        assert_eq!(cal.1, heap.1, "run digest diverged (seed {seed})");
        assert_eq!(cal.2, heap.2, "final clock diverged (seed {seed})");
        assert_eq!(cal.3, heap.3, "event count diverged (seed {seed})");
        assert_eq!(cal.0, heap.0, "probe stream diverged (seed {seed})");
    }
}
