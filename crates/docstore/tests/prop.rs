//! Property tests: BSON round trips and range-chunk routing.

use docstore::bson::Doc;
use proptest::prelude::*;

proptest! {
    #[test]
    fn bson_round_trips(
        fields in proptest::collection::vec(
            ("[a-zA-Z][a-zA-Z0-9]{0,10}", "[ -~&&[^\"]]{0,60}"),
            0..12,
        )
    ) {
        let doc = Doc { fields: fields.clone() };
        let bytes = doc.encode();
        let back = Doc::decode(&bytes);
        prop_assert_eq!(back, doc);
        // Length prefix is self-consistent.
        let len = i32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        prop_assert_eq!(len, bytes.len());
    }

    #[test]
    fn encoded_size_grows_with_payload(extra in 1usize..500) {
        let small = Doc::ycsb("k", 10).encode().len();
        let big = Doc::ycsb("k", 10 + extra).encode().len();
        prop_assert_eq!(big - small, extra * 10); // 10 fields
    }
}

mod routing {
    use cluster::Params;
    use docstore::{MongoCluster, Sharding};
    use proptest::prelude::*;
    use simkit::Sim;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn range_routing_is_monotone_and_complete(n in 1_000u64..100_000) {
            let params = Params::paper_ycsb().scaled_ycsb(100_000.0);
            let mut sim: Sim<()> = Sim::new();
            let m = MongoCluster::build(&mut sim, &params, Sharding::Range);
            m.load(n);
            let mut last = 0usize;
            for key in (0..n).step_by((n as usize / 257).max(1)) {
                let s = m.shard_of(key);
                prop_assert!(s >= last, "range routing must be monotone");
                prop_assert!(s < m.shards());
                last = s;
            }
            // Hash routing spreads the same keys.
            let mut sim2: Sim<()> = Sim::new();
            let h = MongoCluster::build(&mut sim2, &params, Sharding::Hash);
            h.load(n);
            let mut used = std::collections::HashSet::new();
            for key in 0..1_000.min(n) {
                used.insert(h.shard_of(key));
            }
            prop_assert!(used.len() > 64, "hash should hit most shards");
        }
    }
}
