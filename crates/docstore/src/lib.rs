//! # docstore — a MongoDB 1.8 stand-in
//!
//! The NoSQL contender on the data-serving side. Modelled per the paper:
//!
//! * **BSON documents** ([`bson`]): real encoding of the YCSB record shape
//!   (24-byte key + 10 × 100-byte fields ≈ 1.1 KB on the wire),
//! * **mmap-style storage**: the OS page cache holds 32 KB extents shared
//!   by the 16 `mongod` processes of a node; a miss reads **32 KB** from
//!   disk ("Mongo-AS and Mongo-CS read on average 32 KB from disk for each
//!   read request ... wasting disk bandwidth"),
//! * the **global per-`mongod` write lock** ([`rwlock`]): one writer blocks
//!   every other operation of that process — and holds the lock across its
//!   page faults (version 1.8; the 2.0 yield feature is the paper's
//!   footnote ‡, and they found it unreliable). This is why the paper runs
//!   16 mongods per node,
//! * **auto-sharding** (Mongo-AS): order-preserving range partitioning into
//!   128 chunks via `mongos` routers; appends of monotonically increasing
//!   keys all route to the *last* chunk — the hotspot that melts workload D
//!   (Mongo-AS crashes above a 20 k ops/s target) and the reason Mongo-AS
//!   wins workload E's range scans,
//! * **client-side hash sharding** (Mongo-CS): no mongos, no balancer,
//!   scans must fan out to all 128 shards,
//! * writes in "safe" mode (client awaits the server ack) with **no
//!   journal** — the durability the SQL side pays for and MongoDB here
//!   does not.

#![forbid(unsafe_code)]

pub mod bson;
pub mod cluster;
pub mod mongod;
pub mod rwlock;

pub use cluster::{MongoCluster, Sharding};
pub use rwlock::RwLock;
