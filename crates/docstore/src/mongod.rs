//! One `mongod` process: a shard's documents, its global lock, and its view
//! of the node's shared page cache.

use crate::rwlock::RwLock;
use storage::BTree;

/// Documents per 32 KB mmap extent (≈ 1.1 KB BSON documents; see
/// `bson::tests::ycsb_record_is_about_1_kilobyte`).
pub const DOCS_PER_EXTENT: u64 = 29;

/// Per-process statistics.
#[derive(Clone, Debug, Default)]
pub struct MongodStats {
    pub reads: u64,
    pub writes: u64,
}

/// One shard process. Sixteen of these run per server node (the paper's
/// workaround for the global write lock).
pub struct Mongod {
    /// Shard id (0..128).
    pub id: usize,
    /// Server node hosting the process.
    pub node: usize,
    /// The global lock (one per process).
    pub lock: RwLock,
    /// key → version: this shard's documents, ordered (B-tree `_id` index).
    pub docs: BTree<u64, u32>,
    /// For range shards: the chunk's lower bound (local extent offsets are
    /// relative to it). `None` for hash shards (ordinal = key / shards).
    pub range_lo: Option<u64>,
    pub stats: MongodStats,
    /// Durable journal entries (written only when journaling is on, at
    /// group-flush time). Without it — the paper's configuration — a crash
    /// loses every write since the last mmap sync.
    pub journal: Vec<(u64, u32)>,
}

impl Mongod {
    pub fn new(id: usize, node: usize, range_lo: Option<u64>) -> Mongod {
        Mongod {
            id,
            node,
            lock: RwLock::new(),
            docs: BTree::new(),
            range_lo,
            stats: MongodStats::default(),
            journal: Vec::new(),
        }
    }

    /// Local mmap extent index of a key (namespaced by shard id at the
    /// cache level).
    pub fn extent_of(&self, key: u64, total_shards: usize) -> u64 {
        let ordinal = match self.range_lo {
            Some(lo) => key.saturating_sub(lo),
            None => key / total_shards as u64,
        };
        ordinal / DOCS_PER_EXTENT
    }

    /// Globally unique page id for the node-shared cache.
    pub fn cache_page(&self, key: u64, total_shards: usize) -> u64 {
        ((self.id as u64) << 40) | self.extent_of(key, total_shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_shard_extents_pack_local_ordinals() {
        let m = Mongod::new(3, 0, None);
        // Keys 3, 131, 259... (every 128th) share this shard; consecutive
        // local ordinals pack into extents of DOCS_PER_EXTENT.
        assert_eq!(m.extent_of(3, 128), 0);
        assert_eq!(m.extent_of(3 + 128 * (DOCS_PER_EXTENT - 1), 128), 0);
        assert_eq!(m.extent_of(3 + 128 * DOCS_PER_EXTENT, 128), 1);
    }

    #[test]
    fn range_shard_extents_are_contiguous() {
        let m = Mongod::new(7, 0, Some(70_000));
        assert_eq!(m.extent_of(70_000, 128), 0);
        assert_eq!(m.extent_of(70_000 + DOCS_PER_EXTENT, 128), 1);
        // A 1000-record scan covers ~35 extents — sequential on one shard,
        // which is why Mongo-AS wins workload E.
        let extents = 1000 / DOCS_PER_EXTENT + 1;
        assert!((30..40).contains(&extents));
    }

    #[test]
    fn cache_pages_are_namespaced_per_shard() {
        let a = Mongod::new(1, 0, None);
        let b = Mongod::new(2, 0, None);
        assert_ne!(a.cache_page(1, 128), b.cache_page(2, 128));
    }
}
