//! The mongod global reader-writer lock, as a discrete-event primitive.
//!
//! MongoDB 1.8 semantics: any number of concurrent readers, but one writer
//! excludes everything — and the queue is FIFO (a waiting writer blocks
//! later readers), which is what makes update-heavy workloads spend 25-45 %
//! of their time in the lock (§3.4.3, workload A).

use simkit::{Event, Sim, SimTime};
use std::collections::VecDeque;

type S = Sim<()>;

enum Waiter {
    Read(Event<()>),
    Write(Event<()>),
}

/// DES reader-writer lock with FIFO queueing.
#[derive(Default)]
pub struct RwLock {
    readers: u32,
    writer: bool,
    queue: VecDeque<Waiter>,
    // Lock-time accounting for the mongostat-style "% time in global lock".
    writer_since: Option<SimTime>,
    pub writer_held_total: SimTime,
    pub waits: u64,
}

impl RwLock {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Acquire for reading; `cont` runs when granted.
    pub fn acquire_read(&mut self, sim: &mut S, cont: Event<()>) {
        if !self.writer && self.queue.is_empty() {
            self.readers += 1;
            sim.schedule_in(0, cont);
        } else {
            self.waits += 1;
            self.queue.push_back(Waiter::Read(cont));
        }
    }

    /// Acquire for writing; `cont` runs when granted.
    pub fn acquire_write(&mut self, sim: &mut S, cont: Event<()>) {
        if !self.writer && self.readers == 0 && self.queue.is_empty() {
            self.writer = true;
            self.writer_since = Some(sim.now());
            sim.schedule_in(0, cont);
        } else {
            self.waits += 1;
            self.queue.push_back(Waiter::Write(cont));
        }
    }

    pub fn release_read(&mut self, sim: &mut S) {
        debug_assert!(self.readers > 0);
        self.readers -= 1;
        self.drain(sim);
    }

    pub fn release_write(&mut self, sim: &mut S) {
        debug_assert!(self.writer);
        self.writer = false;
        if let Some(t) = self.writer_since.take() {
            self.writer_held_total += sim.now() - t;
        }
        self.drain(sim);
    }

    fn drain(&mut self, sim: &mut S) {
        while let Some(front) = self.queue.front() {
            match front {
                Waiter::Read(_) if !self.writer => {
                    let Some(Waiter::Read(cont)) = self.queue.pop_front() else {
                        unreachable!()
                    };
                    self.readers += 1;
                    sim.schedule_in(0, cont);
                }
                Waiter::Write(_) if !self.writer && self.readers == 0 => {
                    let Some(Waiter::Write(cont)) = self.queue.pop_front() else {
                        unreachable!()
                    };
                    self.writer = true;
                    self.writer_since = Some(sim.now());
                    sim.schedule_in(0, cont);
                    break; // writer excludes everything behind it
                }
                _ => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::secs;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn readers_share_writers_exclude() {
        let mut sim: S = Sim::new();
        let lock = Rc::new(RefCell::new(RwLock::new()));
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::default();

        // Two readers enter together.
        for name in ["r1", "r2"] {
            let (l, g) = (lock.clone(), log.clone());
            lock.borrow_mut().acquire_read(
                &mut sim,
                Box::new(move |sim, _| {
                    g.borrow_mut().push(name);
                    // hold for 1s
                    let l2 = l.clone();
                    sim.after(secs(1.0), move |sim, _| l2.borrow_mut().release_read(sim));
                }),
            );
        }
        // A writer queues behind them.
        let (l, g) = (lock.clone(), log.clone());
        lock.borrow_mut().acquire_write(
            &mut sim,
            Box::new(move |sim, _| {
                g.borrow_mut().push("w");
                let l2 = l.clone();
                sim.after(secs(1.0), move |sim, _| l2.borrow_mut().release_write(sim));
            }),
        );
        // A reader arriving after the writer waits for it (FIFO).
        let g = log.clone();
        let l = lock.clone();
        lock.borrow_mut().acquire_read(
            &mut sim,
            Box::new(move |sim, _| {
                g.borrow_mut().push("r3");
                l.borrow_mut().release_read(sim);
            }),
        );
        sim.run(&mut ());
        assert_eq!(*log.borrow(), vec!["r1", "r2", "w", "r3"]);
        assert_eq!(lock.borrow().waits, 2);
        // Writer held the lock for ~1s.
        let held = simkit::as_secs(lock.borrow().writer_held_total);
        assert!((held - 1.0).abs() < 0.01, "writer hold time {held}");
    }

    #[test]
    fn writer_grabs_immediately_when_free() {
        let mut sim: S = Sim::new();
        let lock = Rc::new(RefCell::new(RwLock::new()));
        let fired = Rc::new(RefCell::new(false));
        let f = fired.clone();
        lock.borrow_mut()
            .acquire_write(&mut sim, Box::new(move |_, _| *f.borrow_mut() = true));
        sim.run(&mut ());
        assert!(*fired.borrow());
        assert_eq!(lock.borrow().waits, 0);
    }

    #[test]
    fn queue_length_visible_for_crash_detection() {
        let mut sim: S = Sim::new();
        let lock = Rc::new(RefCell::new(RwLock::new()));
        // Long-running writer.
        let l = lock.clone();
        lock.borrow_mut().acquire_write(
            &mut sim,
            Box::new(move |sim, _| {
                let l2 = l.clone();
                sim.after(secs(100.0), move |sim, _| {
                    l2.borrow_mut().release_write(sim)
                });
            }),
        );
        sim.run_until(&mut (), secs(0.1));
        for _ in 0..10 {
            lock.borrow_mut()
                .acquire_write(&mut sim, Box::new(|_, _| {}));
        }
        assert_eq!(lock.borrow().queue_len(), 10);
    }
}
