//! A minimal BSON-style document codec, enough to measure real document
//! sizes for the YCSB record shape (string key + ten 100-byte string
//! fields). Layout per element: `type:u8, name:cstring, i32 len, bytes,
//! NUL` (string elements only — all YCSB fields are strings).

use bytes::{Buf, BufMut, BytesMut};

/// One document: ordered (name, value) string pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Doc {
    pub fields: Vec<(String, String)>,
}

impl Doc {
    /// The YCSB record: `_id` = 24-byte key, `field0..field9` of
    /// `field_len` bytes each.
    pub fn ycsb(key: &str, field_len: usize) -> Doc {
        let mut fields = vec![("_id".to_string(), key.to_string())];
        for i in 0..10 {
            fields.push((format!("field{i}"), "x".repeat(field_len)));
        }
        Doc { fields }
    }

    /// Encode to BSON-ish bytes: `i32 total_len, elements..., 0x00`.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = BytesMut::new();
        for (name, value) in &self.fields {
            body.put_u8(0x02); // string element
            body.put_slice(name.as_bytes());
            body.put_u8(0);
            body.put_i32_le(value.len() as i32 + 1);
            body.put_slice(value.as_bytes());
            body.put_u8(0);
        }
        let total = body.len() as i32 + 5;
        let mut out = Vec::with_capacity(total as usize);
        out.extend_from_slice(&total.to_le_bytes());
        out.extend_from_slice(&body);
        out.push(0);
        out
    }

    /// Decode (panics on malformed input — documents are only produced by
    /// [`Doc::encode`] in this system).
    pub fn decode(data: &[u8]) -> Doc {
        let mut buf = data;
        let total = buf.get_i32_le() as usize;
        assert_eq!(total, data.len(), "length prefix mismatch");
        let mut fields = Vec::new();
        while buf.len() > 1 {
            let ty = buf.get_u8();
            assert_eq!(ty, 0x02, "only string elements supported");
            let name_end = buf.iter().position(|&b| b == 0).expect("name NUL");
            let name = String::from_utf8(buf[..name_end].to_vec()).expect("utf8 name");
            buf.advance(name_end + 1);
            let len = buf.get_i32_le() as usize;
            let value = String::from_utf8(buf[..len - 1].to_vec()).expect("utf8 value");
            buf.advance(len);
            fields.push((name, value));
        }
        assert_eq!(buf.get_u8(), 0, "trailing NUL");
        Doc { fields }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let d = Doc::ycsb("user000000000000000042", 100);
        let bytes = d.encode();
        assert_eq!(Doc::decode(&bytes), d);
    }

    #[test]
    fn ycsb_record_is_about_1_kilobyte() {
        // The paper: 1024-byte records (24-byte key + 10 × 100-byte
        // fields). BSON overhead adds names and framing.
        let d = Doc::ycsb(&format!("{:024}", 42), 100);
        let len = d.encode().len();
        assert!(
            (1024..1200).contains(&len),
            "encoded YCSB doc ≈ 1.1 KB, got {len}"
        );
        // 32 KB extents hold ~29-31 documents.
        let per_extent = 32 * 1024 / len;
        assert!((27..=32).contains(&per_extent));
    }
}
