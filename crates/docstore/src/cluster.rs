//! The sharded document-store cluster: Mongo-AS (range-partitioned
//! auto-sharding through mongos) and Mongo-CS (client-side hashing), with
//! the full simulated operation pipelines.

use crate::mongod::Mongod;
use cluster::{Cluster, Params};
use simkit::{secs, Latch, Sim};
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use storage::bufpool::{Access, BufferPool};

type S = Sim<()>;
pub type Done = Box<dyn FnOnce(&mut S, u64)>;

/// Marker returned to the driver once the cluster has crashed (Mongo-AS
/// under workload D's append storm).
pub const CRASHED: u64 = u64::MAX;

/// mmap extent size: what one page fault reads.
const EXTENT: u64 = 32 * 1024;
/// mongod processes per server node (§3.2.3).
const MONGODS_PER_NODE: usize = 16;
/// Lock-queue depth at which the process stops answering immediately.
const CRASH_QUEUE: usize = 2_000;
/// Client socket timeout: an append outstanding longer than this kills the
/// run ("the client machines wait for a response message from the server
/// after an append request, but this message never arrives due to socket
/// exceptions" — §3.4.3, workload D).
const SOCKET_TIMEOUT: f64 = 5.0;
/// Fallback split threshold before `load` computes the scaled one.
const SPLIT_DOCS_DEFAULT: u64 = 16_000;
/// Fixed migration overhead (destination index build, commit protocol) on
/// top of the data copy; the source holds its write lock throughout
/// (MongoDB 1.8 migrations were not concurrent).
const MIGRATION_FIXED: f64 = 0.5;
/// Bytes copied per migration (the split-off chunk).
const MIGRATION_BYTES: u64 = 16 * 1024 * 1024;

/// Sharding flavour.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sharding {
    /// Mongo-AS: order-preserving range chunks, routed via mongos.
    Range,
    /// Mongo-CS: client-side FNV hashing, direct connections.
    Hash,
}

/// The cluster: 128 mongods over 8 nodes with shared per-node page caches.
pub struct MongoCluster {
    pub mongods: Vec<Rc<RefCell<Mongod>>>,
    pub caches: Vec<Rc<RefCell<BufferPool>>>,
    pub cluster: Rc<Cluster>,
    pub params: Params,
    pub sharding: Sharding,
    chunk_size: Cell<u64>,
    next_key: Cell<u64>,
    pub crashed: Cell<bool>,
    rr_disk: Cell<usize>,
    /// Write-ahead journaling with commit acknowledgement (§3.4.1: the
    /// paper ran *without* it — "we elected to run MongoDB without logging
    /// so that it doesn't pay any additional performance penalty"). When
    /// on, each acknowledged write waits for the next journal group flush.
    pub journaled: Cell<bool>,
    /// Secondaries per shard (replica sets — §3.2.3: "we did not create
    /// any replica sets"). Writes are replicated asynchronously unless
    /// `replica_ack` is set.
    pub replicas: Cell<u32>,
    /// Wait for the secondary's acknowledgement before answering the
    /// client (w=2 semantics).
    pub replica_ack: Cell<bool>,
    /// Appends into the hot (last) chunk since its last split.
    appends_since_split: Cell<u64>,
    /// Split threshold (overridable in tests/ablations).
    pub split_docs: Cell<u64>,
    /// Count of migrations triggered (diagnostics).
    pub migrations: Cell<u64>,
    loaded_records: Cell<u64>,
}

impl MongoCluster {
    pub fn build(sim: &mut S, params: &Params, sharding: Sharding) -> Rc<MongoCluster> {
        Self::build_with(sim, params, sharding, MONGODS_PER_NODE)
    }

    /// Build with an explicit `mongod` count per node (the paper's own
    /// single-node sweep found 16 > 8 > 1 processes; see the
    /// `ablation_mongods` bench).
    pub fn build_with(
        sim: &mut S,
        params: &Params,
        sharding: Sharding,
        processes_per_node: usize,
    ) -> Rc<MongoCluster> {
        let cluster = Rc::new(Cluster::build(sim, params.clone()));
        let shards = params.nodes * processes_per_node.max(1);
        // mmap page cache ≈ all RAM, shared by the node's processes.
        let cache_pages = ((params.mem_per_node as f64 * 0.9) as u64 / EXTENT).max(1) as usize;
        let caches = (0..params.nodes)
            .map(|_| Rc::new(RefCell::new(BufferPool::new(cache_pages))))
            .collect();
        let mongods = (0..shards)
            .map(|id| {
                let node = id / processes_per_node.max(1);
                let range_lo = match sharding {
                    Sharding::Range => Some(0), // set during load
                    Sharding::Hash => None,
                };
                Rc::new(RefCell::new(Mongod::new(id, node, range_lo)))
            })
            .collect();
        Rc::new(MongoCluster {
            mongods,
            caches,
            cluster,
            params: params.clone(),
            sharding,
            chunk_size: Cell::new(1),
            next_key: Cell::new(0),
            crashed: Cell::new(false),
            rr_disk: Cell::new(0),
            journaled: Cell::new(false),
            replicas: Cell::new(0),
            replica_ack: Cell::new(false),
            appends_since_split: Cell::new(0),
            split_docs: Cell::new(SPLIT_DOCS_DEFAULT),
            migrations: Cell::new(0),
            loaded_records: Cell::new(0),
        })
    }

    pub fn shards(&self) -> usize {
        self.mongods.len()
    }

    /// Populate keys `0..n` (untimed). For Mongo-AS this uses the paper's
    /// pre-split-chunks strategy: bounds are defined up front, so the load
    /// distributes evenly without migrations.
    pub fn load(&self, n_records: u64) {
        let shards = self.shards() as u64;
        let chunk = (n_records / shards).max(1);
        self.chunk_size.set(chunk);
        self.next_key.set(n_records);
        self.loaded_records.set(n_records);
        // Similitude: the split threshold scales with the keyspace so that
        // splits-per-simulated-second under an append workload match the
        // paper-scale event rate (64 MB chunks of a 640 M-key space ↔
        // chunk/2 here).
        self.split_docs.set((chunk / 2).max(64));
        for m in &self.mongods {
            let mut m = m.borrow_mut();
            if self.sharding == Sharding::Range {
                m.range_lo = Some(m.id as u64 * chunk);
            }
        }
        for key in 0..n_records {
            let s = self.shard_of(key);
            self.mongods[s].borrow_mut().docs.insert(key, 0);
        }
    }

    /// Paper-scale load time (§3.4.2).
    pub fn load_time_secs(&self, paper_records: u64, pre_split: bool) -> f64 {
        let p = &self.params;
        let rate = match self.sharding {
            Sharding::Range => p.mongo_as_insert_rate_per_node,
            Sharding::Hash => p.mongo_cs_insert_rate_per_node,
        };
        let base = paper_records as f64 / (p.nodes as f64 * rate);
        if self.sharding == Sharding::Range && !pre_split {
            base * p.mongo_migration_penalty
        } else {
            base
        }
    }

    /// Next append key (workloads D/E insert the next-greater key).
    pub fn next_append_key(&self) -> u64 {
        let k = self.next_key.get();
        self.next_key.set(k + 1);
        k
    }

    pub fn shard_of(&self, key: u64) -> usize {
        match self.sharding {
            Sharding::Range => {
                let c = (key / self.chunk_size.get().max(1)) as usize;
                c.min(self.shards() - 1)
            }
            Sharding::Hash => {
                let mut h: u64 = 0xcbf29ce484222325;
                for b in key.to_le_bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100000001b3);
                }
                (h % self.shards() as u64) as usize
            }
        }
    }

    fn route_latency(&self) -> f64 {
        match self.sharding {
            Sharding::Range => self.params.net_latency + self.params.mongos_hop,
            Sharding::Hash => self.params.net_latency,
        }
    }

    fn op_cpu(&self) -> f64 {
        // Request handling + BSON (de)serialization of a ~1.1 KB document.
        self.params.oltp_cpu_per_op + self.params.bson_cpu_per_kb * 1.1
    }

    fn next_disk(&self) -> usize {
        let d = self.rr_disk.get();
        self.rr_disk.set(d + 1);
        d
    }

    // ---- pipelines --------------------------------------------------------

    /// Point read: route → cpu → read-lock → page cache → maybe 32 KB read.
    pub fn read(self: &Rc<Self>, sim: &mut S, key: u64, done: Done) {
        if self.crashed.get() {
            done(sim, CRASHED);
            return;
        }
        let this = self.clone();
        sim.after(secs(self.route_latency()), move |sim, _| {
            let shard = this.shard_of(key);
            let node = this.mongods[shard].borrow().node;
            let t2 = this.clone();
            this.cluster.clone().cpu(
                sim,
                node,
                this.op_cpu(),
                Box::new(move |sim, _| {
                    let t3 = t2.clone();
                    let body: simkit::Event<()> = Box::new(move |sim, _| {
                        t3.read_body(sim, shard, node, key, done);
                    });
                    t2.mongods[shard].borrow_mut().lock.acquire_read(sim, body);
                }),
            );
        });
    }

    fn read_body(self: Rc<Self>, sim: &mut S, shard: usize, node: usize, key: u64, done: Done) {
        let page = {
            let mut m = self.mongods[shard].borrow_mut();
            m.stats.reads += 1;
            m.cache_page(key, self.shards())
        };
        let miss = matches!(
            self.caches[node].borrow_mut().access(page, false),
            Access::Miss { .. }
        );
        let version = self.mongods[shard]
            .borrow()
            .docs
            .get(&key)
            .copied()
            .unwrap_or(u32::MAX) as u64;
        let this = self.clone();
        let finish: simkit::Event<()> = Box::new(move |sim, _| {
            this.mongods[shard].borrow_mut().lock.release_read(sim);
            let back = secs(this.route_latency());
            sim.after(back, move |sim, _| done(sim, version));
        });
        if miss {
            // Page fault *while holding the (shared) lock*: one extent
            // read (32 KB in the paper's configuration; a parameter so the
            // read-size ablation can shrink it).
            let disk = self.next_disk();
            let bytes = self.params.mongo_read_per_miss;
            self.cluster
                .clone()
                .disk_read_rand(sim, node, disk, bytes, finish);
        } else {
            sim.schedule_in(0, finish);
        }
    }

    /// Update / insert: route → cpu → **global write lock** → page fault
    /// under the lock → release. No journal (the paper disabled it).
    pub fn write(self: &Rc<Self>, sim: &mut S, key: u64, insert: bool, done: Done) {
        if self.crashed.get() {
            done(sim, CRASHED);
            return;
        }
        let this = self.clone();
        sim.after(secs(self.route_latency()), move |sim, _| {
            let shard = this.shard_of(key);
            let node = this.mongods[shard].borrow().node;
            // Crash detection: the append hotspot floods one process's lock
            // queue until clients see socket timeouts (workload D on
            // Mongo-AS).
            if this.sharding == Sharding::Range
                && this.mongods[shard].borrow().lock.queue_len() > CRASH_QUEUE
            {
                this.crashed.set(true);
                done(sim, CRASHED);
                return;
            }
            // Appends into the last chunk grow it past the split threshold;
            // the balancer then migrates the split-off chunk, holding the
            // hot shard's write lock for the whole copy. This is the
            // mechanism behind workload D's 320 ms append latencies and the
            // crash above a 20 k ops/s target.
            if this.sharding == Sharding::Range && insert && shard == this.shards() - 1 {
                let n = this.appends_since_split.get() + 1;
                if n >= this.split_docs.get() {
                    this.appends_since_split.set(0);
                    this.start_migration(sim, shard, node);
                } else {
                    this.appends_since_split.set(n);
                }
            }
            let t2 = this.clone();
            let started = sim.now();
            this.cluster.clone().cpu(
                sim,
                node,
                this.op_cpu(),
                Box::new(move |sim, _| {
                    let t3 = t2.clone();
                    let body: simkit::Event<()> = Box::new(move |sim, _| {
                        t3.write_body(sim, shard, node, key, insert, started, done);
                    });
                    t2.mongods[shard].borrow_mut().lock.acquire_write(sim, body);
                }),
            );
        });
    }

    /// Balancer migration of the freshly split chunk: the source process's
    /// global write lock is held for the copy duration.
    fn start_migration(self: &Rc<Self>, sim: &mut S, shard: usize, node: usize) {
        self.migrations.set(self.migrations.get() + 1);
        let this = self.clone();
        let dst_shard = (shard + 1) % self.shards();
        let dst_node = self.mongods[dst_shard].borrow().node;
        let hold = secs(MIGRATION_FIXED + MIGRATION_BYTES as f64 / self.params.nic_bw);
        let body: simkit::Event<()> = Box::new(move |sim, _| {
            let t2 = this.clone();
            // Copy traffic occupies both NICs while the lock is held.
            this.cluster
                .transfer(sim, node, dst_node, MIGRATION_BYTES, Box::new(|_, _| {}));
            sim.after(hold, move |sim, _| {
                t2.mongods[shard].borrow_mut().lock.release_write(sim);
            });
        });
        self.mongods[shard]
            .borrow_mut()
            .lock
            .acquire_write(sim, body);
    }

    #[allow(clippy::too_many_arguments)]
    fn write_body(
        self: Rc<Self>,
        sim: &mut S,
        shard: usize,
        node: usize,
        key: u64,
        insert: bool,
        started: simkit::SimTime,
        done: Done,
    ) {
        let page = {
            let mut m = self.mongods[shard].borrow_mut();
            m.stats.writes += 1;
            if insert {
                m.docs.insert(key, 0);
            } else if let Some(v) = m.docs.get_mut(&key) {
                *v += 1;
            }
            m.cache_page(key, self.shards())
        };
        let (miss, evicted) = match self.caches[node].borrow_mut().access(page, true) {
            Access::Hit => (false, None),
            Access::Miss { evicted_dirty } => (true, evicted_dirty),
        };
        if evicted.is_some() {
            // Background mmap flush of the displaced dirty extent.
            let disk = self.next_disk();
            self.cluster
                .disk_write_seq(sim, node, disk, EXTENT, Box::new(|_, _| {}));
        }
        let this = self.clone();
        let finish: simkit::Event<()> = Box::new(move |sim, _| {
            this.mongods[shard].borrow_mut().lock.release_write(sim);
            // An append stuck behind migrations past the socket timeout
            // means the client saw a connection error: the run is dead.
            if insert
                && this.sharding == Sharding::Range
                && simkit::as_secs(sim.now() - started) > SOCKET_TIMEOUT
            {
                this.crashed.set(true);
                done(sim, CRASHED);
                return;
            }
            this.clone().ack_write(sim, shard, node, key, done);
        });
        if miss {
            let disk = self.next_disk();
            let bytes = self.params.mongo_read_per_miss;
            self.cluster
                .clone()
                .disk_read_rand(sim, node, disk, bytes, finish);
        } else {
            sim.schedule_in(0, finish);
        }
    }

    /// Post-apply acknowledgement path: optional journal group-flush wait
    /// (durability) and optional replication to secondaries.
    fn ack_write(self: Rc<Self>, sim: &mut S, shard: usize, node: usize, key: u64, done: Done) {
        // Replication: ship the ~1.1 KB document to each secondary.
        let n_acks = if self.replica_ack.get() {
            self.replicas.get() as u64
        } else {
            0
        };
        let doc_bytes = 1_126u64;
        let repl_latch = if n_acks > 0 {
            Some(Latch::with(n_acks, |_: &mut S, _| {}))
        } else {
            None
        };
        for r in 1..=self.replicas.get() {
            let sec = (node + r as usize) % self.params.nodes;
            let l = repl_latch.clone();
            self.cluster.transfer(
                sim,
                node,
                sec,
                doc_bytes,
                Box::new(move |sim, _| {
                    if let Some(l) = l {
                        l.count_down(sim);
                    }
                }),
            );
        }

        // Journal group commit: wait for the next flush boundary. The
        // flush makes the write durable (journal-recorded).
        let journal_wait = if self.journaled.get() {
            let interval = secs(self.params.journal_flush_interval);
            interval - (sim.now() % interval.max(1))
        } else {
            0
        };
        let back = secs(self.route_latency());
        let this = self.clone();
        let journaled = self.journaled.get();
        sim.after(journal_wait, move |sim, _| {
            if journaled {
                let mut m = this.mongods[shard].borrow_mut();
                let version = m.docs.get(&key).copied().unwrap_or(0);
                m.journal.push((key, version));
            }
            let respond: simkit::Event<()> = Box::new(move |sim, _| {
                sim.after(back, move |sim, _| done(sim, 0));
            });
            match (&this.replica_ack.get(), this.replicas.get()) {
                (true, n) if n > 0 => {
                    // w=2: wait for the slowest secondary ack. The latch
                    // above completes the transfers; approximate the ack
                    // round trip with one extra network latency.
                    sim.after(secs(this.params.net_latency), move |sim, _| {
                        respond(sim, &mut ());
                    });
                }
                _ => sim.schedule_in(0, respond),
            }
        });
    }

    /// Range scan. Mongo-AS knows which chunk holds the range (one shard,
    /// sequential extents — why it wins workload E); Mongo-CS must ask
    /// every shard.
    pub fn scan(self: &Rc<Self>, sim: &mut S, start: u64, len: usize, done: Done) {
        if self.crashed.get() {
            done(sim, CRASHED);
            return;
        }
        match self.sharding {
            Sharding::Range => self.scan_range(sim, start, len, done),
            Sharding::Hash => self.scan_hash(sim, start, len, done),
        }
    }

    fn scan_range(self: &Rc<Self>, sim: &mut S, start: u64, len: usize, done: Done) {
        let this = self.clone();
        sim.after(secs(self.route_latency()), move |sim, _| {
            let shard = this.shard_of(start);
            let node = this.mongods[shard].borrow().node;
            let t2 = this.clone();
            this.cluster.clone().cpu(
                sim,
                node,
                this.op_cpu(),
                Box::new(move |sim, _| {
                    let t3 = t2.clone();
                    let body: simkit::Event<()> = Box::new(move |sim, _| {
                        let (found, misses) = t3.scan_pages(shard, node, start, len);
                        let t4 = t3.clone();
                        let finish: simkit::Event<()> = Box::new(move |sim, _| {
                            t4.mongods[shard].borrow_mut().lock.release_read(sim);
                            let back = secs(t4.route_latency());
                            sim.after(back, move |sim, _| done(sim, found));
                        });
                        if misses > 0 {
                            let disk = t3.next_disk();
                            t3.cluster.clone().disk_read_rand(
                                sim,
                                node,
                                disk,
                                misses as u64 * EXTENT,
                                finish,
                            );
                        } else {
                            sim.schedule_in(0, finish);
                        }
                    });
                    t2.mongods[shard].borrow_mut().lock.acquire_read(sim, body);
                }),
            );
        });
    }

    fn scan_hash(self: &Rc<Self>, sim: &mut S, start: u64, len: usize, done: Done) {
        let this = self.clone();
        sim.after(secs(self.route_latency()), move |sim, _| {
            let shards = this.shards();
            let found = Rc::new(Cell::new(0u64));
            let fout = found.clone();
            let back = secs(this.route_latency());
            let latch = Latch::with(shards as u64, move |sim: &mut S, _| {
                sim.after(back, move |sim, _| done(sim, fout.get()));
            });
            for shard in 0..shards {
                let t2 = this.clone();
                let latch = latch.clone();
                let found = found.clone();
                let node = this.mongods[shard].borrow().node;
                this.cluster.clone().cpu(
                    sim,
                    node,
                    this.op_cpu(),
                    Box::new(move |sim, _| {
                        let t3 = t2.clone();
                        let body: simkit::Event<()> = Box::new(move |sim, _| {
                            let (n, misses) = t3.scan_pages(shard, node, start, len);
                            found.set(found.get() + n);
                            let t4 = t3.clone();
                            let finish: simkit::Event<()> = Box::new(move |sim, _| {
                                t4.mongods[shard].borrow_mut().lock.release_read(sim);
                                latch.count_down(sim);
                            });
                            if misses > 0 {
                                let disk = t3.next_disk();
                                t3.cluster.clone().disk_read_rand(
                                    sim,
                                    node,
                                    disk,
                                    misses as u64 * EXTENT,
                                    finish,
                                );
                            } else {
                                sim.schedule_in(0, finish);
                            }
                        });
                        t2.mongods[shard].borrow_mut().lock.acquire_read(sim, body);
                    }),
                );
            }
        });
    }

    /// Touch the extents a local scan over the range [start, start+len)
    /// covers; returns (records found, extent misses).
    fn scan_pages(&self, shard: usize, node: usize, start: u64, len: usize) -> (u64, usize) {
        let shards = self.shards();
        let end = start.saturating_add(len as u64);
        let keys: Vec<u64> = {
            let m = self.mongods[shard].borrow();
            m.docs
                .scan_from(&start, len)
                .into_iter()
                .map(|(k, _)| *k)
                .take_while(|&k| k < end)
                .collect()
        };
        let mut misses = 0;
        let mut last_page = u64::MAX;
        for k in &keys {
            let page = self.mongods[shard].borrow().cache_page(*k, shards);
            if page == last_page {
                continue;
            }
            last_page = page;
            if matches!(
                self.caches[node].borrow_mut().access(page, false),
                Access::Miss { .. }
            ) {
                misses += 1;
            }
        }
        (keys.len() as u64, misses)
    }

    /// Simulate a crash + restart. Without journaling (the paper's setup)
    /// every write since the load is gone; with it, journal-flushed writes
    /// replay.
    pub fn simulate_crash_and_recover(&self) {
        let n = self.loaded_records.get();
        for m_rc in &self.mongods {
            let mut m = m_rc.borrow_mut();
            let journal = std::mem::take(&mut m.journal);
            m.docs = storage::BTree::new();
            for key in 0..n {
                if self.shard_of(key) == m.id {
                    m.docs.insert(key, 0);
                }
            }
            for &(key, version) in &journal {
                m.docs.insert(key, version);
            }
            m.journal = journal;
        }
        for cache in &self.caches {
            cache.borrow_mut().clear();
        }
        self.crashed.set(false);
    }

    /// mongostat-style fraction of elapsed time the write lock was held,
    /// averaged over processes (§3.4.3: 25-45 % under workload A).
    pub fn write_lock_fraction(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs <= 0.0 {
            return 0.0;
        }
        let total: f64 = self
            .mongods
            .iter()
            .map(|m| simkit::as_secs(m.borrow().lock.writer_held_total))
            .sum();
        total / self.mongods.len() as f64 / elapsed_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::paper_ycsb().scaled_ycsb(1_000_000.0)
    }

    #[test]
    fn read_your_writes() {
        let mut sim: S = Sim::new();
        let cl = MongoCluster::build(&mut sim, &params(), Sharding::Hash);
        cl.load(10_000);
        let out: Rc<Cell<u64>> = Rc::default();
        let o = out.clone();
        let cl2 = cl.clone();
        cl.write(
            &mut sim,
            77,
            false,
            Box::new(move |sim, _| {
                cl2.read(sim, 77, Box::new(move |_, v| o.set(v)));
            }),
        );
        sim.run(&mut ());
        assert_eq!(out.get(), 1);
    }

    #[test]
    fn mongo_reads_32kb_per_miss() {
        let mut sim: S = Sim::new();
        let cl = MongoCluster::build(&mut sim, &params(), Sharding::Hash);
        cl.load(10_000);
        let t: Rc<Cell<u64>> = Rc::default();
        let tt = t.clone();
        cl.read(&mut sim, 5, Box::new(move |sim, _| tt.set(sim.now())));
        sim.run(&mut ());
        let secs = simkit::as_secs(t.get());
        // seek 5ms + 32KB transfer ≈ 0.3ms: noticeably above SQL's 8 KB.
        assert!(secs > 0.0053, "32KB fault should exceed 8KB read: {secs}");
    }

    #[test]
    fn writer_blocks_readers_on_same_shard() {
        let mut sim: S = Sim::new();
        let cl = MongoCluster::build(&mut sim, &params(), Sharding::Hash);
        cl.load(10_000);
        // Two writes + read on the same key: the second write and read wait.
        let shard = cl.shard_of(9);
        for _ in 0..2 {
            cl.write(&mut sim, 9, false, Box::new(|_, _| {}));
        }
        cl.read(&mut sim, 9, Box::new(|_, _| {}));
        sim.run(&mut ());
        assert!(cl.mongods[shard].borrow().lock.waits >= 1);
        assert!(cl.write_lock_fraction(simkit::as_secs(sim.now())) > 0.0);
    }

    #[test]
    fn range_scan_hits_one_shard_hash_scan_hits_all() {
        let mut sim: S = Sim::new();
        let as_cl = MongoCluster::build(&mut sim, &params(), Sharding::Range);
        as_cl.load(128_000); // chunk = 1000 keys
        let found: Rc<Cell<u64>> = Rc::default();
        let f = found.clone();
        as_cl.scan(&mut sim, 5_000, 100, Box::new(move |_, n| f.set(n)));
        sim.run(&mut ());
        assert_eq!(found.get(), 100, "range shard returns exactly the range");
        let touched: usize = as_cl
            .mongods
            .iter()
            .filter(|m| m.borrow().stats.reads > 0 || m.borrow().lock.waits > 0)
            .count();
        let _ = touched; // reads counter not bumped by scans; check via cache instead

        let mut sim2: S = Sim::new();
        let cs = MongoCluster::build(&mut sim2, &params(), Sharding::Hash);
        cs.load(128_000);
        let found2: Rc<Cell<u64>> = Rc::default();
        let f2 = found2.clone();
        cs.scan(&mut sim2, 5_000, 100, Box::new(move |_, n| f2.set(n)));
        sim2.run(&mut ());
        // All 128 shards must be consulted, but they jointly return
        // exactly the requested range.
        assert_eq!(found2.get(), 100);
    }

    #[test]
    fn journaling_adds_group_flush_latency() {
        let mut sim: S = Sim::new();
        let cl = MongoCluster::build(&mut sim, &params(), Sharding::Hash);
        cl.load(10_000);
        let t_plain: Rc<Cell<u64>> = Rc::default();
        let tp = t_plain.clone();
        cl.write(
            &mut sim,
            10,
            false,
            Box::new(move |sim, _| tp.set(sim.now())),
        );
        sim.run(&mut ());
        let plain = simkit::as_secs(t_plain.get());

        let mut sim2: S = Sim::new();
        let cl2 = MongoCluster::build(&mut sim2, &params(), Sharding::Hash);
        cl2.load(10_000);
        cl2.journaled.set(true);
        let t_j: Rc<Cell<u64>> = Rc::default();
        let tj = t_j.clone();
        cl2.write(
            &mut sim2,
            10,
            false,
            Box::new(move |sim, _| tj.set(sim.now())),
        );
        sim2.run(&mut ());
        let journaled = simkit::as_secs(t_j.get());
        // The write waits for the next 100 ms flush boundary.
        assert!(
            journaled > plain + 0.01,
            "journaled {journaled} vs plain {plain}"
        );
        assert!(journaled < plain + 0.11, "at most one flush interval");
    }

    #[test]
    fn replica_ack_waits_for_secondary() {
        let mut sim: S = Sim::new();
        let cl = MongoCluster::build(&mut sim, &params(), Sharding::Hash);
        cl.load(10_000);
        cl.replicas.set(1);
        cl.replica_ack.set(true);
        let t: Rc<Cell<u64>> = Rc::default();
        let tt = t.clone();
        cl.write(
            &mut sim,
            10,
            false,
            Box::new(move |sim, _| tt.set(sim.now())),
        );
        sim.run(&mut ());
        let with_ack = simkit::as_secs(t.get());

        let mut sim2: S = Sim::new();
        let cl2 = MongoCluster::build(&mut sim2, &params(), Sharding::Hash);
        cl2.load(10_000);
        cl2.replicas.set(1); // async: no ack wait
        let t2: Rc<Cell<u64>> = Rc::default();
        let tt2 = t2.clone();
        cl2.write(
            &mut sim2,
            10,
            false,
            Box::new(move |sim, _| tt2.set(sim.now())),
        );
        sim2.run(&mut ());
        let async_repl = simkit::as_secs(t2.get());
        assert!(
            with_ack > async_repl,
            "w=2 ack {with_ack} must exceed async {async_repl}"
        );
    }

    #[test]
    fn appends_route_to_last_chunk_and_crash_under_flood() {
        let mut sim: S = Sim::new();
        let cl = MongoCluster::build(&mut sim, &params(), Sharding::Range);
        cl.load(128_000);
        let last = cl.shards() - 1;
        cl.split_docs.set(500); // small chunks so the test floods quickly
                                // Flood appends at 4 k/s: the hot chunk splits, migrations seize
                                // the write lock, the queue explodes, clients see socket errors.
        let failed: Rc<Cell<u64>> = Rc::default();
        for i in 0..4000u64 {
            let key = cl.next_append_key();
            assert_eq!(cl.shard_of(key), last, "appends hit the last chunk");
            let f = failed.clone();
            let cl2 = cl.clone();
            sim.after(secs(i as f64 * 0.000_25), move |sim, _| {
                cl2.write(
                    sim,
                    key,
                    true,
                    Box::new(move |_, v| {
                        if v == CRASHED {
                            f.set(f.get() + 1);
                        }
                    }),
                );
            });
        }
        sim.run(&mut ());
        assert!(cl.migrations.get() >= 1, "splits must trigger migrations");
        assert!(cl.crashed.get(), "append storm must crash Mongo-AS");
        assert!(failed.get() > 0);
    }
}
