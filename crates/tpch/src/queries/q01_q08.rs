//! TPC-H queries 1–8.

use super::Base;
use relational::expr::{and, col, lit_date, lit_f64, lit_i64, lit_str, or, Expr};
use relational::{AggCall, JoinKind, LogicalPlan, SortKey, Value};

/// Q1 — pricing summary report.
pub fn q1() -> LogicalPlan {
    let l = Base::new("lineitem");
    // layout: 0 rf, 1 ls, 2 qty, 3 price, 4 disc, 5 tax
    let base = l.select(
        Some(l.c("l_shipdate").le(lit_date(1998, 12, 1).sub(lit_i64(90)))),
        &[
            "l_returnflag",
            "l_linestatus",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_tax",
        ],
    );
    let disc_price = col(3).mul(lit_f64(1.0).sub(col(4)));
    let charge = col(3)
        .mul(lit_f64(1.0).sub(col(4)))
        .mul(lit_f64(1.0).add(col(5)));
    base.aggregate(
        vec![(col(0), "l_returnflag"), (col(1), "l_linestatus")],
        vec![
            AggCall::sum(col(2), "sum_qty"),
            AggCall::sum(col(3), "sum_base_price"),
            AggCall::sum(disc_price, "sum_disc_price"),
            AggCall::sum(charge, "sum_charge"),
            AggCall::avg(col(2), "avg_qty"),
            AggCall::avg(col(3), "avg_price"),
            AggCall::avg(col(4), "avg_disc"),
            AggCall::count_star("count_order"),
        ],
    )
    .sort(vec![SortKey::asc(col(0)), SortKey::asc(col(1))])
}

/// Q2 — minimum cost supplier. Hive splits this into tmp1 (the 5-way join)
/// and tmp2 (min cost per part), then joins them back.
pub fn q2() -> LogicalPlan {
    let p = Base::new("part");
    let ps = Base::new("partsupp");
    let s = Base::new("supplier");
    let n = Base::new("nation");
    let r = Base::new("region");

    // part: 0 p_partkey, 1 p_mfgr
    let part = p.select(
        Some(and(vec![
            p.c("p_size").eq(lit_i64(15)),
            p.c("p_type").like("%BRASS"),
        ])),
        &["p_partkey", "p_mfgr"],
    );
    // partsupp: 0 ps_partkey, 1 ps_suppkey, 2 ps_supplycost
    let partsupp = ps.select(None, &["ps_partkey", "ps_suppkey", "ps_supplycost"]);
    // supplier: 0 s_suppkey, 1 s_name, 2 s_address, 3 s_nationkey, 4 s_phone,
    //           5 s_acctbal, 6 s_comment
    let supplier = s.select(
        None,
        &[
            "s_suppkey",
            "s_name",
            "s_address",
            "s_nationkey",
            "s_phone",
            "s_acctbal",
            "s_comment",
        ],
    );
    // nation: 0 n_nationkey, 1 n_name, 2 n_regionkey
    let nation = n.select(None, &["n_nationkey", "n_name", "n_regionkey"]);
    // region: 0 r_regionkey
    let region = r.select(Some(r.c("r_name").eq(lit_str("EUROPE"))), &["r_regionkey"]);

    // tmp1 join chain (as the Hive script orders it):
    // part ⋈ partsupp: 0 p_partkey,1 p_mfgr,2 ps_partkey,3 ps_suppkey,4 ps_supplycost
    let t = part.join(partsupp, vec![(0, 0)]);
    // ⋈ supplier: +5 s_suppkey,6 s_name,7 s_address,8 s_nationkey,9 s_phone,10 s_acctbal,11 s_comment
    let t = t.join(supplier, vec![(3, 0)]);
    // ⋈ nation: +12 n_nationkey,13 n_name,14 n_regionkey
    let t = t.join(nation, vec![(8, 0)]);
    // ⋈ region: +15 r_regionkey
    let t = t.join(region, vec![(14, 0)]);
    // tmp1: 0 p_partkey,1 p_mfgr,2 cost,3 s_acctbal,4 s_name,5 s_address,
    //       6 s_phone,7 s_comment,8 n_name
    let tmp1 = t
        .project(vec![
            (col(0), "p_partkey"),
            (col(1), "p_mfgr"),
            (col(4), "ps_supplycost"),
            (col(10), "s_acctbal"),
            (col(6), "s_name"),
            (col(7), "s_address"),
            (col(9), "s_phone"),
            (col(11), "s_comment"),
            (col(13), "n_name"),
        ])
        .materialize("q2_tmp1");

    // tmp2: min cost per part over tmp1.
    let tmp2 = tmp1
        .clone()
        .aggregate(
            vec![(col(0), "p_partkey")],
            vec![AggCall::min(col(2), "min_cost")],
        )
        .materialize("q2_tmp2");

    // tmp1 ⋈ tmp2 on partkey where cost = min_cost.
    // combined: tmp1(0..=8), 9 p_partkey(tmp2), 10 min_cost
    tmp1.join_kind(
        tmp2,
        JoinKind::Inner,
        vec![(0, 0)],
        Some(col(2).eq(col(10))),
    )
    .project(vec![
        (col(3), "s_acctbal"),
        (col(4), "s_name"),
        (col(8), "n_name"),
        (col(0), "p_partkey"),
        (col(1), "p_mfgr"),
        (col(5), "s_address"),
        (col(6), "s_phone"),
        (col(7), "s_comment"),
    ])
    .sort(vec![
        SortKey::desc(col(0)),
        SortKey::asc(col(2)),
        SortKey::asc(col(1)),
        SortKey::asc(col(3)),
    ])
    .limit(100)
}

/// Q3 — shipping priority.
pub fn q3() -> LogicalPlan {
    let c = Base::new("customer");
    let o = Base::new("orders");
    let l = Base::new("lineitem");
    // customer: 0 c_custkey
    let cust = c.select(
        Some(c.c("c_mktsegment").eq(lit_str("BUILDING"))),
        &["c_custkey"],
    );
    // orders: 0 o_orderkey, 1 o_custkey, 2 o_orderdate, 3 o_shippriority
    let orders = o.select(
        Some(o.c("o_orderdate").lt(lit_date(1995, 3, 15))),
        &["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"],
    );
    // lineitem: 0 l_orderkey, 1 l_extendedprice, 2 l_discount
    let line = l.select(
        Some(l.c("l_shipdate").gt(lit_date(1995, 3, 15))),
        &["l_orderkey", "l_extendedprice", "l_discount"],
    );
    // cust ⋈ orders: 0 c_custkey, 1 o_orderkey, 2 o_custkey, 3 o_orderdate, 4 o_shippriority
    let t = cust.join(orders, vec![(0, 1)]);
    // ⋈ lineitem: +5 l_orderkey, 6 price, 7 disc
    let t = t.join(line, vec![(1, 0)]);
    t.aggregate(
        vec![
            (col(1), "l_orderkey"),
            (col(3), "o_orderdate"),
            (col(4), "o_shippriority"),
        ],
        vec![AggCall::sum(
            col(6).mul(lit_f64(1.0).sub(col(7))),
            "revenue",
        )],
    )
    // 0 orderkey, 1 orderdate, 2 shippriority, 3 revenue
    .sort(vec![SortKey::desc(col(3)), SortKey::asc(col(1))])
    .limit(10)
    .project(vec![
        (col(0), "l_orderkey"),
        (col(3), "revenue"),
        (col(1), "o_orderdate"),
        (col(2), "o_shippriority"),
    ])
}

/// Q4 — order priority checking. The Hive script rewrites the EXISTS as a
/// materialized DISTINCT temp table (`q4_order_priority_tmp`: the late
/// order keys) joined back against orders — a full extra MapReduce round
/// compared to a direct semi join.
pub fn q4() -> LogicalPlan {
    let o = Base::new("orders");
    let l = Base::new("lineitem");
    let orders = o.select(
        Some(and(vec![
            o.c("o_orderdate").ge(lit_date(1993, 7, 1)),
            o.c("o_orderdate").lt(lit_date(1993, 10, 1)),
        ])),
        &["o_orderkey", "o_orderpriority"],
    );
    // SELECT DISTINCT l_orderkey FROM lineitem WHERE commit < receipt.
    let late_keys = l
        .select(
            Some(l.c("l_commitdate").lt(l.c("l_receiptdate"))),
            &["l_orderkey"],
        )
        .aggregate(vec![(col(0), "l_orderkey")], vec![])
        .materialize("q4_tmp");
    orders
        .join_kind(late_keys, JoinKind::LeftSemi, vec![(0, 0)], None)
        .aggregate(
            vec![(col(1), "o_orderpriority")],
            vec![AggCall::count_star("order_count")],
        )
        .sort(vec![SortKey::asc(col(0))])
}

/// Q5 — local supplier volume. Hive's script joins nation⋈region first,
/// then supplier, then the big lineitem common join, then orders, then
/// customer (the order the paper's analysis walks through).
pub fn q5() -> LogicalPlan {
    let c = Base::new("customer");
    let o = Base::new("orders");
    let l = Base::new("lineitem");
    let s = Base::new("supplier");
    let n = Base::new("nation");
    let r = Base::new("region");

    // nation: 0 n_nationkey, 1 n_name, 2 n_regionkey
    let nation = n.select(None, &["n_nationkey", "n_name", "n_regionkey"]);
    // region: 0 r_regionkey
    let region = r.select(Some(r.c("r_name").eq(lit_str("ASIA"))), &["r_regionkey"]);
    // n ⋈ r: 0 n_nationkey, 1 n_name, 2 n_regionkey, 3 r_regionkey
    let nr = nation.join(region, vec![(2, 0)]);
    // supplier: 0 s_suppkey, 1 s_nationkey
    let supplier = s.select(None, &["s_suppkey", "s_nationkey"]);
    // nr ⋈ s (on nationkey): + 4 s_suppkey, 5 s_nationkey
    let nrs = nr.join(supplier, vec![(0, 1)]);
    // lineitem: 0 l_orderkey, 1 l_suppkey, 2 l_extendedprice, 3 l_discount
    let line = l.select(
        None,
        &["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"],
    );
    // nrs ⋈ lineitem (the expensive common join): + 6 l_orderkey, 7 l_suppkey, 8 price, 9 disc
    let t = nrs.join(line, vec![(4, 1)]);
    // orders: 0 o_orderkey, 1 o_custkey
    let orders = o.select(
        Some(and(vec![
            o.c("o_orderdate").ge(lit_date(1994, 1, 1)),
            o.c("o_orderdate").lt(lit_date(1995, 1, 1)),
        ])),
        &["o_orderkey", "o_custkey"],
    );
    // t ⋈ orders: + 10 o_orderkey, 11 o_custkey
    let t = t.join(orders, vec![(6, 0)]);
    // customer: 0 c_custkey, 1 c_nationkey
    let customer = c.select(None, &["c_custkey", "c_nationkey"]);
    // ⋈ customer on custkey, with residual c_nationkey = s_nationkey:
    // + 12 c_custkey, 13 c_nationkey
    let t = t.join_kind(
        customer,
        JoinKind::Inner,
        vec![(11, 0)],
        Some(col(13).eq(col(5))),
    );
    t.aggregate(
        vec![(col(1), "n_name")],
        vec![AggCall::sum(
            col(8).mul(lit_f64(1.0).sub(col(9))),
            "revenue",
        )],
    )
    .sort(vec![SortKey::desc(col(1))])
}

/// Q6 — forecasting revenue change.
pub fn q6() -> LogicalPlan {
    let l = Base::new("lineitem");
    l.select(
        Some(and(vec![
            l.c("l_shipdate").ge(lit_date(1994, 1, 1)),
            l.c("l_shipdate").lt(lit_date(1995, 1, 1)),
            l.c("l_discount")
                .between(Value::decimal(0.05), Value::decimal(0.07)),
            l.c("l_quantity").lt(lit_i64(24)),
        ])),
        &["l_extendedprice", "l_discount"],
    )
    .aggregate(vec![], vec![AggCall::sum(col(0).mul(col(1)), "revenue")])
}

/// Q7 — volume shipping between FRANCE and GERMANY.
pub fn q7() -> LogicalPlan {
    let s = Base::new("supplier");
    let l = Base::new("lineitem");
    let o = Base::new("orders");
    let c = Base::new("customer");
    let n = Base::new("nation");

    // supplier: 0 s_suppkey, 1 s_nationkey
    let supplier = s.select(None, &["s_suppkey", "s_nationkey"]);
    // lineitem: 0 l_orderkey, 1 l_suppkey, 2 price, 3 disc, 4 shipdate
    let line = l.select(
        Some(and(vec![
            l.c("l_shipdate").ge(lit_date(1995, 1, 1)),
            l.c("l_shipdate").le(lit_date(1996, 12, 31)),
        ])),
        &[
            "l_orderkey",
            "l_suppkey",
            "l_extendedprice",
            "l_discount",
            "l_shipdate",
        ],
    );
    // s ⋈ l: 0 s_suppkey,1 s_nationkey,2 l_orderkey,3 l_suppkey,4 price,5 disc,6 shipdate
    let t = supplier.join(line, vec![(0, 1)]);
    // orders: 0 o_orderkey, 1 o_custkey
    let orders = o.select(None, &["o_orderkey", "o_custkey"]);
    // + 7 o_orderkey, 8 o_custkey
    let t = t.join(orders, vec![(2, 0)]);
    // customer: 0 c_custkey, 1 c_nationkey
    let customer = c.select(None, &["c_custkey", "c_nationkey"]);
    // + 9 c_custkey, 10 c_nationkey
    let t = t.join(customer, vec![(8, 0)]);
    // n1 (supplier nation): 0 n_nationkey, 1 n_name
    let n1 = n.select(None, &["n_nationkey", "n_name"]);
    // + 11 n_nationkey, 12 n1_name
    let t = t.join(n1, vec![(1, 0)]);
    // n2 (customer nation) with the FRANCE/GERMANY pair filter as residual.
    let n2 = n.select(None, &["n_nationkey", "n_name"]);
    // + 13 n_nationkey, 14 n2_name
    let pair = or(vec![
        and(vec![
            col(12).eq(lit_str("FRANCE")),
            col(14).eq(lit_str("GERMANY")),
        ]),
        and(vec![
            col(12).eq(lit_str("GERMANY")),
            col(14).eq(lit_str("FRANCE")),
        ]),
    ]);
    let t = t.join_kind(n2, JoinKind::Inner, vec![(10, 0)], Some(pair));
    t.aggregate(
        vec![
            (col(12), "supp_nation"),
            (col(14), "cust_nation"),
            (col(6).extract_year(), "l_year"),
        ],
        vec![AggCall::sum(
            col(4).mul(lit_f64(1.0).sub(col(5))),
            "revenue",
        )],
    )
    .sort(vec![
        SortKey::asc(col(0)),
        SortKey::asc(col(1)),
        SortKey::asc(col(2)),
    ])
}

/// Q8 — national market share.
pub fn q8() -> LogicalPlan {
    let p = Base::new("part");
    let l = Base::new("lineitem");
    let s = Base::new("supplier");
    let o = Base::new("orders");
    let c = Base::new("customer");
    let n = Base::new("nation");
    let r = Base::new("region");

    // part: 0 p_partkey
    let part = p.select(
        Some(p.c("p_type").eq(lit_str("ECONOMY ANODIZED STEEL"))),
        &["p_partkey"],
    );
    // lineitem: 0 l_orderkey,1 l_partkey,2 l_suppkey,3 price,4 disc
    let line = l.select(
        None,
        &[
            "l_orderkey",
            "l_partkey",
            "l_suppkey",
            "l_extendedprice",
            "l_discount",
        ],
    );
    // part ⋈ line: 0 p_partkey, 1..5 line
    let t = part.join(line, vec![(0, 1)]);
    // supplier: 0 s_suppkey, 1 s_nationkey → + 6, 7
    let t = t.join(s.select(None, &["s_suppkey", "s_nationkey"]), vec![(3, 0)]);
    // orders (1995..1996): 0 o_orderkey, 1 o_custkey, 2 o_orderdate → + 8, 9, 10
    let orders = o.select(
        Some(and(vec![
            o.c("o_orderdate").ge(lit_date(1995, 1, 1)),
            o.c("o_orderdate").le(lit_date(1996, 12, 31)),
        ])),
        &["o_orderkey", "o_custkey", "o_orderdate"],
    );
    let t = t.join(orders, vec![(1, 0)]);
    // customer: 0 c_custkey, 1 c_nationkey → + 11, 12
    let t = t.join(c.select(None, &["c_custkey", "c_nationkey"]), vec![(9, 0)]);
    // n1 = customer nation (for region filter): 0 n_nationkey, 1 n_regionkey → + 13, 14
    let n1 = n.select(None, &["n_nationkey", "n_regionkey"]);
    let t = t.join(n1, vec![(12, 0)]);
    // region AMERICA: 0 r_regionkey → + 15
    let region = r.select(Some(r.c("r_name").eq(lit_str("AMERICA"))), &["r_regionkey"]);
    let t = t.join(region, vec![(14, 0)]);
    // n2 = supplier nation: 0 n_nationkey, 1 n_name → + 16, 17
    let n2 = n.select(None, &["n_nationkey", "n_name"]);
    let t = t.join(n2, vec![(7, 0)]);

    let volume = col(4).mul(lit_f64(1.0).sub(col(5)));
    let brazil_volume = Expr::Case {
        whens: vec![(col(17).eq(lit_str("BRAZIL")), volume.clone())],
        otherwise: Box::new(lit_f64(0.0)),
    };
    t.aggregate(
        vec![(col(10).extract_year(), "o_year")],
        vec![
            AggCall::sum(brazil_volume, "brazil_vol"),
            AggCall::sum(volume, "total_vol"),
        ],
    )
    // 0 o_year, 1 brazil, 2 total
    .project(vec![(col(0), "o_year"), (col(1).div(col(2)), "mkt_share")])
    .sort(vec![SortKey::asc(col(0))])
}
