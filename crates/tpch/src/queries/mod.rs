//! The 22 TPC-H queries as [`LogicalPlan`]s.
//!
//! Plans are written in the **same join order as the Hive team's
//! hand-written TPC-H scripts** (HIVE-600, as used by the paper): the Hive
//! engine lowers them exactly as written (syntax-directed, no cost-based
//! reordering), while the PDW optimizer is free to reorder and choose
//! distribution strategies. Correlated/scalar subqueries are manually
//! decorrelated into joins against aggregated subplans, mirroring the
//! multi-stage "tmp table" structure of the Hive scripts (e.g. Q22's four
//! sub-queries).
//!
//! Column positions after projections are documented inline; the
//! cross-engine answer-equality tests in `tests/` guard the plumbing.

mod q01_q08;
mod q09_q16;
mod q17_q22;

use crate::schema;
use relational::expr::{col, Expr};
use relational::{LogicalPlan, Schema};

/// Number of TPC-H queries.
pub const QUERY_COUNT: usize = 22;

/// Build query `n` (1-based).
pub fn query(n: usize) -> LogicalPlan {
    match n {
        1 => q01_q08::q1(),
        2 => q01_q08::q2(),
        3 => q01_q08::q3(),
        4 => q01_q08::q4(),
        5 => q01_q08::q5(),
        6 => q01_q08::q6(),
        7 => q01_q08::q7(),
        8 => q01_q08::q8(),
        9 => q09_q16::q9(),
        10 => q09_q16::q10(),
        11 => q09_q16::q11(),
        12 => q09_q16::q12(),
        13 => q09_q16::q13(),
        14 => q09_q16::q14(),
        15 => q09_q16::q15(),
        16 => q09_q16::q16(),
        17 => q17_q22::q17(),
        18 => q17_q22::q18(),
        19 => q17_q22::q19(),
        20 => q17_q22::q20(),
        21 => q17_q22::q21(),
        22 => q17_q22::q22(),
        other => panic!("TPC-H has queries 1..=22, got {other}"),
    }
}

/// "Q1".."Q22".
pub fn query_names() -> Vec<String> {
    (1..=QUERY_COUNT).map(|i| format!("Q{i}")).collect()
}

/// Helper binding a base table's schema for readable column references.
pub(crate) struct Base {
    pub name: &'static str,
    pub schema: Schema,
}

impl Base {
    pub fn new(name: &'static str) -> Base {
        Base {
            name,
            schema: schema::table_schema(name),
        }
    }

    /// Column reference by name (positions of the *base* schema — valid in
    /// filters applied directly over the scan).
    pub fn c(&self, name: &str) -> Expr {
        col(self.schema.col(name))
    }

    pub fn scan(&self) -> LogicalPlan {
        LogicalPlan::scan(self.name)
    }

    /// scan → optional filter → project(cols).
    pub fn select(&self, pred: Option<Expr>, cols: &[&str]) -> LogicalPlan {
        let mut plan = self.scan();
        if let Some(p) = pred {
            plan = plan.filter(p);
        }
        plan.project(cols.iter().map(|&c| (self.c(c), c)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use relational::execute;

    #[test]
    fn all_queries_build_and_derive_schemas() {
        let cat = generate(&GenConfig::new(0.005));
        for n in 1..=QUERY_COUNT {
            let plan = query(n);
            let s = plan.schema(&cat);
            assert!(!s.is_empty(), "Q{n} schema empty");
        }
    }

    #[test]
    fn all_queries_render_as_plan_trees() {
        for n in 1..=QUERY_COUNT {
            let text = relational::display::plan_to_string(&query(n));
            assert!(text.contains("Scan"), "Q{n} rendering lost its scans");
            assert!(
                text.lines().count() >= 3,
                "Q{n} rendering suspiciously short:\n{text}"
            );
        }
    }

    #[test]
    fn all_queries_pass_structural_validation() {
        let cat = generate(&GenConfig::new(0.005));
        for n in 1..=QUERY_COUNT {
            query(n)
                .validate(&cat)
                .unwrap_or_else(|e| panic!("Q{n} invalid: {e}"));
        }
    }

    #[test]
    fn all_queries_execute_on_tiny_data() {
        let cat = generate(&GenConfig::new(0.01));
        for n in 1..=QUERY_COUNT {
            let plan = query(n);
            let (_, rows) = execute(&plan, &cat);
            // Structural sanity per query where the spec pins it down.
            match n {
                1 => assert!(
                    rows.len() <= 6 && rows.len() >= 3,
                    "Q1 groups: {}",
                    rows.len()
                ),
                3 => assert!(rows.len() <= 10),
                4 => assert_eq!(rows.len(), 5, "Q4: one row per priority"),
                2 | 18 | 21 => assert!(rows.len() <= 100),
                10 => assert!(rows.len() <= 20),
                6 | 14 | 17 | 19 => assert_eq!(rows.len(), 1, "Q{n} is a scalar query"),
                12 => assert_eq!(rows.len(), 2, "Q12: MAIL and SHIP"),
                _ => {}
            }
        }
    }

    #[test]
    fn q1_aggregates_are_internally_consistent() {
        let cat = generate(&GenConfig::new(0.01));
        let (schema, rows) = execute(&query(1), &cat);
        let (qty, cnt, avg_qty) = (
            schema.col("sum_qty"),
            schema.col("count_order"),
            schema.col("avg_qty"),
        );
        for r in &rows {
            let s = r[qty].as_f64().unwrap();
            let n = r[cnt].as_f64().unwrap();
            let a = r[avg_qty].as_f64().unwrap();
            assert!((s / n - a).abs() < 1e-6, "avg = sum/count");
            assert!(n > 0.0);
        }
    }

    #[test]
    fn q6_matches_naive_computation() {
        let cat = generate(&GenConfig::new(0.01));
        let (_, rows) = execute(&query(6), &cat);
        let got = rows[0][0].as_f64().unwrap();
        // Naive recomputation straight off the base table.
        let li = cat.get("lineitem");
        let s = schema::lineitem();
        let (ship, disc, qty, price) = (
            s.col("l_shipdate"),
            s.col("l_discount"),
            s.col("l_quantity"),
            s.col("l_extendedprice"),
        );
        let lo = relational::date::date(1994, 1, 1);
        let hi = relational::date::date(1995, 1, 1);
        let want: f64 = li
            .rows
            .iter()
            .filter(|r| {
                let d = r[ship].as_i64().unwrap() as i32;
                let dc = r[disc].as_f64().unwrap();
                let q = r[qty].as_f64().unwrap();
                d >= lo && d < hi && (0.05..=0.07).contains(&dc) && q < 24.0
            })
            .map(|r| r[price].as_f64().unwrap() * r[disc].as_f64().unwrap())
            .sum();
        assert!(
            (got - want).abs() < 1e-6 * want.abs().max(1.0),
            "Q6 {got} vs naive {want}"
        );
    }

    #[test]
    fn q13_includes_customers_with_zero_orders() {
        let cat = generate(&GenConfig::new(0.01));
        let (schema, rows) = execute(&query(13), &cat);
        let c_count = schema.col("c_count");
        assert!(
            rows.iter().any(|r| r[c_count].as_i64() == Some(0)),
            "left join must produce a zero-order bucket"
        );
        // Total customers across buckets == customer count.
        let custdist = schema.col("custdist");
        let total: i64 = rows.iter().map(|r| r[custdist].as_i64().unwrap()).sum();
        assert_eq!(total as usize, cat.get("customer").len());
    }

    #[test]
    fn q22_customers_have_no_orders() {
        let cat = generate(&GenConfig::new(0.01));
        let (schema, rows) = execute(&query(22), &cat);
        assert!(!rows.is_empty(), "Q22 should produce country groups");
        let numcust = schema.col("numcust");
        for r in &rows {
            assert!(r[numcust].as_i64().unwrap() > 0);
        }
    }

    #[test]
    #[should_panic(expected = "queries 1..=22")]
    fn query_zero_rejected() {
        query(0);
    }
}
