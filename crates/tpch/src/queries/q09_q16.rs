//! TPC-H queries 9–16.

use super::Base;
use relational::expr::{and, col, lit_date, lit_f64, lit_i64, lit_str, Expr};
use relational::{AggCall, JoinKind, LogicalPlan, SortKey, Value};

/// Q9 — product type profit measure (the query that ran Hive out of disk
/// at the 16 TB scale factor: its intermediates are huge).
pub fn q9() -> LogicalPlan {
    let p = Base::new("part");
    let l = Base::new("lineitem");
    let s = Base::new("supplier");
    let ps = Base::new("partsupp");
    let o = Base::new("orders");
    let n = Base::new("nation");

    // As in the HIVE-600 script, the '%green%' predicate sits in the WHERE
    // clause *above* the join chain. Hive 0.7 executes it exactly there
    // (materializing the full part ⋈ lineitem intermediate — what runs it
    // out of disk at 16 TB); PDW's optimizer pushes it into the part scan.
    // part: 0 p_partkey, 1 p_name
    let part = p.select(None, &["p_partkey", "p_name"]);
    // lineitem: 0 l_orderkey,1 l_partkey,2 l_suppkey,3 qty,4 price,5 disc
    let line = l.select(
        None,
        &[
            "l_orderkey",
            "l_partkey",
            "l_suppkey",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
        ],
    );
    // part ⋈ line: 0 p_partkey, 1 p_name + 2..7
    let t = part.join(line, vec![(0, 1)]);
    // supplier: 0 s_suppkey, 1 s_nationkey → + 8, 9
    let t = t.join(s.select(None, &["s_suppkey", "s_nationkey"]), vec![(4, 0)]);
    // partsupp on (partkey, suppkey): 0 ps_partkey,1 ps_suppkey,2 ps_supplycost → + 10,11,12
    let t = t.join(
        ps.select(None, &["ps_partkey", "ps_suppkey", "ps_supplycost"]),
        vec![(3, 0), (4, 1)],
    );
    // orders: 0 o_orderkey, 1 o_orderdate → + 13, 14
    let t = t.join(o.select(None, &["o_orderkey", "o_orderdate"]), vec![(2, 0)]);
    // nation: 0 n_nationkey, 1 n_name → + 15, 16
    let t = t.join(n.select(None, &["n_nationkey", "n_name"]), vec![(9, 0)]);
    // WHERE p_name like '%green%' (kept above the joins, see note).
    let t = t.filter(col(1).like("%green%"));

    // amount = price*(1-disc) - supplycost*qty
    let amount = col(6)
        .mul(lit_f64(1.0).sub(col(7)))
        .sub(col(12).mul(col(5)));
    t.aggregate(
        vec![(col(16), "nation"), (col(14).extract_year(), "o_year")],
        vec![AggCall::sum(amount, "sum_profit")],
    )
    .sort(vec![SortKey::asc(col(0)), SortKey::desc(col(1))])
}

/// Q10 — returned item reporting.
pub fn q10() -> LogicalPlan {
    let c = Base::new("customer");
    let o = Base::new("orders");
    let l = Base::new("lineitem");
    let n = Base::new("nation");

    // customer: 0 c_custkey,1 c_name,2 c_acctbal,3 c_phone,4 c_address,5 c_comment,6 c_nationkey
    let cust = c.select(
        None,
        &[
            "c_custkey",
            "c_name",
            "c_acctbal",
            "c_phone",
            "c_address",
            "c_comment",
            "c_nationkey",
        ],
    );
    // orders: 0 o_orderkey, 1 o_custkey → + 7, 8
    let orders = o.select(
        Some(and(vec![
            o.c("o_orderdate").ge(lit_date(1993, 10, 1)),
            o.c("o_orderdate").lt(lit_date(1994, 1, 1)),
        ])),
        &["o_orderkey", "o_custkey"],
    );
    let t = cust.join(orders, vec![(0, 1)]);
    // lineitem (returned): 0 l_orderkey, 1 price, 2 disc → + 9, 10, 11
    let line = l.select(
        Some(l.c("l_returnflag").eq(lit_str("R"))),
        &["l_orderkey", "l_extendedprice", "l_discount"],
    );
    let t = t.join(line, vec![(7, 0)]);
    // nation: 0 n_nationkey, 1 n_name → + 12, 13
    let t = t.join(n.select(None, &["n_nationkey", "n_name"]), vec![(6, 0)]);

    t.aggregate(
        vec![
            (col(0), "c_custkey"),
            (col(1), "c_name"),
            (col(2), "c_acctbal"),
            (col(3), "c_phone"),
            (col(13), "n_name"),
            (col(4), "c_address"),
            (col(5), "c_comment"),
        ],
        vec![AggCall::sum(
            col(10).mul(lit_f64(1.0).sub(col(11))),
            "revenue",
        )],
    )
    // sort by revenue (index 7) desc
    .sort(vec![SortKey::desc(col(7)), SortKey::asc(col(0))])
    .limit(20)
}

/// Q11 — important stock identification (scalar subquery → cross join).
pub fn q11() -> LogicalPlan {
    let ps = Base::new("partsupp");
    let s = Base::new("supplier");
    let n = Base::new("nation");

    let base = {
        // partsupp: 0 ps_partkey, 1 ps_suppkey, 2 cost, 3 qty
        let partsupp = ps.select(
            None,
            &["ps_partkey", "ps_suppkey", "ps_supplycost", "ps_availqty"],
        );
        // supplier: 0 s_suppkey, 1 s_nationkey → + 4, 5
        let t = partsupp.join(s.select(None, &["s_suppkey", "s_nationkey"]), vec![(1, 0)]);
        // nation GERMANY: 0 n_nationkey → + 6
        let nation = n.select(Some(n.c("n_name").eq(lit_str("GERMANY"))), &["n_nationkey"]);
        // The script materializes this join once (q11_part_tmp) and feeds
        // both aggregations from it.
        t.join(nation, vec![(5, 0)]).materialize("q11_tmp")
    };

    // value per part: 0 ps_partkey, 1 value
    let per_part = base.clone().aggregate(
        vec![(col(0), "ps_partkey")],
        vec![AggCall::sum(col(2).mul(col(3)), "value")],
    );
    // threshold: 0 total → project total * 0.0001
    let threshold = base
        .aggregate(vec![], vec![AggCall::sum(col(2).mul(col(3)), "total")])
        .project(vec![(col(0).mul(lit_f64(0.0001)), "threshold")]);

    per_part
        .join_kind(threshold, JoinKind::Inner, vec![], Some(col(1).gt(col(2))))
        .project(vec![(col(0), "ps_partkey"), (col(1), "value")])
        .sort(vec![SortKey::desc(col(1))])
}

/// Q12 — shipping modes and order priority.
pub fn q12() -> LogicalPlan {
    let o = Base::new("orders");
    let l = Base::new("lineitem");

    // lineitem: 0 l_orderkey, 1 l_shipmode
    let line = l.select(
        Some(and(vec![
            l.c("l_shipmode")
                .in_list(vec![Value::str("MAIL"), Value::str("SHIP")]),
            l.c("l_commitdate").lt(l.c("l_receiptdate")),
            l.c("l_shipdate").lt(l.c("l_commitdate")),
            l.c("l_receiptdate").ge(lit_date(1994, 1, 1)),
            l.c("l_receiptdate").lt(lit_date(1995, 1, 1)),
        ])),
        &["l_orderkey", "l_shipmode"],
    );
    // orders: 0 o_orderkey, 1 o_orderpriority
    let orders = o.select(None, &["o_orderkey", "o_orderpriority"]);
    // orders ⋈ line: 0 o_orderkey, 1 o_orderpriority, 2 l_orderkey, 3 l_shipmode
    let t = orders.join(line, vec![(0, 0)]);
    let high = Expr::Case {
        whens: vec![(
            col(1).in_list(vec![Value::str("1-URGENT"), Value::str("2-HIGH")]),
            lit_i64(1),
        )],
        otherwise: Box::new(lit_i64(0)),
    };
    let low = Expr::Case {
        whens: vec![(
            col(1).in_list(vec![Value::str("1-URGENT"), Value::str("2-HIGH")]),
            lit_i64(0),
        )],
        otherwise: Box::new(lit_i64(1)),
    };
    t.aggregate(
        vec![(col(3), "l_shipmode")],
        vec![
            AggCall::sum(high, "high_line_count"),
            AggCall::sum(low, "low_line_count"),
        ],
    )
    .sort(vec![SortKey::asc(col(0))])
}

/// Q13 — customer distribution (left outer join with a join-time filter).
pub fn q13() -> LogicalPlan {
    let c = Base::new("customer");
    let o = Base::new("orders");
    // customer: 0 c_custkey
    let cust = c.select(None, &["c_custkey"]);
    // orders: 0 o_orderkey, 1 o_custkey, 2 o_comment
    let orders = o.select(None, &["o_orderkey", "o_custkey", "o_comment"]);
    // left join on custkey with comment filter as join condition:
    // 0 c_custkey, 1 o_orderkey, 2 o_custkey, 3 o_comment
    let t = cust.join_kind(
        orders,
        JoinKind::Left,
        vec![(0, 1)],
        Some(col(3).not_like("%special%requests%")),
    );
    // per-customer order count (COUNT(o_orderkey) skips NULLs)
    let per_cust = t.aggregate(
        vec![(col(0), "c_custkey")],
        vec![AggCall::new(
            relational::AggFunc::Count,
            Some(col(1)),
            "c_count",
        )],
    );
    // distribution: 0 c_count, 1 custdist
    per_cust
        .aggregate(
            vec![(col(1), "c_count")],
            vec![AggCall::count_star("custdist")],
        )
        .sort(vec![SortKey::desc(col(1)), SortKey::desc(col(0))])
}

/// Q14 — promotion effect.
pub fn q14() -> LogicalPlan {
    let l = Base::new("lineitem");
    let p = Base::new("part");
    // lineitem: 0 l_partkey, 1 price, 2 disc
    let line = l.select(
        Some(and(vec![
            l.c("l_shipdate").ge(lit_date(1995, 9, 1)),
            l.c("l_shipdate").lt(lit_date(1995, 10, 1)),
        ])),
        &["l_partkey", "l_extendedprice", "l_discount"],
    );
    // part: 0 p_partkey, 1 p_type → + 3, 4
    let t = line.join(p.select(None, &["p_partkey", "p_type"]), vec![(0, 0)]);
    let revenue = col(1).mul(lit_f64(1.0).sub(col(2)));
    let promo = Expr::Case {
        whens: vec![(col(4).like("PROMO%"), revenue.clone())],
        otherwise: Box::new(lit_f64(0.0)),
    };
    t.aggregate(
        vec![],
        vec![AggCall::sum(promo, "promo"), AggCall::sum(revenue, "total")],
    )
    .project(vec![(
        lit_f64(100.0).mul(col(0)).div(col(1)),
        "promo_revenue",
    )])
}

/// Q15 — top supplier (view + scalar max → joins).
pub fn q15() -> LogicalPlan {
    let l = Base::new("lineitem");
    let s = Base::new("supplier");
    // revenue view: 0 supplier_no, 1 total_revenue
    let revenue = l
        .select(
            Some(and(vec![
                l.c("l_shipdate").ge(lit_date(1996, 1, 1)),
                l.c("l_shipdate").lt(lit_date(1996, 4, 1)),
            ])),
            &["l_suppkey", "l_extendedprice", "l_discount"],
        )
        .aggregate(
            vec![(col(0), "supplier_no")],
            vec![AggCall::sum(
                col(1).mul(lit_f64(1.0).sub(col(2))),
                "total_revenue",
            )],
        )
        // The script materializes the `revenue` view as a table.
        .materialize("q15_revenue");
    // max revenue: 0 max_rev
    let max_rev = revenue
        .clone()
        .aggregate(vec![], vec![AggCall::max(col(1), "max_rev")]);
    // supplier: 0 s_suppkey, 1 s_name, 2 s_address, 3 s_phone
    let supplier = s.select(None, &["s_suppkey", "s_name", "s_address", "s_phone"]);
    // supplier ⋈ revenue: + 4 supplier_no, 5 total_revenue
    let t = supplier.join(revenue, vec![(0, 0)]);
    // cross ⋈ max_rev with equality residual: + 6 max_rev
    t.join_kind(max_rev, JoinKind::Inner, vec![], Some(col(5).eq(col(6))))
        .project(vec![
            (col(0), "s_suppkey"),
            (col(1), "s_name"),
            (col(2), "s_address"),
            (col(3), "s_phone"),
            (col(5), "total_revenue"),
        ])
        .sort(vec![SortKey::asc(col(0))])
}

/// Q16 — parts/supplier relationship (NOT IN → anti join, count distinct).
pub fn q16() -> LogicalPlan {
    let ps = Base::new("partsupp");
    let p = Base::new("part");
    let s = Base::new("supplier");

    // part: 0 p_partkey, 1 p_brand, 2 p_type, 3 p_size
    let part = p.select(
        Some(and(vec![
            p.c("p_brand").ne(lit_str("Brand#45")),
            p.c("p_type").not_like("MEDIUM POLISHED%"),
            p.c("p_size").in_list(
                [49, 14, 23, 45, 19, 3, 36, 9]
                    .into_iter()
                    .map(Value::I64)
                    .collect(),
            ),
        ])),
        &["p_partkey", "p_brand", "p_type", "p_size"],
    );
    // partsupp: 0 ps_partkey, 1 ps_suppkey
    let partsupp = ps.select(None, &["ps_partkey", "ps_suppkey"]);
    // complainers: 0 s_suppkey
    let complainers = s
        .select(
            Some(s.c("s_comment").like("%Customer%Complaints%")),
            &["s_suppkey"],
        )
        // q16_tmp in the script.
        .materialize("q16_tmp");
    // partsupp anti⋈ complainers, then ⋈ part:
    // 0 ps_partkey, 1 ps_suppkey, 2 p_partkey, 3 brand, 4 type, 5 size
    let t = partsupp
        .join_kind(complainers, JoinKind::LeftAnti, vec![(1, 0)], None)
        .join(part, vec![(0, 0)]);
    t.aggregate(
        vec![(col(3), "p_brand"), (col(4), "p_type"), (col(5), "p_size")],
        vec![AggCall::count_distinct(col(1), "supplier_cnt")],
    )
    .sort(vec![
        SortKey::desc(col(3)),
        SortKey::asc(col(0)),
        SortKey::asc(col(1)),
        SortKey::asc(col(2)),
    ])
}
