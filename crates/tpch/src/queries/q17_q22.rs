//! TPC-H queries 17–22.

use super::Base;
use relational::expr::{and, col, lit_f64, lit_i64, lit_str, or};
use relational::{AggCall, JoinKind, LogicalPlan, SortKey, Value};

/// Q17 — small-quantity-order revenue (correlated avg → join on an
/// aggregated subplan, exactly how the Hive script decorrelates it).
pub fn q17() -> LogicalPlan {
    let l = Base::new("lineitem");
    let p = Base::new("part");

    // avg quantity per part: 0 l_partkey, 1 avg_qty_x02 (= 0.2 * avg)
    let avg_qty = l
        .select(None, &["l_partkey", "l_quantity"])
        .aggregate(
            vec![(col(0), "l_partkey")],
            vec![AggCall::avg(col(1), "avg_qty")],
        )
        .project(vec![
            (col(0), "l_partkey"),
            (col(1).mul(lit_f64(0.2)), "qty_threshold"),
        ])
        // lineitem_tmp in the script.
        .materialize("q17_tmp");

    // part filter: 0 p_partkey
    let part = p.select(
        Some(and(vec![
            p.c("p_brand").eq(lit_str("Brand#23")),
            p.c("p_container").eq(lit_str("MED BOX")),
        ])),
        &["p_partkey"],
    );
    // lineitem: 0 l_partkey, 1 l_quantity, 2 l_extendedprice
    let line = l.select(None, &["l_partkey", "l_quantity", "l_extendedprice"]);
    // part ⋈ line: 0 p_partkey, 1 l_partkey, 2 qty, 3 price
    let t = part.join(line, vec![(0, 0)]);
    // ⋈ avg_qty on partkey with qty < threshold: + 4 l_partkey, 5 threshold
    let t = t.join_kind(
        avg_qty,
        JoinKind::Inner,
        vec![(0, 0)],
        Some(col(2).lt(col(5))),
    );
    t.aggregate(vec![], vec![AggCall::sum(col(3), "sum_price")])
        .project(vec![(col(0).div(lit_f64(7.0)), "avg_yearly")])
}

/// Q18 — large volume customers.
pub fn q18() -> LogicalPlan {
    let c = Base::new("customer");
    let o = Base::new("orders");
    let l = Base::new("lineitem");

    // big orders: group lineitem by orderkey, keep sum(qty) > 300
    // 0 l_orderkey, 1 sum_qty
    let big = l
        .select(None, &["l_orderkey", "l_quantity"])
        .aggregate(
            vec![(col(0), "l_orderkey")],
            vec![AggCall::sum(col(1), "sum_qty")],
        )
        .filter(col(1).gt(lit_i64(300)))
        .materialize("q18_tmp");

    // customer: 0 c_custkey, 1 c_name
    let cust = c.select(None, &["c_custkey", "c_name"]);
    // orders: 0 o_orderkey, 1 o_custkey, 2 o_orderdate, 3 o_totalprice
    let orders = o.select(
        None,
        &["o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"],
    );
    // cust ⋈ orders: 0 c_custkey, 1 c_name, 2 o_orderkey, 3 o_custkey, 4 date, 5 total
    let t = cust.join(orders, vec![(0, 1)]);
    // semi-join against big orders keeps only qualifying orders... but the
    // output needs sum(l_quantity), so join (not semi) and reuse its sum:
    // + 6 l_orderkey, 7 sum_qty
    let t = t.join(big, vec![(2, 0)]);
    t.aggregate(
        vec![
            (col(1), "c_name"),
            (col(0), "c_custkey"),
            (col(2), "o_orderkey"),
            (col(4), "o_orderdate"),
            (col(5), "o_totalprice"),
        ],
        vec![AggCall::sum(col(7), "sum_qty")],
    )
    .sort(vec![SortKey::desc(col(4)), SortKey::asc(col(3))])
    .limit(100)
}

/// Q19 — discounted revenue: the complex AND/OR predicate spanning both
/// join inputs that the paper's analysis of Hive's common join highlights.
pub fn q19() -> LogicalPlan {
    let l = Base::new("lineitem");
    let p = Base::new("part");

    // lineitem: 0 l_partkey, 1 qty, 2 price, 3 disc, 4 shipinstruct, 5 shipmode
    let line = l.select(
        None,
        &[
            "l_partkey",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_shipinstruct",
            "l_shipmode",
        ],
    );
    // part: 0 p_partkey, 1 p_brand, 2 p_container, 3 p_size → + 6, 7, 8, 9
    let part = p.select(None, &["p_partkey", "p_brand", "p_container", "p_size"]);

    let air = col(5).in_list(vec![Value::str("AIR"), Value::str("AIR REG")]);
    let in_person = col(4).eq(lit_str("DELIVER IN PERSON"));
    let branch = |brand: &str, containers: &[&str], qlo: i64, qhi: i64, size_hi: i64| {
        and(vec![
            col(7).eq(lit_str(brand)),
            col(8).in_list(containers.iter().map(|c| Value::str(*c)).collect()),
            col(1).ge(lit_i64(qlo)),
            col(1).le(lit_i64(qhi)),
            col(9).between(Value::I64(1), Value::I64(size_hi)),
            air.clone(),
            in_person.clone(),
        ])
    };
    let pred = or(vec![
        branch(
            "Brand#12",
            &["SM CASE", "SM BOX", "SM PACK", "SM PKG"],
            1,
            11,
            5,
        ),
        branch(
            "Brand#23",
            &["MED BAG", "MED BOX", "MED PKG", "MED PACK"],
            10,
            20,
            10,
        ),
        branch(
            "Brand#34",
            &["LG CASE", "LG BOX", "LG PACK", "LG PKG"],
            20,
            30,
            15,
        ),
    ]);

    line.join_kind(part, JoinKind::Inner, vec![(0, 0)], Some(pred))
        .aggregate(
            vec![],
            vec![AggCall::sum(
                col(2).mul(lit_f64(1.0).sub(col(3))),
                "revenue",
            )],
        )
}

/// Q20 — potential part promotion.
pub fn q20() -> LogicalPlan {
    let s = Base::new("supplier");
    let n = Base::new("nation");
    let ps = Base::new("partsupp");
    let p = Base::new("part");
    let l = Base::new("lineitem");
    use relational::expr::lit_date;

    // half the 1994 shipped quantity per (part, supp):
    // 0 l_partkey, 1 l_suppkey, 2 half_qty
    let shipped = l
        .select(
            Some(and(vec![
                l.c("l_shipdate").ge(lit_date(1994, 1, 1)),
                l.c("l_shipdate").lt(lit_date(1995, 1, 1)),
            ])),
            &["l_partkey", "l_suppkey", "l_quantity"],
        )
        .aggregate(
            vec![(col(0), "l_partkey"), (col(1), "l_suppkey")],
            vec![AggCall::sum(col(2), "sum_qty")],
        )
        .project(vec![
            (col(0), "l_partkey"),
            (col(1), "l_suppkey"),
            (col(2).mul(lit_f64(0.5)), "half_qty"),
        ])
        // q20_tmp2 in the script.
        .materialize("q20_tmp2");

    // forest parts: 0 p_partkey
    let forest = p.select(Some(p.c("p_name").like("forest%")), &["p_partkey"]);

    // partsupp: 0 ps_partkey, 1 ps_suppkey, 2 ps_availqty
    let eligible_ps = ps
        .select(None, &["ps_partkey", "ps_suppkey", "ps_availqty"])
        .join_kind(forest, JoinKind::LeftSemi, vec![(0, 0)], None)
        // ⋈ shipped on (partkey, suppkey) with availqty > half_qty:
        // + 3 l_partkey, 4 l_suppkey, 5 half_qty
        .join_kind(
            shipped,
            JoinKind::Inner,
            vec![(0, 0), (1, 1)],
            Some(col(2).gt(col(5))),
        )
        .project(vec![(col(1), "ps_suppkey")]);

    // supplier: 0 s_suppkey, 1 s_name, 2 s_address, 3 s_nationkey
    let supplier = s.select(None, &["s_suppkey", "s_name", "s_address", "s_nationkey"]);
    let canada = n.select(Some(n.c("n_name").eq(lit_str("CANADA"))), &["n_nationkey"]);
    supplier
        .join_kind(eligible_ps, JoinKind::LeftSemi, vec![(0, 0)], None)
        .join(canada, vec![(3, 0)])
        .project(vec![(col(1), "s_name"), (col(2), "s_address")])
        .sort(vec![SortKey::asc(col(0))])
}

/// Q21 — suppliers who kept orders waiting (EXISTS + NOT EXISTS with
/// inequality correlation → semi/anti joins with residuals).
pub fn q21() -> LogicalPlan {
    let s = Base::new("supplier");
    let l = Base::new("lineitem");
    let o = Base::new("orders");
    let n = Base::new("nation");

    // l1 (late lines): 0 l_orderkey, 1 l_suppkey
    let l1 = l.select(
        Some(l.c("l_receiptdate").gt(l.c("l_commitdate"))),
        &["l_orderkey", "l_suppkey"],
    );
    // supplier: 0 s_suppkey, 1 s_name, 2 s_nationkey
    let supplier = s.select(None, &["s_suppkey", "s_name", "s_nationkey"]);
    // supplier ⋈ l1: 0 s_suppkey, 1 s_name, 2 s_nationkey, 3 l_orderkey, 4 l_suppkey
    let t = supplier.join(l1, vec![(0, 1)]);
    // ⋈ orders (status F): + 5 o_orderkey
    let orders = o.select(Some(o.c("o_orderstatus").eq(lit_str("F"))), &["o_orderkey"]);
    let t = t.join(orders, vec![(3, 0)]);
    // ⋈ nation (SAUDI ARABIA): + 6 n_nationkey
    let nation = n.select(
        Some(n.c("n_name").eq(lit_str("SAUDI ARABIA"))),
        &["n_nationkey"],
    );
    let t = t.join(nation, vec![(2, 0)]);

    // EXISTS another supplier's line on the same order:
    // l2: 0 l_orderkey, 1 l_suppkey; residual other-supplier (l2.supp != s_suppkey)
    let l2 = l.select(None, &["l_orderkey", "l_suppkey"]);
    let t = t.join_kind(
        l2,
        JoinKind::LeftSemi,
        vec![(3, 0)],
        Some(col(8).ne(col(0))), // combined row: t(0..=6) ++ l2(7,8)
    );
    // NOT EXISTS another supplier's *late* line on the same order:
    let l3 = l.select(
        Some(l.c("l_receiptdate").gt(l.c("l_commitdate"))),
        &["l_orderkey", "l_suppkey"],
    );
    let t = t.join_kind(
        l3,
        JoinKind::LeftAnti,
        vec![(3, 0)],
        Some(col(8).ne(col(0))),
    );
    t.aggregate(
        vec![(col(1), "s_name")],
        vec![AggCall::count_star("numwait")],
    )
    .sort(vec![SortKey::desc(col(1)), SortKey::asc(col(0))])
    .limit(100)
}

/// Q22 — global sales opportunity. The Hive script's four sub-queries:
/// (1) customers in the seven country codes, (2) the average balance,
/// (3) order custkeys, (4) the anti-join + aggregation.
pub fn q22() -> LogicalPlan {
    let c = Base::new("customer");
    let o = Base::new("orders");
    let codes: Vec<Value> = ["13", "31", "23", "29", "30", "18", "17"]
        .into_iter()
        .map(Value::str)
        .collect();

    // Sub-query 1: 0 c_custkey, 1 cntrycode, 2 c_acctbal
    let sub1 = c
        .scan()
        .project(vec![
            (c.c("c_custkey"), "c_custkey"),
            (c.c("c_phone").substr(1, 2), "cntrycode"),
            (c.c("c_acctbal"), "c_acctbal"),
        ])
        .filter(col(1).in_list(codes))
        .materialize("q22_sub1");

    // Sub-query 2: avg positive balance (scalar).
    let sub2 = sub1
        .clone()
        .filter(col(2).gt(lit_f64(0.0)))
        .aggregate(vec![], vec![AggCall::avg(col(2), "avg_bal")])
        .materialize("q22_sub2");

    // Sub-query 3: custkeys that have orders (the script's
    // `SELECT o_custkey FROM orders GROUP BY o_custkey` — this is the
    // full orders scan whose 384 empty buckets dominate Table 5).
    let sub3 = o
        .select(None, &["o_custkey"])
        .aggregate(vec![(col(0), "o_custkey")], vec![])
        .materialize("q22_sub3");

    // Sub-query 4: rich customers with no orders, grouped by country code.
    sub1
        // cross ⋈ scalar: 0 custkey, 1 code, 2 bal, 3 avg_bal
        .join_kind(sub2, JoinKind::Inner, vec![], Some(col(2).gt(col(3))))
        .join_kind(sub3, JoinKind::LeftAnti, vec![(0, 0)], None)
        .hint_mapjoin()
        .aggregate(
            vec![(col(1), "cntrycode")],
            vec![
                AggCall::count_star("numcust"),
                AggCall::sum(col(2), "totacctbal"),
            ],
        )
        .sort(vec![SortKey::asc(col(0))])
}
