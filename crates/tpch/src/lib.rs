//! # tpch — TPC-H data generator and the 22 benchmark queries
//!
//! A from-scratch `dbgen` re-implementation producing the distributions the
//! paper's analysis depends on:
//!
//! * **sparse order keys** — only the first 8 of every 32 key values are
//!   used, which is why 384 of Hive's 512 `lineitem`/`orders` buckets end
//!   up empty (the paper's Q1 and Q22 scaling analysis),
//! * the **`RANDOM` 32-bit overflow** at the 16 TB scale factor that the
//!   authors had to patch with a 64-bit generator ([`random::TpchRandom`]
//!   emulates both; the overflow is kept as an injectable fault),
//! * the word pools behind every predicate the queries filter on
//!   (`p_type` syllables, containers, segments, priorities, ship modes,
//!   nations/regions, and the comment patterns of Q13/Q16).
//!
//! The 22 queries are built once as [`relational::LogicalPlan`]s, written in
//! the same join order as the Hive team's hand-written TPC-H scripts
//! (HIVE-600) — the Hive engine lowers them *as written* (no cost-based
//! reordering), the PDW engine optimizes them, exactly as in the paper.

//! ```
//! use tpch::{generate, GenConfig};
//!
//! let catalog = generate(&GenConfig::new(0.001));
//! let plan = tpch::query(6);
//! let (_, rows) = relational::execute(&plan, &catalog);
//! assert_eq!(rows.len(), 1); // Q6 is a scalar query
//! ```

#![forbid(unsafe_code)]

pub mod gen;
pub mod layout;
pub mod queries;
pub mod random;
pub mod refresh;
pub mod schema;
pub mod textpool;

pub use gen::{generate, GenConfig};
pub use layout::{HiveLayout, PdwLayout, TableLayout};
pub use queries::{query, query_names, QUERY_COUNT};
