//! The TPC-H refresh functions RF1 (insert new orders + lineitems) and RF2
//! (delete old ones).
//!
//! The paper skipped them because Hive 0.7 "does not support deletes and
//! inserts into existing tables or partitions (the newer Hive versions
//! 0.8.0 and 0.8.1 do support INSERT INTO statements)" — §3.3.1. The
//! engines implement them to the extent each system can (PDW fully; Hive
//! 0.8 inserts only), as an extension experiment.

use crate::gen::GenConfig;
use crate::random::{sparse_orderkey, TpchRandom};
use crate::{gen, textpool as tp};
use relational::date::date;
use relational::{Row, Value};

/// One refresh batch: new orders plus their lineitems (RF1), and the order
/// keys an RF2 run would delete.
#[derive(Clone, Debug)]
pub struct RefreshSet {
    pub orders: Vec<Row>,
    pub lineitems: Vec<Row>,
    /// Order keys targeted by RF2 (the oldest `pairs` existing orders).
    pub delete_keys: Vec<i64>,
}

/// Rows inserted/deleted per refresh = SF × 1500 (TPC-H clause 2.27).
pub fn refresh_pairs(cfg: &GenConfig) -> usize {
    ((cfg.scale * 1500.0) as usize).max(8)
}

/// Build RF1's new rows (order keys continue beyond the populated sparse
/// key space) and RF2's victim keys.
pub fn generate_refresh(cfg: &GenConfig, stream: u64) -> RefreshSet {
    let pairs = refresh_pairs(cfg);
    let mut r = TpchRandom::new(cfg.seed + 100 + stream as i64, cfg.mode);
    let customers = cfg.customers();
    let parts = cfg.parts();
    let suppliers = cfg.suppliers();
    let n_orders = cfg.orders();
    let start = date(1992, 1, 1);
    let today = date(1995, 6, 17);

    let mut orders = Vec::with_capacity(pairs);
    let mut lineitems = Vec::with_capacity(pairs * 4);
    for i in 0..pairs {
        // Fresh ordinals continue past the base population.
        let okey = sparse_orderkey(n_orders + (stream as i64 * pairs as i64) + i as i64);
        let mut ckey = r.uniform(1, customers);
        if ckey % 3 == 0 {
            ckey = (ckey % customers) + 1;
        }
        let odate = start + r.uniform(0, 2405) as i32;
        let n_lines = r.uniform(1, 7);
        let mut total = 0f64;
        for ln in 1..=n_lines {
            let pkey = r.uniform(1, parts);
            let skey = gen::part_supplier(pkey, r.uniform(0, 3), suppliers);
            let qty = r.uniform(1, 50);
            let price = qty * gen::retail_price_cents(pkey);
            let discount = r.uniform(0, 10);
            let tax = r.uniform(0, 8);
            let shipdate = odate + r.uniform(1, 121) as i32;
            total += price as f64 * (1.0 + tax as f64 / 100.0) * (1.0 - discount as f64 / 100.0);
            lineitems.push(vec![
                Value::I64(okey),
                Value::I64(pkey),
                Value::I64(skey),
                Value::I64(ln),
                Value::Decimal(qty * 100),
                Value::Decimal(price),
                Value::Decimal(discount),
                Value::Decimal(tax),
                Value::str(if shipdate <= today { "A" } else { "N" }),
                Value::str(if shipdate > today { "O" } else { "F" }),
                Value::Date(shipdate),
                Value::Date(odate + r.uniform(30, 90) as i32),
                Value::Date(shipdate + r.uniform(1, 30) as i32),
                Value::str(*r.pick(tp::INSTRUCTIONS)),
                Value::str(*r.pick(tp::MODES)),
                Value::str("refresh"),
            ]);
        }
        orders.push(vec![
            Value::I64(okey),
            Value::I64(ckey),
            Value::str("O"),
            Value::Decimal(total.round() as i64),
            Value::Date(odate),
            Value::str(*r.pick(tp::PRIORITIES)),
            Value::str(format!("Clerk#{:09}", r.uniform(1, 1000))),
            Value::I64(0),
            Value::str("refresh"),
        ]);
    }

    // RF2 deletes the oldest `pairs` order keys of the base population.
    let delete_keys = (0..pairs as i64).map(sparse_orderkey).collect();
    RefreshSet {
        orders,
        lineitems,
        delete_keys,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::schema;

    #[test]
    fn refresh_rows_conform_to_schemas() {
        let cfg = GenConfig::new(0.01);
        let rf = generate_refresh(&cfg, 0);
        assert_eq!(rf.orders.len(), refresh_pairs(&cfg));
        assert!(rf.lineitems.len() >= rf.orders.len());
        let os = schema::orders();
        for row in &rf.orders {
            for (i, v) in row.iter().enumerate() {
                assert!(os.field(i).ty.admits(v));
            }
        }
        let ls = schema::lineitem();
        for row in rf.lineitems.iter().take(50) {
            for (i, v) in row.iter().enumerate() {
                assert!(ls.field(i).ty.admits(v));
            }
        }
    }

    #[test]
    fn new_keys_do_not_collide_with_base_population() {
        let cfg = GenConfig::new(0.01);
        let cat = generate(&cfg);
        let existing: std::collections::HashSet<i64> = cat
            .get("orders")
            .rows
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        let rf = generate_refresh(&cfg, 0);
        for row in &rf.orders {
            let k = row[0].as_i64().unwrap();
            assert!(!existing.contains(&k), "RF1 key {k} already exists");
        }
        // RF2 victims must exist.
        for k in &rf.delete_keys {
            assert!(existing.contains(k), "RF2 key {k} missing from base");
        }
    }

    #[test]
    fn streams_are_disjoint() {
        let cfg = GenConfig::new(0.01);
        let a = generate_refresh(&cfg, 0);
        let b = generate_refresh(&cfg, 1);
        let ka: std::collections::HashSet<i64> =
            a.orders.iter().map(|r| r[0].as_i64().unwrap()).collect();
        for row in &b.orders {
            assert!(!ka.contains(&row[0].as_i64().unwrap()));
        }
    }
}
