//! The data generator (`dbgen` re-implementation).
//!
//! Follows the TPC-H 2.x population rules for every column a query predicate
//! or the paper's analysis depends on: key formulae, sparse order keys,
//! date windows, the customers-without-orders rule, the partsupp/lineitem
//! supplier formula, retail-price formula, and comment-pattern injection
//! for Q13 ("%special%requests%") and Q16 ("%Customer%Complaints%").

use crate::random::{sparse_orderkey, RandomMode, TpchRandom};
use crate::schema;
use crate::textpool as tp;
use relational::date::date;
use relational::{Catalog, Row, Table, Value};

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// TPC-H scale factor (1.0 = 1 GB-ish; fractional values supported).
    pub scale: f64,
    /// RANDOM arithmetic width (the paper's 16 TB bug vs the RANDOM64 fix).
    pub mode: RandomMode,
    pub seed: i64,
}

impl GenConfig {
    pub fn new(scale: f64) -> GenConfig {
        GenConfig {
            scale,
            mode: RandomMode::Bit64,
            seed: 19920101,
        }
    }

    pub fn suppliers(&self) -> i64 {
        ((10_000.0 * self.scale) as i64).max(10)
    }
    pub fn parts(&self) -> i64 {
        ((200_000.0 * self.scale) as i64).max(40)
    }
    pub fn customers(&self) -> i64 {
        ((150_000.0 * self.scale) as i64).max(30)
    }
    pub fn orders(&self) -> i64 {
        self.customers() * 10
    }
}

/// dbgen's p_retailprice formula, in cents.
pub fn retail_price_cents(partkey: i64) -> i64 {
    90_000 + ((partkey / 10) % 20_001) + 100 * (partkey % 1_000)
}

/// dbgen's partsupp supplier formula: the `i`-th (0..4) supplier of a part.
pub fn part_supplier(partkey: i64, i: i64, supplier_count: i64) -> i64 {
    let s = supplier_count;
    (partkey + i * (s / 4 + (partkey - 1) / s)) % s + 1
}

const START_DATE: (i32, u32, u32) = (1992, 1, 1);
/// Last order date: 1998-12-31 minus 151 days = 1998-08-02.
const END_ORDER_OFFSET: i64 = 2405; // days from 1992-01-01 to 1998-08-02
/// dbgen's CURRENTDATE = 1995-06-17.
fn current_date() -> i32 {
    date(1995, 6, 17)
}

fn comment(r: &mut TpchRandom, min_words: i64, max_words: i64) -> Value {
    let n = r.uniform(min_words, max_words);
    let mut s = String::new();
    for i in 0..n {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(r.pick(tp::COMMENT_WORDS) as &str);
    }
    Value::str(s)
}

/// Order comment with the Q13 pattern injected at dbgen's rate (the spec
/// scatters "special ... requests" so that ~1% of orders match).
fn order_comment(r: &mut TpchRandom) -> Value {
    if r.chance(1, 100) {
        let mut s = String::new();
        s.push_str(r.pick(tp::COMMENT_WORDS) as &str);
        s.push_str(" special ");
        s.push_str(r.pick(tp::COMMENT_WORDS) as &str);
        s.push_str(" requests ");
        s.push_str(r.pick(tp::COMMENT_WORDS) as &str);
        Value::str(s)
    } else {
        comment(r, 4, 8)
    }
}

/// Supplier comment with Q16's "Customer ... Complaints" pattern (spec:
/// 5 per 10 000 suppliers).
fn supplier_comment(r: &mut TpchRandom) -> Value {
    if r.chance(5, 10_000) {
        Value::str("the Customer of record files Complaints about deliveries")
    } else {
        comment(r, 6, 12)
    }
}

fn phone(r: &mut TpchRandom, nationkey: i64) -> Value {
    Value::str(format!(
        "{}-{:03}-{:03}-{:04}",
        nationkey + 10,
        r.uniform(100, 999),
        r.uniform(100, 999),
        r.uniform(1000, 9999)
    ))
}

fn gen_region(cfg: &GenConfig) -> Table {
    let mut r = TpchRandom::new(cfg.seed + 1, cfg.mode);
    let rows: Vec<Row> = tp::REGIONS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            vec![
                Value::I64(i as i64),
                Value::str(*name),
                comment(&mut r, 4, 8),
            ]
        })
        .collect();
    Table::new(schema::region(), rows)
}

fn gen_nation(cfg: &GenConfig) -> Table {
    let mut r = TpchRandom::new(cfg.seed + 2, cfg.mode);
    let rows: Vec<Row> = tp::NATIONS
        .iter()
        .enumerate()
        .map(|(i, (name, region))| {
            vec![
                Value::I64(i as i64),
                Value::str(*name),
                Value::I64(*region),
                comment(&mut r, 4, 8),
            ]
        })
        .collect();
    Table::new(schema::nation(), rows)
}

fn gen_supplier(cfg: &GenConfig) -> Table {
    let mut r = TpchRandom::new(cfg.seed + 3, cfg.mode);
    let n = cfg.suppliers();
    let rows: Vec<Row> = (1..=n)
        .map(|k| {
            let nation = r.uniform(0, 24);
            vec![
                Value::I64(k),
                Value::str(format!("Supplier#{k:09}")),
                comment(&mut r, 2, 4),
                Value::I64(nation),
                phone(&mut r, nation),
                Value::Decimal(r.decimal(-99_999, 999_999)),
                supplier_comment(&mut r),
            ]
        })
        .collect();
    Table::new(schema::supplier(), rows)
}

fn gen_part(cfg: &GenConfig) -> Table {
    let mut r = TpchRandom::new(cfg.seed + 4, cfg.mode);
    let n = cfg.parts();
    let rows: Vec<Row> = (1..=n)
        .map(|k| {
            let mfgr = r.uniform(1, 5);
            let brand = mfgr * 10 + r.uniform(1, 5);
            let ty = format!(
                "{} {} {}",
                r.pick(tp::TYPE_SYLLABLE1),
                r.pick(tp::TYPE_SYLLABLE2),
                r.pick(tp::TYPE_SYLLABLE3)
            );
            let container = format!("{} {}", r.pick(tp::CONTAINER1), r.pick(tp::CONTAINER2));
            let name = (0..5)
                .map(|_| *r.pick(tp::PART_NAME_WORDS))
                .collect::<Vec<_>>()
                .join(" ");
            vec![
                Value::I64(k),
                Value::str(name),
                Value::str(format!("Manufacturer#{mfgr}")),
                Value::str(format!("Brand#{brand}")),
                Value::str(ty),
                Value::I64(r.uniform(1, 50)),
                Value::str(container),
                Value::Decimal(retail_price_cents(k)),
                comment(&mut r, 2, 5),
            ]
        })
        .collect();
    Table::new(schema::part(), rows)
}

fn gen_partsupp(cfg: &GenConfig) -> Table {
    let mut r = TpchRandom::new(cfg.seed + 5, cfg.mode);
    let parts = cfg.parts();
    let suppliers = cfg.suppliers();
    let mut rows = Vec::with_capacity((parts * 4) as usize);
    for pk in 1..=parts {
        for i in 0..4 {
            rows.push(vec![
                Value::I64(pk),
                Value::I64(part_supplier(pk, i, suppliers)),
                Value::I64(r.uniform(1, 9_999)),
                Value::Decimal(r.decimal(100, 100_000)),
                comment(&mut r, 4, 10),
            ]);
        }
    }
    Table::new(schema::partsupp(), rows)
}

fn gen_customer(cfg: &GenConfig) -> Table {
    let mut r = TpchRandom::new(cfg.seed + 6, cfg.mode);
    let n = cfg.customers();
    let rows: Vec<Row> = (1..=n)
        .map(|k| {
            let nation = r.uniform(0, 24);
            vec![
                Value::I64(k),
                Value::str(format!("Customer#{k:09}")),
                comment(&mut r, 2, 4),
                Value::I64(nation),
                phone(&mut r, nation),
                Value::Decimal(r.decimal(-99_999, 999_999)),
                Value::str(*r.pick(tp::SEGMENTS)),
                comment(&mut r, 4, 8),
            ]
        })
        .collect();
    Table::new(schema::customer(), rows)
}

/// Orders and lineitem are generated together (status/totalprice derive
/// from the line items).
fn gen_orders_lineitem(cfg: &GenConfig) -> (Table, Table) {
    let mut r = TpchRandom::new(cfg.seed + 7, cfg.mode);
    let n_orders = cfg.orders();
    let customers = cfg.customers();
    let parts = cfg.parts();
    let suppliers = cfg.suppliers();
    let start = date(START_DATE.0, START_DATE.1, START_DATE.2);
    let today = current_date();

    let mut orders = Vec::with_capacity(n_orders as usize);
    let mut lines = Vec::with_capacity(n_orders as usize * 4);

    for ord in 0..n_orders {
        let okey = sparse_orderkey(ord);
        // Customers with custkey % 3 == 0 never place orders (spec rule
        // behind Q13/Q22's customers-without-orders).
        let ckey = {
            let mut c = r.uniform(1, customers);
            if c % 3 == 0 {
                c = (c % customers) + 1;
                if c % 3 == 0 {
                    c = (c % customers) + 1;
                }
            }
            c
        };
        let odate = start + r.uniform(0, END_ORDER_OFFSET) as i32;
        let n_lines = r.uniform(1, 7);
        let mut total = 0f64;
        let mut all_f = true;
        let mut all_o = true;
        for ln in 1..=n_lines {
            // NOTE: this is the draw the paper's RANDOM overflow corrupted
            // (mk_order's partkey/custkey at SF 16000).
            let pkey = r.uniform(1, parts);
            let skey = part_supplier(pkey.max(1), r.uniform(0, 3), suppliers);
            let qty = r.uniform(1, 50);
            let price = qty * retail_price_cents(pkey.max(1));
            let discount = r.uniform(0, 10);
            let tax = r.uniform(0, 8);
            let shipdate = odate + r.uniform(1, 121) as i32;
            let commitdate = odate + r.uniform(30, 90) as i32;
            let receiptdate = shipdate + r.uniform(1, 30) as i32;
            let returnflag = if receiptdate <= today {
                if r.chance(1, 2) {
                    "R"
                } else {
                    "A"
                }
            } else {
                "N"
            };
            let linestatus = if shipdate > today { "O" } else { "F" };
            if linestatus == "O" {
                all_f = false;
            } else {
                all_o = false;
            }
            total += price as f64 * (1.0 + tax as f64 / 100.0) * (1.0 - discount as f64 / 100.0);
            lines.push(vec![
                Value::I64(okey),
                Value::I64(pkey),
                Value::I64(skey),
                Value::I64(ln),
                Value::Decimal(qty * 100),
                Value::Decimal(price),
                Value::Decimal(discount),
                Value::Decimal(tax),
                Value::str(returnflag),
                Value::str(linestatus),
                Value::Date(shipdate),
                Value::Date(commitdate),
                Value::Date(receiptdate),
                Value::str(*r.pick(tp::INSTRUCTIONS)),
                Value::str(*r.pick(tp::MODES)),
                comment(&mut r, 2, 6),
            ]);
        }
        let status = if all_f {
            "F"
        } else if all_o {
            "O"
        } else {
            "P"
        };
        orders.push(vec![
            Value::I64(okey),
            Value::I64(ckey),
            Value::str(status),
            Value::Decimal(total.round() as i64),
            Value::Date(odate),
            Value::str(*r.pick(tp::PRIORITIES)),
            Value::str(format!(
                "Clerk#{:09}",
                r.uniform(1, (cfg.scale * 1000.0).max(10.0) as i64)
            )),
            Value::I64(0),
            order_comment(&mut r),
        ]);
    }
    (
        Table::new(schema::orders(), orders),
        Table::new(schema::lineitem(), lines),
    )
}

/// Generate the full database at `cfg.scale` into a catalog.
pub fn generate(cfg: &GenConfig) -> Catalog {
    let mut cat = Catalog::new();
    cat.add("region", gen_region(cfg));
    cat.add("nation", gen_nation(cfg));
    cat.add("supplier", gen_supplier(cfg));
    cat.add("part", gen_part(cfg));
    cat.add("partsupp", gen_partsupp(cfg));
    cat.add("customer", gen_customer(cfg));
    let (orders, lineitem) = gen_orders_lineitem(cfg);
    cat.add("orders", orders);
    cat.add("lineitem", lineitem);
    cat
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::Schema;

    fn small() -> Catalog {
        generate(&GenConfig::new(0.01))
    }

    #[test]
    fn row_counts_scale() {
        let cat = small();
        assert_eq!(cat.get("region").len(), 5);
        assert_eq!(cat.get("nation").len(), 25);
        assert_eq!(cat.get("supplier").len(), 100);
        assert_eq!(cat.get("part").len(), 2000);
        assert_eq!(cat.get("partsupp").len(), 8000);
        assert_eq!(cat.get("customer").len(), 1500);
        assert_eq!(cat.get("orders").len(), 15_000);
        let l = cat.get("lineitem").len();
        assert!((45_000..=75_000).contains(&l), "lineitem count {l}");
    }

    #[test]
    fn orderkeys_are_sparse() {
        let cat = small();
        let orders = cat.get("orders");
        let max_key = orders
            .rows
            .iter()
            .map(|r| r[0].as_i64().expect("o_orderkey is I64"))
            .max()
            .expect("orders table is non-empty");
        // Max key ≈ 4x row count because only 8 of every 32 values are used.
        let n = orders.len() as i64;
        assert!(
            max_key > 3 * n && max_key <= 4 * n,
            "max {max_key} for {n} rows"
        );
        // Every key's position within its 32-group is < 8.
        for row in orders.rows.iter().take(1000) {
            let k = row[0].as_i64().expect("o_orderkey is I64");
            assert!((k - 1) % 32 < 8, "key {k} outside first-8-of-32");
        }
    }

    #[test]
    fn no_customer_divisible_by_3_has_orders() {
        let cat = small();
        for row in &cat.get("orders").rows {
            let c = row[1].as_i64().expect("o_custkey is I64");
            assert_ne!(c % 3, 0, "custkey {c} should not place orders");
        }
    }

    #[test]
    fn some_customers_have_no_orders() {
        let cat = small();
        let with_orders: std::collections::HashSet<i64> = cat
            .get("orders")
            .rows
            .iter()
            .map(|r| r[1].as_i64().expect("o_custkey is I64"))
            .collect();
        let total = cat.get("customer").len();
        assert!(
            with_orders.len() < total,
            "Q13/Q22 need customers without orders"
        );
    }

    #[test]
    fn lineitem_dates_consistent() {
        let cat = small();
        let s = schema::lineitem();
        let (ship, commit, receipt) = (
            s.col("l_shipdate"),
            s.col("l_commitdate"),
            s.col("l_receiptdate"),
        );
        for row in cat.get("lineitem").rows.iter().take(2000) {
            let sd = row[ship].as_i64().expect("l_shipdate is a date ordinal");
            let rd = row[receipt]
                .as_i64()
                .expect("l_receiptdate is a date ordinal");
            let _cd = row[commit]
                .as_i64()
                .expect("l_commitdate is a date ordinal");
            assert!(rd > sd, "receipt after ship");
        }
    }

    #[test]
    fn returnflag_linestatus_rules() {
        let cat = small();
        let s = schema::lineitem();
        let today = current_date() as i64;
        for row in cat.get("lineitem").rows.iter().take(2000) {
            let rf = row[s.col("l_returnflag")]
                .as_str()
                .expect("l_returnflag is Str")
                .to_string();
            let ls = row[s.col("l_linestatus")]
                .as_str()
                .expect("l_linestatus is Str")
                .to_string();
            let ship = row[s.col("l_shipdate")]
                .as_i64()
                .expect("l_shipdate is a date ordinal");
            let receipt = row[s.col("l_receiptdate")]
                .as_i64()
                .expect("l_receiptdate is a date ordinal");
            if receipt <= today {
                assert!(rf == "R" || rf == "A");
            } else {
                assert_eq!(rf, "N");
            }
            assert_eq!(ls == "O", ship > today);
        }
    }

    #[test]
    fn q13_and_q16_patterns_occur() {
        let cat = generate(&GenConfig::new(0.02));
        let o = cat.get("orders");
        let oc = schema::orders().col("o_comment");
        let matches = o
            .rows
            .iter()
            .filter(|r| {
                relational::expr::like_match(
                    r[oc].as_str().expect("o_comment is Str"),
                    "%special%requests%",
                )
            })
            .count();
        let rate = matches as f64 / o.len() as f64;
        assert!(rate > 0.002 && rate < 0.05, "Q13 pattern rate {rate}");
    }

    #[test]
    fn rows_conform_to_schema() {
        let cat = small();
        for t in crate::schema::TABLE_NAMES {
            let table = cat.get(t);
            let s: &Schema = &table.schema;
            for row in table.rows.iter().take(100) {
                for (i, v) in row.iter().enumerate() {
                    assert!(s.field(i).ty.admits(v), "{t}.{} got {v:?}", s.field(i).name);
                }
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&GenConfig::new(0.005));
        let b = generate(&GenConfig::new(0.005));
        assert_eq!(a.get("lineitem").rows, b.get("lineitem").rows);
    }

    #[test]
    fn totalprice_matches_lineitems() {
        let cat = small();
        let li = cat.get("lineitem");
        let key0 = cat.get("orders").rows[0][0].clone();
        let expect: f64 = li
            .rows
            .iter()
            .filter(|r| r[0] == key0)
            .map(|r| {
                // as_f64 on decimals yields real values: price in dollars,
                // tax/discount as fractions (0.08 = 8%).
                let price_cents = r[5].as_f64().expect("l_extendedprice is numeric") * 100.0;
                let disc = r[6].as_f64().expect("l_discount is numeric");
                let tax = r[7].as_f64().expect("l_tax is numeric");
                price_cents * (1.0 + tax) * (1.0 - disc)
            })
            .sum();
        let got = cat.get("orders").rows[0][3]
            .as_f64()
            .expect("o_totalprice is numeric")
            * 100.0;
        assert!(
            (got - expect).abs() / expect.max(1.0) < 0.01,
            "totalprice {got} vs {expect}"
        );
    }
}
