//! Table 1 of the paper: the physical data layouts used in Hive and PDW.

/// How one table is laid out in each system.
#[derive(Clone, Debug)]
pub struct TableLayout {
    pub table: &'static str,
    pub hive: HiveLayout,
    pub pdw: PdwLayout,
}

/// Hive layout: optional partition column + optional bucketing.
#[derive(Clone, Debug)]
pub struct HiveLayout {
    /// Partition column: one HDFS directory per distinct value.
    pub partition_col: Option<&'static str>,
    /// Bucketing: `(column, bucket count)` — files within each partition
    /// (or the table directory), sorted on the bucket column.
    pub buckets: Option<(&'static str, usize)>,
}

/// PDW layout: hash-distributed on a column, or replicated to every node.
#[derive(Clone, Debug)]
pub struct PdwLayout {
    /// `None` means the table is replicated.
    pub distribution_col: Option<&'static str>,
}

/// The paper's Table 1, verbatim.
pub fn paper_layouts() -> Vec<TableLayout> {
    vec![
        TableLayout {
            table: "customer",
            hive: HiveLayout {
                partition_col: Some("c_nationkey"),
                buckets: Some(("c_custkey", 8)),
            },
            pdw: PdwLayout {
                distribution_col: Some("c_custkey"),
            },
        },
        TableLayout {
            table: "lineitem",
            hive: HiveLayout {
                partition_col: None,
                buckets: Some(("l_orderkey", 512)),
            },
            pdw: PdwLayout {
                distribution_col: Some("l_orderkey"),
            },
        },
        TableLayout {
            table: "nation",
            hive: HiveLayout {
                partition_col: None,
                buckets: None,
            },
            pdw: PdwLayout {
                distribution_col: None,
            },
        },
        TableLayout {
            table: "orders",
            hive: HiveLayout {
                partition_col: None,
                buckets: Some(("o_orderkey", 512)),
            },
            pdw: PdwLayout {
                distribution_col: Some("o_orderkey"),
            },
        },
        TableLayout {
            table: "part",
            hive: HiveLayout {
                partition_col: None,
                buckets: Some(("p_partkey", 8)),
            },
            pdw: PdwLayout {
                distribution_col: Some("p_partkey"),
            },
        },
        TableLayout {
            table: "partsupp",
            hive: HiveLayout {
                partition_col: None,
                buckets: Some(("ps_partkey", 8)),
            },
            pdw: PdwLayout {
                distribution_col: Some("ps_partkey"),
            },
        },
        TableLayout {
            table: "region",
            hive: HiveLayout {
                partition_col: None,
                buckets: None,
            },
            pdw: PdwLayout {
                distribution_col: None,
            },
        },
        TableLayout {
            table: "supplier",
            hive: HiveLayout {
                partition_col: Some("s_nationkey"),
                buckets: Some(("s_suppkey", 8)),
            },
            pdw: PdwLayout {
                distribution_col: Some("s_suppkey"),
            },
        },
    ]
}

/// The column colblock files cluster (sort) on before carving blocks, so
/// that per-block min/max statistics get tight, disjoint ranges and
/// predicate pruning actually skips blocks. Chosen per table for the
/// predicates the TPC-H workload pushes down: `l_shipdate` (Q6's and, via
/// date correlation, Q12's range filters), `o_orderdate` (Q3/Q4/Q5...),
/// and `p_size` (Q19's OR-of-ranges). `None` keeps the table's load order
/// (no predicate worth clustering for). This is an extension beyond the
/// paper's Table 1 — the 2012 layouts had no block statistics to feed.
pub fn colblock_cluster_col(table: &str) -> Option<&'static str> {
    match table {
        "lineitem" => Some("l_shipdate"),
        "orders" => Some("o_orderdate"),
        "part" => Some("p_size"),
        _ => None,
    }
}

/// Lookup by table name.
pub fn layout_of(table: &str) -> TableLayout {
    paper_layouts()
        .into_iter()
        .find(|l| l.table == table)
        .unwrap_or_else(|| panic!("no layout for table `{table}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table1() {
        let l = layout_of("lineitem");
        assert_eq!(l.hive.buckets, Some(("l_orderkey", 512)));
        assert_eq!(l.pdw.distribution_col, Some("l_orderkey"));
        assert!(layout_of("nation").pdw.distribution_col.is_none());
        assert_eq!(
            layout_of("customer").hive.partition_col,
            Some("c_nationkey")
        );
        assert_eq!(paper_layouts().len(), 8);
    }

    #[test]
    fn cluster_columns_exist_in_schemas() {
        for l in paper_layouts() {
            if let Some(col) = colblock_cluster_col(l.table) {
                let s = crate::schema::table_schema(l.table);
                assert!(s.index_of(col).is_some(), "{} cluster col {col}", l.table);
            }
        }
        assert_eq!(colblock_cluster_col("lineitem"), Some("l_shipdate"));
        assert_eq!(colblock_cluster_col("nation"), None);
    }

    #[test]
    fn bucket_columns_exist_in_schemas() {
        for l in paper_layouts() {
            let s = crate::schema::table_schema(l.table);
            if let Some((col, _)) = l.hive.buckets {
                assert!(s.index_of(col).is_some(), "{} bucket col {col}", l.table);
            }
            if let Some(col) = l.pdw.distribution_col {
                assert!(s.index_of(col).is_some(), "{} dist col {col}", l.table);
            }
        }
    }
}
