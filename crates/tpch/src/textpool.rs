//! The word pools of the TPC-H specification (clause 4.2.2.13 and
//! appendix). The queries' predicates select against these exact strings,
//! so they are reproduced verbatim where a query depends on them.

/// p_type = syllable1 + ' ' + syllable2 + ' ' + syllable3 (150 combos).
pub const TYPE_SYLLABLE1: &[&str] = &["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
pub const TYPE_SYLLABLE2: &[&str] = &["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
pub const TYPE_SYLLABLE3: &[&str] = &["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// p_container = container1 + ' ' + container2 (40 combos).
pub const CONTAINER1: &[&str] = &["SM", "LG", "MED", "JUMBO", "WRAP"];
pub const CONTAINER2: &[&str] = &["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// c_mktsegment (5 values).
pub const SEGMENTS: &[&str] = &[
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

/// o_orderpriority (5 values).
pub const PRIORITIES: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// l_shipinstruct (4 values).
pub const INSTRUCTIONS: &[&str] = &[
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

/// l_shipmode (7 values).
pub const MODES: &[&str] = &["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// The 92-word pool p_name draws 5 words from (Q9 filters '%green%',
/// Q20 'forest%').
pub const PART_NAME_WORDS: &[&str] = &[
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cornsilk",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "floral",
    "forest",
    "frosted",
    "gainsboro",
    "ghost",
    "goldenrod",
    "green",
    "grey",
    "honeydew",
    "hot",
    "indian",
    "ivory",
    "khaki",
    "lace",
    "lavender",
    "lawn",
    "lemon",
    "light",
    "lime",
    "linen",
    "magenta",
    "maroon",
    "medium",
    "metallic",
    "midnight",
    "mint",
    "misty",
    "moccasin",
    "navajo",
    "navy",
    "olive",
    "orange",
    "orchid",
    "pale",
    "papaya",
    "peach",
    "peru",
    "pink",
    "plum",
    "powder",
    "puff",
    "purple",
    "red",
    "rose",
    "rosy",
    "royal",
    "saddle",
    "salmon",
    "sandy",
    "seashell",
    "sienna",
    "sky",
    "slate",
    "smoke",
    "snow",
    "spring",
    "steel",
    "tan",
    "thistle",
    "tomato",
    "turquoise",
    "violet",
    "wheat",
    "white",
    "yellow",
];

/// The 25 nations with their region keys (spec appendix A).
pub const NATIONS: &[(&str, i64)] = &[
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("ROMANIA", 3),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
    ("VIETNAM", 2),
    ("CHINA", 2),
    ("SAUDI ARABIA", 4),
];

/// The 5 regions.
pub const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Filler vocabulary for comments (a small sample of dbgen's grammar
/// output; exact text doesn't matter except for the injected patterns).
pub const COMMENT_WORDS: &[&str] = &[
    "carefully",
    "furiously",
    "quickly",
    "slyly",
    "blithely",
    "ironic",
    "final",
    "bold",
    "regular",
    "express",
    "silent",
    "pending",
    "even",
    "special",
    "unusual",
    "deposits",
    "requests",
    "packages",
    "accounts",
    "theodolites",
    "instructions",
    "foxes",
    "ideas",
    "dependencies",
    "pinto",
    "beans",
    "platelets",
    "asymptotes",
    "somas",
    "dugouts",
    "realms",
    "dolphins",
    "sheaves",
    "sauternes",
    "warthogs",
    "frets",
    "dinos",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_sizes_match_spec() {
        assert_eq!(
            TYPE_SYLLABLE1.len() * TYPE_SYLLABLE2.len() * TYPE_SYLLABLE3.len(),
            150
        );
        assert_eq!(CONTAINER1.len() * CONTAINER2.len(), 40);
        assert_eq!(SEGMENTS.len(), 5);
        assert_eq!(PRIORITIES.len(), 5);
        assert_eq!(MODES.len(), 7);
        assert_eq!(NATIONS.len(), 25);
        assert_eq!(REGIONS.len(), 5);
        assert!(PART_NAME_WORDS.len() >= 90);
    }

    #[test]
    fn query_predicate_tokens_present() {
        assert!(TYPE_SYLLABLE3.contains(&"BRASS")); // Q2
        assert!(TYPE_SYLLABLE1.contains(&"ECONOMY")); // Q8
        assert!(TYPE_SYLLABLE2.contains(&"POLISHED")); // Q16
        assert!(PART_NAME_WORDS.contains(&"green")); // Q9
        assert!(PART_NAME_WORDS.contains(&"forest")); // Q20
        assert!(SEGMENTS.contains(&"BUILDING")); // Q3
        assert!(MODES.contains(&"MAIL")); // Q12
        assert!(COMMENT_WORDS.contains(&"special") && COMMENT_WORDS.contains(&"requests"));
        // Q13
        assert!(NATIONS.iter().any(|(n, _)| *n == "GERMANY")); // Q11
    }
}
