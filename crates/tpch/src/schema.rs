//! The eight TPC-H table schemas.

use relational::{DataType as T, Schema};

pub fn region() -> Schema {
    Schema::of(&[
        ("r_regionkey", T::I64),
        ("r_name", T::Str),
        ("r_comment", T::Str),
    ])
}

pub fn nation() -> Schema {
    Schema::of(&[
        ("n_nationkey", T::I64),
        ("n_name", T::Str),
        ("n_regionkey", T::I64),
        ("n_comment", T::Str),
    ])
}

pub fn supplier() -> Schema {
    Schema::of(&[
        ("s_suppkey", T::I64),
        ("s_name", T::Str),
        ("s_address", T::Str),
        ("s_nationkey", T::I64),
        ("s_phone", T::Str),
        ("s_acctbal", T::Decimal),
        ("s_comment", T::Str),
    ])
}

pub fn part() -> Schema {
    Schema::of(&[
        ("p_partkey", T::I64),
        ("p_name", T::Str),
        ("p_mfgr", T::Str),
        ("p_brand", T::Str),
        ("p_type", T::Str),
        ("p_size", T::I64),
        ("p_container", T::Str),
        ("p_retailprice", T::Decimal),
        ("p_comment", T::Str),
    ])
}

pub fn partsupp() -> Schema {
    Schema::of(&[
        ("ps_partkey", T::I64),
        ("ps_suppkey", T::I64),
        ("ps_availqty", T::I64),
        ("ps_supplycost", T::Decimal),
        ("ps_comment", T::Str),
    ])
}

pub fn customer() -> Schema {
    Schema::of(&[
        ("c_custkey", T::I64),
        ("c_name", T::Str),
        ("c_address", T::Str),
        ("c_nationkey", T::I64),
        ("c_phone", T::Str),
        ("c_acctbal", T::Decimal),
        ("c_mktsegment", T::Str),
        ("c_comment", T::Str),
    ])
}

pub fn orders() -> Schema {
    Schema::of(&[
        ("o_orderkey", T::I64),
        ("o_custkey", T::I64),
        ("o_orderstatus", T::Str),
        ("o_totalprice", T::Decimal),
        ("o_orderdate", T::Date),
        ("o_orderpriority", T::Str),
        ("o_clerk", T::Str),
        ("o_shippriority", T::I64),
        ("o_comment", T::Str),
    ])
}

pub fn lineitem() -> Schema {
    Schema::of(&[
        ("l_orderkey", T::I64),
        ("l_partkey", T::I64),
        ("l_suppkey", T::I64),
        ("l_linenumber", T::I64),
        ("l_quantity", T::Decimal),
        ("l_extendedprice", T::Decimal),
        ("l_discount", T::Decimal),
        ("l_tax", T::Decimal),
        ("l_returnflag", T::Str),
        ("l_linestatus", T::Str),
        ("l_shipdate", T::Date),
        ("l_commitdate", T::Date),
        ("l_receiptdate", T::Date),
        ("l_shipinstruct", T::Str),
        ("l_shipmode", T::Str),
        ("l_comment", T::Str),
    ])
}

/// All table names in load order (referenced tables first).
pub const TABLE_NAMES: &[&str] = &[
    "region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem",
];

/// Schema by table name.
pub fn table_schema(name: &str) -> Schema {
    match name {
        "region" => region(),
        "nation" => nation(),
        "supplier" => supplier(),
        "part" => part(),
        "partsupp" => partsupp(),
        "customer" => customer(),
        "orders" => orders(),
        "lineitem" => lineitem(),
        other => panic!("unknown TPC-H table `{other}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schemas_resolve() {
        for t in TABLE_NAMES {
            let s = table_schema(t);
            assert!(!s.is_empty(), "{t}");
        }
        assert_eq!(lineitem().len(), 16);
        assert_eq!(orders().len(), 9);
        assert_eq!(lineitem().col("l_shipdate"), 10);
    }
}
