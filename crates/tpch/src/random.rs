//! The TPC-H `dbgen` random number generator, including the 32-bit overflow
//! bug the paper hit at the 16 TB scale factor (§3.3.1):
//!
//! > "the values generated for the partkey and custkey fields in the
//! > mk_order function are negative numbers. These numbers are produced
//! > using the RANDOM function, which overflows at the 16TB scale. Hence,
//! > we modified the generator code to use a 64-bit random number generator
//! > (RANDOM64)."
//!
//! `dbgen`'s RANDOM draws a uniform value in `[lo, hi]` by computing
//! `lo + rand() % (hi - lo + 1)` where the span arithmetic happens in a
//! 32-bit signed register. When `hi` exceeds `i32::MAX` (partkey at
//! SF 16000 reaches 3.2e9), the span wraps negative and so do the outputs.

/// Linear congruential generator matching dbgen's constants.
const MULT: i64 = 16807;
const MODULUS: i64 = 2147483647; // 2^31 - 1 (Lehmer / MINSTD)

/// Which arithmetic width RANDOM uses for span computation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RandomMode {
    /// dbgen's original 32-bit RANDOM: overflows for spans > 2^31-1.
    Bit32,
    /// The RANDOM64 fix the paper applied.
    Bit64,
}

/// A seedable dbgen-style stream.
#[derive(Clone, Debug)]
pub struct TpchRandom {
    state: i64,
    pub mode: RandomMode,
}

impl TpchRandom {
    pub fn new(seed: i64, mode: RandomMode) -> Self {
        TpchRandom {
            state: if seed <= 0 { 1 } else { seed % MODULUS },
            mode,
        }
    }

    /// Next raw Lehmer value in `[1, 2^31-2]`.
    fn next_raw(&mut self) -> i64 {
        self.state = (self.state * MULT) % MODULUS;
        self.state
    }

    /// Uniform integer in `[lo, hi]`. In `Bit32` mode the span arithmetic
    /// wraps like a C `int`, reproducing dbgen's negative keys when
    /// `hi - lo + 1` exceeds `i32::MAX`.
    pub fn uniform(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(hi >= lo);
        match self.mode {
            RandomMode::Bit64 => {
                let span = (hi - lo + 1) as u64;
                // Two raw draws give 62 bits, enough for 16 TB key spaces.
                let r = ((self.next_raw() as u64) << 31) | (self.next_raw() as u64);
                lo + (r % span) as i64
            }
            RandomMode::Bit32 => {
                // On a 32-bit `long` the *bound itself* wraps: partkey's
                // upper bound 3.2e9 becomes negative, UnifInt's range goes
                // negative, and the generated keys come out negative.
                let hi32 = hi as i32;
                let lo32 = lo as i32;
                let range = (hi32 as i64) - (lo32 as i64) + 1;
                let frac = self.next_raw() as f64 / MODULUS as f64;
                lo32 as i64 + (frac * range as f64) as i64
            }
        }
    }

    /// Uniform decimal with two fraction digits in `[lo, hi]` (inputs in
    /// hundredths), returned in hundredths.
    pub fn decimal(&mut self, lo_cents: i64, hi_cents: i64) -> i64 {
        self.uniform(lo_cents, hi_cents)
    }

    /// Pick an element of a slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        let i = self.uniform(0, items.len() as i64 - 1) as usize;
        &items[i]
    }

    /// Bernoulli draw with probability `num/den`.
    pub fn chance(&mut self, num: i64, den: i64) -> bool {
        self.uniform(1, den) <= num
    }
}

/// The sparse-key mapping for order keys: only the first 8 of every 32 key
/// values are used, so `ordinal` 0,1,...  maps to 1,2,...,8, 33,34,...
/// (dbgen's `mk_sparse`).
pub fn sparse_orderkey(ordinal: i64) -> i64 {
    let group = ordinal / 8;
    let within = ordinal % 8;
    group * 32 + within + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lehmer_sequence_is_deterministic() {
        let mut a = TpchRandom::new(42, RandomMode::Bit64);
        let mut b = TpchRandom::new(42, RandomMode::Bit64);
        for _ in 0..100 {
            assert_eq!(a.uniform(0, 1000), b.uniform(0, 1000));
        }
    }

    #[test]
    fn uniform_stays_in_range_64bit() {
        let mut r = TpchRandom::new(7, RandomMode::Bit64);
        for _ in 0..10_000 {
            let v = r.uniform(10, 20);
            assert!((10..=20).contains(&v));
        }
        // Large span: partkey range at SF 16000 is [1, 3.2e9].
        for _ in 0..10_000 {
            let v = r.uniform(1, 3_200_000_000);
            assert!((1..=3_200_000_000).contains(&v));
        }
    }

    #[test]
    fn bit32_overflows_on_16tb_key_ranges() {
        // This is the bug the paper reports: at SF 16000 partkey spans
        // 3.2e9 > i32::MAX, so RANDOM's span wraps and keys go negative.
        let mut r = TpchRandom::new(7, RandomMode::Bit32);
        let mut saw_negative = false;
        for _ in 0..10_000 {
            if r.uniform(1, 3_200_000_000) < 0 {
                saw_negative = true;
                break;
            }
        }
        assert!(
            saw_negative,
            "32-bit RANDOM must reproduce dbgen's overflow"
        );
        // Small ranges are unaffected.
        let mut r = TpchRandom::new(7, RandomMode::Bit32);
        for _ in 0..1000 {
            let v = r.uniform(1, 50);
            assert!((1..=50).contains(&v));
        }
    }

    #[test]
    fn uniform_covers_range_roughly() {
        let mut r = TpchRandom::new(123, RandomMode::Bit64);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[r.uniform(0, 9) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (700..=1300).contains(&c),
                "bucket {i} count {c} far from uniform"
            );
        }
    }

    #[test]
    fn sparse_orderkeys_use_first_8_of_32() {
        assert_eq!(sparse_orderkey(0), 1);
        assert_eq!(sparse_orderkey(7), 8);
        assert_eq!(sparse_orderkey(8), 33);
        assert_eq!(sparse_orderkey(15), 40);
        assert_eq!(sparse_orderkey(16), 65);
        // Max orderkey is 4x the order count.
        let n = 1_500_000i64;
        assert_eq!(sparse_orderkey(n - 1), 6_000_000 - 24);
    }

    #[test]
    fn chance_probability_sane() {
        let mut r = TpchRandom::new(9, RandomMode::Bit64);
        let hits = (0..10_000).filter(|_| r.chance(1, 10)).count();
        assert!((800..=1200).contains(&hits), "p=0.1 got {hits}/10000");
    }
}
