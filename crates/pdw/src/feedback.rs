//! Measured-wait feedback for the optimizer's movement cost estimates.
//!
//! The closed-form `shuffle_t`/`replicate_t` estimates in
//! [`crate::exec`] assume an idle network: `bytes / share / bw`. Under a
//! concurrent workload mix that assumption breaks — DMS transfers queue
//! behind other jobs' traffic — and the paper's contention narratives
//! (Hive queueing behind 1 GbE shuffles, §3.3.4) are exactly about the gap
//! between nominal and *effective* rates. [`FeedbackCosts`] carries that
//! gap, measured from a prior (or concurrently profiled) run of the same
//! mix, back into the optimizer:
//!
//! * **Per-class inflation** — shuffles are many smallish transfers, so a
//!   fixed absolute wait inflates their effective cost proportionally more
//!   than a replicate's fewer, longer transfers. We therefore measure
//!   `(service + wait) / service` over the Net contributions of
//!   `shuffle:` and `replicate:` spans *separately*.
//! * **Per-movement wait** — a Little's-law style additive term: the mean
//!   windowed NIC queue depth (from `obs`'s timeline) times the mean NIC
//!   service time estimates the queueing an additional movement step will
//!   encounter. A shuffle-both step is two logical movements and pays it
//!   twice, which is what lets the feedback *reorder* strategies rather
//!   than just rescale them.
//!
//! [`FeedbackCosts::none`] is the exact identity (`×1.0 + 0.0`), so an
//! engine configured with it reproduces the closed-form decisions
//! bit-for-bit.

use simkit::resource::ResourceReport;
use simkit::trace::{ResKind, Trace};

/// Effective-rate corrections applied to the optimizer's closed-form
/// movement estimates. See the module docs for how each field is measured.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FeedbackCosts {
    /// Measured `(service + queue wait) / service` over the Net
    /// contributions of `shuffle:` spans (1.0 = uncontended).
    pub shuffle_inflation: f64,
    /// Same ratio over `replicate:` spans.
    pub replicate_inflation: f64,
    /// Additive seconds of expected queueing per logical data movement
    /// (mean windowed NIC queue depth × mean NIC service time).
    pub net_wait_per_move_secs: f64,
}

impl Default for FeedbackCosts {
    fn default() -> Self {
        FeedbackCosts::none()
    }
}

impl FeedbackCosts {
    /// The identity feedback: estimates pass through unchanged (bitwise),
    /// so decisions equal the closed-form optimizer's.
    pub fn none() -> FeedbackCosts {
        FeedbackCosts {
            shuffle_inflation: 1.0,
            replicate_inflation: 1.0,
            net_wait_per_move_secs: 0.0,
        }
    }

    /// Whether this is the identity (no measured contention).
    pub fn is_none(&self) -> bool {
        *self == FeedbackCosts::none()
    }

    /// Derive feedback from an observed run: `reports` are the run's
    /// end-of-run [`ResourceReport`]s, `trace` its span trace (span names
    /// containing `shuffle:` / `replicate:` classify the Net
    /// contributions), and `net_depth_windows` the per-window mean NIC
    /// queue depths from an `obs` timeline (the caller picks the windows —
    /// typically those where the mix was active).
    pub fn from_observation(
        reports: &[ResourceReport],
        trace: &Trace,
        net_depth_windows: &[f64],
    ) -> FeedbackCosts {
        let mut depths = NetDepthAccum::new();
        for &d in net_depth_windows {
            depths.push(d);
        }
        FeedbackCosts::from_observation_streaming(reports, trace, &depths)
    }

    /// [`FeedbackCosts::from_observation`] for callers that never hold the
    /// full window vector: the depth term arrives pre-accumulated through
    /// a [`NetDepthAccum`] fed one window at a time (e.g. from a streaming
    /// metric registry's per-window gauges as the run progresses). Feeding
    /// the same windows in the same order yields bit-identical feedback —
    /// the accumulator runs the exact left-to-right sum the slice path
    /// ran (pinned by test).
    pub fn from_observation_streaming(
        reports: &[ResourceReport],
        trace: &Trace,
        depths: &NetDepthAccum,
    ) -> FeedbackCosts {
        let inflation = |marker: &str| {
            let (mut service, mut wait) = (0.0f64, 0.0f64);
            for span in &trace.spans {
                if !span.name.contains(marker) {
                    continue;
                }
                for c in &span.contribs {
                    if matches!(c.kind, ResKind::Net) {
                        service += c.service;
                        wait += c.queue_wait;
                    }
                }
            }
            if service > 0.0 {
                (service + wait) / service
            } else {
                1.0
            }
        };
        let (mut net_busy, mut net_completions) = (0.0f64, 0u64);
        for r in reports {
            // Classify by the structural kind declared at registration,
            // never by naming conventions: a network link is a network
            // link whatever a topology chose to call it.
            if matches!(r.kind, Some(ResKind::Net)) {
                net_busy += r.busy_secs;
                net_completions += r.completions;
            }
        }
        let mean_service = if net_completions > 0 {
            net_busy / net_completions as f64
        } else {
            0.0
        };
        FeedbackCosts {
            shuffle_inflation: inflation("shuffle:"),
            replicate_inflation: inflation("replicate:"),
            net_wait_per_move_secs: depths.mean() * mean_service,
        }
    }
}

/// Running mean of per-window NIC queue depths, for feeding the feedback
/// loop incrementally (window by window, as a streaming registry produces
/// them) instead of materializing the whole window vector first. The sum
/// is plain left-to-right f64 addition — the same order
/// [`FeedbackCosts::from_observation`] uses over a slice — so both paths
/// produce bit-identical feedback from the same windows.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NetDepthAccum {
    sum: f64,
    n: u64,
}

impl NetDepthAccum {
    pub fn new() -> NetDepthAccum {
        NetDepthAccum::default()
    }

    /// Feed one window's mean NIC queue depth.
    pub fn push(&mut self, depth: f64) {
        self.sum += depth;
        self.n += 1;
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean over the windows fed so far (0.0 before any).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::trace::{Contrib, Span};

    fn span(name: &str, service: f64, wait: f64) -> Span {
        Span {
            name: name.into(),
            node: None,
            start: 0,
            end: 0,
            contribs: vec![Contrib {
                kind: ResKind::Net,
                node: None,
                service,
                queue_wait: wait,
            }],
        }
    }

    #[test]
    fn none_is_the_identity() {
        let fb = FeedbackCosts::none();
        assert!(fb.is_none());
        for est in [0.0f64, 1.5, 300.0] {
            let eff = est * fb.shuffle_inflation + fb.net_wait_per_move_secs;
            assert_eq!(eff.to_bits(), est.to_bits(), "must be bitwise identical");
        }
    }

    #[test]
    fn observation_separates_shuffle_and_replicate_inflation() {
        let mut trace = Trace::default();
        // Shuffles waited as long as they served (2×); replicates barely.
        trace.push(span("q/shuffle:orders", 10.0, 10.0));
        trace.push(span("q/replicate:nation", 20.0, 2.0));
        trace.push(span("q/scan:lineitem", 99.0, 99.0)); // ignored
        let reports = vec![ResourceReport {
            name: "node0.nic_send".into(),
            kind: Some(ResKind::Net),
            busy_secs: 30.0,
            completions: 10,
            mean_queue_wait_secs: 0.0,
            max_queue_depth: 4,
            queued_at_end: 0,
            pending_wait_secs: 0.0,
        }];
        let fb = FeedbackCosts::from_observation(&reports, &trace, &[2.0, 4.0]);
        assert!((fb.shuffle_inflation - 2.0).abs() < 1e-12);
        assert!((fb.replicate_inflation - 1.1).abs() < 1e-12);
        // mean depth 3.0 × mean service 3.0s.
        assert!((fb.net_wait_per_move_secs - 9.0).abs() < 1e-12);
    }

    #[test]
    fn network_links_classify_by_kind_not_by_name() {
        // Regression: classification used to substring-match "nic" in the
        // resource name, silently dropping network links a topology named
        // differently (and wrongly matching anything that happened to
        // contain "nic"). A Net-kind link named without "nic" must count;
        // a Disk-kind resource whose name contains "nic" must not.
        let mut trace = Trace::default();
        trace.push(span("q/shuffle:orders", 10.0, 10.0));
        let mk = |name: &str, kind, busy_secs, completions| ResourceReport {
            name: name.into(),
            kind,
            busy_secs,
            completions,
            mean_queue_wait_secs: 0.0,
            max_queue_depth: 0,
            queued_at_end: 0,
            pending_wait_secs: 0.0,
        };
        let reports = vec![
            mk("repl-channel-3", Some(ResKind::Net), 12.0, 4),
            mk("node0.scenic_disk", Some(ResKind::Disk), 1000.0, 1),
            mk("unclassified", None, 500.0, 2),
        ];
        let fb = FeedbackCosts::from_observation(&reports, &trace, &[1.0]);
        // Only the Net-kind link contributes: mean service 12/4 = 3s.
        assert!((fb.net_wait_per_move_secs - 3.0).abs() < 1e-12);
    }

    #[test]
    fn observation_without_movement_spans_falls_back_to_identity_rates() {
        let fb = FeedbackCosts::from_observation(&[], &Trace::default(), &[]);
        assert!(fb.is_none());
    }

    #[test]
    fn streaming_accumulator_is_bit_identical_to_the_slice_path() {
        let mut trace = Trace::default();
        trace.push(span("q/shuffle:orders", 10.0, 3.0));
        trace.push(span("q/replicate:nation", 20.0, 2.0));
        let reports = vec![ResourceReport {
            name: "node1.nic_recv".into(),
            kind: Some(ResKind::Net),
            busy_secs: 17.0,
            completions: 7,
            mean_queue_wait_secs: 0.0,
            max_queue_depth: 3,
            queued_at_end: 0,
            pending_wait_secs: 0.0,
        }];
        // Awkward floats on purpose: any re-ordering of the sum would show.
        let windows = [0.1, 0.7, 1.9, 2.30000001, 0.0, 5.5, 3.3333333];
        let batch = FeedbackCosts::from_observation(&reports, &trace, &windows);
        let mut acc = NetDepthAccum::new();
        for &d in &windows {
            acc.push(d);
        }
        let streamed = FeedbackCosts::from_observation_streaming(&reports, &trace, &acc);
        assert_eq!(acc.count(), windows.len() as u64);
        for (a, b) in [
            (batch.shuffle_inflation, streamed.shuffle_inflation),
            (batch.replicate_inflation, streamed.replicate_inflation),
            (
                batch.net_wait_per_move_secs,
                streamed.net_wait_per_move_secs,
            ),
        ] {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
