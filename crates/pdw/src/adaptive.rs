//! Mid-mix adaptive re-planning for recorded PDW plans.
//!
//! A plan-time [`JoinDecision`] ranks movement strategies from closed-form
//! estimates (optionally corrected by a *prior* run's [`FeedbackCosts`]).
//! Under a live concurrent mix the estimates drift while the query runs:
//! an ETL job saturates the NICs and the shuffle a decision charged at
//! `bytes/n/bw` now queues behind someone else's traffic. This module
//! closes the loop *during* the run: at every phase boundary
//! (`cluster::ClusterExec::run_mix_adaptive`) the re-planner distills live
//! observability into effective costs and may swap a not-yet-started
//! shuffle movement for its replicate twin (or back).
//!
//! Two inputs, both read at the boundary:
//!
//! * **Blame verdicts** ([`BlameVerdict`], fed from `obs`'s critical-path
//!   probe): per closed span, the dominant cause and the span's Net
//!   service/queue seconds. Movement spans rebuild the per-class
//!   inflations exactly as [`FeedbackCosts::from_observation`] would —
//!   and a `net.que`-*dominant* movement span additionally raises its
//!   class's inflation by its dominant share, because a movement whose
//!   critical path is mostly queueing is worse than its mean wait ratio
//!   suggests.
//! * **Mean NIC wait** (from `obs`'s streaming metric windows): the
//!   additive per-movement queueing term, measured over the live run
//!   instead of a prior one.
//!
//! Determinism: everything here is pure arithmetic over values the
//! deterministic probe stream produced, invoked only at phase boundaries —
//! so adaptive runs are byte-reproducible, and a run whose feedback never
//! justifies a swap returns `None` at every boundary, leaving the schedule
//! bitwise identical to the fixed plan's.

use crate::exec::{replicate_phase, shuffle_phase, JoinDecision};
use crate::feedback::FeedbackCosts;
use cluster::{Params, Phase};

/// One span's dominant-cause ruling, as the re-planner consumes it.
/// Mirrors `obs::Verdict` structurally (pdw does not depend on `obs`;
/// the driving binary converts).
#[derive(Clone, Debug)]
pub struct BlameVerdict {
    /// Full span name (`job/phase` in a mix).
    pub span: String,
    /// Dominant blame component label (`net.que`, `disk.svc`, `stall`, …).
    pub label: String,
    /// Dominant component's share of the span's elapsed time (0..=1).
    pub share: f64,
    /// Critical-path Net service seconds of the span.
    pub net_svc_secs: f64,
    /// Critical-path Net queue-wait seconds of the span.
    pub net_que_secs: f64,
}

/// Distill live blame into effective movement costs, plus a human-readable
/// evidence line recorded on any decision the costs end up flipping.
///
/// Per-class inflation is `(net service + net queue) / net service` over
/// the closed `shuffle:` / `replicate:` movement spans so far (identity
/// 1.0 when a class has no closed spans yet). If any span of a class was
/// *dominated* by `net.que`, the class inflation is additionally scaled by
/// `1 + max dominant share` — queueing on the critical path, not just
/// alongside it. `mean_net_wait_secs` passes through as the additive
/// per-movement term.
pub fn live_costs(verdicts: &[BlameVerdict], mean_net_wait_secs: f64) -> (FeedbackCosts, String) {
    let class = |marker: &str| {
        let (mut svc, mut que, mut kicker) = (0.0f64, 0.0f64, 0.0f64);
        let mut culprit: Option<&BlameVerdict> = None;
        for v in verdicts {
            if !v.span.contains(marker) {
                continue;
            }
            svc += v.net_svc_secs;
            que += v.net_que_secs;
            if v.label == "net.que" && v.share > kicker {
                kicker = v.share;
                culprit = Some(v);
            }
        }
        let base = if svc > 0.0 { (svc + que) / svc } else { 1.0 };
        (base * (1.0 + kicker), culprit)
    };
    let (shuffle_inflation, shuffle_culprit) = class("shuffle:");
    let (replicate_inflation, _) = class("replicate:");
    let fb = FeedbackCosts {
        shuffle_inflation,
        replicate_inflation,
        net_wait_per_move_secs: mean_net_wait_secs,
    };
    let culprit = match shuffle_culprit {
        Some(v) => format!(
            "{} net.que-dominant ({:.0}% of span); ",
            v.span,
            v.share * 100.0
        ),
        None => String::new(),
    };
    let evidence = format!(
        "{culprit}live shuffle ×{shuffle_inflation:.2}, replicate ×{replicate_inflation:.2}, \
         +{mean_net_wait_secs:.2}s/move"
    );
    (fb, evidence)
}

/// Effective cost of a movement `label` whose closed-form estimate is
/// `closed`, under `fb` — the same correction the plan-time optimizer
/// applies (shuffle-both is two logical movements and pays the additive
/// term twice).
fn eff(label: &str, closed: f64, fb: &FeedbackCosts) -> f64 {
    match label {
        "none" => closed,
        "shuffle-both" => closed * fb.shuffle_inflation + 2.0 * fb.net_wait_per_move_secs,
        l if l.starts_with("shuffle") => closed * fb.shuffle_inflation + fb.net_wait_per_move_secs,
        _ => closed * fb.replicate_inflation + fb.net_wait_per_move_secs,
    }
}

/// The movement's swap twin: same side, opposite mechanism. `shuffle-both`
/// has no twin (its two-sided repartition is not a replicate's equal).
fn twin(label: &str) -> Option<&'static str> {
    match label {
        "shuffle-left" => Some("replicate-left"),
        "replicate-left" => Some("shuffle-left"),
        "shuffle-right" => Some("replicate-right"),
        "replicate-right" => Some("shuffle-right"),
        _ => None,
    }
}

/// Which side's bytes a movement ships.
fn moved_bytes(label: &str, d: &JoinDecision) -> u64 {
    if label.ends_with("left") {
        d.l_bytes
    } else {
        d.r_bytes
    }
}

/// A movement phase recognized in a job's remaining tail: `shuffle:` /
/// `replicate:` over a join stem. (`shuffle:agg-groups` is a partial-agg
/// repartition, not a join movement — no decision backs it.)
fn movement_stem(phase_name: &str) -> Option<&str> {
    let stem = phase_name
        .strip_prefix("shuffle:")
        .or_else(|| phase_name.strip_prefix("replicate:"))?;
    matches!(stem, "join" | "chain-join").then_some(stem)
}

/// One join movement the plan will still execute, tied to its plan-time
/// decision and tracking which movement is currently scheduled (swaps can
/// revise it more than once before it runs).
struct MovementSlot {
    decision: JoinDecision,
    current: String,
}

/// Live re-planner state for one recorded PDW plan running inside a mix.
///
/// Construction pairs the plan's [`JoinDecision`]s (those that chose an
/// actual movement) with the plan's movement phases *positionally*: the
/// executor charges exactly one `shuffle:`/`replicate:` join phase per
/// such decision, in decision order, so the last *M* slots correspond to
/// the *M* movement phases still in the tail.
pub struct AdaptiveTail {
    params: Params,
    slots: Vec<MovementSlot>,
    swaps: Vec<JoinDecision>,
}

impl AdaptiveTail {
    pub fn new(params: Params, decisions: &[JoinDecision]) -> AdaptiveTail {
        AdaptiveTail {
            params,
            slots: decisions
                .iter()
                .filter(|d| d.chosen != "none")
                .map(|d| MovementSlot {
                    decision: d.clone(),
                    current: d.chosen.clone(),
                })
                .collect(),
            swaps: Vec::new(),
        }
    }

    /// Every mid-flight swap performed so far, as [`JoinDecision`]s:
    /// `closed_form` holds the movement the swap replaced, `chosen` the
    /// movement swapped in, `options` the live-effective ranking that
    /// justified it, and `evidence` the blame line behind the costs.
    pub fn swaps(&self) -> &[JoinDecision] {
        &self.swaps
    }

    /// Offer the re-planner a job's not-yet-started tail under live costs
    /// `fb`. Returns the rewritten tail if any movement swapped, `None`
    /// (bitwise no-op) otherwise. Identity feedback can never swap: both
    /// effective costs then equal their closed forms, and the plan already
    /// chose the closed-form argmin.
    pub fn replan(
        &mut self,
        remaining: &[Phase],
        fb: &FeedbackCosts,
        evidence: &str,
        now_secs: f64,
    ) -> Option<Vec<Phase>> {
        let pending: Vec<usize> = remaining
            .iter()
            .enumerate()
            .filter(|(_, ph)| movement_stem(ph.name()).is_some())
            .map(|(i, _)| i)
            .collect();
        if pending.len() > self.slots.len() {
            // More movement phases than decisions — not a plan this
            // re-planner recorded; leave it alone.
            return None;
        }
        let first_slot = self.slots.len() - pending.len();
        let mut tail: Vec<Phase> = remaining.to_vec();
        let mut swapped = false;
        for (j, &phase_idx) in pending.iter().enumerate() {
            let slot = &mut self.slots[first_slot + j];
            let Some(to) = twin(&slot.current) else {
                continue;
            };
            let d = &slot.decision;
            let closed_of = |label: &str| {
                d.options
                    .iter()
                    .find(|(l, _, _)| l == label)
                    .map(|(_, c, _)| *c)
            };
            // The twin must have been legal at plan time (it carries a
            // closed-form estimate) for a swap to be sound.
            let (Some(cur_closed), Some(to_closed)) = (closed_of(&slot.current), closed_of(to))
            else {
                continue;
            };
            if eff(to, to_closed, fb) >= eff(&slot.current, cur_closed, fb) {
                continue;
            }
            let stem = movement_stem(tail[phase_idx].name())
                .expect("pending indexes only movement phases")
                .to_string();
            let bytes = moved_bytes(to, d);
            tail[phase_idx] = if to.starts_with("shuffle") {
                shuffle_phase(&self.params, &stem, bytes)
            } else {
                replicate_phase(&self.params, &stem, bytes)
            };
            self.swaps.push(JoinDecision {
                name: format!("{}@{:.1}s", d.name, now_secs),
                l_bytes: d.l_bytes,
                r_bytes: d.r_bytes,
                options: d
                    .options
                    .iter()
                    .map(|(l, c, _)| (l.clone(), *c, eff(l, *c, fb)))
                    .collect(),
                closed_form: slot.current.clone(),
                chosen: to.to_string(),
                evidence: Some(evidence.to_string()),
            });
            slot.current = to.to_string();
            swapped = true;
        }
        swapped.then_some(tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict(span: &str, label: &str, share: f64, svc: f64, que: f64) -> BlameVerdict {
        BlameVerdict {
            span: span.into(),
            label: label.into(),
            share,
            net_svc_secs: svc,
            net_que_secs: que,
        }
    }

    #[test]
    fn live_costs_rebuild_class_inflations() {
        let vs = vec![
            verdict("mix/q5/shuffle:join", "net.svc", 0.5, 10.0, 10.0),
            verdict("mix/q5/replicate:chain-join", "net.svc", 0.6, 20.0, 2.0),
            verdict("mix/q5/scan:lineitem", "disk.svc", 0.9, 99.0, 99.0),
        ];
        let (fb, _) = live_costs(&vs, 0.25);
        assert!((fb.shuffle_inflation - 2.0).abs() < 1e-12);
        assert!((fb.replicate_inflation - 1.1).abs() < 1e-12);
        assert!((fb.net_wait_per_move_secs - 0.25).abs() < 1e-12);
    }

    #[test]
    fn net_que_dominance_raises_the_class_and_names_the_culprit() {
        let vs = vec![verdict("mix/etl/shuffle:join", "net.que", 0.6, 10.0, 10.0)];
        let (fb, evidence) = live_costs(&vs, 0.0);
        // Base ×2.0, dominance kicker ×1.6.
        assert!((fb.shuffle_inflation - 3.2).abs() < 1e-12);
        assert!(evidence.contains("mix/etl/shuffle:join"));
        assert!(evidence.contains("net.que-dominant"));
    }

    #[test]
    fn no_movement_spans_yield_identity_rates() {
        let (fb, _) = live_costs(&[], 0.0);
        assert!(fb.is_none());
    }

    fn decision(chosen: &str) -> JoinDecision {
        JoinDecision {
            name: "join#0".into(),
            l_bytes: 1000,
            r_bytes: 4000,
            options: vec![
                ("shuffle-right".into(), 4.0, 4.0),
                ("replicate-right".into(), 6.0, 6.0),
            ],
            closed_form: chosen.into(),
            chosen: chosen.into(),
            evidence: None,
        }
    }

    fn params() -> Params {
        Params {
            nodes: 4,
            ..Params::paper_dss()
        }
    }

    #[test]
    fn identity_feedback_never_swaps() {
        let mut tail = AdaptiveTail::new(params(), &[decision("shuffle-right")]);
        let remaining = vec![shuffle_phase(&params(), "join", 4000)];
        let out = tail.replan(&remaining, &FeedbackCosts::none(), "", 1.0);
        assert!(out.is_none());
        assert!(tail.swaps().is_empty());
    }

    #[test]
    fn inflated_shuffle_swaps_to_replicate_and_records_evidence() {
        let mut tail = AdaptiveTail::new(params(), &[decision("shuffle-right")]);
        let remaining = vec![shuffle_phase(&params(), "join", 4000)];
        let fb = FeedbackCosts {
            shuffle_inflation: 2.0, // shuffle 8.0 > replicate 6.0
            replicate_inflation: 1.0,
            net_wait_per_move_secs: 0.0,
        };
        let out = tail.replan(&remaining, &fb, "nic contended", 12.3).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].name(), "replicate:join");
        let swaps = tail.swaps();
        assert_eq!(swaps.len(), 1);
        assert_eq!(swaps[0].closed_form, "shuffle-right");
        assert_eq!(swaps[0].chosen, "replicate-right");
        assert_eq!(swaps[0].name, "join#0@12.3s");
        assert_eq!(swaps[0].evidence.as_deref(), Some("nic contended"));
        // A second boundary under the same costs is a no-op: the slot now
        // tracks the replicate, and swapping back would cost more.
        let out2 = tail.replan(&out, &fb, "nic contended", 13.0);
        assert!(out2.is_none());
    }

    #[test]
    fn swap_can_revert_when_contention_clears() {
        let mut tail = AdaptiveTail::new(params(), &[decision("shuffle-right")]);
        let remaining = vec![shuffle_phase(&params(), "join", 4000)];
        let hot = FeedbackCosts {
            shuffle_inflation: 2.0,
            replicate_inflation: 1.0,
            net_wait_per_move_secs: 0.0,
        };
        let flipped = tail.replan(&remaining, &hot, "hot", 1.0).unwrap();
        // Contention cleared: replicate(6.0) loses to shuffle(4.0) again.
        let back = tail.replan(&flipped, &FeedbackCosts::none(), "cool", 2.0);
        let back = back.unwrap();
        assert_eq!(back[0].name(), "shuffle:join");
        assert_eq!(tail.swaps().len(), 2);
    }

    #[test]
    fn agg_shuffles_and_non_movement_phases_are_not_movement_slots() {
        assert!(movement_stem("shuffle:join").is_some());
        assert!(movement_stem("shuffle:chain-join").is_some());
        assert!(movement_stem("replicate:join").is_some());
        assert!(movement_stem("shuffle:agg-groups").is_none());
        assert!(movement_stem("scan:lineitem").is_none());
        // A tail holding only an agg repartition never swaps even under
        // absurd inflation.
        let mut tail = AdaptiveTail::new(params(), &[decision("shuffle-right")]);
        let remaining = vec![shuffle_phase(&params(), "agg-groups", 4000)];
        let fb = FeedbackCosts {
            shuffle_inflation: 100.0,
            replicate_inflation: 1.0,
            net_wait_per_move_secs: 0.0,
        };
        assert!(tail.replan(&remaining, &fb, "", 0.0).is_none());
    }

    #[test]
    fn swap_respects_plan_time_legality() {
        // The twin is absent from options (e.g. an outer join where
        // replicate-left was never legal): no swap however bad the costs.
        let mut d = decision("shuffle-right");
        d.options.retain(|(l, _, _)| l == "shuffle-right");
        let mut tail = AdaptiveTail::new(params(), &[d]);
        let remaining = vec![shuffle_phase(&params(), "join", 4000)];
        let fb = FeedbackCosts {
            shuffle_inflation: 100.0,
            replicate_inflation: 1.0,
            net_wait_per_move_secs: 0.0,
        };
        assert!(tail.replan(&remaining, &fb, "", 0.0).is_none());
    }

    #[test]
    fn pending_movements_pair_with_the_last_slots() {
        // Two decisions; the first movement already ran, one remains. The
        // remaining phase must pair with the *second* decision (r_bytes
        // 8000), not the first.
        let d0 = decision("shuffle-right");
        let mut d1 = decision("shuffle-right");
        d1.name = "chain-join#1".into();
        d1.r_bytes = 8000;
        let mut tail = AdaptiveTail::new(params(), &[d0, d1]);
        let remaining = vec![shuffle_phase(&params(), "chain-join", 8000)];
        let fb = FeedbackCosts {
            shuffle_inflation: 2.0,
            replicate_inflation: 1.0,
            net_wait_per_move_secs: 0.0,
        };
        let out = tail.replan(&remaining, &fb, "", 5.0).unwrap();
        assert_eq!(out[0].name(), "replicate:chain-join");
        assert_eq!(tail.swaps()[0].name, "chain-join#1@5.0s");
        assert_eq!(tail.swaps()[0].r_bytes, 8000);
    }
}
