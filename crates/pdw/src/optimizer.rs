//! Join-chain extraction, predicate implication, and cardinality
//! estimation — the cost-based-optimizer half of the engine.

use relational::expr::Expr;
use relational::{JoinKind, LogicalPlan, Row};
// simlint: allow(no-unordered-iter) — HashSet is count-only (see `ndv`); ordered state uses the BTree types
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// An equi-join predicate between two chain leaves, in leaf-local
/// coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainPred {
    pub left: (usize, usize),
    pub right: (usize, usize),
}

/// A maximal chain of inner joins: `(((A ⋈ B) ⋈ C) ⋈ D)` flattened into
/// leaves + predicates, so the optimizer may pick any order. The original
/// column layout (leaves concatenated in source order) is restored by a
/// final projection.
pub struct JoinChain {
    pub leaves: Vec<LogicalPlan>,
    pub preds: Vec<ChainPred>,
    /// Non-equi residuals in *global* coordinates of the original layout.
    pub residuals: Vec<Expr>,
    /// Width of each leaf.
    pub widths: Vec<usize>,
}

impl JoinChain {
    /// Offset of leaf `i` in the original combined layout.
    pub fn offset(&self, leaf: usize) -> usize {
        self.widths[..leaf].iter().sum()
    }

    /// Map a global column index to `(leaf, local col)`.
    pub fn locate(&self, global: usize) -> (usize, usize) {
        let mut off = 0;
        for (i, w) in self.widths.iter().enumerate() {
            if global < off + w {
                return (i, global - off);
            }
            off += w;
        }
        panic!("global column {global} out of range");
    }

    /// Extract a chain from a plan. Returns `None` for anything that is not
    /// an inner join (those act as reordering barriers).
    pub fn extract(
        plan: &LogicalPlan,
        width_of: &mut dyn FnMut(&LogicalPlan) -> usize,
    ) -> Option<JoinChain> {
        match plan {
            LogicalPlan::Join {
                left,
                right,
                kind: JoinKind::Inner,
                on,
                residual,
                ..
            } if !on.is_empty() => {
                let mut chain = match JoinChain::extract(left, width_of) {
                    Some(c) => c,
                    None => {
                        let w = width_of(left);
                        JoinChain {
                            leaves: vec![left.as_ref().clone()],
                            preds: Vec::new(),
                            residuals: Vec::new(),
                            widths: vec![w],
                        }
                    }
                };
                let left_width: usize = chain.widths.iter().sum();
                let rw = width_of(right);
                chain.leaves.push(right.as_ref().clone());
                chain.widths.push(rw);
                let right_leaf = chain.leaves.len() - 1;
                for &(l, r) in on {
                    let (ll, lc) = chain.locate(l);
                    chain.preds.push(ChainPred {
                        left: (ll, lc),
                        right: (right_leaf, r),
                    });
                }
                if let Some(res) = residual {
                    // Residual coordinates are already [left ++ right] =
                    // the chain's global layout (left's layout is original).
                    let _ = left_width;
                    chain.residuals.push(res.clone());
                }
                Some(chain)
            }
            _ => None,
        }
    }
}

/// Derive, from a residual predicate, the strongest predicate implied on a
/// single leaf's columns (Q19: the per-branch brand/container/size
/// conjuncts of the OR imply a `part`-only filter that PDW pushes below the
/// join before replicating). Returns the predicate in leaf-local
/// coordinates.
pub fn implied_pred(expr: &Expr, leaf_lo: usize, leaf_width: usize) -> Option<Expr> {
    let in_range = |e: &Expr| -> bool {
        let mut cols = BTreeSet::new();
        e.referenced_cols(&mut cols);
        !cols.is_empty()
            && cols
                .iter()
                .all(|&c| c >= leaf_lo && c < leaf_lo + leaf_width)
    };
    let remap = |e: &Expr| -> Expr {
        let mut cols = BTreeSet::new();
        e.referenced_cols(&mut cols);
        let map: BTreeMap<usize, usize> = cols.iter().map(|&c| (c, c - leaf_lo)).collect();
        e.remap_cols(&map)
    };
    match expr {
        Expr::Or(branches) => {
            let implied: Vec<Expr> = branches
                .iter()
                .map(|b| implied_pred(b, leaf_lo, leaf_width))
                .collect::<Option<Vec<_>>>()?;
            Some(Expr::Or(implied))
        }
        Expr::And(parts) => {
            let kept: Vec<Expr> = parts.iter().filter(|p| in_range(p)).map(&remap).collect();
            if kept.is_empty() {
                None
            } else {
                Some(Expr::And(kept))
            }
        }
        e if in_range(e) => Some(remap(e)),
        _ => None,
    }
}

/// Push filters below joins where a conjunct references only one side —
/// a standard optimizer rewrite Hive 0.7 lacked for several predicate
/// shapes (Q9's `p_name LIKE '%green%'` sits above the join in the Hive
/// script and stays there; PDW pushes it into the `part` scan).
/// Semantics-preserving: only side-local conjuncts move, and right-side
/// pushes happen for inner joins only.
pub fn pushdown_filters(plan: &LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, pred } => {
            let input = pushdown_filters(input);
            if let LogicalPlan::Join {
                left,
                right,
                kind,
                on,
                residual,
                mapjoin_hint,
            } = input
            {
                let lw = count_width(&left);
                let conjuncts = split_conjuncts(pred);
                let mut push_left = Vec::new();
                let mut push_right = Vec::new();
                let mut keep = Vec::new();
                for c in conjuncts {
                    let mut cols = BTreeSet::new();
                    c.referenced_cols(&mut cols);
                    if !cols.is_empty() && cols.iter().all(|&i| i < lw) {
                        push_left.push(c);
                    } else if kind == JoinKind::Inner
                        && !cols.is_empty()
                        && cols.iter().all(|&i| i >= lw)
                    {
                        let map: BTreeMap<usize, usize> =
                            cols.iter().map(|&i| (i, i - lw)).collect();
                        push_right.push(c.remap_cols(&map));
                    } else {
                        keep.push(c);
                    }
                }
                let mut l = *left;
                if !push_left.is_empty() {
                    l = l.filter(combine(push_left));
                }
                let mut r = *right;
                if !push_right.is_empty() {
                    r = r.filter(combine(push_right));
                }
                let mut out = l.join_kind(r, kind, on, residual);
                if mapjoin_hint {
                    out = out.hint_mapjoin();
                }
                if !keep.is_empty() {
                    out = out.filter(combine(keep));
                }
                return out;
            }
            input.filter(pred.clone())
        }
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(pushdown_filters(input)),
            exprs: exprs.clone(),
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            residual,
            mapjoin_hint,
        } => {
            let mut out = pushdown_filters(left).join_kind(
                pushdown_filters(right),
                *kind,
                on.clone(),
                residual.clone(),
            );
            if *mapjoin_hint {
                out = out.hint_mapjoin();
            }
            out
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(pushdown_filters(input)),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(pushdown_filters(input)),
            keys: keys.clone(),
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(pushdown_filters(input)),
            n: *n,
        },
        LogicalPlan::Materialize { input, label } => LogicalPlan::Materialize {
            input: Box::new(pushdown_filters(input)),
            label: label.clone(),
        },
        LogicalPlan::Scan { .. } => plan.clone(),
    }
}

fn split_conjuncts(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::And(parts) => parts.iter().flat_map(split_conjuncts).collect(),
        other => vec![other.clone()],
    }
}

fn combine(mut parts: Vec<Expr>) -> Expr {
    if parts.len() == 1 {
        parts.pop().expect("non-empty")
    } else {
        Expr::And(parts)
    }
}

fn count_width(plan: &LogicalPlan) -> usize {
    // Width without a catalog: structural recursion (scans are never
    // direct children of a pushed-down filter's join in the TPC-H plans —
    // every leaf is projected — but handle the general shape defensively).
    match plan {
        LogicalPlan::Project { exprs, .. } => exprs.len(),
        LogicalPlan::Aggregate { group_by, aggs, .. } => group_by.len() + aggs.len(),
        LogicalPlan::Join {
            left, right, kind, ..
        } => match kind {
            JoinKind::Inner | JoinKind::Left => count_width(left) + count_width(right),
            _ => count_width(left),
        },
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Materialize { input, .. } => count_width(input),
        LogicalPlan::Scan { table } => {
            panic!("cannot infer width of bare scan `{table}` without a catalog")
        }
    }
}

/// Exact distinct count of a key column over partitioned rows (the
/// "measured statistics" our idealized optimizer uses).
pub fn ndv(parts: &[Vec<Row>], col: usize) -> usize {
    // simlint: allow(no-unordered-iter) — the set is only counted (`len`), never iterated
    let mut set = HashSet::new();
    for p in parts {
        for r in p {
            set.insert(r[col].clone());
        }
    }
    set.len().max(1)
}

/// Classic join-size estimate: |A ⋈ B| ≈ |A|·|B| / max(ndv(a), ndv(b)).
pub fn est_join_rows(la: usize, lb: usize, ndv_a: usize, ndv_b: usize) -> f64 {
    (la as f64) * (lb as f64) / (ndv_a.max(ndv_b).max(1) as f64)
}

/// Per-node I/O volume (bytes) and per-lane CPU seconds for a columnar
/// scan, derived from the shared per-format cost table
/// ([`cluster::Params::format_cost`]) and the measured pruning stats:
/// only the surviving blocks' compressed bytes hit the disks, and decode
/// CPU runs at the format's decode bandwidth on every lane, followed by
/// the ordinary row pipeline over the decoded rows.
pub fn colblock_scan_charge(
    p: &cluster::Params,
    stats: &storage::ScanStats,
    decoded_rows: usize,
    hot_fraction: f64,
    units: f64,
) -> (f64, f64) {
    let fc = p.format_cost(cluster::ScanFormat::ColBlock);
    let nodes = p.nodes as f64;
    let cold = 1.0 - hot_fraction;
    let node_bytes = stats.bytes_read as f64 * cold / nodes;
    let lane_cpu = (stats.bytes_read as f64 / fc.decode_bw
        + decoded_rows as f64 / p.pdw_scan_rows_per_sec)
        / (nodes * units);
    (node_bytes, lane_cpu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::expr::{and, col, lit_i64, lit_str, or};
    use relational::Value;

    #[test]
    fn chain_extraction_flattens_left_deep_joins() {
        // (A ⋈ B on a0=b0) ⋈ C on b1=c0, widths 2/2/1
        let a = LogicalPlan::scan("a");
        let b = LogicalPlan::scan("b");
        let c = LogicalPlan::scan("c");
        let plan = a.join(b, vec![(0, 0)]).join(c, vec![(3, 0)]);
        let mut widths = |p: &LogicalPlan| match p {
            LogicalPlan::Scan { table } => match table.as_str() {
                "a" | "b" => 2,
                _ => 1,
            },
            _ => panic!("leaves are scans here"),
        };
        let chain = JoinChain::extract(&plan, &mut widths).unwrap();
        assert_eq!(chain.leaves.len(), 3);
        assert_eq!(
            chain.preds,
            vec![
                ChainPred {
                    left: (0, 0),
                    right: (1, 0)
                },
                ChainPred {
                    left: (1, 1),
                    right: (2, 0)
                },
            ]
        );
        assert_eq!(chain.locate(3), (1, 1));
        assert_eq!(chain.offset(2), 4);
    }

    #[test]
    fn semi_join_is_a_barrier() {
        let plan = LogicalPlan::scan("a").join_kind(
            LogicalPlan::scan("b"),
            JoinKind::LeftSemi,
            vec![(0, 0)],
            None,
        );
        let mut widths = |_: &LogicalPlan| 2;
        assert!(JoinChain::extract(&plan, &mut widths).is_none());
    }

    #[test]
    fn q19_style_or_implies_single_side_filter() {
        // OR of branches, each with a part-side (cols 6..10) conjunct and a
        // lineitem-side (cols 0..6) conjunct.
        let branch = |brand: &str, qty: i64| {
            and(vec![
                col(7).eq(lit_str(brand)), // part side
                col(1).ge(lit_i64(qty)),   // lineitem side
            ])
        };
        let pred = or(vec![branch("Brand#12", 1), branch("Brand#23", 10)]);
        let part_side = implied_pred(&pred, 6, 4).expect("part filter implied");
        // Implied filter in part-local coordinates accepts Brand#12 rows...
        let row = vec![
            Value::I64(0),
            Value::str("Brand#12"),
            Value::str("X"),
            Value::I64(1),
        ];
        assert!(part_side.matches(&row));
        // ...and rejects other brands.
        let row2 = vec![
            Value::I64(0),
            Value::str("Brand#99"),
            Value::str("X"),
            Value::I64(1),
        ];
        assert!(!part_side.matches(&row2));
        // The lineitem side is implied too.
        assert!(implied_pred(&pred, 0, 6).is_some());
    }

    #[test]
    fn no_implication_when_a_branch_lacks_side_conjuncts() {
        let pred = or(vec![
            col(7).eq(lit_str("Brand#12")),
            col(1).ge(lit_i64(10)), // this branch says nothing about part
        ]);
        assert!(implied_pred(&pred, 6, 4).is_none());
    }

    #[test]
    fn ndv_and_estimates() {
        let parts = vec![
            vec![vec![Value::I64(1)], vec![Value::I64(2)]],
            vec![vec![Value::I64(2)], vec![Value::I64(3)]],
        ];
        assert_eq!(ndv(&parts, 0), 3);
        // FK join: 1000 facts, 10 dims, ndv 10 each side → 1000 rows.
        assert!((est_join_rows(1000, 10, 10, 10) - 1000.0).abs() < 1e-9);
    }
}
