//! PDW's physical catalog: hash-distributed and replicated tables, plus the
//! dwloader load path (Table 2 timings).

use cluster::Params;
use relational::value::row_bytes;
use relational::{ops, Catalog, Row, Schema};
use std::collections::BTreeMap;
use storage::ColBlockFile;
use tpch::layout::{colblock_cluster_col, layout_of};

/// Physical distribution of a table.
pub enum PdwTable {
    /// Hash-partitioned on a column into `parts.len()` distributions.
    Hash {
        schema: Schema,
        col: usize,
        parts: Vec<Vec<Row>>,
    },
    /// Full copy on every node.
    Replicated { schema: Schema, rows: Vec<Row> },
}

impl PdwTable {
    pub fn schema(&self) -> &Schema {
        match self {
            PdwTable::Hash { schema, .. } => schema,
            PdwTable::Replicated { schema, .. } => schema,
        }
    }

    pub fn n_rows(&self) -> usize {
        match self {
            PdwTable::Hash { parts, .. } => parts.iter().map(Vec::len).sum(),
            PdwTable::Replicated { rows, .. } => rows.len(),
        }
    }

    pub fn data_bytes(&self) -> u64 {
        match self {
            PdwTable::Hash { parts, .. } => parts
                .iter()
                .flat_map(|p| p.iter())
                .map(|r| row_bytes(r))
                .sum(),
            PdwTable::Replicated { rows, .. } => rows.iter().map(|r| row_bytes(r)).sum(),
        }
    }
}

/// The PDW database.
pub struct PdwCatalog {
    /// `BTreeMap` so any catalog enumeration is in sorted table order.
    pub tables: BTreeMap<String, PdwTable>,
    pub params: Params,
    pub distributions: usize,
    /// Columnar-format shadow of every table: one colblock file per hash
    /// distribution (one total for replicated tables), cluster-sorted so
    /// block min/max stats prune. Empty until [`PdwCatalog::build_colblock`]
    /// runs — the row engine never reads these.
    pub col_files: BTreeMap<String, Vec<ColBlockFile>>,
}

impl PdwCatalog {
    pub fn table(&self, name: &str) -> &PdwTable {
        self.tables
            .get(name)
            .unwrap_or_else(|| panic!("no PDW table `{name}`"))
    }

    /// Materialize the columnar shadow copies (the colblock ablation's
    /// storage conversion). Each distribution's rows are sorted on the
    /// table's cluster column before being carved into blocks, so the
    /// per-block min/max ranges are tight and disjoint.
    pub fn build_colblock(&mut self) {
        let names: Vec<String> = self.tables.keys().cloned().collect();
        for name in names {
            self.rebuild_colblock(&name);
        }
    }

    /// (Re)materialize one table's colblock files from its current rows.
    fn rebuild_colblock(&mut self, name: &str) {
        let t = self.table(name);
        let schema = t.schema().clone();
        let cluster = colblock_cluster_col(name).and_then(|c| schema.index_of(c));
        let part_rows: Vec<Vec<Row>> = match t {
            PdwTable::Hash { parts, .. } => parts.clone(),
            PdwTable::Replicated { rows, .. } => vec![rows.clone()],
        };
        let files: Vec<ColBlockFile> = part_rows
            .into_iter()
            .map(|mut rows| {
                if let Some(cc) = cluster {
                    rows.sort_by(|a, z| a[cc].cmp(&z[cc]));
                }
                ColBlockFile::write(&rows, &schema, storage::colblock::DEFAULT_ROWS_PER_BLOCK)
            })
            .collect();
        self.col_files.insert(name.to_string(), files);
    }

    /// TPC-H RF1: bulk-insert rows through the landing node (dwloader
    /// path), routing each to its hash distribution. Returns simulated
    /// seconds.
    pub fn refresh_insert(&mut self, name: &str, rows: Vec<Row>) -> f64 {
        let bytes: u64 = rows.iter().map(|r| row_bytes(r)).sum();
        let d = self.distributions;
        let t = self
            .tables
            .get_mut(name)
            .unwrap_or_else(|| panic!("no PDW table `{name}`"));
        match t {
            PdwTable::Hash { col, parts, .. } => {
                let routed = ops::hash_partition(rows, &[*col], d);
                for (p, new) in parts.iter_mut().zip(routed) {
                    p.extend(new);
                }
            }
            PdwTable::Replicated { rows: all, .. } => all.extend(rows),
        }
        if self.col_files.contains_key(name) {
            self.rebuild_colblock(name);
        }
        bytes as f64 / self.params.pdw_load_bw_per_node + self.params.pdw_step_overhead
    }

    /// TPC-H RF2: delete rows whose `key_col` value is in `keys`. The
    /// paper's configuration has **no indexes** (§3.3.2), so the delete
    /// scans the table. Returns simulated seconds.
    pub fn refresh_delete(
        &mut self,
        name: &str,
        key_col: usize,
        // simlint: allow(no-unordered-iter) — membership probes only (`contains`), never iterated
        keys: &std::collections::HashSet<i64>,
    ) -> f64 {
        let p = self.params.clone();
        let t = self
            .tables
            .get_mut(name)
            .unwrap_or_else(|| panic!("no PDW table `{name}`"));
        let total_bytes = match &*t {
            PdwTable::Hash { parts, .. } => parts
                .iter()
                .flat_map(|x| x.iter())
                .map(|r| row_bytes(r))
                .sum::<u64>(),
            PdwTable::Replicated { rows, .. } => rows.iter().map(|r| row_bytes(r)).sum::<u64>(),
        };
        let matches = |r: &Row| {
            r[key_col]
                .as_i64()
                .map(|k| keys.contains(&k))
                .unwrap_or(false)
        };
        match t {
            PdwTable::Hash { parts, .. } => {
                for p in parts.iter_mut() {
                    p.retain(|r| !matches(r));
                }
            }
            PdwTable::Replicated { rows, .. } => rows.retain(|r| !matches(r)),
        }
        if self.col_files.contains_key(name) {
            self.rebuild_colblock(name);
        }
        // Full scan across the distributions to find the victims.
        total_bytes as f64 / (p.nodes as f64 * p.pdw_scan_bw_per_node) + p.pdw_step_overhead
    }
}

impl relational::plan::SchemaProvider for PdwCatalog {
    fn table_schema(&self, name: &str) -> &Schema {
        self.table(name).schema()
    }
}

/// dwloader timing (Table 2): data is generated on the landing node, split,
/// and pushed to the compute nodes through the landing node's pipe.
#[derive(Clone, Debug, Default)]
pub struct PdwLoadReport {
    pub total_secs: f64,
    pub text_bytes: u64,
}

/// Build the PDW database from a generated TPC-H catalog using the paper's
/// Table 1 layouts.
pub fn load_pdw(catalog: &Catalog, params: &Params) -> (PdwCatalog, PdwLoadReport) {
    let distributions = params.total_distributions() as usize;
    let mut tables = BTreeMap::new();
    let mut report = PdwLoadReport::default();

    for name in tpch::schema::TABLE_NAMES {
        let table = catalog.get(name);
        report.text_bytes += table.byte_size();
        let layout = layout_of(name).pdw;
        let t = match layout.distribution_col {
            Some(col) => {
                let c = table.schema.col(col);
                let parts = ops::hash_partition(table.rows.clone(), &[c], distributions);
                PdwTable::Hash {
                    schema: table.schema.clone(),
                    col: c,
                    parts,
                }
            }
            None => PdwTable::Replicated {
                schema: table.schema.clone(),
                rows: table.rows.clone(),
            },
        };
        tables.insert(name.to_string(), t);
    }

    // Landing-node pipe is the bottleneck; dwloader also sorts/validates,
    // folded into the effective rate.
    report.total_secs = report.text_bytes as f64 / params.pdw_load_bw_per_node;
    (
        PdwCatalog {
            tables,
            params: params.clone(),
            distributions,
            col_files: BTreeMap::new(),
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpch::{generate, GenConfig};

    #[test]
    fn layouts_match_table1() {
        let cat = generate(&GenConfig::new(0.01));
        let params = Params::paper_dss().scaled(25_000.0);
        let (pdw, report) = load_pdw(&cat, &params);
        assert!(matches!(pdw.table("lineitem"), PdwTable::Hash { .. }));
        assert!(matches!(pdw.table("nation"), PdwTable::Replicated { .. }));
        assert!(matches!(pdw.table("region"), PdwTable::Replicated { .. }));
        if let PdwTable::Hash { parts, col, .. } = pdw.table("lineitem") {
            assert_eq!(parts.len(), 128);
            assert_eq!(*col, 0); // l_orderkey
            let total: usize = parts.iter().map(Vec::len).sum();
            assert_eq!(total, cat.get("lineitem").len());
        }
        assert!(report.total_secs > 0.0);
    }

    #[test]
    fn hash_distribution_has_no_pathological_skew() {
        // Unlike Hive's identity-modulo bucketing, PDW's hash function does
        // not leave distributions empty under sparse order keys.
        let cat = generate(&GenConfig::new(0.01));
        let params = Params::paper_dss().scaled(25_000.0);
        let (pdw, _) = load_pdw(&cat, &params);
        if let PdwTable::Hash { parts, .. } = pdw.table("lineitem") {
            let non_empty = parts.iter().filter(|p| !p.is_empty()).count();
            assert_eq!(non_empty, 128, "every distribution should hold rows");
            let max = parts.iter().map(Vec::len).max().unwrap();
            let min = parts.iter().map(Vec::len).min().unwrap();
            assert!(
                (max as f64) < (min.max(1) as f64) * 2.5,
                "skew too high: {min}..{max}"
            );
        } else {
            panic!("lineitem should be hash distributed");
        }
    }

    #[test]
    fn pdw_load_slower_than_hive_at_same_scale() {
        // Table 2: PDW ~79 min vs Hive ~38 min at 250 GB.
        let cat = generate(&GenConfig::new(0.01));
        let params = Params::paper_dss().scaled(25_000.0);
        let (_, pdw_report) = load_pdw(&cat, &params);
        assert!(pdw_report.total_secs > 0.0);
    }
}
