//! Distributed execution on the shared DES substrate.
//!
//! PDW runs a query as a sequence of steps (scans, DMS shuffles/replications,
//! local joins, partial/global aggregations, a final gather). Each step is
//! described to [`cluster::ClusterExec`] as per-node work volumes — bytes to
//! read, CPU lanes to burn, bytes to ship over each NIC direction — and its
//! makespan comes out of the `simkit` event loop, contending for the same
//! disks, cores, and NIC directions that the MapReduce engine charges.
//! Steps execute serially (a PDW DSQL plan is step-at-a-time), so the
//! query's simulated time is the final clock value; every step leaves a
//! [`simkit::trace::Span`] recording where its time went.

use crate::catalog::{PdwCatalog, PdwTable};
use crate::feedback::FeedbackCosts;
use crate::optimizer::{
    colblock_scan_charge, est_join_rows, implied_pred, ndv, pushdown_filters, JoinChain,
};
use cluster::{ClusterExec, Params, Phase};
use relational::batch;
use relational::expr::{Bounds, Expr};
use relational::value::row_bytes;
use relational::{ops, AggCall, JoinKind, LogicalPlan, Row, SortKey};
use simkit::probe::Probe;
use simkit::resource::ResourceReport;
use simkit::trace::Trace;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use storage::ScanStats;

/// One optimizer/DMS step with its simulated duration (the Q5/Q19 plan
/// narratives in §3.3.4.1 are reproduced from these). A derived view over
/// the run's [`Trace`]: one entry per span, in execution order.
#[derive(Clone, Debug)]
pub struct StepReport {
    pub name: String,
    pub secs: f64,
}

/// Result of one query.
#[derive(Clone, Debug)]
pub struct PdwQueryRun {
    pub rows: Vec<Row>,
    pub total_secs: f64,
    pub steps: Vec<StepReport>,
    /// Full span trace: per-step resource service vs. queue-wait breakdown.
    pub trace: Trace,
    /// End-of-run utilization of every cluster resource (disks, CPU pools,
    /// NIC directions, control ingest link).
    pub resources: Vec<ResourceReport>,
    /// One entry per join the optimizer costed, in execution order: every
    /// candidate movement with its closed-form and feedback-effective
    /// estimates, and which one each ranking would pick.
    pub decisions: Vec<JoinDecision>,
    /// Block-pruning totals over every colblock scan in the query (all
    /// zeros for the row-store engine).
    pub scan_stats: ScanStats,
    /// Kernel events the step executor processed for this query — the
    /// passivity yardstick: identical with and without a probe attached.
    pub events_executed: u64,
}

/// The optimizer's movement choice for one join, with every candidate's
/// closed-form estimate and its feedback-adjusted effective estimate.
/// With [`FeedbackCosts::none`] the two rankings coincide by construction.
#[derive(Clone, Debug)]
pub struct JoinDecision {
    /// `join#k` / `chain-join#k`: the span-name stem plus a per-query
    /// decision index.
    pub name: String,
    /// Bytes on each side when the decision was made.
    pub l_bytes: u64,
    pub r_bytes: u64,
    /// `(label, closed-form estimate secs, effective estimate secs)` for
    /// each legal movement, in the order the optimizer considered them.
    pub options: Vec<(String, f64, f64)>,
    /// The movement the closed-form ranking would pick.
    pub closed_form: String,
    /// The movement actually executed (argmin of effective estimates).
    pub chosen: String,
    /// For decisions revised mid-flight by an adaptive re-planner: the
    /// live-blame evidence that justified the revision (dominant-cause
    /// verdict, measured inflations). `None` for plan-time decisions.
    pub evidence: Option<String>,
}

impl JoinDecision {
    /// Did the measured-wait feedback change the plan?
    pub fn flipped(&self) -> bool {
        self.chosen != self.closed_form
    }
}

/// Build a DMS shuffle phase (`shuffle:{name}`): every node sends its
/// share and receives its share, both NIC directions busy concurrently at
/// the DMS rate. On a single node a "shuffle" is a local repartition — no
/// NIC traffic, just the step overhead. Shared by the step executor and
/// the adaptive re-planner so a swapped-in movement is charged exactly as
/// a planned one would have been.
pub(crate) fn shuffle_phase(p: &Params, name: &str, bytes: u64) -> Phase {
    let mut ph = Phase::new(format!("shuffle:{name}")).setup(p.pdw_step_overhead);
    if p.nodes == 1 {
        return ph;
    }
    let share = bytes as f64 / p.nodes as f64;
    for n in 0..p.nodes {
        ph.net_send(n, share, p.dms_bw_per_node);
        ph.net_recv(n, share, p.dms_bw_per_node);
    }
    ph
}

/// Build a DMS replicate phase (`replicate:{name}`): every node must
/// ingest the (n-1)/n of the data it doesn't already have, and ship its
/// own share to everyone else. Shared with the adaptive re-planner like
/// [`shuffle_phase`].
pub(crate) fn replicate_phase(p: &Params, name: &str, bytes: u64) -> Phase {
    let nodes = p.nodes as f64;
    let traffic = bytes as f64 * (nodes - 1.0) / nodes;
    let mut ph = Phase::new(format!("replicate:{name}")).setup(p.pdw_step_overhead);
    for n in 0..p.nodes {
        ph.net_send(n, traffic, p.dms_bw_per_node);
        ph.net_recv(n, traffic, p.dms_bw_per_node);
    }
    ph
}

/// Physical distribution of an intermediate result.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Dist {
    /// Hash-partitioned on the column at this output position.
    Hash(usize),
    /// One full copy everywhere.
    Replicated,
    /// Partitioned, but not on any useful key.
    Arbitrary,
}

/// A partitioned intermediate. `Replicated` relations keep a single copy in
/// `parts[0]`.
#[derive(Clone)]
struct PRel {
    parts: Vec<Vec<Row>>,
    dist: Dist,
    width: usize,
}

impl PRel {
    fn n_rows(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }

    fn bytes(&self) -> u64 {
        self.parts
            .iter()
            .flat_map(|p| p.iter())
            .map(|r| row_bytes(r))
            .sum()
    }

    fn all_rows(&self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.n_rows());
        for p in &self.parts {
            out.extend(p.iter().cloned());
        }
        out
    }
}

/// The PDW engine.
pub struct PdwEngine {
    pub catalog: PdwCatalog,
    /// §3.3.2: the paper ran PDW *without* any indexes to keep the
    /// comparison fair to Hive 0.7, and left "PDW with indexes" as future
    /// work. Enabling this gives selective scans a secondary-index access
    /// path (see `Ctx::charge_scan_filtered`).
    pub use_indexes: bool,
    /// Measured-wait feedback for the movement cost estimates (see
    /// [`crate::feedback`]). `None` — the default — keeps the closed-form
    /// estimates untouched.
    pub feedback: Option<FeedbackCosts>,
    /// Scan base tables from their columnar shadow copies
    /// ([`PdwCatalog::build_colblock`]) with block-level min/max pruning
    /// and a vectorized filter/project pipeline, instead of the row store.
    pub colblock: bool,
}

impl PdwEngine {
    pub fn new(catalog: PdwCatalog) -> Self {
        PdwEngine {
            catalog,
            use_indexes: false,
            feedback: None,
            colblock: false,
        }
    }

    /// The future-work configuration: secondary indexes on the predicate
    /// columns, used when the optimizer estimates high selectivity.
    pub fn with_indexes(catalog: PdwCatalog) -> Self {
        PdwEngine {
            catalog,
            use_indexes: true,
            feedback: None,
            colblock: false,
        }
    }

    /// The modern-format configuration: columnar block storage on every
    /// base-table scan (the "2026 elephant" leg of the storage ablation).
    pub fn with_colblock(mut catalog: PdwCatalog) -> Self {
        catalog.build_colblock();
        PdwEngine {
            catalog,
            use_indexes: false,
            feedback: None,
            colblock: true,
        }
    }

    /// Rank join movements by feedback-adjusted effective estimates
    /// instead of the raw closed forms.
    pub fn with_feedback(mut self, feedback: FeedbackCosts) -> Self {
        self.feedback = Some(feedback);
        self
    }

    pub fn run_query(&self, plan: &LogicalPlan) -> PdwQueryRun {
        self.run_query_probed(plan, None)
    }

    /// Run a query with an optional passive probe attached to the step
    /// executor. The probe sees every resource event and step span but
    /// cannot feed back into the simulation: rows, step timings, and
    /// resource reports are byte-identical with and without one.
    pub fn run_query_probed(
        &self,
        plan: &LogicalPlan,
        probe: Option<Rc<RefCell<dyn Probe>>>,
    ) -> PdwQueryRun {
        self.run_query_inner(plan, probe, false).0
    }

    /// Run a query while recording every executed [`Phase`], so the exact
    /// resolved plan can be replayed inside a concurrent mix via
    /// [`ClusterExec::run_mix`].
    pub fn run_query_recorded(&self, plan: &LogicalPlan) -> (PdwQueryRun, Vec<Phase>) {
        self.run_query_inner(plan, None, true)
    }

    fn run_query_inner(
        &self,
        plan: &LogicalPlan,
        probe: Option<Rc<RefCell<dyn Probe>>>,
        record: bool,
    ) -> (PdwQueryRun, Vec<Phase>) {
        // Cost-based optimizer front end: predicate pushdown (Hive 0.7
        // lacks this for Q9's LIKE filter — PDW does not).
        let plan = pushdown_filters(plan);
        let mut exec = ClusterExec::new(self.catalog.params.clone());
        exec.set_probe(probe);
        if record {
            exec.record_phases();
        }
        let mut ctx = Ctx {
            cat: &self.catalog,
            exec,
            use_indexes: self.use_indexes,
            colblock: self.colblock,
            feedback: self.feedback.unwrap_or_else(FeedbackCosts::none),
            materialized: BTreeMap::new(),
            decisions: Vec::new(),
            scan_stats: ScanStats::default(),
        };
        let rel = ctx.exec(&plan);
        // Final answer returns through the control node.
        let rows = match rel.dist {
            Dist::Replicated => rel.parts.into_iter().next().unwrap_or_default(),
            _ => {
                ctx.charge_gather("final-gather", rel.bytes());
                rel.all_rows()
            }
        };
        let total_secs = ctx.exec.now_secs();
        let resources = ctx.exec.resource_reports();
        let events_executed = ctx.exec.events_executed();
        ctx.exec.set_probe(None);
        let phases = ctx.exec.take_recorded_phases();
        let trace = ctx.exec.take_trace();
        let steps = trace
            .spans
            .iter()
            .map(|s| StepReport {
                name: s.name.clone(),
                secs: s.secs(),
            })
            .collect();
        (
            PdwQueryRun {
                rows,
                total_secs,
                steps,
                trace,
                resources,
                decisions: ctx.decisions,
                scan_stats: ctx.scan_stats,
                events_executed,
            },
            phases,
        )
    }
}

struct Ctx<'a> {
    cat: &'a PdwCatalog,
    /// The cluster's event loop: phases charge work here and the clock is
    /// the query time.
    exec: ClusterExec,
    use_indexes: bool,
    /// Scan base tables from their colblock shadows (see [`PdwEngine`]).
    colblock: bool,
    /// Effective-rate corrections for movement estimates
    /// ([`FeedbackCosts::none`] = bitwise identity with closed forms).
    feedback: FeedbackCosts,
    /// Materialized (CREATE TABLE AS) subplans, computed once and reused.
    materialized: BTreeMap<String, PRel>,
    /// Movement decision log, one entry per costed join.
    decisions: Vec<JoinDecision>,
    /// Accumulated block-pruning totals over every colblock scan.
    scan_stats: ScanStats,
}

impl<'a> Ctx<'a> {
    fn p(&self) -> &'a Params {
        &self.cat.params
    }

    /// Parallel execution units per node (one per distribution, bounded by
    /// cores).
    fn units(&self) -> f64 {
        let p = self.p();
        p.pdw_distributions_per_node.min(p.cores_per_node) as f64
    }

    /// Fraction of base-table bytes resident in the cluster-wide buffer
    /// pool. At SF 250 the whole database fits in the 16 × 24 GB of buffer
    /// memory (the paper's "PDW can better exploit that most of the data
    /// fits in memory" at small scale factors); at SF 16000 almost nothing
    /// does.
    fn hot_fraction(&self) -> f64 {
        let p = self.p();
        let pool = p.bufpool_bytes() as f64 * p.nodes as f64;
        let data: u64 = self.cat.tables.values().map(|t| t.data_bytes()).sum();
        (pool / (data.max(1) as f64)).min(1.0)
    }

    /// Parallel CPU lanes per node, as a count.
    fn lanes(&self) -> usize {
        self.units() as usize
    }

    /// A step with no resource work: fixed latency only (plus the per-step
    /// control-node overhead every step pays).
    fn charge(&mut self, name: &str, secs: f64) {
        let overhead = self.p().pdw_step_overhead;
        self.exec.run(Phase::new(name).setup(secs + overhead));
    }

    /// Table scan: per node, the cold fraction of its slice of the table
    /// streams from all its disks while the row pipeline runs on one CPU
    /// lane per distribution. The DES makespan is max(io, cpu) + overhead —
    /// now an emergent property of the resource requests, not a formula.
    fn charge_scan(&mut self, name: &str, bytes: u64, rows: usize) {
        let p = self.p();
        let nodes = p.nodes as f64;
        let cold = 1.0 - self.hot_fraction();
        let node_bytes = bytes as f64 * cold / nodes;
        let lane_cpu = rows as f64 / nodes / (p.pdw_scan_rows_per_sec * self.units());
        let mut ph = Phase::new(format!("scan:{name}")).setup(p.pdw_step_overhead);
        for n in 0..p.nodes {
            ph.disk_seq(n, node_bytes, p.pdw_scan_bw_per_node);
            ph.cpu(n, lane_cpu, self.lanes());
        }
        self.exec.run(ph);
    }

    /// Scan with a known output cardinality. Without indexes this is a full
    /// scan; with indexes and a selective predicate (< 10 % survives) the
    /// optimizer picks an index path: only the matching pages are fetched,
    /// at a random-access penalty.
    fn charge_scan_filtered(&mut self, name: &str, bytes: u64, base_rows: usize, out_rows: usize) {
        const INDEX_SELECTIVITY: f64 = 0.10;
        const RANDOM_PENALTY: f64 = 3.0;
        let sel = out_rows as f64 / base_rows.max(1) as f64;
        if self.use_indexes && sel < INDEX_SELECTIVITY && base_rows > 0 {
            let p = self.p();
            let nodes = p.nodes as f64;
            let cold = 1.0 - self.hot_fraction();
            let node_bytes = bytes as f64 * sel * RANDOM_PENALTY * cold / nodes;
            let lane_cpu = out_rows as f64 / nodes / (p.pdw_scan_rows_per_sec * self.units());
            let mut ph = Phase::new(format!("index-scan:{name}")).setup(p.pdw_step_overhead);
            for n in 0..p.nodes {
                ph.disk_seq(n, node_bytes, p.pdw_scan_bw_per_node);
                ph.cpu(n, lane_cpu, self.lanes());
            }
            self.exec.run(ph);
        } else {
            self.charge_scan(name, bytes, base_rows);
        }
    }

    /// Columnar scan: only the surviving blocks' compressed bytes stream
    /// from disk; decode + row-pipeline CPU comes from the shared
    /// per-format cost table (see [`colblock_scan_charge`]).
    fn charge_scan_colblock(&mut self, name: &str, stats: &ScanStats, decoded_rows: usize) {
        let p = self.p();
        let (node_bytes, lane_cpu) =
            colblock_scan_charge(p, stats, decoded_rows, self.hot_fraction(), self.units());
        let mut ph = Phase::new(format!("colscan:{name}")).setup(p.pdw_step_overhead);
        for n in 0..p.nodes {
            ph.disk_seq(n, node_bytes, p.pdw_scan_bw_per_node);
            ph.cpu(n, lane_cpu, self.lanes());
        }
        self.exec.run(ph);
    }

    /// CPU-only step: `per_lane_secs` on every lane of every node.
    fn charge_cpu_step(&mut self, name: &str, per_lane_secs: f64) {
        let p = self.p();
        let mut ph = Phase::new(name).setup(p.pdw_step_overhead);
        for n in 0..p.nodes {
            ph.cpu(n, per_lane_secs, self.lanes());
        }
        self.exec.run(ph);
    }

    /// Hash-join CPU (probe + build rows).
    fn charge_join(&mut self, name: &str, rows: usize) {
        let p = self.p();
        let t = rows as f64 / p.nodes as f64 / (p.pdw_join_rows_per_sec * self.units());
        self.charge_cpu_step(name, t);
    }

    /// Aggregation CPU: `terms` expression folds per row.
    fn charge_agg(&mut self, name: &str, rows: usize, terms: usize) {
        let p = self.p();
        let t = (rows as f64 * terms.max(1) as f64)
            / p.nodes as f64
            / (p.pdw_agg_terms_per_sec * self.units());
        self.charge_cpu_step(name, t);
    }

    /// DMS shuffle: every node sends its share and receives its share, both
    /// NIC directions busy concurrently at the DMS rate.
    fn charge_shuffle(&mut self, name: &str, bytes: u64) {
        let ph = shuffle_phase(self.p(), name, bytes);
        self.exec.run(ph);
    }

    /// DMS replicate: every node must ingest the (n-1)/n of the data it
    /// doesn't already have, and ship its own share to everyone else.
    fn charge_replicate(&mut self, name: &str, bytes: u64) {
        let ph = replicate_phase(self.p(), name, bytes);
        self.exec.run(ph);
    }

    /// Gather to the control node: the compute nodes' sends run in
    /// parallel, but the control node's single ingest link serializes them
    /// — the queue there is what makes a gather cost `bytes / dms_bw`.
    fn charge_gather(&mut self, name: &str, bytes: u64) {
        let p = self.p();
        let share = bytes as f64 / p.nodes as f64;
        let mut ph = Phase::new(format!("gather:{name}")).setup(p.pdw_step_overhead);
        for n in 0..p.nodes {
            ph.net_send(n, share, p.dms_bw_per_node);
            ph.gather_recv(share, p.dms_bw_per_node);
        }
        self.exec.run(ph);
    }

    // ------------------------------------------------------------------

    fn exec(&mut self, plan: &LogicalPlan) -> PRel {
        if let Some(rel) = self.try_scan_chain(plan) {
            return rel;
        }
        match plan {
            LogicalPlan::Filter { input, pred } => {
                let mut rel = self.exec(input);
                for p in &mut rel.parts {
                    p.retain(|r| pred.matches(r));
                }
                rel
            }
            LogicalPlan::Project { input, exprs } => {
                let mut rel = self.exec(input);
                for p in &mut rel.parts {
                    *p = ops::project(p, exprs);
                }
                rel.dist = match rel.dist {
                    Dist::Hash(c) => exprs
                        .iter()
                        .position(|(e, _)| matches!(e, Expr::Col(i) if *i == c))
                        .map(Dist::Hash)
                        .unwrap_or(Dist::Arbitrary),
                    d => d,
                };
                rel.width = exprs.len();
                rel
            }
            LogicalPlan::Join { .. } => self.exec_join(plan),
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let rel = self.exec(input);
                self.exec_aggregate(rel, group_by, aggs)
            }
            LogicalPlan::Sort { input, keys } => {
                let rel = self.exec(input);
                self.exec_sort(rel, keys, None)
            }
            LogicalPlan::Limit { input, n } => {
                if let LogicalPlan::Sort { input: si, keys } = input.as_ref() {
                    let rel = self.exec(si);
                    return self.exec_sort(rel, keys, Some(*n));
                }
                let mut rel = self.exec(input);
                let mut remaining = *n;
                for p in &mut rel.parts {
                    let take = remaining.min(p.len());
                    p.truncate(take);
                    remaining -= take;
                }
                rel
            }
            LogicalPlan::Materialize { input, label } => {
                if let Some(cached) = self.materialized.get(label) {
                    return cached.clone();
                }
                let rel = self.exec(input);
                self.materialized.insert(label.clone(), rel.clone());
                rel
            }
            LogicalPlan::Scan { .. } => unreachable!("handled by try_scan_chain"),
        }
    }

    // ---- scans -----------------------------------------------------------

    /// Fuse Filter/Project chains directly over a base scan. PDW's row
    /// store reads full rows from disk; filters and projections happen
    /// after the read.
    fn try_scan_chain(&mut self, plan: &LogicalPlan) -> Option<PRel> {
        let mut ops_rev: Vec<&LogicalPlan> = Vec::new();
        let mut cur = plan;
        let table = loop {
            match cur {
                LogicalPlan::Scan { table } => break table.clone(),
                LogicalPlan::Filter { input, .. } | LogicalPlan::Project { input, .. } => {
                    ops_rev.push(cur);
                    cur = input;
                }
                _ => return None,
            }
        };
        if self.colblock {
            if let Some(files) = self.cat.col_files.get(&table) {
                return Some(self.scan_chain_colblock(&table, files, &ops_rev));
            }
        }
        let t = self.cat.table(&table);
        let base_rows = t.n_rows();
        let base_bytes = t.data_bytes();
        let (mut parts, mut dist, mut width) = match t {
            PdwTable::Hash { col, parts, schema } => {
                (parts.clone(), Dist::Hash(*col), schema.len())
            }
            PdwTable::Replicated { rows, schema } => {
                (vec![rows.clone()], Dist::Replicated, schema.len())
            }
        };
        for op in ops_rev.iter().rev() {
            match op {
                LogicalPlan::Filter { pred, .. } => {
                    for p in &mut parts {
                        p.retain(|r| pred.matches(r));
                    }
                }
                LogicalPlan::Project { exprs, .. } => {
                    for p in &mut parts {
                        *p = ops::project(p, exprs);
                    }
                    dist = match dist {
                        Dist::Hash(c) => exprs
                            .iter()
                            .position(|(e, _)| matches!(e, Expr::Col(i) if *i == c))
                            .map(Dist::Hash)
                            .unwrap_or(Dist::Arbitrary),
                        d => d,
                    };
                    width = exprs.len();
                }
                _ => unreachable!(),
            }
        }
        let out_rows: usize = parts.iter().map(Vec::len).sum();
        self.charge_scan_filtered(&table, base_bytes, base_rows, out_rows);
        Some(PRel { parts, dist, width })
    }

    /// The columnar scan path: per distribution, decode only the needed
    /// columns of the blocks whose min/max stats admit a match against the
    /// base-level filter bounds, then run the Filter/Project stack
    /// vectorized over the resulting [`batch::ColumnBatch`]es.
    fn scan_chain_colblock(
        &mut self,
        table: &str,
        files: &[storage::ColBlockFile],
        ops_rev: &[&LogicalPlan],
    ) -> PRel {
        let t = self.cat.table(table);
        let base_width = t.schema().len();
        let base_dist_col = match t {
            PdwTable::Hash { col, .. } => Some(*col),
            PdwTable::Replicated { .. } => None,
        };

        // Needed base columns come from the ops below the first projection
        // (they see base indices). Pruning bounds keep collecting past
        // bare-column projections by mapping filter columns back to base
        // indices — Q19's implied part predicate sits *above* the leaf's
        // column-select projection and would otherwise be lost.
        let mut needed: BTreeSet<usize> = BTreeSet::new();
        let mut bounds: BTreeMap<usize, Bounds> = BTreeMap::new();
        let mut has_project = false;
        let mut col_map: Option<Vec<usize>> = Some((0..base_width).collect());
        for op in ops_rev.iter().rev() {
            match op {
                LogicalPlan::Filter { pred, .. } => {
                    if !has_project {
                        pred.referenced_cols(&mut needed);
                    }
                    if let Some(map) = &col_map {
                        for (c, b) in pred.column_bounds() {
                            if let Some(&base) = map.get(c) {
                                let merged = match bounds.remove(&base) {
                                    Some(prev) => prev.intersect(b),
                                    None => b,
                                };
                                bounds.insert(base, merged);
                            }
                        }
                    }
                }
                LogicalPlan::Project { exprs, .. } => {
                    if !has_project {
                        for (e, _) in exprs {
                            e.referenced_cols(&mut needed);
                        }
                        has_project = true;
                    }
                    col_map = col_map.and_then(|map| {
                        exprs
                            .iter()
                            .map(|(e, _)| match e {
                                Expr::Col(i) => map.get(*i).copied(),
                                _ => None,
                            })
                            .collect()
                    });
                }
                _ => unreachable!(),
            }
        }
        if !has_project {
            needed = (0..base_width).collect();
        }
        let cols: Vec<usize> = needed.iter().copied().collect();
        let remap: BTreeMap<usize, usize> = cols
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();

        // Distribution key and output width tracked through the op stack in
        // remapped coordinates (one pass — identical for every file).
        let mut dist = match base_dist_col {
            Some(c) => remap
                .get(&c)
                .copied()
                .map(Dist::Hash)
                .unwrap_or(Dist::Arbitrary),
            None => Dist::Replicated,
        };
        let mut width = cols.len();
        {
            let mut level_map = Some(&remap);
            for op in ops_rev.iter().rev() {
                match op {
                    LogicalPlan::Filter { .. } => {}
                    LogicalPlan::Project { exprs, .. } => {
                        let mapped: Vec<Expr> = exprs
                            .iter()
                            .map(|(e, _)| match level_map {
                                Some(m) => e.remap_cols(m),
                                None => e.clone(),
                            })
                            .collect();
                        dist = match dist {
                            Dist::Hash(c) => mapped
                                .iter()
                                .position(|e| matches!(e, Expr::Col(i) if *i == c))
                                .map(Dist::Hash)
                                .unwrap_or(Dist::Arbitrary),
                            d => d,
                        };
                        width = exprs.len();
                        level_map = None;
                    }
                    _ => unreachable!(),
                }
            }
        }

        let mut total_stats = ScanStats::default();
        let mut decoded_rows = 0usize;
        let mut parts: Vec<Vec<Row>> = Vec::with_capacity(files.len());
        for f in files {
            let (mut b, stats) = f.read_pruned(&cols, &bounds);
            decoded_rows += b.len;
            total_stats.merge(&stats);
            let mut level_map = Some(&remap);
            for op in ops_rev.iter().rev() {
                match op {
                    LogicalPlan::Filter { pred, .. } => {
                        let p2 = match level_map {
                            Some(m) => pred.remap_cols(m),
                            None => (*pred).clone(),
                        };
                        b = batch::filter(&b, &p2);
                    }
                    LogicalPlan::Project { exprs, .. } => {
                        let mapped: Vec<(Expr, String)> = exprs
                            .iter()
                            .map(|(e, n)| {
                                (
                                    match level_map {
                                        Some(m) => e.remap_cols(m),
                                        None => e.clone(),
                                    },
                                    n.clone(),
                                )
                            })
                            .collect();
                        b = batch::project(&b, &mapped);
                        level_map = None;
                    }
                    _ => unreachable!(),
                }
            }
            parts.push(b.to_rows());
        }
        self.scan_stats.merge(&total_stats);
        self.charge_scan_colblock(table, &total_stats, decoded_rows);
        PRel { parts, dist, width }
    }

    // ---- joins -----------------------------------------------------------

    fn exec_join(&mut self, plan: &LogicalPlan) -> PRel {
        let cat = self.cat;
        let mut width_of = |p: &LogicalPlan| p.schema(cat).len();
        if let Some(chain) = JoinChain::extract(plan, &mut width_of) {
            // Even a 2-leaf chain benefits: implied single-side predicates
            // (Q19) are pushed below the join before any replication.
            return self.exec_chain(chain);
        }
        // Single (or barrier) join.
        let LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            residual,
            ..
        } = plan
        else {
            unreachable!()
        };
        let l = self.exec(left);
        let r = self.exec(right);
        self.join_pair(l, r, on.clone(), *kind, residual.as_ref(), "join")
    }

    /// Greedy cost-based ordering of an inner-join chain, using measured
    /// statistics (sizes and exact NDVs).
    fn exec_chain(&mut self, chain: JoinChain) -> PRel {
        // Push implied single-side predicates into the leaves (Q19).
        let mut leaves: Vec<LogicalPlan> = chain.leaves.clone();
        for res in &chain.residuals {
            for (i, leaf) in leaves.iter_mut().enumerate() {
                let lo = chain.offset(i);
                if let Some(pred) = implied_pred(res, lo, chain.widths[i]) {
                    *leaf = leaf.clone().filter(pred);
                }
            }
        }
        let rels: Vec<PRel> = leaves.iter().map(|l| self.exec(l)).collect();

        let n = rels.len();
        let mut remaining: BTreeSet<usize> = (0..n).collect();
        // Start with the smallest leaf participating in a predicate.
        let start = remaining
            .iter()
            .copied()
            .filter(|&i| chain.preds.iter().any(|p| p.left.0 == i || p.right.0 == i))
            .min_by_key(|&i| rels[i].bytes())
            .unwrap_or(0);
        remaining.remove(&start);

        let mut rels: Vec<Option<PRel>> = rels.into_iter().map(Some).collect();
        let mut current = rels[start].take().expect("start leaf");
        // Current layout: which (leaf, col) sits at each position.
        let mut layout: Vec<(usize, usize)> =
            (0..chain.widths[start]).map(|c| (start, c)).collect();
        let mut residual_attached = vec![false; chain.residuals.len()];

        while !remaining.is_empty() {
            // Candidates joined to the current result by some predicate.
            let joined_leaves: BTreeSet<usize> = layout.iter().map(|&(l, _)| l).collect();
            let mut best: Option<(usize, f64)> = None;
            for &cand in &remaining {
                let connected = chain.preds.iter().any(|p| {
                    (p.left.0 == cand && joined_leaves.contains(&p.right.0))
                        || (p.right.0 == cand && joined_leaves.contains(&p.left.0))
                });
                if !connected {
                    continue;
                }
                let r = rels[cand].as_ref().expect("unjoined leaf");
                // Estimate output via the first connecting predicate.
                let pred = chain
                    .preds
                    .iter()
                    .find(|p| {
                        (p.left.0 == cand && joined_leaves.contains(&p.right.0))
                            || (p.right.0 == cand && joined_leaves.contains(&p.left.0))
                    })
                    .expect("connected");
                let (cand_col, cur_leafcol) = if pred.left.0 == cand {
                    (pred.left.1, pred.right)
                } else {
                    (pred.right.1, pred.left)
                };
                let cur_pos = layout
                    .iter()
                    .position(|&lc| lc == cur_leafcol)
                    .expect("joined col in layout");
                let ndv_cand = ndv(&r.parts, cand_col);
                let ndv_cur = ndv(&current.parts, cur_pos);
                let est_rows = est_join_rows(current.n_rows(), r.n_rows(), ndv_cur, ndv_cand);
                let move_bytes = r.bytes().min(current.bytes()) as f64;
                let avg_w = (row_avg(&current) + row_avg(r)) as f64;
                let score = move_bytes + est_rows * avg_w;
                if best.is_none_or(|(_, s)| score < s) {
                    best = Some((cand, score));
                }
            }
            let (next, _) = best.unwrap_or_else(|| {
                // Disconnected chain (shouldn't happen in TPC-H): take the
                // smallest remaining and cross join.
                let i = *remaining.iter().next().expect("non-empty");
                (i, 0.0)
            });
            remaining.remove(&next);
            let r = rels[next].take().expect("unjoined leaf");

            // All predicates binding `next` to already-joined leaves.
            let on: Vec<(usize, usize)> = chain
                .preds
                .iter()
                .filter_map(|p| {
                    if p.left.0 == next && joined_leaves.contains(&p.right.0) {
                        let cur = layout.iter().position(|&lc| lc == p.right)?;
                        Some((cur, p.left.1))
                    } else if p.right.0 == next && joined_leaves.contains(&p.left.0) {
                        let cur = layout.iter().position(|&lc| lc == p.left)?;
                        Some((cur, p.right.1))
                    } else {
                        None
                    }
                })
                .collect();
            current = self.join_pair(current, r, on, JoinKind::Inner, None, "chain-join");
            layout.extend((0..chain.widths[next]).map(|c| (next, c)));

            // Attach residuals whose columns are all available now.
            let have: BTreeSet<usize> = layout.iter().map(|&(l, _)| l).collect();
            for (ri, res) in chain.residuals.iter().enumerate() {
                if residual_attached[ri] {
                    continue;
                }
                let mut cols = BTreeSet::new();
                res.referenced_cols(&mut cols);
                let needed: BTreeSet<usize> = cols.iter().map(|&g| chain.locate(g).0).collect();
                if needed.is_subset(&have) {
                    let map: BTreeMap<usize, usize> = cols
                        .iter()
                        .map(|&g| {
                            let lc = chain.locate(g);
                            let pos = layout.iter().position(|&x| x == lc).expect("col in layout");
                            (g, pos)
                        })
                        .collect();
                    let pred = res.remap_cols(&map);
                    for p in &mut current.parts {
                        p.retain(|r| pred.matches(r));
                    }
                    residual_attached[ri] = true;
                }
            }
        }
        assert!(
            residual_attached.iter().all(|&b| b),
            "every residual must attach by the end of the chain"
        );

        // Restore the original column order.
        let perm: Vec<(Expr, String)> = (0..n)
            .flat_map(|leaf| (0..chain.widths[leaf]).map(move |c| (leaf, c)))
            .map(|lc| {
                let pos = layout
                    .iter()
                    .position(|&x| x == lc)
                    .expect("column present");
                (Expr::Col(pos), format!("c{pos}"))
            })
            .collect();
        let dist = match current.dist {
            Dist::Hash(c) => {
                let lc = layout[c];
                perm.iter()
                    .position(|(e, _)| matches!(e, Expr::Col(i) if layout[*i] == lc))
                    .map(Dist::Hash)
                    .unwrap_or(Dist::Arbitrary)
            }
            d => d,
        };
        for p in &mut current.parts {
            *p = ops::project(p, &perm);
        }
        current.width = perm.len();
        current.dist = dist;
        current
    }

    /// Join two partitioned relations, choosing the cheapest valid data
    /// movement.
    fn join_pair(
        &mut self,
        mut l: PRel,
        mut r: PRel,
        on: Vec<(usize, usize)>,
        kind: JoinKind,
        residual: Option<&Expr>,
        name: &str,
    ) -> PRel {
        let p = self.p().clone();
        let d = self.cat.distributions;
        let nodes = p.nodes as f64;
        let (lb, rb) = (l.bytes(), r.bytes());

        #[derive(Clone, Copy, PartialEq, Debug)]
        enum Move {
            None,
            ShuffleL(usize, usize), // (l col, matching r col)
            ShuffleR(usize, usize),
            ReplicateR,
            ReplicateL,
            ShuffleBoth(usize, usize),
        }

        let colocated = matches!((l.dist, r.dist), (Dist::Hash(lc), Dist::Hash(rc))
            if on.contains(&(lc, rc)));
        // Optimizer *cost estimates* for ranking movement strategies. These
        // stay closed-form on purpose: the optimizer predicts, the DES
        // phase layer (charge_shuffle / charge_replicate) measures.
        //
        // `nodes == 1` degenerates both closed forms: `replicate_t` is 0
        // for any size (so the last tied option — always a replicate —
        // would beat even a free colocated join under `min_by`'s
        // last-of-equal-minima rule), and `shuffle_t` bills the full bytes
        // to a network a one-node cluster never touches. Both movements
        // there cost a local-repartition proxy instead (step overhead plus
        // a same-node pass over the bytes), so `Move::None` wins whenever
        // it is legal and otherwise the smaller side moves.
        let one_node = p.nodes == 1;
        let local_t = |bytes: u64| p.pdw_step_overhead + bytes as f64 / p.dms_bw_per_node;
        let shuffle_t = |bytes: u64| {
            if one_node {
                local_t(bytes)
            } else {
                bytes as f64 / nodes / p.dms_bw_per_node
            }
        };
        let replicate_t = |bytes: u64| {
            if one_node {
                local_t(bytes)
            } else {
                bytes as f64 * (nodes - 1.0) / nodes / p.dms_bw_per_node
            }
        };
        // Feedback-effective estimate: closed form scaled by the measured
        // per-class inflation plus the per-movement expected queueing
        // (shuffle-both is two logical movements and pays it twice). With
        // `FeedbackCosts::none` this is `x * 1.0 + 0.0` — bitwise `x` —
        // so the ranking is exactly the closed-form one.
        let fb = self.feedback;
        let eff = |mv: &Move, closed: f64| match mv {
            Move::None => closed,
            Move::ShuffleL(..) | Move::ShuffleR(..) => {
                closed * fb.shuffle_inflation + fb.net_wait_per_move_secs
            }
            Move::ReplicateR | Move::ReplicateL => {
                closed * fb.replicate_inflation + fb.net_wait_per_move_secs
            }
            Move::ShuffleBoth(..) => {
                closed * fb.shuffle_inflation + 2.0 * fb.net_wait_per_move_secs
            }
        };

        let mut options: Vec<(Move, f64, f64)> = Vec::new();
        let mut push = |mv: Move, closed: f64| {
            let e = eff(&mv, closed);
            options.push((mv, closed, e));
        };
        if colocated || r.dist == Dist::Replicated {
            push(Move::None, 0.0);
        }
        if l.dist == Dist::Replicated && kind == JoinKind::Inner {
            push(Move::None, 0.0);
        }
        if let Dist::Hash(rc) = r.dist {
            if let Some(&(lc, _)) = on.iter().find(|&&(_, c)| c == rc) {
                push(Move::ShuffleL(lc, rc), shuffle_t(lb));
            }
        }
        if let Dist::Hash(lc) = l.dist {
            if let Some(&(_, rc)) = on.iter().find(|&&(c, _)| c == lc) {
                push(Move::ShuffleR(lc, rc), shuffle_t(rb));
            }
        }
        push(Move::ReplicateR, replicate_t(rb));
        if kind == JoinKind::Inner {
            push(Move::ReplicateL, replicate_t(lb));
        }
        if let Some(&(lc, rc)) = on.first() {
            push(Move::ShuffleBoth(lc, rc), shuffle_t(lb) + shuffle_t(rb));
        }

        let chosen_idx = options
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .2.total_cmp(&b.1 .2))
            .expect("at least replicate is always possible")
            .0;
        let closed_idx = options
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
            .expect("non-empty options")
            .0;
        let label = |mv: &Move| match mv {
            Move::None => "none",
            Move::ShuffleL(..) => "shuffle-left",
            Move::ShuffleR(..) => "shuffle-right",
            Move::ReplicateR => "replicate-right",
            Move::ReplicateL => "replicate-left",
            Move::ShuffleBoth(..) => "shuffle-both",
        };
        self.decisions.push(JoinDecision {
            name: format!("{name}#{}", self.decisions.len()),
            l_bytes: lb,
            r_bytes: rb,
            options: options
                .iter()
                .map(|(m, c, e)| (label(m).to_string(), *c, *e))
                .collect(),
            closed_form: label(&options[closed_idx].0).to_string(),
            chosen: label(&options[chosen_idx].0).to_string(),
            evidence: None,
        });
        let mv = options[chosen_idx].0;

        match mv {
            Move::None => {}
            Move::ShuffleL(lc, _) => {
                self.charge_shuffle(name, lb);
                l = PRel {
                    parts: ops::hash_partition(l.all_rows(), &[lc], d),
                    dist: Dist::Hash(lc),
                    width: l.width,
                };
            }
            Move::ShuffleR(_, rc) => {
                self.charge_shuffle(name, rb);
                r = PRel {
                    parts: ops::hash_partition(r.all_rows(), &[rc], d),
                    dist: Dist::Hash(rc),
                    width: r.width,
                };
            }
            Move::ReplicateR => {
                self.charge_replicate(name, rb);
                r = PRel {
                    parts: vec![r.all_rows()],
                    dist: Dist::Replicated,
                    width: r.width,
                };
            }
            Move::ReplicateL => {
                self.charge_replicate(name, lb);
                l = PRel {
                    parts: vec![l.all_rows()],
                    dist: Dist::Replicated,
                    width: l.width,
                };
            }
            Move::ShuffleBoth(lc, rc) => {
                self.charge_shuffle(name, lb + rb);
                l = PRel {
                    parts: ops::hash_partition(l.all_rows(), &[lc], d),
                    dist: Dist::Hash(lc),
                    width: l.width,
                };
                r = PRel {
                    parts: ops::hash_partition(r.all_rows(), &[rc], d),
                    dist: Dist::Hash(rc),
                    width: r.width,
                };
            }
        }

        // Local join per distribution.
        let rw = r.width;
        let empty: Vec<Row> = Vec::new();
        let (out_parts, out_dist): (Vec<Vec<Row>>, Dist) = match (&l.dist, &r.dist) {
            (Dist::Replicated, Dist::Replicated) => {
                let out = ops::hash_join(&l.parts[0], &r.parts[0], &on, kind, residual, rw);
                (vec![out], Dist::Replicated)
            }
            (Dist::Replicated, _) => {
                debug_assert_eq!(kind, JoinKind::Inner, "left-replicated only for inner");
                let parts = r
                    .parts
                    .iter()
                    .map(|rp| ops::hash_join(&l.parts[0], rp, &on, kind, residual, rw))
                    .collect();
                let dist = match r.dist {
                    Dist::Hash(rc) => Dist::Hash(l.width + rc),
                    _ => Dist::Arbitrary,
                };
                (parts, dist)
            }
            (_, Dist::Replicated) => {
                let parts = l
                    .parts
                    .iter()
                    .map(|lp| ops::hash_join(lp, &r.parts[0], &on, kind, residual, rw))
                    .collect();
                (parts, l.dist)
            }
            _ => {
                let parts = (0..d)
                    .map(|i| {
                        let lp = l.parts.get(i).unwrap_or(&empty);
                        let rp = r.parts.get(i).unwrap_or(&empty);
                        ops::hash_join(lp, rp, &on, kind, residual, rw)
                    })
                    .collect();
                (parts, l.dist)
            }
        };
        self.charge_join(&format!("local-join:{name}"), l.n_rows() + r.n_rows());
        let width = match kind {
            JoinKind::Inner | JoinKind::Left => l.width + rw,
            _ => l.width,
        };
        PRel {
            parts: out_parts,
            dist: out_dist,
            width,
        }
    }

    // ---- aggregation -------------------------------------------------------

    fn exec_aggregate(&mut self, rel: PRel, group_by: &[(Expr, String)], aggs: &[AggCall]) -> PRel {
        let d = self.cat.distributions;
        let width = group_by.len() + aggs.len();

        // Fully local when grouping on the distribution key.
        let local_ok = match rel.dist {
            Dist::Hash(c) => group_by
                .iter()
                .any(|(e, _)| matches!(e, Expr::Col(i) if *i == c)),
            Dist::Replicated => true,
            Dist::Arbitrary => false,
        };
        if local_ok && !group_by.is_empty() {
            self.charge_agg("local-agg", rel.n_rows(), group_by.len() + aggs.len());
            let dist = match rel.dist {
                Dist::Hash(c) => group_by
                    .iter()
                    .position(|(e, _)| matches!(e, Expr::Col(i) if *i == c))
                    .map(Dist::Hash)
                    .unwrap_or(Dist::Arbitrary),
                Dist::Replicated => Dist::Replicated,
                Dist::Arbitrary => Dist::Arbitrary,
            };
            let parts = rel
                .parts
                .iter()
                .map(|p| ops::hash_aggregate(p, group_by, aggs))
                .collect();
            return PRel { parts, dist, width };
        }

        // Partial per distribution, then merge.
        self.charge_agg("partial-agg", rel.n_rows(), group_by.len() + aggs.len());
        let mut merged = ops::GroupTable::new();
        let mut partial_bytes = 0u64;
        for p in &rel.parts {
            let t = ops::aggregate_partial(p, group_by, aggs);
            partial_bytes += t
                .iter()
                .map(|(k, s)| row_bytes(k) + s.iter().map(|x| x.approx_bytes()).sum::<u64>())
                .sum::<u64>();
            merged = ops::aggregate_merge(merged, t);
        }

        if group_by.is_empty() {
            // Global aggregate: one partial state per distribution flows to
            // the control node — a *fixed-size* transfer (independent of the
            // scale factor), so it costs a round trip, not bandwidth.
            let _ = partial_bytes;
            let t = self.p().net_latency * 2.0;
            self.charge("gather:global-agg", t);
            let rows = ops::aggregate_finish(merged);
            return PRel {
                parts: vec![rows],
                dist: Dist::Replicated,
                width,
            };
        }

        // Redistribute groups on the grouping key.
        self.charge_shuffle("agg-groups", partial_bytes);
        let key_cols: Vec<usize> = (0..group_by.len()).collect();
        let mut parts: Vec<Vec<Row>> = (0..d).map(|_| Vec::new()).collect();
        for row in ops::aggregate_finish(merged) {
            let b = ops::bucket_of(&row, &key_cols, d);
            parts[b].push(row);
        }
        let final_rows: usize = parts.iter().map(Vec::len).sum();
        self.charge_agg("final-agg", final_rows, group_by.len() + aggs.len());
        let dist = if group_by.len() == 1 {
            Dist::Hash(0)
        } else {
            Dist::Arbitrary
        };
        PRel { parts, dist, width }
    }

    // ---- sort / limit --------------------------------------------------------

    fn exec_sort(&mut self, rel: PRel, keys: &[SortKey], limit: Option<usize>) -> PRel {
        self.charge_gather("order-by", rel.bytes());
        let mut rows = ops::sort(rel.all_rows(), keys);
        if let Some(n) = limit {
            rows.truncate(n);
        }
        let width = rel.width;
        PRel {
            parts: vec![rows],
            dist: Dist::Replicated,
            width,
        }
    }
}

fn row_avg(r: &PRel) -> u64 {
    let n = r.n_rows().max(1) as u64;
    r.bytes() / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::load_pdw;
    use relational::testing::assert_rows_match;
    use relational::{execute, Catalog};
    use tpch::{generate, GenConfig};

    fn setup(scale: f64, k: f64) -> (PdwEngine, Catalog) {
        let cat = generate(&GenConfig::new(scale));
        let params = Params::paper_dss().scaled(k);
        let (pdw, _) = load_pdw(&cat, &params);
        (PdwEngine::new(pdw), cat)
    }

    #[test]
    fn q1_matches_reference_and_is_fast() {
        let (engine, cat) = setup(0.01, 25_000.0);
        let plan = tpch::query(1);
        let run = engine.run_query(&plan);
        let (_, want) = execute(&plan, &cat);
        assert_rows_match("pdw Q1", &run.rows, &want);
        // Paper: PDW Q1 ≈ 54 s at SF 250.
        assert!(
            run.total_secs > 10.0 && run.total_secs < 200.0,
            "PDW Q1@250GB ≈ 54s, got {}",
            run.total_secs
        );
    }

    #[test]
    fn q5_matches_reference_with_shuffle_steps() {
        let (engine, cat) = setup(0.01, 25_000.0);
        let plan = tpch::query(5);
        let run = engine.run_query(&plan);
        let (_, want) = execute(&plan, &cat);
        assert_rows_match("pdw Q5", &run.rows, &want);
        // The plan narrative: PDW shuffles intermediates (never lineitem
        // wholesale) and replicates small tables.
        assert!(
            run.steps
                .iter()
                .any(|s| s.name.starts_with("shuffle:") || s.name.starts_with("replicate:")),
            "Q5 must move data: {:?}",
            run.steps.iter().map(|s| s.name.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn all_queries_match_reference() {
        let (engine, cat) = setup(0.01, 25_000.0);
        for n in 1..=tpch::QUERY_COUNT {
            let plan = tpch::query(n);
            let run = engine.run_query(&plan);
            let (_, want) = execute(&plan, &cat);
            assert_rows_match(&format!("pdw Q{n}"), &run.rows, &want);
        }
    }

    #[test]
    fn q19_pushes_implied_part_filter_before_replication() {
        let (engine, cat) = setup(0.01, 25_000.0);
        let plan = tpch::query(19);
        let run = engine.run_query(&plan);
        let (_, want) = execute(&plan, &cat);
        assert_rows_match("pdw Q19", &run.rows, &want);
        // The replicate step must exist and be cheap (filtered part table),
        // per the paper's "replicates the part table ... after 51 seconds".
        let rep: Vec<_> = run
            .steps
            .iter()
            .filter(|s| s.name.starts_with("replicate:"))
            .collect();
        assert!(
            !rep.is_empty(),
            "Q19 should replicate the filtered part side"
        );
    }

    #[test]
    fn one_node_cluster_does_not_degenerate_to_replicate() {
        // Regression: with `nodes == 1` the closed-form `replicate_t` is 0
        // for any size, so the optimizer used to pick a replicate step even
        // when the join was colocated (min_by keeps the *last* of equal
        // minima). The guarded estimates must prefer `none` whenever it is
        // legal — and answers must still match the reference.
        let cat = generate(&GenConfig::new(0.01));
        let params = Params {
            nodes: 1,
            ..Params::paper_dss().scaled(25_000.0)
        };
        let (pdwcat, _) = load_pdw(&cat, &params);
        let engine = PdwEngine::new(pdwcat);
        for n in [3, 5, 12] {
            let plan = tpch::query(n);
            let run = engine.run_query(&plan);
            let (_, want) = execute(&plan, &cat);
            assert_rows_match(&format!("pdw 1-node Q{n}"), &run.rows, &want);
            for d in &run.decisions {
                if d.options.iter().any(|(l, _, _)| l == "none") {
                    assert_eq!(
                        d.chosen, "none",
                        "Q{n} {}: a free colocated/replicated join must not move data: {:?}",
                        d.name, d.options
                    );
                }
                let chosen = d.options.iter().find(|(l, _, _)| l == &d.chosen).unwrap();
                assert!(
                    d.chosen == "none" || chosen.1 > 0.0,
                    "Q{n} {}: movement estimates must not be 0 on one node",
                    d.name
                );
            }
        }
    }

    #[test]
    fn identity_feedback_reproduces_closed_form_run_exactly() {
        let (engine, _) = setup(0.01, 25_000.0);
        let (fb_engine, _) = setup(0.01, 25_000.0);
        let fb_engine = fb_engine.with_feedback(crate::FeedbackCosts::none());
        let plan = tpch::query(5);
        let base = engine.run_query(&plan);
        let with_fb = fb_engine.run_query(&plan);
        assert_eq!(base.total_secs.to_bits(), with_fb.total_secs.to_bits());
        for (a, b) in base.decisions.iter().zip(&with_fb.decisions) {
            assert_eq!(a.chosen, b.chosen);
            assert!(!b.flipped());
        }
    }

    #[test]
    fn contended_feedback_flips_at_least_one_join_strategy() {
        // Synthetic contention: shuffles observed at 12× their nominal cost
        // plus a hefty per-movement queueing term, replicates barely
        // inflated. Some join that the closed forms would shuffle must now
        // replicate (or vice versa) — and the rows must stay correct, since
        // every candidate movement is semantically valid.
        let fb = crate::FeedbackCosts {
            shuffle_inflation: 12.0,
            replicate_inflation: 1.05,
            net_wait_per_move_secs: 30.0,
        };
        let (engine, cat) = setup(0.01, 25_000.0);
        let fb_engine = engine.with_feedback(fb);
        let mut flipped = 0;
        for n in 1..=tpch::QUERY_COUNT {
            let plan = tpch::query(n);
            let run = fb_engine.run_query(&plan);
            let (_, want) = execute(&plan, &cat);
            assert_rows_match(&format!("pdw feedback Q{n}"), &run.rows, &want);
            flipped += run.decisions.iter().filter(|d| d.flipped()).count();
        }
        assert!(
            flipped > 0,
            "heavy shuffle contention must flip at least one join strategy"
        );
    }

    #[test]
    fn colblock_engine_matches_reference_and_prunes() {
        let cat = generate(&GenConfig::new(0.01));
        let params = Params::paper_dss().scaled(25_000.0);
        let (pdwcat, _) = load_pdw(&cat, &params);
        let engine = PdwEngine::with_colblock(pdwcat);
        for n in [1, 6, 12, 19] {
            let plan = tpch::query(n);
            let run = engine.run_query(&plan);
            let (_, want) = execute(&plan, &cat);
            assert_rows_match(&format!("pdw colblock Q{n}"), &run.rows, &want);
            // Q6/Q12 carry scan-level date ranges; Q19's OR-of-ranges
            // implies p_size ∈ [1, 15], pushed below the join.
            if matches!(n, 6 | 12 | 19) {
                assert!(
                    run.scan_stats.blocks_pruned > 0,
                    "Q{n} should skip blocks: {:?}",
                    run.scan_stats
                );
            }
            assert!(run.steps.iter().any(|s| s.name.starts_with("colscan:")));
        }
    }

    #[test]
    fn pdw_beats_hive_shape() {
        // The headline result: PDW is faster than Hive for the same query
        // at the same scale.
        let cat = generate(&GenConfig::new(0.01));
        let params = Params::paper_dss().scaled(25_000.0);
        let (pdwcat, _) = load_pdw(&cat, &params);
        let engine = PdwEngine::new(pdwcat);
        let t_pdw = engine.run_query(&tpch::query(6)).total_secs;
        assert!(t_pdw < 120.0, "PDW Q6 should take well under Hive's ~79s");
    }
}
