//! # pdw — a shared-nothing parallel data warehouse (SQL Server PDW stand-in)
//!
//! The SQL contender on the DSS side of the paper. The mechanisms the paper
//! credits for PDW's win are all here:
//!
//! * **hash-distributed / replicated tables** across 128 distributions
//!   (8 per node), per Table 1 ([`catalog`]),
//! * a **cost-based optimizer** ([`optimizer`]): joins are reordered by
//!   estimated cardinality (a measured-statistics oracle — idealizing the
//!   "robust and mature cost-based optimization" of §3.5), distribution
//!   strategies are chosen to minimize DMS traffic (colocated local join →
//!   shuffle one side → replicate the small side → shuffle both), and
//!   single-side predicate implications are extracted from complex OR
//!   predicates and pushed below the join (Q19's plan),
//! * the **DMS** data-movement cost model ([`exec`]): shuffle and
//!   replication steps bounded by per-node NIC bandwidth, matching e.g. the
//!   paper's "orders shuffle completes in ≈ 258 s" narrative for Q5,
//! * partial + global aggregation, gather-to-control for final ORDER BY.
//!
//! Execution is real: every step transforms actual rows with the shared
//! `relational::ops` kernels, per distribution, while step *time* comes
//! from the unified substrate — each step runs as a `cluster::exec::Phase`
//! on the traced DES (see ARCHITECTURE.md), and `StepReport` is a derived
//! view over the resulting span trace. PDW steps are sequential, so the
//! query time is the clock at the end of the last phase. The optimizer's
//! closed-form `shuffle_t`/`replicate_t` estimates are predictions checked
//! against that measured time, not the source of it.

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod catalog;
pub mod exec;
pub mod feedback;
pub mod optimizer;

pub use adaptive::{live_costs, AdaptiveTail, BlameVerdict};
pub use catalog::{load_pdw, PdwCatalog, PdwLoadReport, PdwTable};
pub use exec::{JoinDecision, PdwEngine, PdwQueryRun, StepReport};
pub use feedback::{FeedbackCosts, NetDepthAccum};

/// Number of hash distributions = nodes × distributions/node (128 in the
/// paper's configuration).
pub fn total_distributions(p: &cluster::Params) -> usize {
    p.total_distributions() as usize
}
