//! Behavioural tests of the PDW optimizer's data-movement decisions —
//! the mechanisms §3.3.4.3 credits for PDW's win.

use cluster::Params;
use pdw::{load_pdw, PdwEngine};
use relational::expr::{col, lit_str};
use relational::{AggCall, LogicalPlan};
use tpch::{generate, GenConfig};

fn engine(paper: f64) -> PdwEngine {
    let cat = generate(&GenConfig::new(0.01));
    let params = Params::paper_dss().scaled(paper / 0.01);
    let (c, _) = load_pdw(&cat, &params);
    PdwEngine::new(c)
}

fn step_names(run: &pdw::PdwQueryRun) -> Vec<String> {
    run.steps.iter().map(|s| s.name.clone()).collect()
}

#[test]
fn colocated_join_moves_no_data() {
    // orders and lineitem are both distributed on the order key: their
    // join must be local (no shuffle, no replicate).
    let e = engine(1000.0);
    let o = tpch::schema::orders();
    let l = tpch::schema::lineitem();
    let plan = LogicalPlan::scan("orders")
        .project(vec![(col(o.col("o_orderkey")), "o_orderkey")])
        .join(
            LogicalPlan::scan("lineitem").project(vec![(col(l.col("l_orderkey")), "l_orderkey")]),
            vec![(0, 0)],
        )
        .aggregate(vec![], vec![AggCall::count_star("n")]);
    let run = e.run_query(&plan);
    let names = step_names(&run);
    assert!(
        !names
            .iter()
            .any(|n| n.starts_with("shuffle:") || n.starts_with("replicate:")),
        "colocated join must not move data: {names:?}"
    );
}

#[test]
fn replicated_dimension_tables_join_for_free() {
    // nation is replicated: joining it against supplier costs no DMS step.
    let e = engine(1000.0);
    let s = tpch::schema::supplier();
    let plan = LogicalPlan::scan("supplier")
        .project(vec![
            (col(s.col("s_suppkey")), "s_suppkey"),
            (col(s.col("s_nationkey")), "s_nationkey"),
        ])
        .join(
            LogicalPlan::scan("nation").project(vec![(col(0), "n_nationkey")]),
            vec![(1, 0)],
        )
        .aggregate(vec![], vec![AggCall::count_star("n")]);
    let run = e.run_query(&plan);
    let names = step_names(&run);
    assert!(
        !names
            .iter()
            .any(|n| n.starts_with("shuffle:") || n.starts_with("replicate:")),
        "replicated-table join must be local: {names:?}"
    );
}

#[test]
fn q5_moves_orders_not_lineitem() {
    // §3.3.4.1: "large base tables, like lineitem, are not shuffled".
    // The chain optimizer must shuffle smaller intermediates instead.
    let e = engine(1000.0);
    let run = e.run_query(&tpch::query(5));
    let li_rows = {
        let cat = generate(&GenConfig::new(0.01));
        cat.get("lineitem").len()
    };
    // Data volume moved must be well under one full lineitem pass: with
    // ~16-byte projected rows, lineitem wholesale ≈ li_rows * 30 bytes.
    let moved: f64 = run
        .steps
        .iter()
        .filter(|s| s.name.starts_with("shuffle:") || s.name.starts_with("replicate:"))
        .map(|s| s.secs)
        .sum();
    let full_lineitem_shuffle =
        li_rows as f64 * 30.0 / (16.0 * Params::paper_dss().scaled(100_000.0).dms_bw_per_node);
    assert!(
        moved < full_lineitem_shuffle,
        "Q5 moved {moved:.0}s of data, ≥ a full lineitem shuffle ({full_lineitem_shuffle:.0}s)"
    );
}

#[test]
fn q19_replicates_only_the_filtered_part_side() {
    let e = engine(16000.0);
    let run = e.run_query(&tpch::query(19));
    let rep: f64 = run
        .steps
        .iter()
        .filter(|s| s.name.starts_with("replicate:"))
        .map(|s| s.secs)
        .sum();
    // The paper's Q19 narrative: replication finished in 51 s at 16 TB
    // because only the implied-filtered part rows move.
    assert!(
        rep > 0.0 && rep < 120.0,
        "filtered-part replication should be cheap: {rep:.0}s"
    );
}

#[test]
fn aggregate_on_distribution_key_stays_local() {
    let e = engine(1000.0);
    let l = tpch::schema::lineitem();
    // group by l_orderkey (the distribution key) → no shuffle.
    let local = LogicalPlan::scan("lineitem")
        .project(vec![
            (col(l.col("l_orderkey")), "l_orderkey"),
            (col(l.col("l_quantity")), "l_quantity"),
        ])
        .aggregate(
            vec![(col(0), "l_orderkey")],
            vec![AggCall::sum(col(1), "q")],
        );
    let run = e.run_query(&local);
    assert!(
        !step_names(&run).iter().any(|n| n.starts_with("shuffle:")),
        "distribution-aligned aggregate must not shuffle: {:?}",
        step_names(&run)
    );
    // group by l_shipmode (not the key) → the group shuffle appears.
    let remote = LogicalPlan::scan("lineitem")
        .project(vec![
            (col(l.col("l_shipmode")), "l_shipmode"),
            (col(l.col("l_quantity")), "l_quantity"),
        ])
        .aggregate(
            vec![(col(0), "l_shipmode")],
            vec![AggCall::sum(col(1), "q")],
        );
    let run2 = e.run_query(&remote);
    assert!(
        step_names(&run2).iter().any(|n| n.contains("agg-groups")),
        "misaligned aggregate must redistribute groups: {:?}",
        step_names(&run2)
    );
}

#[test]
fn filter_pushdown_survives_semantics() {
    // The pushdown pass must not change answers even for LEFT joins where
    // right-side pushes are illegal.
    let e = engine(250.0);
    let c = tpch::schema::customer();
    let o = tpch::schema::orders();
    let plan = LogicalPlan::scan("customer")
        .project(vec![
            (col(c.col("c_custkey")), "c_custkey"),
            (col(c.col("c_mktsegment")), "c_mktsegment"),
        ])
        .join_kind(
            LogicalPlan::scan("orders").project(vec![
                (col(o.col("o_orderkey")), "o_orderkey"),
                (col(o.col("o_custkey")), "o_custkey"),
            ]),
            relational::JoinKind::Left,
            vec![(0, 1)],
            None,
        )
        .filter(col(1).eq(lit_str("BUILDING")))
        .aggregate(vec![], vec![AggCall::count_star("n")]);
    let run = e.run_query(&plan);
    // Reference answer.
    let cat = generate(&GenConfig::new(0.01));
    let (_, want) = relational::execute(&plan, &cat);
    assert!(relational::testing::rows_approx_eq(&run.rows, &want, 1e-9));
}
