//! The data-serving suite: YCSB sweeps over SQL-CS / Mongo-AS / Mongo-CS.

use cluster::Params;
use docstore::{MongoCluster, Sharding};
use obs::{MetricKey, MetricRegistry, WindowedLatencies};
use simkit::{Sim, SimTime};
use sqlengine::SqlCluster;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use ycsb::driver::{run_workload_observed, OpObserver, RunConfig, RunResult};
use ycsb::workload::{OpType, Workload};

type S = Sim<()>;

/// The three systems of §3.4.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SystemKind {
    SqlCs,
    MongoAs,
    MongoCs,
}

impl SystemKind {
    pub fn all() -> [SystemKind; 3] {
        [SystemKind::MongoAs, SystemKind::MongoCs, SystemKind::SqlCs]
    }

    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::SqlCs => "SQL-CS",
            SystemKind::MongoAs => "Mongo-AS",
            SystemKind::MongoCs => "Mongo-CS",
        }
    }
}

/// Sweep configuration.
#[derive(Clone, Debug)]
pub struct ServingConfig {
    /// Similitude factor: records and memory shrink by this (the paper's
    /// 640 M records → `640e6 / k`).
    pub k: f64,
    pub warmup_secs: f64,
    pub measure_secs: f64,
    pub threads: usize,
    pub seed: u64,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            k: 2_500.0,
            warmup_secs: 4.0,
            measure_secs: 8.0,
            threads: 800,
            seed: 42,
        }
    }
}

impl ServingConfig {
    pub fn n_records(&self) -> u64 {
        ((640e6 / self.k) as u64).max(1_000)
    }

    pub fn params(&self) -> Params {
        Params::paper_ycsb().scaled_ycsb(self.k)
    }
}

/// One point of a latency-vs-throughput curve.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    pub system: SystemKind,
    pub workload: Workload,
    pub target_ops: f64,
    pub achieved_ops: f64,
    /// mean latency (ms) per op type.
    pub latency_ms: BTreeMap<OpType, f64>,
    /// standard error of the per-interval means (the paper's error bars).
    pub latency_stderr_ms: BTreeMap<OpType, f64>,
    pub crashed: bool,
}

impl SweepPoint {
    pub fn latency(&self, ty: OpType) -> Option<f64> {
        self.latency_ms.get(&ty).copied()
    }
}

/// Run one (system, workload, target) cell in a fresh simulation — the
/// paper drops and reloads between runs and flushes memory, so every run
/// starts cold.
pub fn run_point(
    cfg: &ServingConfig,
    system: SystemKind,
    workload: Workload,
    target_ops: f64,
) -> SweepPoint {
    run_point_inner(cfg, system, workload, target_ops, None)
}

fn run_point_inner(
    cfg: &ServingConfig,
    system: SystemKind,
    workload: Workload,
    target_ops: f64,
    observer: Option<Rc<RefCell<dyn OpObserver>>>,
) -> SweepPoint {
    let params = cfg.params();
    let n = cfg.n_records();
    let run_cfg = RunConfig {
        target_ops_per_sec: target_ops,
        threads: cfg.threads,
        warmup_secs: cfg.warmup_secs,
        measure_secs: cfg.measure_secs,
        seed: cfg.seed,
        n_records: n,
        max_scan_len: 1000,
    };
    let mut sim: S = Sim::new();
    let result: RunResult = match system {
        SystemKind::SqlCs => {
            let sql = SqlCluster::build(&mut sim, &params);
            sql.load(n);
            let horizon = simkit::secs(cfg.warmup_secs + cfg.measure_secs);
            sql.start_checkpoints(&mut sim, horizon);
            run_workload_observed(&mut sim, sql, workload, &run_cfg, observer)
        }
        SystemKind::MongoAs => {
            let m = MongoCluster::build(&mut sim, &params, Sharding::Range);
            m.load(n);
            run_workload_observed(&mut sim, m, workload, &run_cfg, observer)
        }
        SystemKind::MongoCs => {
            let m = MongoCluster::build(&mut sim, &params, Sharding::Hash);
            m.load(n);
            run_workload_observed(&mut sim, m, workload, &run_cfg, observer)
        }
    };
    SweepPoint {
        system,
        workload,
        target_ops,
        achieved_ops: result.achieved_ops,
        latency_ms: result
            .latencies
            .iter()
            .map(|(ty, l)| (*ty, l.mean_ms))
            .collect(),
        latency_stderr_ms: result
            .latencies
            .iter()
            .map(|(ty, l)| (*ty, l.std_err_ms))
            .collect(),
        crashed: result.crashed,
    }
}

/// Bridges the driver's per-op callback into the windowed collector.
struct WindowedObserver(WindowedLatencies);

impl OpObserver for WindowedObserver {
    fn on_op(
        &mut self,
        ty: OpType,
        shard: Option<usize>,
        _client: u32,
        at: SimTime,
        latency: SimTime,
    ) {
        self.0.record(ty.label(), shard, at, latency);
    }
}

/// Bridges the driver's per-op callback into the streaming registry,
/// assigning each client thread to a tenant round-robin (`client %
/// tenants`) — deterministic, stable across the run, and independent of
/// op timing.
struct TenantObserver {
    reg: MetricRegistry,
    engine: &'static str,
    tenants: u32,
}

impl OpObserver for TenantObserver {
    fn on_op(
        &mut self,
        ty: OpType,
        shard: Option<usize>,
        client: u32,
        at: SimTime,
        latency: SimTime,
    ) {
        let key = MetricKey::new(
            self.engine,
            ty.label(),
            shard,
            Some(client % self.tenants.max(1)),
        );
        self.reg.observe(key, at, latency);
    }
}

/// [`run_point`] with a windowed latency profile attached: the measurement
/// interval is cut into `windows` fixed windows and per-shard latency
/// histograms are kept per window. The observer is passive — the
/// `SweepPoint` is byte-identical to an unprofiled [`run_point`].
pub fn run_point_profiled(
    cfg: &ServingConfig,
    system: SystemKind,
    workload: Workload,
    target_ops: f64,
    windows: usize,
) -> (SweepPoint, WindowedLatencies) {
    let t0 = simkit::secs(cfg.warmup_secs);
    let window = simkit::secs(cfg.measure_secs / windows.max(1) as f64);
    let obs = Rc::new(RefCell::new(WindowedObserver(WindowedLatencies::new(
        t0,
        window.max(1),
        windows.max(1),
    ))));
    let point = run_point_inner(cfg, system, workload, target_ops, Some(obs.clone()));
    let obs = Rc::try_unwrap(obs)
        .ok()
        .expect("driver released observer")
        .into_inner();
    (point, obs.0)
}

/// [`run_point_profiled`] with multi-tenant streaming metrics: client
/// threads are partitioned into `tenants` tenants and every completed op
/// feeds a [`MetricRegistry`] keyed `(engine, op, shard, tenant)` —
/// counters plus sliding-window latency histograms, updated as the run
/// progresses. The returned [`WindowedLatencies`] is *derived* from the
/// registry ([`MetricRegistry::to_windowed`]), which is bit-identical to
/// the direct fold (tenant splits merge away exactly), so callers that
/// only read the windowed view cannot tell the paths apart. The observer
/// stays passive: the `SweepPoint` is byte-identical to [`run_point`].
pub fn run_point_profiled_tenants(
    cfg: &ServingConfig,
    system: SystemKind,
    workload: Workload,
    target_ops: f64,
    windows: usize,
    tenants: u32,
) -> (SweepPoint, WindowedLatencies, MetricRegistry) {
    let t0 = simkit::secs(cfg.warmup_secs);
    let window = simkit::secs(cfg.measure_secs / windows.max(1) as f64).max(1);
    // The driver drains in-flight ops for 5 s past the measurement end;
    // those completions land in windows past the profiled range and must
    // not evict it from the ring, so retain the drain's windows too.
    let cap = windows.max(1) + (simkit::secs(5.0) / window) as usize + 2;
    let obs = Rc::new(RefCell::new(TenantObserver {
        reg: MetricRegistry::new(t0, window, cap),
        engine: system.label(),
        tenants,
    }));
    let point = run_point_inner(cfg, system, workload, target_ops, Some(obs.clone()));
    let obs = Rc::try_unwrap(obs)
        .ok()
        .expect("driver released observer")
        .into_inner();
    let wl = obs.reg.to_windowed(system.label(), windows.max(1));
    (point, wl, obs.reg)
}

/// Sweep a workload over targets for every system.
pub fn sweep(cfg: &ServingConfig, workload: Workload, targets: &[f64]) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for system in SystemKind::all() {
        for &t in targets {
            out.push(run_point(cfg, system, workload, t));
        }
    }
    out
}

/// §3.4.2 load times at paper scale (minutes).
pub fn load_times_minutes(cfg: &ServingConfig) -> Vec<(&'static str, f64)> {
    let p = cfg.params();
    let records = 640e6 as u64;
    vec![
        (
            "Mongo-AS (pre-split chunks)",
            records as f64 / (p.nodes as f64 * p.mongo_as_insert_rate_per_node) / 60.0,
        ),
        (
            "SQL-CS (per-insert transactions)",
            records as f64 / (p.nodes as f64 * p.sql_insert_rate_per_node) / 60.0,
        ),
        (
            "Mongo-CS",
            records as f64 / (p.nodes as f64 * p.mongo_cs_insert_rate_per_node) / 60.0,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServingConfig {
        ServingConfig {
            k: 10_000.0,
            warmup_secs: 1.0,
            measure_secs: 2.0,
            threads: 100,
            seed: 7,
        }
    }

    #[test]
    fn workload_c_point_runs_for_all_systems() {
        let cfg = tiny();
        for system in SystemKind::all() {
            let p = run_point(&cfg, system, Workload::C, 2_000.0);
            assert!(p.achieved_ops > 100.0, "{:?}: {}", system, p.achieved_ops);
            assert!(p.latency(OpType::Read).unwrap() > 0.0);
            assert!(!p.crashed, "{system:?} must survive workload C");
        }
    }

    #[test]
    fn profiled_point_is_byte_identical_and_windowed() {
        let cfg = tiny();
        let plain = run_point(&cfg, SystemKind::SqlCs, Workload::A, 2_000.0);
        let (prof, wl) = run_point_profiled(&cfg, SystemKind::SqlCs, Workload::A, 2_000.0, 4);
        // Passivity: the observer must not change any result field.
        assert_eq!(format!("{plain:?}"), format!("{prof:?}"));
        let total: u64 = (0..wl.windows())
            .map(|w| wl.merged("read", w).count())
            .sum();
        assert!(total > 0, "windowed reads recorded");
        assert!(!wl.shards("read").is_empty(), "shard labels present");
    }

    #[test]
    fn tenant_profile_matches_plain_profile_bit_for_bit() {
        let cfg = tiny();
        let (plain, wl) = run_point_profiled(&cfg, SystemKind::SqlCs, Workload::A, 2_000.0, 4);
        let (point, twl, reg) =
            run_point_profiled_tenants(&cfg, SystemKind::SqlCs, Workload::A, 2_000.0, 4, 4);
        // Passivity again, across observer implementations.
        assert_eq!(format!("{plain:?}"), format!("{point:?}"));
        // The registry-derived windowed view is bit-identical to the
        // direct fold: tenant splitting merges away exactly.
        for op in ["read", "update"] {
            for w in 0..4 {
                assert_eq!(twl.merged(op, w), wl.merged(op, w), "{op} w{w}");
            }
        }
        // All four tenants saw traffic, and their windows partition the
        // merged histogram.
        let tenants = reg.tenants("SQL-CS", "read");
        assert_eq!(tenants, vec![0, 1, 2, 3]);
        let whole = reg.merged_window("SQL-CS", "read", 1).count();
        let parts: u64 = tenants
            .iter()
            .map(|&t| reg.tenant_window("SQL-CS", "read", Some(t), 1).count())
            .sum();
        assert_eq!(whole, parts);
        assert!(whole > 0);
    }

    #[test]
    fn load_times_roughly_match_paper() {
        let cfg = tiny();
        let times = load_times_minutes(&cfg);
        let get = |name: &str| {
            times
                .iter()
                .find(|(n, _)| n.contains(name))
                .map(|(_, t)| *t)
                .unwrap()
        };
        assert!((get("Mongo-AS") - 114.0).abs() < 10.0);
        assert!((get("SQL-CS") - 146.0).abs() < 10.0);
        assert!((get("Mongo-CS") - 45.0).abs() < 10.0);
    }
}
