//! Minimal markdown / CSV rendering for the `repro_*` binaries — no
//! serialization framework, just strings.

/// A rectangular table with a header row.
#[derive(Clone, Debug, Default)]
pub struct TableBuilder {
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl TableBuilder {
    pub fn new(title: impl Into<String>, header: &[&str]) -> TableBuilder {
        TableBuilder {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "ragged row");
        self.rows.push(cells);
        self
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.header.len())));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        out
    }

    /// Render as CSV (RFC-4180-ish quoting for commas/quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Render a span list (PDW steps or MapReduce job phases) as a table with
/// per-resource busy time and mean queue wait alongside the makespan.
pub fn span_table(title: impl Into<String>, spans: &[simkit::trace::Span]) -> TableBuilder {
    let mut t = TableBuilder::new(
        title,
        &[
            "step",
            "secs",
            "disk busy (s)",
            "cpu busy (s)",
            "net busy (s)",
            "mean queue wait (s)",
        ],
    );
    let mut total = simkit::trace::UtilSummary::default();
    let mut total_secs = 0.0;
    for s in spans {
        let u = s.util();
        total.merge(&u);
        total_secs += s.secs();
        t.row(vec![
            s.name.clone(),
            fmt_secs(Some(s.secs())),
            fmt_secs(Some(u.disk_busy)),
            fmt_secs(Some(u.cpu_busy)),
            fmt_secs(Some(u.net_busy)),
            format!("{:.3}", u.mean_wait()),
        ]);
    }
    t.row(vec![
        "TOTAL".to_string(),
        fmt_secs(Some(total_secs)),
        fmt_secs(Some(total.disk_busy)),
        fmt_secs(Some(total.cpu_busy)),
        fmt_secs(Some(total.net_busy)),
        format!("{:.3}", total.mean_wait()),
    ]);
    t
}

/// One-line utilization summary for a run: busy seconds per resource kind
/// plus total queue wait.
pub fn util_line(u: &simkit::trace::UtilSummary) -> String {
    format!(
        "busy: disk {:.1}s cpu {:.1}s net {:.1}s | queue wait: disk {:.1}s cpu {:.1}s net {:.1}s ({} requests)",
        u.disk_busy, u.cpu_busy, u.net_busy, u.disk_wait, u.cpu_wait, u.net_wait, u.requests
    )
}

/// Format seconds compactly ("--" for failures).
pub fn fmt_secs(v: Option<f64>) -> String {
    match v {
        Some(s) if s >= 100.0 => format!("{s:.0}"),
        Some(s) if s >= 1.0 => format!("{s:.1}"),
        Some(s) => format!("{s:.2}"),
        None => "--".to_string(),
    }
}

/// Format a ratio like the paper's speedup columns.
pub fn fmt_ratio(v: Option<f64>) -> String {
    match v {
        Some(r) if r >= 10.0 => format!("{r:.1}"),
        Some(r) => format!("{r:.2}"),
        None => "--".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = TableBuilder::new("T", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### T"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = TableBuilder::new("", &["x"]);
        t.row(vec!["has,comma".into()]);
        t.row(vec!["has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    #[should_panic(expected = "ragged row")]
    fn ragged_rows_rejected() {
        TableBuilder::new("", &["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(Some(1234.6)), "1235");
        assert_eq!(fmt_secs(Some(12.34)), "12.3");
        assert_eq!(fmt_secs(Some(0.123)), "0.12");
        assert_eq!(fmt_secs(None), "--");
        assert_eq!(fmt_ratio(Some(34.13)), "34.1");
        assert_eq!(fmt_ratio(Some(3.413)), "3.41");
    }
}
