//! The DSS suite: TPC-H on Hive and PDW across the paper's scale factors.

use cluster::Params;
use hive::{load_warehouse, HiveEngine, QueryRun};
use pdw::{load_pdw, PdwEngine};
use relational::Catalog;
use tpch::{generate, GenConfig};

/// Configuration for one full Table 3-style run.
#[derive(Clone, Debug)]
pub struct DssConfig {
    /// Real generated scale factor (data volume actually held in memory).
    pub sim_scale: f64,
    /// Paper scale factors to emulate (GB-equivalents: 250, 1000, ...).
    pub paper_scales: Vec<f64>,
    /// Queries to run (1-based). Empty = all 22.
    pub queries: Vec<usize>,
    /// Per-node disk capacity at paper scale (bytes) for the Q9 failure
    /// injection; `None` disables space accounting.
    pub disk_capacity_per_node: Option<u64>,
}

impl Default for DssConfig {
    fn default() -> Self {
        DssConfig {
            sim_scale: 0.02,
            paper_scales: vec![250.0, 1000.0, 4000.0, 16000.0],
            queries: Vec::new(),
            disk_capacity_per_node: None,
        }
    }
}

/// One query at one scale factor.
#[derive(Clone, Debug)]
pub struct QueryCell {
    pub query: usize,
    /// `None` = failed (Hive Q9 at 16 TB: out of disk).
    pub hive_secs: Option<f64>,
    pub pdw_secs: f64,
    /// Per-resource busy/queue-wait totals from the Hive run's spans.
    pub hive_util: Option<simkit::trace::UtilSummary>,
    /// Per-resource busy/queue-wait totals from the PDW run's trace.
    pub pdw_util: simkit::trace::UtilSummary,
    /// Deepest resource queue over the Hive run: `(resource, peak depth,
    /// requests still queued at end, their accrued pending wait in secs)`.
    pub hive_peak_queue: Option<(String, usize, usize, f64)>,
    /// Deepest resource queue over the PDW run.
    pub pdw_peak_queue: (String, usize, usize, f64),
}

/// The deepest FIFO queue in a run's resource reports: `(resource name,
/// peak depth, total requests still queued at snapshot, summed pending
/// wait those requests have accrued so far in seconds)`. Ties broken by
/// name (ascending) for determinism.
pub fn peak_queue(reports: &[simkit::resource::ResourceReport]) -> (String, usize, usize, f64) {
    let queued_at_end: usize = reports.iter().map(|r| r.queued_at_end).sum();
    let pending_wait: f64 = reports.iter().map(|r| r.pending_wait_secs).sum();
    let deepest = reports.iter().max_by(|a, b| {
        a.max_queue_depth
            .cmp(&b.max_queue_depth)
            .then(b.name.cmp(&a.name))
    });
    match deepest {
        Some(r) => (
            r.name.clone(),
            r.max_queue_depth,
            queued_at_end,
            pending_wait,
        ),
        None => (String::new(), 0, queued_at_end, pending_wait),
    }
}

impl QueryCell {
    pub fn speedup(&self) -> Option<f64> {
        self.hive_secs.map(|h| h / self.pdw_secs.max(1e-9))
    }
}

/// All queries at one paper scale factor.
#[derive(Clone, Debug)]
pub struct ScaleRun {
    pub paper_scale: f64,
    pub k: f64,
    pub cells: Vec<QueryCell>,
    pub hive_load_secs: f64,
    pub pdw_load_secs: f64,
    /// Raw Hive runs for drill-down (Tables 4 and 5).
    pub hive_runs: Vec<(usize, Option<QueryRun>)>,
}

fn mean(values: impl Iterator<Item = f64> + Clone) -> (f64, f64) {
    let n = values.clone().count().max(1) as f64;
    let am = values.clone().sum::<f64>() / n;
    let gm = (values.map(|v| v.max(1e-12).ln()).sum::<f64>() / n).exp();
    (am, gm)
}

impl ScaleRun {
    /// Arithmetic/geometric means over completed queries, optionally
    /// excluding Q9 (the paper's AM-9/GM-9).
    pub fn means(&self, engine: &str, exclude_q9: bool) -> Option<(f64, f64)> {
        let vals: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| !(exclude_q9 && c.query == 9))
            .map(|c| match engine {
                "hive" => c.hive_secs,
                "pdw" => Some(c.pdw_secs),
                other => panic!("unknown engine {other}"),
            })
            .collect::<Option<Vec<f64>>>()?;
        Some(mean(vals.iter().copied()))
    }
}

/// Full results of a DSS suite run.
#[derive(Clone, Debug)]
pub struct DssResults {
    pub config: DssConfig,
    pub runs: Vec<ScaleRun>,
}

/// Execute the suite. The four scale factors are independent simulations
/// over the same generated data, so they run on separate threads.
pub fn run_dss(config: &DssConfig) -> DssResults {
    let catalog = generate(&GenConfig::new(config.sim_scale));
    let queries: Vec<usize> = if config.queries.is_empty() {
        (1..=tpch::QUERY_COUNT).collect()
    } else {
        config.queries.clone()
    };
    let runs = std::thread::scope(|scope| {
        let handles: Vec<_> = config
            .paper_scales
            .iter()
            .map(|&ps| {
                let catalog = &catalog;
                let queries = &queries;
                scope.spawn(move || run_one_scale(config, catalog, queries, ps))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scale-factor worker panicked"))
            .collect::<Vec<_>>()
    });
    DssResults {
        config: config.clone(),
        runs,
    }
}

fn run_one_scale(
    config: &DssConfig,
    catalog: &Catalog,
    queries: &[usize],
    paper_scale: f64,
) -> ScaleRun {
    let k = paper_scale / config.sim_scale;
    let params = Params::paper_dss().scaled(k);
    let capacity = config
        .disk_capacity_per_node
        .map(|c| ((c as f64 / k).round() as u64).max(1));

    let (warehouse, hive_load) =
        load_warehouse(catalog, &params, capacity).expect("base data fits on disk");
    let hive_engine = HiveEngine::new(warehouse);
    let (pdw_catalog, pdw_load) = load_pdw(catalog, &params);
    let pdw_engine = PdwEngine::new(pdw_catalog);

    let mut cells = Vec::new();
    let mut hive_runs = Vec::new();
    for &q in queries {
        let plan = tpch::query(q);
        let hive_run = hive_engine.run_query(&plan).ok();
        let pdw_run = pdw_engine.run_query(&plan);
        cells.push(QueryCell {
            query: q,
            hive_secs: hive_run.as_ref().map(|r| r.total_secs),
            pdw_secs: pdw_run.total_secs,
            hive_util: hive_run.as_ref().map(|r| r.util()),
            pdw_util: pdw_run.trace.util(),
            hive_peak_queue: hive_run.as_ref().map(|r| peak_queue(&r.resources)),
            pdw_peak_queue: peak_queue(&pdw_run.resources),
        });
        hive_runs.push((q, hive_run));
    }
    ScaleRun {
        paper_scale,
        k,
        cells,
        hive_load_secs: hive_load.total_secs,
        pdw_load_secs: pdw_load.total_secs,
        hive_runs,
    }
}

/// The paper's per-node HDFS capacity: 8 data disks × 300 GB.
pub fn paper_disk_capacity() -> u64 {
    (8.0 * 300e9) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_produces_sane_speedups() {
        let cfg = DssConfig {
            sim_scale: 0.01,
            paper_scales: vec![250.0],
            queries: vec![1, 6],
            disk_capacity_per_node: None,
        };
        let res = run_dss(&cfg);
        assert_eq!(res.runs.len(), 1);
        let run = &res.runs[0];
        assert_eq!(run.cells.len(), 2);
        for c in &run.cells {
            let s = c.speedup().expect("no failures at 250 GB");
            assert!(s > 1.0, "PDW must win Q{} (speedup {s})", c.query);
        }
        let (am, gm) = run.means("hive", false).unwrap();
        assert!(am >= gm, "AM >= GM always");
    }

    #[test]
    fn q9_runs_out_of_disk_at_16tb_only() {
        let cfg = DssConfig {
            sim_scale: 0.01,
            paper_scales: vec![250.0, 16000.0],
            queries: vec![9],
            disk_capacity_per_node: Some(paper_disk_capacity()),
        };
        let res = run_dss(&cfg);
        assert!(
            res.runs[0].cells[0].hive_secs.is_some(),
            "Q9 completes at 250 GB"
        );
        assert!(
            res.runs[1].cells[0].hive_secs.is_none(),
            "Q9 must die on disk space at 16 TB"
        );
        // PDW finishes it everywhere.
        assert!(res.runs[1].cells[0].pdw_secs > 0.0);
    }
}
