//! # elephants-core — the experiment runner
//!
//! Ties the systems together into the paper's two experiment suites:
//!
//! * [`dss`] — TPC-H on Hive vs PDW at the four paper scale factors
//!   (250 GB, 1 TB, 4 TB, 16 TB) via similitude scaling: real data is
//!   generated at a laptop-friendly scale factor, and every
//!   capacity/throughput parameter is divided by `k = SF_paper / SF_real`
//!   (fixed overheads stay); regenerates Tables 2–5 and Figure 1,
//! * [`serving`] — YCSB on SQL-CS / Mongo-AS / Mongo-CS: latency-vs-
//!   throughput sweeps for Figures 2–6 plus the §3.4.2 load times,
//! * [`report`] — markdown/CSV rendering for the `repro_*` binaries.

#![forbid(unsafe_code)]

pub mod dss;
pub mod report;
pub mod serving;

pub use dss::{DssConfig, DssResults, QueryCell, ScaleRun};
pub use serving::{ServingConfig, SweepPoint, SystemKind};
