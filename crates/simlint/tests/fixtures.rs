//! Fixture-driven integration tests: one positive and one negative fixture
//! per rule, lexer edge cases (banned tokens hidden in strings, raw strings
//! and nested block comments), and suppression handling. The fixture tree
//! itself is excluded from the workspace lint via `[global] exclude` in the
//! root `simlint.toml`.

use simlint::{config, engine, Config, Report};
use std::path::{Path, PathBuf};

/// Every rule enabled with built-in defaults — fixtures pick the file they
/// need; scoping is covered by the engine's unit tests. The flow/graph
/// rules are scoped to their own fixture directories so their trigger
/// tokens (`HashMap`, `schedule_at`, …) don't cross-fire on fixtures that
/// exercise other rules; `no-unordered-iter` is carved out of the float
/// fixtures for the same reason (they must mention `HashMap` to exist).
const ALL_RULES: &str = "\
[rules.no-wall-clock]
[rules.no-unordered-iter]
exclude = [\"float_accum_order\"]
[rules.seeded-rng-only]
[rules.no-unwrap-in-lib]
[rules.no-unsafe]
[rules.lock-discipline]
[rules.exec-substrate-only]
[rules.probe-passivity]
paths = [\"probe_passivity\"]
[rules.float-accum-order]
paths = [\"float_accum_order\"]
[rules.seed-provenance]
paths = [\"seed_provenance\"]
";

fn all_rules() -> Config {
    config::parse(ALL_RULES).expect("fixture config parses")
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn lint_fixture(rel: &str) -> Report {
    let src = std::fs::read_to_string(fixtures_dir().join(rel)).expect("fixture file exists");
    engine::lint_source(&all_rules(), rel, &src)
}

/// Assert the positive fixture fires `rule` exactly `count` times — and
/// fires nothing else.
fn assert_fires(rel: &str, rule: &str, count: usize) {
    let report = lint_fixture(rel);
    assert_eq!(
        report.violations.len(),
        count,
        "{rel} should fire {rule} x{count}:\n{}",
        report.render()
    );
    for (_, v) in &report.violations {
        assert_eq!(
            v.rule,
            rule,
            "{rel} fired a different rule:\n{}",
            report.render()
        );
    }
}

fn assert_clean(rel: &str) {
    let report = lint_fixture(rel);
    assert!(
        report.is_clean(),
        "{rel} should be clean:\n{}",
        report.render()
    );
}

#[test]
fn no_wall_clock_fixtures() {
    // Instant::now (l4), SystemTime + UNIX_EPOCH in the use (l9),
    // SystemTime::now (l10), UNIX_EPOCH (l11).
    assert_fires("no_wall_clock/bad.rs", "no-wall-clock", 5);
    assert_clean("no_wall_clock/ok.rs");
}

#[test]
fn no_unordered_iter_fixtures() {
    // The `use` (l3) plus the annotated ctor line (l6, twice).
    assert_fires("no_unordered_iter/bad.rs", "no-unordered-iter", 3);
    assert_clean("no_unordered_iter/ok.rs");
}

#[test]
fn seeded_rng_only_fixtures() {
    // thread_rng (l4) and rand::random (l5); `rng.gen()` is not banned.
    assert_fires("seeded_rng_only/bad.rs", "seeded-rng-only", 2);
    assert_clean("seeded_rng_only/ok.rs");
}

#[test]
fn no_unwrap_in_lib_fixtures() {
    // `.unwrap()` (l6) and `.expect("")` with an empty message (l10).
    assert_fires("no_unwrap_in_lib/bad.rs", "no-unwrap-in-lib", 2);
    // Typed error, documented expect, and a free fn named `unwrap` all pass.
    assert_clean("no_unwrap_in_lib/ok.rs");
}

#[test]
fn exec_substrate_only_fixtures() {
    // add_resource (l5), request (l6), resource_busy_time (l7),
    // resource_queue_wait (l8).
    assert_fires("exec_substrate_only/bad.rs", "exec-substrate-only", 4);
    assert_clean("exec_substrate_only/ok.rs");
}

#[test]
fn no_unsafe_fixtures() {
    assert_fires("no_unsafe/bad.rs", "no-unsafe", 1);
    assert_clean("no_unsafe/ok.rs");
}

#[test]
fn lock_discipline_fixtures() {
    let report = lint_fixture("lock_discipline/bad.rs");
    assert_eq!(report.violations.len(), 1, "{}", report.render());
    let v = &report.violations[0].1;
    assert_eq!(v.rule, "lock-discipline");
    assert_eq!(v.line, 6, "the second acquire is the violation site");
    assert!(v.message.contains("re-acquires"), "{}", v.message);
    assert_clean("lock_discipline/ok.rs");
}

#[test]
fn lock_discipline_interleave_fixture() {
    // A write-acquire landing inside an open read window — per-kind
    // tracking alone cannot see it (both kinds pair up individually).
    let report = lint_fixture("lock_discipline/interleave_bad.rs");
    assert_eq!(report.violations.len(), 1, "{}", report.render());
    let v = &report.violations[0].1;
    assert_eq!(v.rule, "lock-discipline");
    assert_eq!(v.line, 8, "the write-acquire is the violation site");
    assert!(v.message.contains("read window"), "{}", v.message);
}

#[test]
fn probe_passivity_fixtures() {
    // `fold_depth` (direct), `fold_window` (via `refresh`), and `refresh`
    // itself (direct site inside the probe scope).
    assert_fires("probe_passivity/bad.rs", "probe-passivity", 3);
    assert_clean("probe_passivity/ok.rs");
}

#[test]
fn float_accum_order_fixtures() {
    // The `+=` over the HashMap and the rebind form over the HashSet.
    assert_fires("float_accum_order/bad.rs", "float-accum-order", 2);
    // Vec source, sorted view of a map, and integer accumulation all pass.
    assert_clean("float_accum_order/ok.rs");
}

#[test]
fn seed_provenance_fixtures() {
    // The direct inline literal and the laundered `let` chain.
    assert_fires("seed_provenance/bad.rs", "seed-provenance", 2);
    // Parameter, named constant, config field, derived stream all pass.
    assert_clean("seed_provenance/ok.rs");
}

/// Config for the multi-file substrate trees: both the token rule and the
/// transitive rule scoped to the engine crate, cluster trusted — exactly
/// the production shape, minus paths.
const SUBSTRATE_RULES: &str = "\
[rules.exec-substrate-only]
paths = [\"crates/engine\"]
[rules.exec-substrate-transitive]
paths = [\"crates/engine\"]
trusted = [\"crates/cluster\"]
";

#[test]
fn exec_substrate_transitive_catches_what_the_token_rule_misses() {
    let cfg = config::parse(SUBSTRATE_RULES).expect("substrate config parses");
    let root = fixtures_dir().join("exec_substrate_transitive/bad");
    let report = engine::lint_tree(&cfg, &root, &[]).expect("fixture tree walks");
    // The regression: exec-substrate-only is enabled over the same scope
    // and stays silent (no banned token in the engine file), while the
    // call-graph rule reports the laundered chain with its hops.
    assert_eq!(report.violations.len(), 1, "{}", report.render());
    let (file, v) = &report.violations[0];
    assert_eq!(file, "crates/engine/src/run.rs");
    assert_eq!(v.rule, "exec-substrate-transitive");
    assert!(v.message.contains("`request`"), "{}", v.message);
    assert!(v.message.contains("spill_partition"), "{}", v.message);
    assert!(v.message.contains("write_run"), "{}", v.message);
}

#[test]
fn exec_substrate_transitive_sanctions_the_trusted_substrate() {
    let cfg = config::parse(SUBSTRATE_RULES).expect("substrate config parses");
    let root = fixtures_dir().join("exec_substrate_transitive/ok");
    let report = engine::lint_tree(&cfg, &root, &[]).expect("fixture tree walks");
    assert!(
        report.is_clean(),
        "engine -> cluster -> simkit is the design:\n{}",
        report.render()
    );
}

#[test]
fn banned_tokens_hidden_from_the_lexer_never_fire() {
    // Strings, raw strings, char literals and nested block comments all
    // contain banned tokens; none may reach the token stream.
    assert_clean("lexer/hidden.rs");
}

#[test]
fn justified_allows_suppress_and_are_listed() {
    let report = lint_fixture("suppress/justified.rs");
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.allows.len(), 2, "both suppressions audited");
    for (_, a) in &report.allows {
        assert_eq!(a.rules, ["no-unordered-iter"]);
        assert!(
            a.justification.starts_with("fixture:"),
            "{}",
            a.justification
        );
    }
}

#[test]
fn bare_allow_fails_and_does_not_suppress() {
    let report = lint_fixture("suppress/bare.rs");
    let rules: Vec<&str> = report
        .violations
        .iter()
        .map(|(_, v)| v.rule.as_str())
        .collect();
    // The malformed allow is itself a violation, and the token it tried to
    // cover still fires (twice: the use and the alias).
    assert_eq!(
        rules,
        ["bad-allow", "no-unordered-iter", "no-unordered-iter"]
    );
    assert!(report.violations[0].1.message.contains("justification"));
    assert!(
        report.allows.is_empty(),
        "a bare allow must not be honoured"
    );
}

#[test]
fn selftest_tree_has_violations_for_every_seeded_rule() {
    // The CI self-test points the binary at this tree with its own config
    // and requires a nonzero exit; this is the library-level equivalent.
    let root = fixtures_dir().join("selftest");
    let toml = std::fs::read_to_string(root.join("simlint.toml")).expect("selftest config exists");
    let cfg = config::parse(&toml).expect("selftest config parses");
    let report = engine::lint_tree(&cfg, &root, &[]).expect("selftest tree walks");
    assert!(!report.is_clean());
    for rule in [
        "no-wall-clock",
        "no-unordered-iter",
        "seeded-rng-only",
        "no-unwrap-in-lib",
        "exec-substrate-only",
        "exec-substrate-transitive",
        "probe-passivity",
        "float-accum-order",
        "seed-provenance",
    ] {
        assert!(
            report.violations.iter().any(|(_, v)| v.rule == rule),
            "selftest must seed a {rule} violation:\n{}",
            report.render()
        );
    }
    // Diagnostics render in the canonical `file:line: rule-id: message`
    // shape, with root-relative forward-slash paths.
    for line in report.render().lines() {
        assert!(line.starts_with("src/clock.rs:"), "{line}");
    }
}
