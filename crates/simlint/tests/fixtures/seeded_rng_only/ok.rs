//! Negative fixture: an explicit seed threads through; `random` as a bare
//! identifier (not `rand::random`) must not fire.

use rand::{rngs::StdRng, Rng, SeedableRng};

pub fn seeded_draw(seed: u64) -> u64 {
    let mut random = StdRng::seed_from_u64(seed);
    random.gen()
}
