//! Positive fixture: ambient entropy sources must fire.

pub fn ambient_draw() -> (u64, u64) {
    let mut rng = rand::thread_rng();
    (rng.gen(), rand::random::<u64>())
}
