//! Lexer edge cases: banned tokens inside strings, raw strings, char
//! literals and nested block comments must never fire, for any rule.

/* outer comment
   /* nested: Instant::now() thread_rng() HashMap unsafe */
   still inside the outer comment: SystemTime x.unwrap() l.acquire_read(
*/

pub fn hidden<'a>(x: &'a str) -> (&'a str, String, char) {
    let plain = "Instant::now() and HashMap<K, V> and x.unwrap() and unsafe";
    let raw = r#"thread_rng() "SystemTime" OsRng l.acquire_write("#.to_string();
    let quote = '"'; // a double-quote char literal must not open a string
    let _ = x.len().max(1); // `1.max` must lex as a method call, not a float
    (plain, raw, quote)
}
