//! The sanctioned shape: the engine books all time through the trusted
//! substrate (`crates/cluster`), which owns the simkit acquisitions.

use cluster::run_phase;

pub fn run_join(sim: &mut Sim, spec: &JobSpec) {
    run_phase(sim, spec);
}
