//! The trusted substrate: resource acquisition lives here by design.

pub fn run_phase(sim: &mut Sim, spec: &JobSpec) {
    sim.request(DISK, spec.bytes, Box::new(|_| {}));
}
