//! The laundering regression `exec-substrate-only` cannot catch: no banned
//! token appears anywhere in this file — the acquisition happens two hops
//! away, in a helper crate the token rule does not scope.

use util::spill_partition;

pub fn run_join(sim: &mut Sim, part: &Partition) {
    spill_partition(sim, part);
}
