//! Helper crate acquiring simkit resources on the engine's behalf.

pub fn spill_partition(sim: &mut Sim, part: &Partition) {
    write_run(sim, part);
}

fn write_run(sim: &mut Sim, part: &Partition) {
    sim.request(DISK, part.bytes, Box::new(|_| {}));
}
