use std::collections::HashMap; // simlint: allow(no-unordered-iter)

pub type Cache = HashMap<u64, u64>;
