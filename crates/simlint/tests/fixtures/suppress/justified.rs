use std::collections::HashMap; // simlint: allow(no-unordered-iter) — fixture: probe-only map

// simlint: allow(no-unordered-iter) — fixture: build side is probed, never iterated
pub fn build(keys: &[u64]) -> HashMap<u64, usize> {
    keys.iter().enumerate().map(|(i, k)| (*k, i)).collect()
}
