//! Negative fixture: a typed error, or a documented `.expect("<invariant>")`
//! (sanctioned under the default `allow-expect = true`). A free function
//! named `unwrap` is not the postfix form the rule targets.

pub fn head(v: &[u8]) -> Result<u8, String> {
    v.first().copied().ok_or_else(|| "empty slice".to_string())
}

pub fn head_invariant(v: &[u8]) -> u8 {
    *v.first().expect("caller guarantees a non-empty slice")
}

pub fn unwrap(x: Option<u8>) -> u8 {
    x.unwrap_or(0)
}
