//! Positive fixture: `.unwrap()` in library code says nothing when it fires.

pub fn head(v: &[u8]) -> u8 {
    *v.first().unwrap()
}
