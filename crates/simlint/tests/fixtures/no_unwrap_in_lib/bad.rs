//! Positive fixture: `.unwrap()` in library code says nothing when it
//! fires — and `.expect("")` is the same panic wearing a disguise: the
//! allow-expect contract requires the message to name the invariant.

pub fn head(v: &[u8]) -> u8 {
    *v.first().unwrap()
}

pub fn tail(v: &[u8]) -> u8 {
    *v.last().expect("")
}
