//! Negative fixture: ordered sources (Vec, sorted view of a map) and
//! order-insensitive integer accumulation over an unordered source.

pub fn mean_latency(samples: &Vec<f64>) -> f64 {
    let mut total = 0.0;
    for v in samples {
        total += v;
    }
    total / samples.len() as f64
}

pub fn mean_sorted(samples: &HashMap<u64, f64>) -> f64 {
    let mut keys: Vec<&u64> = samples.keys().collect();
    keys.sort();
    let mut total = 0.0;
    for k in keys.iter().collect::<Vec<_>>() {
        total += samples[k];
    }
    total / samples.len() as f64
}

pub fn row_count(parts: &HashMap<u64, u64>) -> u64 {
    let mut n = 0;
    for (_, c) in parts {
        n += c;
    }
    n
}
