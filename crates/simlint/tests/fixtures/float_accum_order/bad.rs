//! Positive fixture: f64/f32 accumulation while iterating unordered
//! containers — the sum's low bits depend on iteration order. Two
//! violations: the `+=` over the map and the rebind form over the set.

pub fn mean_latency(samples: &HashMap<u64, f64>) -> f64 {
    let mut total = 0.0;
    for (_, v) in samples {
        total += v;
    }
    total / samples.len() as f64
}

pub fn joint_prob(weights: &HashSet<u32>) -> f32 {
    let mut prod = 1.0f32;
    for w in weights.iter() {
        prod = prod * decode(w);
    }
    prod
}
