//! Negative fixture: an engine that expresses its work as cluster::exec
//! phases — mechanism lives behind TaskPhase/Phase, so no simkit resource
//! is named here. (Prose mentioning sim.request() in a comment, like this
//! one, must not fire either.)

pub fn phase_structured_job(exec: &mut ClusterExec) -> f64 {
    let mut map = TaskPhase::new("map", 8);
    map.task(Task::on(0).step(TaskStep::Cpu { secs: 1.0 }));
    exec.run_tasks(map).end_secs
}
