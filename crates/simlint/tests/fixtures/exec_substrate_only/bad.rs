//! Positive fixture: an engine that books its own hardware time — every
//! direct simkit-resource call below must fire.

pub fn roll_your_own_contention(sim: &mut Sim<()>) {
    let disk = sim.add_resource("node0.disk0", 1);
    sim.request(disk, secs(1.0), Box::new(|_| {}));
    let busy = sim.resource_busy_time(disk);
    let wait = sim.resource_queue_wait(disk);
    let _ = busy + wait;
}
