//! Negative fixture: every acquire of a kind is followed by a release of
//! that kind before the next acquire, for both kinds.

pub fn balanced(l: &mut Lock, s: &mut Sim) {
    l.acquire_read(s, |s| l.release_read(s));
    l.acquire_write(s, |s| l.release_write(s));
    l.acquire_read(s, |s| l.release_read(s));
}
