//! Positive fixture for the interleave check: the `acquire_write` lands
//! between `acquire_read` and `release_read` — the writer queues behind
//! the read lock the continuation still holds (read-to-write upgrade
//! deadlock). Per-kind tracking alone cannot see this.

pub fn upgrade_in_place(l: &mut Lock, s: &mut Sim) {
    l.acquire_read(s, |s| {
        l.acquire_write(s, cont_w);
        l.release_read(s);
    });
    l.release_write(s);
}
