//! Positive fixture: the second `acquire_write` has no `release_write`
//! before it — the re-acquire-without-release deadlock shape.

pub fn double_acquire(l: &mut Lock, s: &mut Sim) {
    l.acquire_write(s, cont_a);
    l.acquire_write(s, cont_b);
    l.release_write(s);
}
