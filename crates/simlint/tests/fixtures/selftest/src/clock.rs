//! Deliberately seeded violations for the CI self-test. If simlint exits 0
//! on this tree, the gate is broken.

use std::collections::HashMap;

pub fn now_ms() -> u128 {
    std::time::Instant::now().elapsed().as_millis()
}

pub fn ambient_sample() -> u64 {
    rand::thread_rng().gen()
}

pub fn leak_order(m: HashMap<u64, u64>) -> Vec<u64> {
    m.into_values().collect()
}

pub fn head(v: &[u8]) -> u8 {
    *v.first().unwrap()
}

pub fn private_contention(sim: &mut Sim<()>) {
    let disk = sim.add_resource("disk", 1);
    sim.request(disk, secs(1.0), Box::new(|_| {}));
}

pub fn laundered_contention(sim: &mut Sim<()>) {
    private_contention(sim);
}

pub fn probe_fold(sim: &mut Sim<()>) {
    sim.schedule_at(secs(1.0), Event::Tick);
}

pub fn unstable_sum(m: &HashMap<u64, f64>) -> f64 {
    let mut total = 0.0;
    for (_, v) in m {
        total += v;
    }
    total
}

pub fn adhoc_rng() -> StdRng {
    StdRng::seed_from_u64(1234)
}
