//! Deliberately seeded violations for the CI self-test. If simlint exits 0
//! on this tree, the gate is broken.

use std::collections::HashMap;

pub fn now_ms() -> u128 {
    std::time::Instant::now().elapsed().as_millis()
}

pub fn ambient_sample() -> u64 {
    rand::thread_rng().gen()
}

pub fn leak_order(m: HashMap<u64, u64>) -> Vec<u64> {
    m.into_values().collect()
}

pub fn head(v: &[u8]) -> u8 {
    *v.first().unwrap()
}

pub fn private_contention(sim: &mut Sim<()>) {
    let disk = sim.add_resource("disk", 1);
    sim.request(disk, secs(1.0), Box::new(|_| {}));
}
