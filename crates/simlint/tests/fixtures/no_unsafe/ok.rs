//! Negative fixture: the safe equivalent, plus the word "unsafe" in prose
//! and strings (neither may fire).

pub fn reinterpret(x: &u64) -> i64 {
    i64::from_ne_bytes(x.to_ne_bytes())
}

pub fn label() -> &'static str {
    "unsafe is banned here"
}
