//! Positive fixture: any `unsafe` token fires.

pub fn reinterpret(x: &u64) -> i64 {
    unsafe { std::mem::transmute::<u64, i64>(*x) }
}
