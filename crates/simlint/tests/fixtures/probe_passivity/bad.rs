//! Positive fixture: probe-side code mutating the simulation, directly and
//! through a helper chain. Three violations: `fold_depth` (direct),
//! `fold_window` (reaches `schedule_in` via `refresh`), and `refresh`
//! itself (direct site, also a root because it lives in the probe scope).

pub fn fold_depth(sim: &mut Sim, ev: &ProbeEvent) {
    sim.schedule_at(ev.t, Event::Tick);
}

pub fn fold_window(sim: &mut Sim) {
    refresh(sim);
}

fn refresh(sim: &mut Sim) {
    sim.schedule_in(1, Event::Refresh);
}
