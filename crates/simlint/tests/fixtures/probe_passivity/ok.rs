//! Negative fixture: passive folds read the event stream and accumulate
//! into their own state; a `Probe` handler that only counts is fine.

pub fn fold_depth(acc: &mut Vec<usize>, ev: &ProbeEvent) {
    acc.push(ev.queue_depth);
}

pub fn fold_window(acc: &[f64]) -> f64 {
    acc.iter().copied().fold(0.0, f64::max)
}

impl Probe for DepthProbe {
    fn on_event(&mut self, ev: &ProbeEvent) {
        self.seen += 1;
        self.max_depth = self.max_depth.max(ev.queue_depth);
    }
}
