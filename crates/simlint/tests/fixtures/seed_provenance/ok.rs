//! Negative fixture: sanctioned seed provenance — a parameter, a named
//! scenario constant, a config field, and a stream derived from a
//! parameter. Unknown provenance never fires (the rule proves laundering,
//! it does not guess).

const SCENARIO_SEED: u64 = 7;

pub fn from_param(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

pub fn from_const() -> StdRng {
    StdRng::seed_from_u64(SCENARIO_SEED)
}

pub fn from_config(cfg: &RunConfig) -> StdRng {
    StdRng::seed_from_u64(cfg.seed)
}

pub fn worker_stream(seed: u64, worker: u64) -> StdRng {
    let derived = seed * 1000 + worker;
    StdRng::seed_from_u64(derived)
}
