//! Positive fixture: seeds that bottom out in inline literals — a hidden
//! scenario input no config or CLI flag can vary. Two violations: the
//! direct literal and the laundered `let` chain.

pub fn adhoc() -> StdRng {
    StdRng::seed_from_u64(42)
}

pub fn laundered() -> StdRng {
    let base = 17;
    let seed = base * 2 + 1;
    StdRng::seed_from_u64(seed as u64)
}
