//! Positive fixture: HashMap iteration order leaks into the result vector.

use std::collections::HashMap;

pub fn group_counts(keys: &[String]) -> Vec<(String, usize)> {
    let mut m: HashMap<String, usize> = HashMap::new();
    for k in keys {
        *m.entry(k.clone()).or_insert(0) += 1;
    }
    m.into_iter().collect()
}
