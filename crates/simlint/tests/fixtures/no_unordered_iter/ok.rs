//! Negative fixture: BTreeMap iterates in key order, so the output is
//! deterministic by construction.

use std::collections::BTreeMap;

pub fn group_counts(keys: &[String]) -> Vec<(String, usize)> {
    let mut m: BTreeMap<String, usize> = BTreeMap::new();
    for k in keys {
        *m.entry(k.clone()).or_insert(0) += 1;
    }
    m.into_iter().collect()
}
