//! Positive fixture: every ambient clock source below must fire.

pub fn naive_timer() -> std::time::Duration {
    let t0 = std::time::Instant::now();
    t0.elapsed()
}

pub fn epoch_secs() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .expect("epoch is in the past")
        .as_secs()
}
