//! Negative fixture: simulated time only — the DES clock hands `now_s` in,
//! no ambient clock is consulted. (Prose mentioning Instant::now() in a
//! comment, like this one, must not fire either.)

pub fn charge(now_s: f64, service_s: f64) -> f64 {
    now_s + service_s
}

pub fn instant_of(step: u64, step_s: f64) -> f64 {
    step as f64 * step_s
}
