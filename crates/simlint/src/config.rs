//! `simlint.toml` parsing — a deliberately tiny TOML subset, so the tool
//! stays dependency-free. Supported: `[rules.<id>]` / `[global]` section
//! headers, `key = "string"`, `key = true|false`, and (possibly multiline)
//! string arrays `key = ["a", "b"]`. `#` comments are stripped outside
//! quotes. Anything else is a hard error: lint configuration must never be
//! silently misread.

use std::collections::BTreeMap;
use std::fmt;

/// Every rule simlint knows. Unknown ids in the config or in suppression
/// comments are errors, so typos can't silently disable a gate.
pub const KNOWN_RULES: &[&str] = &[
    "no-wall-clock",
    "no-unordered-iter",
    "seeded-rng-only",
    "no-unwrap-in-lib",
    "no-unsafe",
    "lock-discipline",
    "exec-substrate-only",
    "exec-substrate-transitive",
    "probe-passivity",
    "float-accum-order",
    "seed-provenance",
];

/// Per-rule configuration (one `[rules.<id>]` section).
#[derive(Debug, Clone)]
pub struct RuleConfig {
    pub id: String,
    pub enabled: bool,
    /// Path prefixes (relative to the workspace root) the rule applies to.
    /// Empty means "everywhere".
    pub paths: Vec<String>,
    /// Path prefixes carved back out of `paths`.
    pub exclude: Vec<String>,
    /// Ignore violations at or after the file's first `#[cfg(test)]`.
    pub skip_cfg_test: bool,
    /// Ignore files under a `tests/` directory (integration suites).
    pub skip_tests_dir: bool,
    /// `no-unwrap-in-lib` only: treat `.expect("...")` as the sanctioned,
    /// documented form (true) or flag it like `.unwrap()` (false).
    pub allow_expect: bool,
    /// Banned-token-path override for the token rules (`A::B` or `A`).
    /// Empty means the rule's built-in default list.
    pub ban: Vec<String>,
    /// Graph rules only: path prefixes of the sanctioned substrate. Call
    /// chains may pass through (or sink inside) these without flagging.
    pub trusted: Vec<String>,
}

impl RuleConfig {
    pub fn new(id: &str) -> RuleConfig {
        RuleConfig {
            id: id.to_string(),
            enabled: true,
            paths: Vec::new(),
            exclude: Vec::new(),
            skip_cfg_test: false,
            skip_tests_dir: false,
            allow_expect: true,
            ban: Vec::new(),
            trusted: Vec::new(),
        }
    }
}

/// The whole config file.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Paths never linted by any rule.
    pub exclude: Vec<String>,
    /// Rule sections, keyed by id. A rule with no section runs nowhere
    /// (explicit opt-in per rule keeps the gate auditable).
    pub rules: BTreeMap<String, RuleConfig>,
}

#[derive(Debug)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simlint.toml:{}: {}", self.line, self.message)
    }
}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Strip a `#` comment, respecting double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

/// Parse a quoted string at the start of `s`; returns (value, rest).
fn parse_str(s: &str, line: usize) -> Result<(String, &str), ConfigError> {
    let s = s.trim_start();
    let Some(rest) = s.strip_prefix('"') else {
        return Err(err(line, format!("expected string, found `{s}`")));
    };
    let Some(end) = rest.find('"') else {
        return Err(err(line, "unterminated string"));
    };
    Ok((rest[..end].to_string(), &rest[end + 1..]))
}

#[derive(Debug, PartialEq)]
enum Value {
    Str(String),
    Bool(bool),
    Array(Vec<String>),
}

pub fn parse(src: &str) -> Result<Config, ConfigError> {
    let mut config = Config::default();
    // Section cursor: None (preamble), Some("global"), or Some(rule id).
    let mut section: Option<String> = None;

    let mut lines = src.lines().enumerate();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        // Section header.
        if let Some(h) = line.strip_prefix('[') {
            let Some(name) = h.strip_suffix(']') else {
                return Err(err(lineno, format!("malformed section header `{line}`")));
            };
            let name = name.trim();
            if name == "global" {
                section = Some("global".to_string());
            } else if let Some(rule) = name.strip_prefix("rules.") {
                if !KNOWN_RULES.contains(&rule) {
                    return Err(err(lineno, format!("unknown rule `{rule}`")));
                }
                config
                    .rules
                    .entry(rule.to_string())
                    .or_insert_with(|| RuleConfig::new(rule));
                section = Some(rule.to_string());
            } else {
                return Err(err(lineno, format!("unknown section `[{name}]`")));
            }
            continue;
        }
        // key = value
        let Some((key, val)) = line.split_once('=') else {
            return Err(err(
                lineno,
                format!("expected `key = value`, found `{line}`"),
            ));
        };
        let key = key.trim().to_string();
        let mut buf = val.trim().to_string();
        // Multiline array: keep consuming lines until brackets balance.
        if buf.starts_with('[') {
            while !buf.contains(']') {
                let Some((_, next)) = lines.next() else {
                    return Err(err(lineno, format!("unterminated array for `{key}`")));
                };
                buf.push(' ');
                buf.push_str(strip_comment(next).trim());
            }
        }
        let value = parse_value(&buf, lineno)?;
        apply(&mut config, section.as_deref(), &key, value, lineno)?;
    }
    Ok(config)
}

fn parse_value(s: &str, line: usize) -> Result<Value, ConfigError> {
    let s = s.trim();
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if s.starts_with('"') {
        let (v, rest) = parse_str(s, line)?;
        if !rest.trim().is_empty() {
            return Err(err(line, format!("trailing junk after string: `{rest}`")));
        }
        return Ok(Value::Str(v));
    }
    if let Some(body) = s.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return Err(err(line, "unterminated array"));
        };
        let mut items = Vec::new();
        let mut rest = body.trim();
        while !rest.is_empty() {
            let (v, r) = parse_str(rest, line)?;
            items.push(v);
            rest = r.trim();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r.trim();
            } else if !rest.is_empty() {
                return Err(err(line, format!("expected `,` in array, found `{rest}`")));
            }
        }
        return Ok(Value::Array(items));
    }
    Err(err(line, format!("unsupported value `{s}`")))
}

fn apply(
    config: &mut Config,
    section: Option<&str>,
    key: &str,
    value: Value,
    line: usize,
) -> Result<(), ConfigError> {
    match section {
        Some("global") => match (key, value) {
            ("exclude", Value::Array(v)) => config.exclude = v,
            (k, _) => return Err(err(line, format!("unknown global key `{k}`"))),
        },
        Some(rule_id) => {
            let rule = config
                .rules
                .get_mut(rule_id)
                .expect("section cursor points at an inserted rule");
            match (key, value) {
                ("enabled", Value::Bool(b)) => rule.enabled = b,
                ("paths", Value::Array(v)) => rule.paths = v,
                ("exclude", Value::Array(v)) => rule.exclude = v,
                ("skip-cfg-test", Value::Bool(b)) => rule.skip_cfg_test = b,
                ("skip-tests-dir", Value::Bool(b)) => rule.skip_tests_dir = b,
                ("allow-expect", Value::Bool(b)) => rule.allow_expect = b,
                ("ban", Value::Array(v)) => rule.ban = v,
                ("trusted", Value::Array(v)) => rule.trusted = v,
                (k, v) => {
                    return Err(err(
                        line,
                        format!("unknown or mistyped rule key `{k}` (= {v:?})"),
                    ))
                }
            }
        }
        None => return Err(err(line, format!("key `{key}` outside any section"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_scalars_and_multiline_arrays() {
        let src = r#"
# top comment
[global]
exclude = ["vendor", "target"] # trailing comment

[rules.no-unsafe]
enabled = true
paths = [
  "crates",   # one per line
  "src",
]
skip-cfg-test = true
"#;
        let c = parse(src).unwrap();
        assert_eq!(c.exclude, vec!["vendor", "target"]);
        let r = &c.rules["no-unsafe"];
        assert!(r.enabled && r.skip_cfg_test);
        assert_eq!(r.paths, vec!["crates", "src"]);
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let e = parse("[rules.no-such-rule]\n").unwrap_err();
        assert!(e.message.contains("unknown rule"), "{e}");
    }

    #[test]
    fn unknown_key_is_an_error() {
        let e = parse("[rules.no-unsafe]\nfrobnicate = true\n").unwrap_err();
        assert!(e.message.contains("unknown or mistyped"), "{e}");
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let c = parse("[global]\nexclude = [\"a#b\"]\n").unwrap();
        assert_eq!(c.exclude, vec!["a#b"]);
    }
}
