//! The rule implementations. Each rule takes the lexed file plus its
//! [`RuleConfig`] and emits violations; path scoping, `#[cfg(test)]`
//! trimming and suppression comments are handled by the engine.

use crate::config::RuleConfig;
use crate::lexer::{Lexed, Spanned, Tok};

/// One diagnostic, formatted by the engine as `file:line: rule-id: message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    pub line: usize,
    pub rule: String,
    pub message: String,
}

fn violation(line: usize, rule: &str, message: impl Into<String>) -> Violation {
    Violation {
        line,
        rule: rule.to_string(),
        message: message.into(),
    }
}

/// Built-in banned token paths per rule (`ban = [...]` overrides).
///
/// `no-wall-clock`: simulated code must take time from the DES clock only —
/// any ambient wall-clock or calendar source makes runs non-replayable.
/// `seeded-rng-only`: every random stream must come from an explicit seed
/// (this also guards the vendored-xoshiro `StdRng` caveat in ROADMAP.md:
/// an entropy-seeded generator would hide that streams differ from
/// upstream `rand`).
/// `no-unordered-iter`: `HashMap`/`HashSet` iteration order is arbitrary;
/// in result-producing crates it leaks straight into output bytes.
/// `exec-substrate-only`: engine crates must take all disk/CPU/net time
/// through `cluster::exec` phases — acquiring simkit resources directly
/// would re-create the parallel contention path the substrate unified.
fn default_bans(rule: &str) -> &'static [&'static str] {
    match rule {
        "no-wall-clock" => &[
            "Instant::now",
            "SystemTime",
            "UNIX_EPOCH",
            "Utc::now",
            "Local::now",
            "chrono",
        ],
        "seeded-rng-only" => &[
            "thread_rng",
            "rand::random",
            "from_entropy",
            "OsRng",
            "getrandom",
        ],
        "no-unordered-iter" => &["HashMap", "HashSet", "hash_map", "hash_set"],
        "exec-substrate-only" => &[
            "add_resource",
            "use_resource",
            "request",
            "request_as",
            "resource_busy_time",
            "resource_queue_wait",
            "resource_completions",
            "resource_queue_len",
        ],
        _ => &[],
    }
}

/// Match banned token paths against the token stream. A pattern `A::B`
/// requires the exact ident/`::`/ident sequence; a single-segment pattern
/// matches any occurrence of that identifier (so `SystemTime` fires on
/// `std::time::SystemTime` too).
fn check_banned(rule: &RuleConfig, lexed: &Lexed) -> Vec<Violation> {
    let patterns: Vec<Vec<&str>> = if rule.ban.is_empty() {
        default_bans(&rule.id)
            .iter()
            .map(|p| p.split("::").collect())
            .collect()
    } else {
        rule.ban.iter().map(|p| p.split("::").collect()).collect()
    };
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        for pat in &patterns {
            if pat[0] != name.as_str() {
                continue;
            }
            // The remaining segments must follow as `:: seg :: seg ...`.
            let mut j = i + 1;
            let mut matched = true;
            for seg in &pat[1..] {
                match (toks.get(j), toks.get(j + 1)) {
                    (
                        Some(Spanned {
                            tok: Tok::PathSep, ..
                        }),
                        Some(Spanned {
                            tok: Tok::Ident(s), ..
                        }),
                    ) if s.as_str() == *seg => j += 2,
                    _ => {
                        matched = false;
                        break;
                    }
                }
            }
            if matched {
                out.push(violation(
                    t.line,
                    &rule.id,
                    format!("banned token `{}`", pat.join("::")),
                ));
                break; // one diagnostic per site, even if several patterns hit
            }
        }
    }
    out
}

/// `.unwrap()` — and `.expect(` unless `allow-expect` — in library code.
fn check_unwrap(rule: &RuleConfig, lexed: &Lexed) -> Vec<Violation> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        let flagged = match name.as_str() {
            "unwrap" => true,
            "expect" => !rule.allow_expect,
            _ => continue,
        };
        if !flagged {
            continue;
        }
        let after_dot = matches!(
            toks.get(i.wrapping_sub(1)),
            Some(Spanned {
                tok: Tok::Punct('.'),
                ..
            })
        ) && i > 0;
        let called = matches!(
            toks.get(i + 1),
            Some(Spanned {
                tok: Tok::Punct('('),
                ..
            })
        );
        if after_dot && called {
            out.push(violation(
                t.line,
                &rule.id,
                format!(
                    "`.{name}()` in library code — return a typed error or use \
                     `.expect(\"<invariant>\")` with a message"
                ),
            ));
        }
    }
    out
}

/// Any `unsafe` token. Crates also carry `#![forbid(unsafe_code)]`; the lint
/// catches the attribute being removed together with an unsafe block in one
/// commit, which rustc alone would accept.
fn check_unsafe(rule: &RuleConfig, lexed: &Lexed) -> Vec<Violation> {
    lexed
        .tokens
        .iter()
        .filter(|t| matches!(&t.tok, Tok::Ident(i) if i == "unsafe"))
        .map(|t| violation(t.line, &rule.id, "`unsafe` is forbidden workspace-wide"))
        .collect()
}

/// Textual pairing check for the docstore global-lock protocol
/// (`RwLock::acquire_read/_write` with continuation-passing release).
///
/// Source order is not execution order in continuation style, so this is a
/// deliberately approximate smell check with two guarantees that held when
/// the rule landed and that a regression would break:
///  1. a file that acquires a lock kind must also release that kind, and
///  2. between two consecutive `acquire_<kind>` sites there must be at
///     least one `release_<kind>` site — a second acquire with no release
///     in between is the re-acquire-without-release deadlock shape.
fn check_lock_discipline(rule: &RuleConfig, lexed: &Lexed) -> Vec<Violation> {
    let mut out = Vec::new();
    for kind in ["read", "write"] {
        let acq = format!("acquire_{kind}");
        let rel = format!("release_{kind}");
        let mut last_acquire: Option<usize> = None; // line of acquire awaiting a release
        let mut acquires = 0usize;
        let mut releases = 0usize;
        for t in &lexed.tokens {
            let Tok::Ident(name) = &t.tok else { continue };
            if *name == acq {
                acquires += 1;
                if let Some(prev) = last_acquire {
                    out.push(violation(
                        t.line,
                        &rule.id,
                        format!(
                            "`{acq}` follows `{acq}` at line {prev} with no \
                             `{rel}` in between — continuation re-acquires \
                             without releasing"
                        ),
                    ));
                }
                last_acquire = Some(t.line);
            } else if *name == rel {
                releases += 1;
                last_acquire = None;
            }
        }
        if acquires > 0 && releases == 0 {
            out.push(violation(
                last_acquire.unwrap_or(1),
                &rule.id,
                format!("`{acq}` with no `{rel}` anywhere in the file"),
            ));
        }
    }
    out
}

/// Run one rule over a lexed file.
pub fn run_rule(rule: &RuleConfig, lexed: &Lexed) -> Vec<Violation> {
    match rule.id.as_str() {
        "no-wall-clock" | "seeded-rng-only" | "no-unordered-iter" | "exec-substrate-only" => {
            check_banned(rule, lexed)
        }
        "no-unwrap-in-lib" => check_unwrap(rule, lexed),
        "no-unsafe" => check_unsafe(rule, lexed),
        "lock-discipline" => check_lock_discipline(rule, lexed),
        other => unreachable!("unknown rule `{other}` got past config validation"),
    }
}

/// Line of the first `#[cfg(test)]` attribute, if any: tokens
/// `#` `[` `cfg` `(` `test` `)` `]`.
pub fn cfg_test_line(lexed: &Lexed) -> Option<usize> {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !matches!(t.tok, Tok::Punct('#')) {
            continue;
        }
        let shape = [
            toks.get(i + 1).map(|s| &s.tok),
            toks.get(i + 2).map(|s| &s.tok),
            toks.get(i + 3).map(|s| &s.tok),
            toks.get(i + 4).map(|s| &s.tok),
            toks.get(i + 5).map(|s| &s.tok),
            toks.get(i + 6).map(|s| &s.tok),
        ];
        let ok = matches!(
            shape,
            [
                Some(Tok::Punct('[')),
                Some(Tok::Ident(a)),
                Some(Tok::Punct('(')),
                Some(Tok::Ident(b)),
                Some(Tok::Punct(')')),
                Some(Tok::Punct(']')),
            ] if a.as_str() == "cfg" && b.as_str() == "test"
        );
        if ok {
            return Some(t.line);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn rule(id: &str) -> RuleConfig {
        RuleConfig::new(id)
    }

    #[test]
    fn banned_path_pattern_requires_full_path() {
        let lexed = lex("let x = rand::random::<u8>(); let random = 3;");
        let v = check_banned(&rule("seeded-rng-only"), &lexed);
        assert_eq!(v.len(), 1, "bare ident `random` must not fire: {v:?}");
    }

    #[test]
    fn single_segment_pattern_fires_on_qualified_use() {
        let lexed = lex("let t = std::time::SystemTime::now();");
        let v = check_banned(&rule("no-wall-clock"), &lexed);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("SystemTime"));
    }

    #[test]
    fn unwrap_fires_expect_respects_config() {
        let lexed = lex("x.unwrap(); y.expect(\"inv\");");
        let mut r = rule("no-unwrap-in-lib");
        assert_eq!(check_unwrap(&r, &lexed).len(), 1);
        r.allow_expect = false;
        assert_eq!(check_unwrap(&r, &lexed).len(), 2);
    }

    #[test]
    fn unwrap_without_receiver_dot_is_not_flagged() {
        // A free function named unwrap (or Option::unwrap path call) is not
        // the `.unwrap()` postfix form the rule targets.
        let lexed = lex("let v = unwrap(x); Option::unwrap(y);");
        assert!(check_unwrap(&rule("no-unwrap-in-lib"), &lexed).is_empty());
    }

    #[test]
    fn lock_discipline_balanced_file_passes() {
        let lexed = lex("l.acquire_read(s, a); l.release_read(s);
             l.acquire_read(s, b); l.release_read(s);");
        assert!(check_lock_discipline(&rule("lock-discipline"), &lexed).is_empty());
    }

    #[test]
    fn lock_discipline_reacquire_without_release_fires() {
        let lexed = lex("l.acquire_write(s, a); l.acquire_write(s, b); l.release_write(s);");
        let v = check_lock_discipline(&rule("lock-discipline"), &lexed);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("re-acquires"));
    }

    #[test]
    fn lock_discipline_missing_release_fires() {
        let lexed = lex("l.acquire_read(s, a);");
        let v = check_lock_discipline(&rule("lock-discipline"), &lexed);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("no `release_read`"));
    }

    #[test]
    fn cfg_test_attribute_is_found() {
        let lexed = lex("fn a() {}\n#[cfg(test)]\nmod tests {}\n");
        assert_eq!(cfg_test_line(&lexed), Some(2));
        assert_eq!(
            cfg_test_line(&lex("#[cfg(feature = \"x\")] fn b() {}")),
            None
        );
    }
}
