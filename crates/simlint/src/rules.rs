//! The rule implementations. Each rule takes the lexed file plus its
//! [`RuleConfig`] and emits violations; path scoping, `#[cfg(test)]`
//! trimming and suppression comments are handled by the engine.

use crate::config::RuleConfig;
use crate::lexer::{Lexed, Spanned, Tok};
use crate::parser::{tokens_text, FnItem, ItemTree};
use std::collections::{BTreeMap, BTreeSet};

/// One diagnostic, formatted by the engine as `file:line: rule-id: message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    pub line: usize,
    pub rule: String,
    pub message: String,
}

fn violation(line: usize, rule: &str, message: impl Into<String>) -> Violation {
    Violation {
        line,
        rule: rule.to_string(),
        message: message.into(),
    }
}

/// Built-in banned token paths per rule (`ban = [...]` overrides).
///
/// `no-wall-clock`: simulated code must take time from the DES clock only —
/// any ambient wall-clock or calendar source makes runs non-replayable.
/// `seeded-rng-only`: every random stream must come from an explicit seed
/// (this also guards the vendored-xoshiro `StdRng` caveat in ROADMAP.md:
/// an entropy-seeded generator would hide that streams differ from
/// upstream `rand`).
/// `no-unordered-iter`: `HashMap`/`HashSet` iteration order is arbitrary;
/// in result-producing crates it leaks straight into output bytes.
/// `exec-substrate-only`: engine crates must take all disk/CPU/net time
/// through `cluster::exec` phases — acquiring simkit resources directly
/// would re-create the parallel contention path the substrate unified.
/// `exec-substrate-transitive`: same acquisition list as the token rule,
/// but matched against call-graph *sinks* so a helper in an allowed crate
/// can't launder the acquisition.
/// `probe-passivity`: the `&mut Sim` surface — anything that schedules,
/// acquires, or reconfigures. Probe-side code reaching one of these would
/// let observers perturb the simulation they observe.
pub fn default_bans(rule: &str) -> &'static [&'static str] {
    match rule {
        "no-wall-clock" => &[
            "Instant::now",
            "SystemTime",
            "UNIX_EPOCH",
            "Utc::now",
            "Local::now",
            "chrono",
        ],
        "seeded-rng-only" => &[
            "thread_rng",
            "rand::random",
            "from_entropy",
            "OsRng",
            "getrandom",
        ],
        "no-unordered-iter" => &["HashMap", "HashSet", "hash_map", "hash_set"],
        "exec-substrate-only" | "exec-substrate-transitive" => &[
            "add_resource",
            "use_resource",
            "request",
            "request_as",
            "resource_busy_time",
            "resource_queue_wait",
            "resource_completions",
            "resource_queue_len",
        ],
        "probe-passivity" => &[
            "schedule_at",
            "schedule_in",
            "add_resource",
            "request",
            "request_as",
            "use_resource",
            "set_probe",
            "run_until",
        ],
        _ => &[],
    }
}

/// Match banned token paths against the token stream. A pattern `A::B`
/// requires the exact ident/`::`/ident sequence; a single-segment pattern
/// matches any occurrence of that identifier (so `SystemTime` fires on
/// `std::time::SystemTime` too).
fn check_banned(rule: &RuleConfig, lexed: &Lexed) -> Vec<Violation> {
    let patterns: Vec<Vec<&str>> = if rule.ban.is_empty() {
        default_bans(&rule.id)
            .iter()
            .map(|p| p.split("::").collect())
            .collect()
    } else {
        rule.ban.iter().map(|p| p.split("::").collect()).collect()
    };
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        for pat in &patterns {
            if pat[0] != name.as_str() {
                continue;
            }
            // The remaining segments must follow as `:: seg :: seg ...`.
            let mut j = i + 1;
            let mut matched = true;
            for seg in &pat[1..] {
                match (toks.get(j), toks.get(j + 1)) {
                    (
                        Some(Spanned {
                            tok: Tok::PathSep, ..
                        }),
                        Some(Spanned {
                            tok: Tok::Ident(s), ..
                        }),
                    ) if s.as_str() == *seg => j += 2,
                    _ => {
                        matched = false;
                        break;
                    }
                }
            }
            if matched {
                out.push(violation(
                    t.line,
                    &rule.id,
                    format!("banned token `{}`", pat.join("::")),
                ));
                break; // one diagnostic per site, even if several patterns hit
            }
        }
    }
    out
}

/// `.unwrap()` — and `.expect(` unless `allow-expect` — in library code.
/// With `allow-expect`, the documented contract is that the message names
/// the violated invariant, so an empty (or whitespace-only) message is
/// still a violation: it panics with no diagnosis, exactly like `.unwrap()`.
fn check_unwrap(rule: &RuleConfig, lexed: &Lexed) -> Vec<Violation> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        if name != "unwrap" && name != "expect" {
            continue;
        }
        let after_dot = matches!(
            toks.get(i.wrapping_sub(1)),
            Some(Spanned {
                tok: Tok::Punct('.'),
                ..
            })
        ) && i > 0;
        let called = matches!(
            toks.get(i + 1),
            Some(Spanned {
                tok: Tok::Punct('('),
                ..
            })
        );
        if !(after_dot && called) {
            continue;
        }
        if name == "expect" && rule.allow_expect {
            // Sanctioned form — unless the message is an empty literal.
            let empty_msg = matches!(
                (toks.get(i + 2), toks.get(i + 3)),
                (
                    Some(Spanned {
                        tok: Tok::Str(msg), ..
                    }),
                    Some(Spanned {
                        tok: Tok::Punct(')'),
                        ..
                    }),
                ) if msg.trim().is_empty()
            );
            if empty_msg {
                out.push(violation(
                    t.line,
                    &rule.id,
                    "`.expect(\"\")` with an empty message — the message must \
                     name the violated invariant",
                ));
            }
            continue;
        }
        out.push(violation(
            t.line,
            &rule.id,
            format!(
                "`.{name}()` in library code — return a typed error or use \
                 `.expect(\"<invariant>\")` with a message"
            ),
        ));
    }
    out
}

/// Any `unsafe` token. Crates also carry `#![forbid(unsafe_code)]`; the lint
/// catches the attribute being removed together with an unsafe block in one
/// commit, which rustc alone would accept.
fn check_unsafe(rule: &RuleConfig, lexed: &Lexed) -> Vec<Violation> {
    lexed
        .tokens
        .iter()
        .filter(|t| matches!(&t.tok, Tok::Ident(i) if i == "unsafe"))
        .map(|t| violation(t.line, &rule.id, "`unsafe` is forbidden workspace-wide"))
        .collect()
}

/// Textual pairing check for the docstore global-lock protocol
/// (`RwLock::acquire_read/_write` with continuation-passing release).
///
/// Source order is not execution order in continuation style, so this is a
/// deliberately approximate smell check with two guarantees that held when
/// the rule landed and that a regression would break:
///  1. a file that acquires a lock kind must also release that kind,
///  2. between two consecutive `acquire_<kind>` sites there must be at
///     least one `release_<kind>` site — a second acquire with no release
///     in between is the re-acquire-without-release deadlock shape, and
///  3. an `acquire_write` must not land between an `acquire_read` and its
///     `release_read` — the writer queues behind the very read lock the
///     continuation still holds, which is the read-to-write upgrade
///     deadlock. (Kinds used to be tracked in isolation, hiding this.)
fn check_lock_discipline(rule: &RuleConfig, lexed: &Lexed) -> Vec<Violation> {
    let mut out = Vec::new();
    // Pass 3: write-acquire inside an open read window.
    let mut open_read: Option<usize> = None;
    for t in &lexed.tokens {
        let Tok::Ident(name) = &t.tok else { continue };
        match name.as_str() {
            "acquire_read" => open_read = Some(t.line),
            "release_read" => open_read = None,
            "acquire_write" => {
                if let Some(prev) = open_read {
                    out.push(violation(
                        t.line,
                        &rule.id,
                        format!(
                            "`acquire_write` lands inside the read window opened \
                             by `acquire_read` at line {prev} — release the read \
                             lock before acquiring the write lock"
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
    for kind in ["read", "write"] {
        let acq = format!("acquire_{kind}");
        let rel = format!("release_{kind}");
        let mut last_acquire: Option<usize> = None; // line of acquire awaiting a release
        let mut acquires = 0usize;
        let mut releases = 0usize;
        for t in &lexed.tokens {
            let Tok::Ident(name) = &t.tok else { continue };
            if *name == acq {
                acquires += 1;
                if let Some(prev) = last_acquire {
                    out.push(violation(
                        t.line,
                        &rule.id,
                        format!(
                            "`{acq}` follows `{acq}` at line {prev} with no \
                             `{rel}` in between — continuation re-acquires \
                             without releasing"
                        ),
                    ));
                }
                last_acquire = Some(t.line);
            } else if *name == rel {
                releases += 1;
                last_acquire = None;
            }
        }
        if acquires > 0 && releases == 0 {
            out.push(violation(
                last_acquire.unwrap_or(1),
                &rule.id,
                format!("`{acq}` with no `{rel}` anywhere in the file"),
            ));
        }
    }
    out
}

/// Per-function type facts for the flow rules, inferred from parameter
/// types and `let` statements (ascriptions, float-literal initialisers,
/// `HashMap`/`HashSet` constructors, and facts propagated from already-
/// known locals). Deliberately shallow: a variable with no fact simply
/// never fires a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fact {
    Float,
    Unordered,
}

fn is_float_lit(n: &str) -> bool {
    !n.starts_with("0x") && (n.contains('.') || n.ends_with("f32") || n.ends_with("f64"))
}

fn fact_of(ids: &[String], saw_float_lit: bool, facts: &BTreeMap<String, Fact>) -> Option<Fact> {
    let has = |needle: &str| ids.iter().any(|i| i == needle);
    // Container-ness wins: `&HashMap<u32, f64>` is an unordered source,
    // not a float, even though `f64` appears in the type text.
    if has("HashMap")
        || has("HashSet")
        || ids
            .iter()
            .any(|i| facts.get(i.as_str()) == Some(&Fact::Unordered))
    {
        return Some(Fact::Unordered);
    }
    if saw_float_lit || has("f32") || has("f64") {
        return Some(Fact::Float);
    }
    None
}

fn local_facts(f: &FnItem, toks: &[Spanned]) -> BTreeMap<String, Fact> {
    let mut facts = BTreeMap::new();
    for p in &f.params {
        let ids: Vec<String> =
            p.ty.split(|c: char| !c.is_alphanumeric() && c != '_')
                .map(str::to_string)
                .collect();
        if let Some(fact) = fact_of(&ids, false, &facts) {
            facts.insert(p.name.clone(), fact);
        }
    }
    let Some((s, e)) = f.body else { return facts };
    let mut i = s;
    while i <= e && i < toks.len() {
        if !matches!(&toks[i].tok, Tok::Ident(kw) if kw == "let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Ident(m)) if m == "mut") {
            j += 1;
        }
        let Some(Tok::Ident(name)) = toks.get(j).map(|t| &t.tok) else {
            i = j;
            continue; // destructuring pattern — no single fact to record
        };
        let name = name.clone();
        // Everything up to the terminating `;` — ascription plus rhs.
        let mut depth = 0i32;
        let mut k = j + 1;
        let mut ids = Vec::new();
        let mut saw_float_lit = false;
        while k <= e && k < toks.len() {
            match &toks[k].tok {
                Tok::Punct('(' | '[' | '{') => depth += 1,
                Tok::Punct(')' | ']' | '}') => depth -= 1,
                Tok::Punct(';') if depth <= 0 => break,
                Tok::Ident(id) => ids.push(id.clone()),
                Tok::Num(n) if is_float_lit(n) => saw_float_lit = true,
                _ => {}
            }
            k += 1;
        }
        if let Some(fact) = fact_of(&ids, saw_float_lit, &facts) {
            facts.insert(name, fact);
        }
        i = k;
    }
    facts
}

/// `float-accum-order`: an `f32`/`f64` accumulation (`x += ..`, `x -= ..`,
/// `x *= ..`, or `x = x + ..`) inside a `for` loop whose source is provably
/// unordered (`HashMap`/`HashSet` by local type fact or by name). Float
/// addition is not associative, so the sum's low bits — and therefore the
/// output bytes — would depend on container iteration order. The rule is
/// lenient by construction: unknown source types never fire, and an
/// ordering adapter in the source expression (`sorted`, `collect` into a
/// `Vec`/`BTreeMap`, …) clears it.
fn check_float_accum(rule: &RuleConfig, lexed: &Lexed, tree: &ItemTree) -> Vec<Violation> {
    const ADAPTERS: &[&str] = &[
        "sorted", "sort", "sort_by", "collect", "BTreeMap", "BTreeSet",
    ];
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for f in &tree.fns {
        if f.in_test {
            continue;
        }
        let Some((s, e)) = f.body else { continue };
        let e = e.min(toks.len().saturating_sub(1));
        let facts = local_facts(f, toks);
        let mut i = s;
        while i <= e {
            if !matches!(&toks[i].tok, Tok::Ident(kw) if kw == "for") {
                i += 1;
                continue;
            }
            // `for <pat> in <expr> {` — find the `in` at bracket depth 0.
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut in_pos = None;
            while j <= e {
                match &toks[j].tok {
                    Tok::Punct('(' | '[') => depth += 1,
                    Tok::Punct(')' | ']') => depth -= 1,
                    Tok::Punct('{') if depth == 0 => break,
                    Tok::Ident(kw) if kw == "in" && depth == 0 => {
                        in_pos = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            let Some(in_pos) = in_pos else {
                i += 1;
                continue;
            };
            // Source expression runs to the body `{` (struct literals are
            // not allowed in a `for` source without parens).
            depth = 0;
            let mut k = in_pos + 1;
            let mut open = None;
            while k <= e {
                match &toks[k].tok {
                    Tok::Punct('(' | '[') => depth += 1,
                    Tok::Punct(')' | ']') => depth -= 1,
                    Tok::Punct('{') if depth == 0 => {
                        open = Some(k);
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            let Some(open) = open else {
                i = in_pos + 1;
                continue;
            };
            let mut unordered_src = None;
            let mut adapted = false;
            for t in &toks[in_pos + 1..open] {
                if let Tok::Ident(id) = &t.tok {
                    if id == "HashMap"
                        || id == "HashSet"
                        || facts.get(id.as_str()) == Some(&Fact::Unordered)
                    {
                        unordered_src.get_or_insert_with(|| id.clone());
                    }
                    if ADAPTERS.contains(&id.as_str()) {
                        adapted = true;
                    }
                }
            }
            // Matching close brace of the loop body.
            let mut close = open;
            depth = 0;
            while close <= e {
                match &toks[close].tok {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                close += 1;
            }
            if let (Some(src), false) = (unordered_src, adapted) {
                for k in open + 1..close.min(toks.len()) {
                    let Tok::Ident(name) = &toks[k].tok else {
                        continue;
                    };
                    let float_acc = facts.get(name.as_str()) == Some(&Fact::Float);
                    let p = |o: usize, c: char| matches!(toks.get(k + o).map(|t| &t.tok), Some(Tok::Punct(x)) if *x == c);
                    // `x += ..` / `x -= ..` / `x *= ..`
                    let compound = (p(1, '+') || p(1, '-') || p(1, '*')) && p(2, '=') && !p(0, '.');
                    let float_rhs = matches!(
                        toks.get(k + 3).map(|t| &t.tok),
                        Some(Tok::Num(n)) if is_float_lit(n)
                    );
                    // `x = x + ..`
                    let rebind = p(1, '=')
                        && !p(2, '=')
                        && matches!(toks.get(k + 2).map(|t| &t.tok),
                                    Some(Tok::Ident(n2)) if n2 == name)
                        && (p(3, '+') || p(3, '-') || p(3, '*'));
                    if (compound && (float_acc || float_rhs)) || (rebind && float_acc) {
                        out.push(violation(
                            toks[k].line,
                            &rule.id,
                            format!(
                                "float accumulation into `{name}` while iterating \
                                 unordered `{src}` — summation order depends on \
                                 container order; iterate a sorted view instead"
                            ),
                        ));
                    }
                }
            }
            i = open + 1; // keep scanning inside for nested loops
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Identifiers that are provenance-neutral in a seed expression: casts and
/// integer type names contribute no entropy of their own.
const CAST_NEUTRAL: &[&str] = &[
    "as", "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Slice out the right-hand side of `let [mut] <name> = …;` in a body.
fn let_rhs<'a>(toks: &'a [Spanned], body: (usize, usize), name: &str) -> Option<&'a [Spanned]> {
    let (s, e) = body;
    let e = e.min(toks.len().saturating_sub(1));
    let mut i = s;
    while i + 2 <= e {
        if !matches!(&toks[i].tok, Tok::Ident(kw) if kw == "let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if matches!(&toks[j].tok, Tok::Ident(m) if m == "mut") {
            j += 1;
        }
        if !matches!(&toks[j].tok, Tok::Ident(n) if n == name) {
            i = j;
            continue;
        }
        // Skip an optional `: Ty` to the `=` at bracket depth 0.
        let mut depth = 0i32;
        let mut k = j + 1;
        while k <= e {
            match &toks[k].tok {
                Tok::Punct('(' | '[' | '<') => depth += 1,
                Tok::Punct(')' | ']' | '>') => depth -= 1,
                Tok::Punct('=') if depth == 0 => break,
                Tok::Punct(';') if depth == 0 => return None,
                _ => {}
            }
            k += 1;
        }
        let start = k + 1;
        depth = 0;
        let mut m = start;
        while m <= e {
            match &toks[m].tok {
                Tok::Punct('(' | '[' | '{') => depth += 1,
                Tok::Punct(')' | ']' | '}') => depth -= 1,
                Tok::Punct(';') if depth <= 0 => break,
                _ => {}
            }
            m += 1;
        }
        return Some(&toks[start..m.min(toks.len())]);
    }
    None
}

/// Is this expression *provably* an inline literal? True only when every
/// token is a numeric literal, arithmetic punctuation, a cast, or a local
/// whose `let` chain bottoms out in literals. A parameter, a named
/// constant, or anything unresolvable makes the answer "no" — the rule
/// flags proven launderings only, never guesses.
fn proven_literal(
    args: &[Spanned],
    toks: &[Spanned],
    body: (usize, usize),
    params: &BTreeSet<&str>,
    consts: &BTreeSet<&str>,
    depth: usize,
) -> bool {
    if depth > 4 || args.is_empty() {
        return false;
    }
    let mut saw_num = false;
    for t in args {
        match &t.tok {
            Tok::Num(_) => saw_num = true,
            Tok::Punct(c) if "+-*/%()^".contains(*c) => {}
            Tok::Ident(id) if CAST_NEUTRAL.contains(&id.as_str()) => {}
            Tok::Ident(id) => {
                if params.contains(id.as_str()) || consts.contains(id.as_str()) {
                    return false; // sanctioned provenance
                }
                // SCREAMING_CASE: a named constant from another module.
                if id
                    .chars()
                    .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
                    && id.chars().any(|c| c.is_ascii_uppercase())
                {
                    return false;
                }
                match let_rhs(toks, body, id) {
                    Some(rhs) if proven_literal(rhs, toks, body, params, consts, depth + 1) => {
                        saw_num = true;
                    }
                    _ => return false, // unknown provenance — lenient
                }
            }
            _ => return false, // paths, strings, method calls — not a bare literal
        }
    }
    saw_num
}

/// `seed-provenance`: a `seed_from_u64(..)`/`from_seed(..)` argument in
/// library code must trace to a function parameter or a named scenario-seed
/// constant. An inline ad-hoc literal (directly or through a `let` chain)
/// is a hidden scenario input that no config or CLI flag can vary.
fn check_seed_provenance(rule: &RuleConfig, lexed: &Lexed, tree: &ItemTree) -> Vec<Violation> {
    let toks = &lexed.tokens;
    let consts: BTreeSet<&str> = tree.consts.iter().map(|c| c.name.as_str()).collect();
    let mut out = Vec::new();
    for f in &tree.fns {
        if f.in_test {
            continue;
        }
        let Some((s, e)) = f.body else { continue };
        let e = e.min(toks.len().saturating_sub(1));
        let params: BTreeSet<&str> = f.params.iter().map(|p| p.name.as_str()).collect();
        for i in s..=e {
            let Tok::Ident(name) = &toks[i].tok else {
                continue;
            };
            if name != "seed_from_u64" && name != "from_seed" {
                continue;
            }
            if !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) {
                continue;
            }
            // Argument tokens to the matching `)`.
            let start = i + 2;
            let mut depth = 1i32;
            let mut k = start;
            while k <= e && depth > 0 {
                match &toks[k].tok {
                    Tok::Punct('(' | '[') => depth += 1,
                    Tok::Punct(')' | ']') => depth -= 1,
                    _ => {}
                }
                if depth == 0 {
                    break;
                }
                k += 1;
            }
            let args = &toks[start..k.min(toks.len())];
            if proven_literal(args, toks, (s, e), &params, &consts, 0) {
                out.push(violation(
                    toks[i].line,
                    &rule.id,
                    format!(
                        "`{name}({})` seeds from an inline literal — derive the \
                         seed from a parameter or a named scenario-seed constant",
                        tokens_text(args)
                    ),
                ));
            }
        }
    }
    out
}

/// Rules evaluated on the workspace call graph rather than per file; the
/// engine dispatches them after all files are parsed.
pub fn is_graph_rule(id: &str) -> bool {
    matches!(id, "exec-substrate-transitive" | "probe-passivity")
}

/// Run one per-file rule over a lexed + parsed file.
pub fn run_rule(rule: &RuleConfig, lexed: &Lexed, tree: &ItemTree) -> Vec<Violation> {
    match rule.id.as_str() {
        "no-wall-clock" | "seeded-rng-only" | "no-unordered-iter" | "exec-substrate-only" => {
            check_banned(rule, lexed)
        }
        "no-unwrap-in-lib" => check_unwrap(rule, lexed),
        "no-unsafe" => check_unsafe(rule, lexed),
        "lock-discipline" => check_lock_discipline(rule, lexed),
        "float-accum-order" => check_float_accum(rule, lexed, tree),
        "seed-provenance" => check_seed_provenance(rule, lexed, tree),
        other if is_graph_rule(other) => Vec::new(),
        other => unreachable!("unknown rule `{other}` got past config validation"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn rule(id: &str) -> RuleConfig {
        RuleConfig::new(id)
    }

    #[test]
    fn banned_path_pattern_requires_full_path() {
        let lexed = lex("let x = rand::random::<u8>(); let random = 3;");
        let v = check_banned(&rule("seeded-rng-only"), &lexed);
        assert_eq!(v.len(), 1, "bare ident `random` must not fire: {v:?}");
    }

    #[test]
    fn single_segment_pattern_fires_on_qualified_use() {
        let lexed = lex("let t = std::time::SystemTime::now();");
        let v = check_banned(&rule("no-wall-clock"), &lexed);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("SystemTime"));
    }

    #[test]
    fn unwrap_fires_expect_respects_config() {
        let lexed = lex("x.unwrap(); y.expect(\"inv\");");
        let mut r = rule("no-unwrap-in-lib");
        assert_eq!(check_unwrap(&r, &lexed).len(), 1);
        r.allow_expect = false;
        assert_eq!(check_unwrap(&r, &lexed).len(), 2);
    }

    #[test]
    fn unwrap_without_receiver_dot_is_not_flagged() {
        // A free function named unwrap (or Option::unwrap path call) is not
        // the `.unwrap()` postfix form the rule targets.
        let lexed = lex("let v = unwrap(x); Option::unwrap(y);");
        assert!(check_unwrap(&rule("no-unwrap-in-lib"), &lexed).is_empty());
    }

    #[test]
    fn lock_discipline_balanced_file_passes() {
        let lexed = lex("l.acquire_read(s, a); l.release_read(s);
             l.acquire_read(s, b); l.release_read(s);");
        assert!(check_lock_discipline(&rule("lock-discipline"), &lexed).is_empty());
    }

    #[test]
    fn lock_discipline_reacquire_without_release_fires() {
        let lexed = lex("l.acquire_write(s, a); l.acquire_write(s, b); l.release_write(s);");
        let v = check_lock_discipline(&rule("lock-discipline"), &lexed);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("re-acquires"));
    }

    #[test]
    fn lock_discipline_missing_release_fires() {
        let lexed = lex("l.acquire_read(s, a);");
        let v = check_lock_discipline(&rule("lock-discipline"), &lexed);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("no `release_read`"));
    }

    #[test]
    fn expect_with_empty_message_fires_even_when_allowed() {
        let lexed = lex("a.expect(\"\"); b.expect(\"  \"); c.expect(\"queue non-empty\");");
        let v = check_unwrap(&rule("no-unwrap-in-lib"), &lexed);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.message.contains("empty message")));
    }

    #[test]
    fn lock_discipline_write_inside_read_window_fires() {
        let lexed = lex("l.acquire_read(s, a);\nl.acquire_write(s, b);\n\
             l.release_read(s);\nl.release_write(s);");
        let v = check_lock_discipline(&rule("lock-discipline"), &lexed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("read window opened"));
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn lock_discipline_write_after_read_release_is_clean() {
        let lexed = lex("l.acquire_read(s, a); l.release_read(s);
             l.acquire_write(s, b); l.release_write(s);");
        assert!(check_lock_discipline(&rule("lock-discipline"), &lexed).is_empty());
    }

    fn flow(id: &str, src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let tree = crate::parser::parse(&lexed);
        run_rule(&rule(id), &lexed, &tree)
    }

    #[test]
    fn float_accum_over_hash_map_fires() {
        let v = flow(
            "float-accum-order",
            "fn total(m: &HashMap<u32, f64>) -> f64 {\n\
               let mut sum = 0.0;\n\
               for (_, v) in m { sum += v; }\n\
               sum\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
        assert!(v[0].message.contains("`sum`"), "{}", v[0].message);
    }

    #[test]
    fn float_accum_over_vec_or_sorted_view_is_clean() {
        let clean = "fn total(xs: &Vec<f64>, m: &HashMap<u32, f64>) -> f64 {\n\
               let mut sum = 0.0;\n\
               for v in xs { sum += v; }\n\
               let mut keys: Vec<_> = m.keys().collect();\n\
               keys.sort();\n\
               for k in keys.iter().collect::<Vec<_>>() { sum += m[k]; }\n\
               sum\n}\n";
        assert!(flow("float-accum-order", clean).is_empty());
        // Integer accumulation over a HashMap is order-insensitive.
        let ints = "fn count(m: &HashMap<u32, u64>) -> u64 {\n\
               let mut n = 0;\n\
               for (_, v) in m { n += v; }\n n\n}\n";
        assert!(flow("float-accum-order", ints).is_empty());
    }

    #[test]
    fn float_accum_rebind_form_and_let_fact_fire() {
        let v = flow(
            "float-accum-order",
            "fn f(m: &HashSet<u64>) {\n\
               let mut acc: f32 = 0.0;\n\
               for x in m.iter() { acc = acc + weight(x); }\n\
             }\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn seed_provenance_flags_inline_literals_only() {
        let bad = flow(
            "seed-provenance",
            "fn make() -> StdRng { StdRng::seed_from_u64(42) }\n",
        );
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].message.contains("inline literal"));
        // Parameter, named constant, and computed provenance all pass.
        let ok = "const SCENARIO_SEED: u64 = 7;\n\
             fn a(seed: u64) -> StdRng { StdRng::seed_from_u64(seed) }\n\
             fn b() -> StdRng { StdRng::seed_from_u64(SCENARIO_SEED) }\n\
             fn c(cfg: &Cfg) -> StdRng { StdRng::seed_from_u64(cfg.seed) }\n";
        assert!(flow("seed-provenance", ok).is_empty());
    }

    #[test]
    fn seed_provenance_traces_let_chains_to_literals() {
        let v = flow(
            "seed-provenance",
            "fn make() -> StdRng {\n\
               let base = 17;\n\
               let seed = base * 2 + 1;\n\
               StdRng::seed_from_u64(seed as u64)\n}\n",
        );
        assert_eq!(v.len(), 1, "laundered literal chain must fire: {v:?}");
        // A chain that touches a parameter is sanctioned.
        let ok = flow(
            "seed-provenance",
            "fn make(worker: u64) -> StdRng {\n\
               let seed = worker * 2 + 1;\n\
               StdRng::seed_from_u64(seed)\n}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn seed_provenance_ignores_test_code() {
        let v = flow(
            "seed-provenance",
            "#[cfg(test)]\nmod t {\n  fn mk() -> StdRng { StdRng::seed_from_u64(1) }\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
