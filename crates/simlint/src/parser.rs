//! A brace-matched item-tree parser on top of the lexer: modules, functions
//! (with parameter names/types and an opaque body token range), `impl`
//! blocks, `use` aliases, and `const`/`static` items, with `#[cfg(test)]`
//! subtrees marked as such.
//!
//! This is *not* a Rust parser — it never builds expressions and it skips
//! every construct it does not recognize. It only needs to be exact about
//! three things: brace matching (so bodies and test subtrees have correct
//! extents), the shape of `fn`/`impl`/`mod`/`use` headers (so the call
//! graph can index and resolve names), and attribute placement (so a
//! `#[cfg(test)]` excludes exactly its own subtree, not everything after
//! it). Items inside function bodies are opaque: their calls are attributed
//! to the enclosing function, which is the right granularity for lint
//! reachability.

use crate::lexer::{Lexed, Spanned, Tok};

/// One function parameter: the binding name (best effort for non-trivial
/// patterns: the last identifier before the `:`) and the type as flat text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    pub name: String,
    pub ty: String,
}

/// A function or method, free or associated.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare name (`run_query`).
    pub name: String,
    /// `impl`/`trait` self-type name when this is an associated fn
    /// (`ClusterExec` for `impl ClusterExec { fn run .. }`).
    pub owner: Option<String>,
    /// Trait name for `impl Trait for Type` methods (`Probe`).
    pub trait_name: Option<String>,
    /// Module path inside the file (`["exec", "tests"]`).
    pub module: Vec<String>,
    /// 1-based line of the `fn` name.
    pub line: usize,
    pub params: Vec<Param>,
    /// Token-index range of the body including both braces, into
    /// [`Lexed::tokens`]. `None` for bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Under a `#[cfg(test)]` subtree or carrying `#[test]`.
    pub in_test: bool,
}

/// One name introduced by a `use` declaration: `name` is what the file can
/// refer to, `path` the full segment list it stands for. A glob import
/// (`use a::b::*`) has `name == "*"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseItem {
    pub name: String,
    pub path: Vec<String>,
    pub in_test: bool,
}

/// A `const`/`static` item (seed-provenance treats these as named sources).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstItem {
    pub name: String,
    pub line: usize,
}

/// Everything the parser extracts from one file.
#[derive(Debug, Default)]
pub struct ItemTree {
    pub fns: Vec<FnItem>,
    pub uses: Vec<UseItem>,
    pub consts: Vec<ConstItem>,
    /// 1-based inclusive line ranges covered by `#[cfg(test)]` subtrees and
    /// `#[test]` functions (attribute line through closing brace).
    pub test_ranges: Vec<(usize, usize)>,
}

impl ItemTree {
    /// Is this line inside any `#[cfg(test)]` subtree?
    pub fn line_in_test(&self, line: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }
}

/// Flatten a token slice back to readable text (types, diagnostics).
pub fn tokens_text(toks: &[Spanned]) -> String {
    let mut out = String::new();
    for s in toks {
        if !out.is_empty() && !matches!(s.tok, Tok::PathSep) && !out.ends_with("::") {
            out.push(' ');
        }
        match &s.tok {
            Tok::Ident(i) => out.push_str(i),
            Tok::PathSep => {
                if out.ends_with(' ') {
                    out.pop();
                }
                out.push_str("::")
            }
            Tok::Punct(c) => out.push(*c),
            Tok::Str(_) => out.push_str("\"..\""),
            Tok::Num(n) => out.push_str(n),
        }
    }
    out
}

struct Parser<'a> {
    t: &'a [Spanned],
    i: usize,
    out: ItemTree,
}

/// Parse one lexed file into its item tree. Never fails: unrecognized
/// constructs are skipped token by token.
pub fn parse(lexed: &Lexed) -> ItemTree {
    let mut p = Parser {
        t: &lexed.tokens,
        i: 0,
        out: ItemTree::default(),
    };
    let mut ctx = Ctx {
        module: Vec::new(),
        owner: None,
        trait_name: None,
        in_test: false,
    };
    p.items(&mut ctx, false);
    p.out
}

#[derive(Clone)]
struct Ctx {
    module: Vec<String>,
    owner: Option<String>,
    trait_name: Option<String>,
    in_test: bool,
}

impl<'a> Parser<'a> {
    fn ident_at(&self, i: usize) -> Option<&'a str> {
        match self.t.get(i) {
            Some(Spanned {
                tok: Tok::Ident(s), ..
            }) => Some(s.as_str()),
            _ => None,
        }
    }

    fn punct_at(&self, i: usize) -> Option<char> {
        match self.t.get(i) {
            Some(Spanned {
                tok: Tok::Punct(c), ..
            }) => Some(*c),
            _ => None,
        }
    }

    fn line_at(&self, i: usize) -> usize {
        self.t.get(i).map_or(1, |s| s.line)
    }

    /// Index just past the delimiter that matches the opener at `open`.
    fn skip_delim(&self, open: usize, o: char, c: char) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < self.t.len() {
            match self.punct_at(i) {
                Some(x) if x == o => depth += 1,
                Some(x) if x == c => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.t.len()
    }

    /// Skip a generics list if one starts at `i` (`<` ... `>`).
    fn skip_generics(&self, i: usize) -> usize {
        if self.punct_at(i) == Some('<') {
            self.skip_delim(i, '<', '>')
        } else {
            i
        }
    }

    /// Advance to just past the next top-level `;`, respecting (), [], {}.
    fn skip_to_semi(&self, mut i: usize) -> usize {
        while i < self.t.len() {
            match self.punct_at(i) {
                Some(';') => return i + 1,
                Some('(') => i = self.skip_delim(i, '(', ')'),
                Some('[') => i = self.skip_delim(i, '[', ']'),
                Some('{') => i = self.skip_delim(i, '{', '}'),
                _ => i += 1,
            }
        }
        i
    }

    /// Parse items until EOF or the `}` closing this level (consumed).
    fn items(&mut self, ctx: &mut Ctx, until_close: bool) {
        // `#[cfg(test)]`/`#[test]` seen since the last item, with the line
        // of the first such attribute.
        let mut pending_test: Option<usize> = None;
        while self.i < self.t.len() {
            match &self.t[self.i].tok {
                Tok::Punct('}') if until_close => {
                    self.i += 1;
                    return;
                }
                Tok::Punct('#') => {
                    // Attribute: `#[...]` or inner `#![...]`.
                    let inner = self.punct_at(self.i + 1) == Some('!');
                    let open = self.i + if inner { 2 } else { 1 };
                    if self.punct_at(open) == Some('[') {
                        let end = self.skip_delim(open, '[', ']');
                        if !inner && self.attr_is_test(open, end) {
                            pending_test.get_or_insert(self.line_at(self.i));
                        }
                        self.i = end;
                    } else {
                        self.i += 1;
                    }
                    continue;
                }
                Tok::Ident(kw) => {
                    let kw = kw.clone();
                    match kw.as_str() {
                        "pub" => {
                            // `pub` / `pub(crate)` / `pub(in path)`.
                            self.i += 1;
                            if self.punct_at(self.i) == Some('(') {
                                self.i = self.skip_delim(self.i, '(', ')');
                            }
                            continue; // modifiers keep pending_test alive
                        }
                        "unsafe" | "async" | "default" | "extern" | "const" | "static"
                            if self.ident_at(self.i + 1) == Some("fn")
                                || (matches!(kw.as_str(), "unsafe" | "async" | "default")
                                    && self.ident_at(self.i + 1).is_some_and(|n| {
                                        matches!(n, "fn" | "impl" | "trait" | "extern" | "const")
                                    })) =>
                        {
                            self.i += 1;
                            continue;
                        }
                        "fn" => {
                            self.parse_fn(ctx, pending_test.take());
                            continue;
                        }
                        "mod" => {
                            self.parse_mod(ctx, pending_test.take());
                            continue;
                        }
                        "impl" => {
                            self.parse_impl(ctx, pending_test.take());
                            continue;
                        }
                        "trait" => {
                            self.parse_trait(ctx, pending_test.take());
                            continue;
                        }
                        "use" => {
                            self.parse_use(ctx, pending_test.take());
                            continue;
                        }
                        "const" | "static" => {
                            self.i += 1;
                            // `static mut` (never in this workspace, but be
                            // exact) and the underscore const `const _:`.
                            if self.ident_at(self.i) == Some("mut") {
                                self.i += 1;
                            }
                            if let Some(name) = self.ident_at(self.i) {
                                self.out.consts.push(ConstItem {
                                    name: name.to_string(),
                                    line: self.line_at(self.i),
                                });
                            }
                            let end = self.skip_to_semi(self.i);
                            self.close_pending(pending_test.take(), end.saturating_sub(1));
                            self.i = end;
                            continue;
                        }
                        "struct" | "enum" | "union" | "type" => {
                            // Skip the whole item: to `{...}` or `;`.
                            self.i += 1;
                            while self.i < self.t.len() {
                                match self.punct_at(self.i) {
                                    Some('{') => {
                                        self.i = self.skip_delim(self.i, '{', '}');
                                        break;
                                    }
                                    Some(';') => {
                                        self.i += 1;
                                        break;
                                    }
                                    Some('<') => self.i = self.skip_delim(self.i, '<', '>'),
                                    Some('(') => self.i = self.skip_delim(self.i, '(', ')'),
                                    _ => self.i += 1,
                                }
                            }
                            self.close_pending(pending_test.take(), self.line_at(self.i - 1));
                            continue;
                        }
                        "macro_rules" => {
                            self.i += 1; // `!` name `{ ... }`
                            while self.i < self.t.len() && self.punct_at(self.i) != Some('{') {
                                self.i += 1;
                            }
                            self.i = self.skip_delim(self.i, '{', '}');
                            pending_test = None;
                            continue;
                        }
                        _ => {
                            self.i += 1;
                            pending_test = None;
                            continue;
                        }
                    }
                }
                Tok::Punct('{') => {
                    self.i = self.skip_delim(self.i, '{', '}');
                    pending_test = None;
                }
                _ => {
                    self.i += 1;
                    pending_test = None;
                }
            }
        }
    }

    /// Does the attribute body (tokens in `(open..end)`, brackets included)
    /// gate on `test`? Matches `#[test]` and any `#[cfg(... test ...)]`
    /// that is not negated (`not(test)` means the opposite).
    fn attr_is_test(&self, open: usize, end: usize) -> bool {
        let body: Vec<&str> = self.t[open..end.min(self.t.len())]
            .iter()
            .filter_map(|s| match &s.tok {
                Tok::Ident(i) => Some(i.as_str()),
                _ => None,
            })
            .collect();
        match body.as_slice() {
            ["test"] => true,
            _ => body.first() == Some(&"cfg") && body.contains(&"test") && !body.contains(&"not"),
        }
    }

    /// Record a `#[cfg(test)]`/`#[test]` subtree's line range.
    fn close_pending(&mut self, pending: Option<usize>, end_line: usize) {
        if let Some(start) = pending {
            self.out.test_ranges.push((start, end_line.max(start)));
        }
    }

    fn parse_fn(&mut self, ctx: &Ctx, pending_test: Option<usize>) {
        self.i += 1; // `fn`
        let Some(name) = self.ident_at(self.i) else {
            return;
        };
        let name = name.to_string();
        let line = self.line_at(self.i);
        self.i += 1;
        self.i = self.skip_generics(self.i);
        let mut params = Vec::new();
        if self.punct_at(self.i) == Some('(') {
            let close = self.skip_delim(self.i, '(', ')');
            params = self.parse_params(self.i + 1, close - 1);
            self.i = close;
        }
        // Return type / where clause: scan to the body `{` or decl `;`.
        // Braces cannot occur inside a type, so the first one is the body.
        let mut body = None;
        while self.i < self.t.len() {
            match self.punct_at(self.i) {
                Some('{') => {
                    let close = self.skip_delim(self.i, '{', '}');
                    body = Some((self.i, close - 1));
                    self.i = close;
                    break;
                }
                Some(';') => {
                    self.i += 1;
                    break;
                }
                _ => self.i += 1,
            }
        }
        let end_line = body.map_or(line, |(_, c)| self.line_at(c));
        self.close_pending(pending_test, end_line);
        self.out.fns.push(FnItem {
            name,
            owner: ctx.owner.clone(),
            trait_name: ctx.trait_name.clone(),
            module: ctx.module.clone(),
            line,
            params,
            body,
            in_test: ctx.in_test || pending_test.is_some(),
        });
    }

    /// Split the parameter token range on top-level commas; for each param
    /// the binding is the last identifier before the top-level `:`.
    fn parse_params(&self, start: usize, end: usize) -> Vec<Param> {
        let mut params = Vec::new();
        let mut i = start;
        let mut part = Vec::new(); // token indices of the current param
        let mut flush = |part: &mut Vec<usize>| {
            if part.is_empty() {
                return;
            }
            let colon = part.iter().position(|&k| self.punct_at(k) == Some(':'));
            let (name_end, ty_text) = match colon {
                Some(c) => (
                    c,
                    tokens_text(
                        &part[c + 1..]
                            .iter()
                            .map(|&k| self.t[k].clone())
                            .collect::<Vec<_>>(),
                    ),
                ),
                None => (part.len(), "Self".to_string()), // receiver
            };
            let name = part[..name_end]
                .iter()
                .rev()
                .find_map(|&k| self.ident_at(k))
                .unwrap_or("_")
                .to_string();
            params.push(Param { name, ty: ty_text });
            part.clear();
        };
        while i < end.min(self.t.len()) {
            match self.punct_at(i) {
                Some(',') => {
                    flush(&mut part);
                    i += 1;
                }
                Some('(') => {
                    for k in i..self.skip_delim(i, '(', ')') {
                        part.push(k);
                    }
                    i = self.skip_delim(i, '(', ')');
                }
                Some('<') => {
                    for k in i..self.skip_delim(i, '<', '>') {
                        part.push(k);
                    }
                    i = self.skip_delim(i, '<', '>');
                }
                Some('[') => {
                    for k in i..self.skip_delim(i, '[', ']') {
                        part.push(k);
                    }
                    i = self.skip_delim(i, '[', ']');
                }
                _ => {
                    part.push(i);
                    i += 1;
                }
            }
        }
        flush(&mut part);
        params
    }

    fn parse_mod(&mut self, ctx: &mut Ctx, pending_test: Option<usize>) {
        self.i += 1; // `mod`
        let Some(name) = self.ident_at(self.i) else {
            return;
        };
        let name = name.to_string();
        self.i += 1;
        match self.punct_at(self.i) {
            Some('{') => {
                let close = self.skip_delim(self.i, '{', '}');
                self.i += 1; // into the block
                let mut inner = ctx.clone();
                inner.module.push(name);
                inner.in_test = inner.in_test || pending_test.is_some();
                self.items(&mut inner, true);
                self.close_pending(pending_test, self.line_at(close - 1));
            }
            Some(';') => {
                self.i += 1;
                self.close_pending(pending_test, self.line_at(self.i - 1));
            }
            _ => {}
        }
    }

    /// Last identifier of the path starting at `i` before generics/`for`/
    /// `{`/`where`; returns (name, index after the path).
    fn path_tail(&self, mut i: usize) -> (Option<String>, usize) {
        let mut last = None;
        loop {
            // Leading `&`, `mut`, `dyn` in types like `impl Probe for &mut X`.
            while matches!(self.punct_at(i), Some('&') | Some('*'))
                || matches!(self.ident_at(i), Some("mut") | Some("dyn"))
            {
                i += 1;
            }
            match self.t.get(i).map(|s| &s.tok) {
                Some(Tok::Ident(name)) => {
                    if matches!(name.as_str(), "for" | "where") {
                        return (last, i);
                    }
                    last = Some(name.clone());
                    i += 1;
                    i = self.skip_generics(i);
                    if matches!(self.t.get(i).map(|s| &s.tok), Some(Tok::PathSep)) {
                        i += 1;
                        continue;
                    }
                    return (last, i);
                }
                Some(Tok::Punct('<')) => {
                    // `impl<T> ...` generics before the path.
                    i = self.skip_delim(i, '<', '>');
                }
                Some(Tok::Punct('(')) => {
                    // Tuple/fn-pointer type — no meaningful owner name.
                    return (last, self.skip_delim(i, '(', ')'));
                }
                Some(Tok::Punct('[')) => {
                    return (last, self.skip_delim(i, '[', ']'));
                }
                _ => return (last, i),
            }
        }
    }

    fn parse_impl(&mut self, ctx: &Ctx, pending_test: Option<usize>) {
        self.i += 1; // `impl`
        self.i = self.skip_generics(self.i);
        let (first, after) = self.path_tail(self.i);
        self.i = after;
        let (trait_name, owner) = if self.ident_at(self.i) == Some("for") {
            let (self_ty, after) = self.path_tail(self.i + 1);
            self.i = after;
            (first, self_ty)
        } else {
            (None, first)
        };
        // Skip a where clause: no braces can appear before the block's `{`.
        while self.i < self.t.len() && self.punct_at(self.i) != Some('{') {
            if self.punct_at(self.i) == Some('<') {
                self.i = self.skip_delim(self.i, '<', '>');
            } else {
                self.i += 1;
            }
        }
        if self.punct_at(self.i) == Some('{') {
            let close = self.skip_delim(self.i, '{', '}');
            self.i += 1;
            let mut inner = ctx.clone();
            inner.owner = owner;
            inner.trait_name = trait_name;
            inner.in_test = inner.in_test || pending_test.is_some();
            self.items(&mut inner, true);
            self.close_pending(pending_test, self.line_at(close - 1));
        }
    }

    fn parse_trait(&mut self, ctx: &Ctx, pending_test: Option<usize>) {
        self.i += 1; // `trait`
        let Some(name) = self.ident_at(self.i) else {
            return;
        };
        let name = name.to_string();
        self.i += 1;
        while self.i < self.t.len()
            && self.punct_at(self.i) != Some('{')
            && self.punct_at(self.i) != Some(';')
        {
            if self.punct_at(self.i) == Some('<') {
                self.i = self.skip_delim(self.i, '<', '>');
            } else {
                self.i += 1;
            }
        }
        if self.punct_at(self.i) == Some('{') {
            let close = self.skip_delim(self.i, '{', '}');
            self.i += 1;
            let mut inner = ctx.clone();
            inner.owner = Some(name);
            inner.trait_name = None;
            inner.in_test = inner.in_test || pending_test.is_some();
            self.items(&mut inner, true);
            self.close_pending(pending_test, self.line_at(close - 1));
        } else {
            self.i += 1;
        }
    }

    fn parse_use(&mut self, ctx: &Ctx, pending_test: Option<usize>) {
        self.i += 1; // `use`
        let end = self.skip_to_semi(self.i);
        let in_test = ctx.in_test || pending_test.is_some();
        self.use_tree(self.i, end.saturating_sub(1), &mut Vec::new(), in_test);
        self.close_pending(pending_test, self.line_at(end.saturating_sub(1)));
        self.i = end;
    }

    /// Recursively expand a use tree in `start..end` under `prefix`.
    fn use_tree(&mut self, start: usize, end: usize, prefix: &mut Vec<String>, in_test: bool) {
        let depth0 = prefix.len();
        let mut i = start;
        let mut last_alias: Option<String> = None;
        while i < end.min(self.t.len()) {
            match &self.t[i].tok {
                Tok::Ident(seg) if seg == "as" => {
                    if let Some(alias) = self.ident_at(i + 1) {
                        last_alias = Some(alias.to_string());
                    }
                    i += 2;
                }
                Tok::Ident(seg) => {
                    prefix.push(seg.clone());
                    i += 1;
                }
                Tok::PathSep => {
                    i += 1;
                }
                Tok::Punct('{') => {
                    // Group: recurse per comma-separated element.
                    let close = self.skip_delim(i, '{', '}') - 1;
                    let mut part = i + 1;
                    let mut k = i + 1;
                    let mut depth = 0usize;
                    while k <= close.min(self.t.len().saturating_sub(1)) {
                        match self.punct_at(k) {
                            Some('{') => depth += 1,
                            Some('}') if depth > 0 => depth -= 1,
                            Some('}') => {
                                self.use_tree(part, k, &mut prefix.clone(), in_test);
                                break;
                            }
                            Some(',') if depth == 0 => {
                                self.use_tree(part, k, &mut prefix.clone(), in_test);
                                part = k + 1;
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    prefix.truncate(depth0);
                    return;
                }
                Tok::Punct('*') => {
                    self.out.uses.push(UseItem {
                        name: "*".to_string(),
                        path: prefix.clone(),
                        in_test,
                    });
                    prefix.truncate(depth0);
                    return;
                }
                _ => {
                    i += 1;
                }
            }
        }
        if prefix.len() > depth0 || last_alias.is_some() {
            let name = last_alias
                .or_else(|| prefix.last().cloned())
                .unwrap_or_default();
            if !name.is_empty() {
                self.out.uses.push(UseItem {
                    name,
                    path: prefix.clone(),
                    in_test,
                });
            }
        }
        prefix.truncate(depth0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> ItemTree {
        parse(&lex(src))
    }

    #[test]
    fn free_fns_and_methods_are_indexed_with_owners() {
        let t = tree(
            "fn free(a: u64, b: &str) -> u64 { a }\n\
             impl ClusterExec { fn run(&mut self, phase: Phase) -> f64 { 0.0 } }\n\
             impl Probe for TimelineProbe { fn on_event(&mut self, ev: &ProbeEvent) {} }\n",
        );
        assert_eq!(t.fns.len(), 3);
        assert_eq!(t.fns[0].name, "free");
        assert_eq!(t.fns[0].owner, None);
        assert_eq!(
            t.fns[0]
                .params
                .iter()
                .map(|p| p.name.as_str())
                .collect::<Vec<_>>(),
            ["a", "b"]
        );
        assert_eq!(t.fns[1].owner.as_deref(), Some("ClusterExec"));
        assert_eq!(t.fns[1].params[0].name, "self");
        assert_eq!(t.fns[2].owner.as_deref(), Some("TimelineProbe"));
        assert_eq!(t.fns[2].trait_name.as_deref(), Some("Probe"));
    }

    #[test]
    fn nested_modules_give_module_paths() {
        let t = tree("mod a { mod b { fn deep() {} } fn mid() {} } fn top() {}");
        let by_name = |n: &str| t.fns.iter().find(|f| f.name == n).unwrap();
        assert_eq!(by_name("deep").module, ["a", "b"]);
        assert_eq!(by_name("mid").module, ["a"]);
        assert!(by_name("top").module.is_empty());
    }

    #[test]
    fn cfg_test_subtree_is_marked_and_bounded() {
        let src = "\
fn lib() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
fn after_tests() {}
";
        let t = tree(src);
        let by_name = |n: &str| t.fns.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("lib").in_test);
        assert!(by_name("helper").in_test);
        // The item *after* the test module is NOT in the subtree — the old
        // "everything after the first #[cfg(test)]" heuristic got this wrong.
        assert!(!by_name("after_tests").in_test);
        assert_eq!(t.test_ranges, vec![(2, 5)]);
        assert!(t.line_in_test(4));
        assert!(!t.line_in_test(6));
    }

    #[test]
    fn test_attribute_marks_single_fn() {
        let t = tree("#[test]\nfn a_test() {}\nfn real() {}");
        assert!(t.fns[0].in_test);
        assert!(!t.fns[1].in_test);
        // cfg(not(test)) is the opposite of a test gate.
        let t2 = tree("#[cfg(not(test))]\nfn gated() {}");
        assert!(!t2.fns[0].in_test);
    }

    #[test]
    fn use_aliases_groups_and_globs() {
        let t = tree(
            "use storage::text::decode;\n\
             use cluster::exec as substrate;\n\
             use simkit::{secs, Sim as Kernel, probe::ProbeEvent};\n\
             use relational::ops::*;\n",
        );
        let find = |n: &str| t.uses.iter().find(|u| u.name == n).unwrap();
        assert_eq!(find("decode").path, ["storage", "text", "decode"]);
        assert_eq!(find("substrate").path, ["cluster", "exec"]);
        assert_eq!(find("secs").path, ["simkit", "secs"]);
        assert_eq!(find("Kernel").path, ["simkit", "Sim"]);
        assert_eq!(find("ProbeEvent").path, ["simkit", "probe", "ProbeEvent"]);
        assert_eq!(find("*").path, ["relational", "ops"]);
    }

    #[test]
    fn consts_are_recorded_and_bodies_are_ranges() {
        let t = tree("const SCENARIO_SEED: u64 = 42;\nfn f() { let x = [1; 3]; }\n");
        assert_eq!(t.consts.len(), 1);
        assert_eq!(t.consts[0].name, "SCENARIO_SEED");
        let body = t.fns[0].body.unwrap();
        assert!(body.0 < body.1);
    }

    #[test]
    fn generics_where_clauses_and_return_types_do_not_confuse_bodies() {
        let t = tree(
            "fn g<T: Iterator<Item = u8>>(it: T) -> Vec<u8>\n\
             where T: Clone { it.collect() }\n\
             fn h() -> impl Fn(u8) -> u8 { |x| x }\n",
        );
        assert_eq!(t.fns.len(), 2);
        assert_eq!(t.fns[0].name, "g");
        assert_eq!(t.fns[0].params.len(), 1);
        assert_eq!(t.fns[1].name, "h");
        assert!(t.fns[1].body.is_some());
    }

    #[test]
    fn trait_decl_methods_carry_the_trait_as_owner() {
        let t = tree("trait Probe { fn on_event(&mut self, ev: &ProbeEvent); fn noop() {} }");
        assert_eq!(t.fns.len(), 2);
        assert_eq!(t.fns[0].owner.as_deref(), Some("Probe"));
        assert!(t.fns[0].body.is_none(), "declaration has no body");
        assert!(t.fns[1].body.is_some(), "default body recorded");
    }
}
