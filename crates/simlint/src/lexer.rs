//! A hand-rolled Rust lexer, just deep enough for lint rules: it must never
//! report a banned token that only appears inside a comment, a string (plain,
//! raw, or byte), or a char literal, and it must survive nested block
//! comments and `r#".."#` raw strings with arbitrary hash depth.
//!
//! Everything ident-like (keywords included) comes out as [`Tok::Ident`];
//! punctuation comes out one character at a time except `::`, which rules
//! match on to recognize paths like `Instant::now`. String and number
//! literals surface as [`Tok::Str`] / [`Tok::Num`] — the item-tree parser
//! and the flow rules (`.expect("")` messages, seed provenance) need to see
//! them, but their *contents* still never match a banned-identifier pattern.

/// One significant token, tagged with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`HashMap`, `unsafe`, `unwrap`, ...).
    Ident(String),
    /// `::` — kept as one token so path patterns are easy to match.
    PathSep,
    /// Any other single punctuation character (`.`, `(`, `#`, `[`, ...).
    Punct(char),
    /// A string literal (plain, raw, or byte), delimiters and prefix
    /// stripped. Rules only ever inspect the content (is it empty?), never
    /// match identifiers inside it.
    Str(String),
    /// A numeric literal, verbatim including any suffix (`42u64`, `0.5f32`).
    Num(String),
}

/// A token plus the line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    pub line: usize,
    pub tok: Tok,
}

/// A comment (line or block), with the line it starts on and its body text
/// (delimiters stripped). Block comment bodies keep their interior newlines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub line: usize,
    pub text: String,
}

/// Lexer output: the significant tokens and every comment, in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Spanned>,
    pub comments: Vec<Comment>,
}

/// Tokenize `src`. Never fails: unterminated constructs consume to EOF,
/// which is the forgiving behaviour a linter wants (rustc will reject the
/// file anyway).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;

    // Advance over `n` bytes, counting newlines.
    fn advance(b: &[u8], i: &mut usize, line: &mut usize, n: usize) {
        for _ in 0..n {
            if *i < b.len() {
                if b[*i] == b'\n' {
                    *line += 1;
                }
                *i += 1;
            }
        }
    }

    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            advance(b, &mut i, &mut line, 1);
            continue;
        }
        // Line comment (`//`, including doc `///` and `//!`).
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            let start_line = line;
            let mut j = i + 2;
            while j < b.len() && b[j] != b'\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line: start_line,
                text: src[i + 2..j].to_string(),
            });
            {
                let n = j - i;
                advance(b, &mut i, &mut line, n);
            }
            continue;
        }
        // Block comment, possibly nested.
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let start_line = line;
            let body_start = i + 2;
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < b.len() && depth > 0 {
                if b[j] == b'/' && b.get(j + 1) == Some(&b'*') {
                    depth += 1;
                    j += 2;
                } else if b[j] == b'*' && b.get(j + 1) == Some(&b'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let body_end = if depth == 0 { j - 2 } else { j };
            out.comments.push(Comment {
                line: start_line,
                text: src[body_start..body_end.max(body_start)].to_string(),
            });
            {
                let n = j - i;
                advance(b, &mut i, &mut line, n);
            }
            continue;
        }
        // Raw strings and raw byte strings: r"..", r#".."#, br##".."##, ...
        if c == b'r' || (c == b'b' && b.get(i + 1) == Some(&b'r')) {
            let hash_at = if c == b'r' { i + 1 } else { i + 2 };
            let mut hashes = 0usize;
            while b.get(hash_at + hashes) == Some(&b'#') {
                hashes += 1;
            }
            if b.get(hash_at + hashes) == Some(&b'"') {
                // Scan to `"` followed by `hashes` hash marks.
                let body_start = hash_at + hashes + 1;
                let mut body_end = b.len();
                let mut j = body_start;
                'scan: while j < b.len() {
                    if b[j] == b'"' {
                        let mut k = 0;
                        while k < hashes && b.get(j + 1 + k) == Some(&b'#') {
                            k += 1;
                        }
                        if k == hashes {
                            body_end = j;
                            j += 1 + hashes;
                            break 'scan;
                        }
                    }
                    j += 1;
                }
                out.tokens.push(Spanned {
                    line,
                    tok: Tok::Str(src[body_start..body_end.max(body_start)].to_string()),
                });
                {
                    let n = j - i;
                    advance(b, &mut i, &mut line, n);
                }
                continue;
            }
            // Not a raw string (`r` / `br` starts a plain identifier): fall
            // through to the identifier arm below.
        }
        // Plain strings and byte strings: "..", b"..", with \" escapes.
        if c == b'"' || (c == b'b' && b.get(i + 1) == Some(&b'"')) {
            let body_start = if c == b'"' { i + 1 } else { i + 2 };
            let mut j = body_start;
            let mut body_end = b.len();
            while j < b.len() {
                match b[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        body_end = j;
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            out.tokens.push(Spanned {
                line,
                tok: Tok::Str(
                    src[body_start.min(src.len())..body_end.min(src.len()).max(body_start)]
                        .to_string(),
                ),
            });
            {
                let n = j.min(b.len()) - i;
                advance(b, &mut i, &mut line, n);
            }
            continue;
        }
        // Char literal vs lifetime. `'a'` is a char; `'a` (no closing quote
        // right after the identifier) is a lifetime, which we just skip.
        if c == b'\'' {
            if b.get(i + 1) == Some(&b'\\') {
                // Escaped char literal: '\n', '\'', '\u{..}'.
                let mut j = i + 2;
                while j < b.len() && b[j] != b'\'' {
                    j += 1;
                }
                {
                    let n = (j + 1).min(b.len()) - i;
                    advance(b, &mut i, &mut line, n);
                }
            } else if b.get(i + 2) == Some(&b'\'') && b.get(i + 1).is_some_and(|ch| *ch != b'\'') {
                advance(b, &mut i, &mut line, 3); // 'x'
            } else {
                // Lifetime: skip the quote and the identifier after it.
                let mut j = i + 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                {
                    let n = j - i;
                    advance(b, &mut i, &mut line, n);
                }
            }
            continue;
        }
        // Identifier / keyword (also swallows the suffix of numeric-looking
        // idents like `r` that failed the raw-string probe).
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            let mut j = i;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            out.tokens.push(Spanned {
                line,
                tok: Tok::Ident(src[start..j].to_string()),
            });
            {
                let n = j - i;
                advance(b, &mut i, &mut line, n);
            }
            continue;
        }
        // Numbers (one `Num` token; suffixes like 1_000u64 are included).
        if c.is_ascii_digit() {
            let mut j = i;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_' || b[j] == b'.') {
                // Don't eat `..` range punctuation or a method call after a
                // number (`1.max(2)`): stop a `.` that isn't followed by a
                // digit.
                if b[j] == b'.' && !b.get(j + 1).is_some_and(u8::is_ascii_digit) {
                    break;
                }
                j += 1;
            }
            out.tokens.push(Spanned {
                line,
                tok: Tok::Num(src[i..j].to_string()),
            });
            {
                let n = j - i;
                advance(b, &mut i, &mut line, n);
            }
            continue;
        }
        // `::` path separator.
        if c == b':' && b.get(i + 1) == Some(&b':') {
            out.tokens.push(Spanned {
                line,
                tok: Tok::PathSep,
            });
            advance(b, &mut i, &mut line, 2);
            continue;
        }
        // Everything else: one punctuation character.
        out.tokens.push(Spanned {
            line,
            tok: Tok::Punct(c as char),
        });
        advance(b, &mut i, &mut line, 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|s| match s.tok {
                Tok::Ident(i) => Some(i),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn banned_tokens_in_strings_do_not_tokenize() {
        let src = r##"let s = "HashMap::new()"; let r = r#"thread_rng"#;"##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"thread_rng".to_string()), "{ids:?}");
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn nested_block_comments_hide_tokens() {
        let src = "/* outer /* Instant::now() */ still comment */ fn f() {}";
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "f"]);
        let lexed = lex(src);
        assert!(lexed.comments[0].text.contains("Instant::now()"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // A naive char-literal scanner would treat `'a` as an unterminated
        // literal and swallow the rest of the line.
        let ids = idents("fn f<'a>(x: &'a str) { x.unwrap() }");
        assert!(ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn char_literals_and_escapes() {
        let ids = idents(r"let c = '\''; let d = 'x'; let e = '\u{1F600}'; y");
        assert!(ids.contains(&"y".to_string()));
        assert!(!ids.contains(&"u".to_string()));
    }

    #[test]
    fn raw_string_with_hashes_containing_quotes() {
        let src = r###"let s = r##"a "quoted" HashSet "##; done"###;
        let ids = idents(src);
        assert!(!ids.contains(&"HashSet".to_string()));
        assert!(ids.contains(&"done".to_string()));
    }

    #[test]
    fn path_sep_is_one_token() {
        let toks: Vec<Tok> = lex("Instant::now()")
            .tokens
            .into_iter()
            .map(|s| s.tok)
            .collect();
        assert_eq!(
            toks,
            vec![
                Tok::Ident("Instant".into()),
                Tok::PathSep,
                Tok::Ident("now".into()),
                Tok::Punct('('),
                Tok::Punct(')'),
            ]
        );
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nline string\"\nb /* c\nd */ e";
        let lexed = lex(src);
        let lines: Vec<(String, usize)> = lexed
            .tokens
            .iter()
            .filter_map(|s| match &s.tok {
                Tok::Ident(i) => Some((i.clone(), s.line)),
                _ => None,
            })
            .collect();
        assert_eq!(
            lines,
            vec![("a".into(), 1), ("b".into(), 4), ("e".into(), 5)]
        );
    }

    #[test]
    fn line_comment_text_is_captured() {
        let lexed = lex("x // simlint: allow(no-unsafe) — test harness\ny");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("simlint: allow"));
        assert_eq!(lexed.comments[0].line, 1);
    }

    #[test]
    fn numeric_method_calls_still_tokenize() {
        let ids = idents("let x = 1.max(2) + 0.5f64.sqrt();");
        assert!(ids.contains(&"max".to_string()));
    }

    #[test]
    fn string_literals_surface_with_content() {
        let toks = lex(r#"x.expect(""); y.expect("queue is non-empty");"#).tokens;
        let strs: Vec<String> = toks
            .into_iter()
            .filter_map(|s| match s.tok {
                Tok::Str(v) => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["", "queue is non-empty"]);
    }

    #[test]
    fn raw_and_byte_strings_surface_with_content() {
        let toks = lex(r###"a(r#"raw "body""#); b(b"bytes");"###).tokens;
        let strs: Vec<String> = toks
            .into_iter()
            .filter_map(|s| match s.tok {
                Tok::Str(v) => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec![r#"raw "body""#, "bytes"]);
    }

    #[test]
    fn number_literals_surface_verbatim() {
        let nums: Vec<String> = lex("seed_from_u64(42); f(0xdead_beefu64, 0.5f32)")
            .tokens
            .into_iter()
            .filter_map(|s| match s.tok {
                Tok::Num(v) => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["42", "0xdead_beefu64", "0.5f32"]);
    }
}
