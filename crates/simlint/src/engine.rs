//! The driver: walk the tree, scope rules to paths, apply suppression
//! comments, and render diagnostics as `file:line: rule-id: message`.

use crate::config::{Config, RuleConfig, KNOWN_RULES};
use crate::lexer::{lex, Comment, Lexed};
use crate::rules::{cfg_test_line, run_rule, Violation};
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// One parsed `// simlint: allow(rule-id) — justification` comment.
#[derive(Debug, Clone)]
pub struct Allow {
    pub line: usize,
    pub rules: Vec<String>,
    pub justification: String,
}

/// Outcome of a whole run.
#[derive(Debug, Default)]
pub struct Report {
    /// `(file, violation)` pairs, sorted for deterministic output.
    pub violations: Vec<(String, Violation)>,
    /// Every well-formed suppression in the tree (for `--list-allows`).
    pub allows: Vec<(String, Allow)>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Render violations in the canonical `file:line: rule-id: message`
    /// shape the CI gate greps for.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (file, v) in &self.violations {
            out.push_str(&format!("{file}:{}: {}: {}\n", v.line, v.rule, v.message));
        }
        out
    }

    pub fn render_allows(&self) -> String {
        let mut out = String::new();
        for (file, a) in &self.allows {
            out.push_str(&format!(
                "{file}:{}: {}: {}\n",
                a.line,
                a.rules.join(","),
                a.justification
            ));
        }
        out
    }
}

/// Parse suppression comments out of a file's comments. Malformed ones
/// (bare allows, unknown rule ids) become violations: a suppression that
/// cannot be trusted must fail the gate, not silently widen it.
///
/// The `simlint:` marker must open the comment (leading whitespace aside) —
/// prose that merely *mentions* the directive mid-sentence is not a
/// directive.
fn parse_allows(comments: &[Comment]) -> (Vec<Allow>, Vec<Violation>) {
    let mut allows = Vec::new();
    let mut violations = Vec::new();
    for c in comments {
        let Some(directive) = c.text.trim_start().strip_prefix("simlint:") else {
            continue;
        };
        let directive = directive.trim_start();
        let Some(rest) = directive.strip_prefix("allow") else {
            violations.push(Violation {
                line: c.line,
                rule: "bad-allow".to_string(),
                message: format!("unrecognized simlint directive `{}`", directive.trim()),
            });
            continue;
        };
        let rest = rest.trim_start();
        let (ids, tail) = match rest.strip_prefix('(').and_then(|r| r.split_once(')')) {
            Some(x) => x,
            None => {
                violations.push(Violation {
                    line: c.line,
                    rule: "bad-allow".to_string(),
                    message: "malformed allow — expected `simlint: allow(rule-id) — why`"
                        .to_string(),
                });
                continue;
            }
        };
        let rules: Vec<String> = ids
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let mut bad = false;
        for r in &rules {
            if !KNOWN_RULES.contains(&r.as_str()) {
                violations.push(Violation {
                    line: c.line,
                    rule: "bad-allow".to_string(),
                    message: format!("allow names unknown rule `{r}`"),
                });
                bad = true;
            }
        }
        if rules.is_empty() {
            violations.push(Violation {
                line: c.line,
                rule: "bad-allow".to_string(),
                message: "allow names no rule".to_string(),
            });
            bad = true;
        }
        // Justification: whatever follows the closing paren, minus leading
        // separator punctuation (`—`, `-`, `:`).
        let justification = tail
            .trim_start()
            .trim_start_matches(['—', '-', ':'])
            .trim()
            .to_string();
        if justification.is_empty() {
            violations.push(Violation {
                line: c.line,
                rule: "bad-allow".to_string(),
                message: format!(
                    "bare allow for `{}` — a justification is required",
                    rules.join(",")
                ),
            });
            bad = true;
        }
        if !bad {
            allows.push(Allow {
                line: c.line,
                rules,
                justification,
            });
        }
    }
    (allows, violations)
}

/// Does `rel` fall under the prefix `p`? Exact match, or directory prefix.
fn under(rel: &str, p: &str) -> bool {
    rel == p || rel.starts_with(&format!("{p}/"))
}

fn rule_applies(rule: &RuleConfig, rel: &str) -> bool {
    if !rule.enabled {
        return false;
    }
    if rule.skip_tests_dir && (rel.contains("/tests/") || under(rel, "tests")) {
        return false;
    }
    if rule.exclude.iter().any(|p| under(rel, p)) {
        return false;
    }
    rule.paths.is_empty() || rule.paths.iter().any(|p| under(rel, p))
}

/// A suppression covers its own line and the immediately following line, so
/// both trailing (`stmt; // simlint: allow(..) — why`) and preceding
/// (own-line comment above the statement) styles work.
fn suppressed(v: &Violation, allows: &[Allow]) -> bool {
    allows
        .iter()
        .any(|a| (v.line == a.line || v.line == a.line + 1) && a.rules.contains(&v.rule))
}

/// Lint one file's source text (`rel` is the root-relative path used for
/// scoping and reporting). Exposed for fixture tests.
pub fn lint_source(config: &Config, rel: &str, src: &str) -> Report {
    let lexed: Lexed = lex(src);
    let (allows, mut file_violations) = parse_allows(&lexed.comments);
    let test_line = cfg_test_line(&lexed);
    for rule in config.rules.values() {
        if !rule_applies(rule, rel) {
            continue;
        }
        for v in run_rule(rule, &lexed) {
            if rule.skip_cfg_test && test_line.is_some_and(|t| v.line >= t) {
                continue;
            }
            if suppressed(&v, &allows) {
                continue;
            }
            file_violations.push(v);
        }
    }
    file_violations.sort();
    Report {
        violations: file_violations
            .into_iter()
            .map(|v| (rel.to_string(), v))
            .collect(),
        allows: allows.into_iter().map(|a| (rel.to_string(), a)).collect(),
    }
}

/// Recursively collect `.rs` files under `root`, sorted, honouring the
/// global exclude list. Hidden directories and `target/` are always skipped.
fn collect_files(root: &Path, config: &Config, filter: &[String]) -> Vec<PathBuf> {
    let mut out = BTreeSet::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let rel = rel_path(root, &path);
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with('.') || name == "target" {
                continue;
            }
            if config.exclude.iter().any(|p| under(&rel, p)) {
                continue;
            }
            if path.is_dir() {
                stack.push(path);
            } else if name.ends_with(".rs")
                && (filter.is_empty()
                    || filter.iter().any(|f| under(&rel, f.trim_end_matches('/'))))
            {
                out.insert(path);
            }
        }
    }
    out.into_iter().collect()
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lint the tree under `root`. `filter` optionally restricts to the given
/// root-relative paths.
pub fn lint_tree(config: &Config, root: &Path, filter: &[String]) -> std::io::Result<Report> {
    let mut report = Report::default();
    for path in collect_files(root, config, filter) {
        let src = fs::read_to_string(&path)?;
        let rel = rel_path(root, &path);
        let file_report = lint_source(config, &rel, &src);
        report.violations.extend(file_report.violations);
        report.allows.extend(file_report.allows);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config;

    fn cfg(toml: &str) -> Config {
        config::parse(toml).unwrap()
    }

    #[test]
    fn scoping_includes_and_excludes() {
        let c = cfg("[rules.no-unsafe]\npaths = [\"crates\"]\nexclude = [\"crates/bench\"]\n");
        let r = &c.rules["no-unsafe"];
        assert!(rule_applies(r, "crates/pdw/src/exec.rs"));
        assert!(!rule_applies(r, "crates/bench/src/lib.rs"));
        assert!(!rule_applies(r, "src/lib.rs"));
    }

    #[test]
    fn justified_allow_suppresses_same_and_next_line() {
        let c = cfg("[rules.no-unordered-iter]\n");
        let src = "\
// simlint: allow(no-unordered-iter) — probe-only table, never iterated
use std::collections::HashMap;
fn f() { let _: HashMap<u8, u8> = HashMap::new(); }
";
        let report = lint_source(&c, "x.rs", src);
        // Line 2 is covered; line 3 is not.
        assert_eq!(report.violations.len(), 2, "{}", report.render());
        assert!(report.violations.iter().all(|(_, v)| v.line == 3));
        assert_eq!(report.allows.len(), 1);
    }

    #[test]
    fn bare_allow_fails_even_if_rule_matches_nothing() {
        let c = cfg("[rules.no-unsafe]\n");
        let report = lint_source(&c, "x.rs", "// simlint: allow(no-unsafe)\nfn ok() {}\n");
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].1.rule, "bad-allow");
        assert!(report.violations[0].1.message.contains("justification"));
    }

    #[test]
    fn allow_with_unknown_rule_fails() {
        let c = cfg("[rules.no-unsafe]\n");
        let report = lint_source(&c, "x.rs", "// simlint: allow(no-such) — because\n");
        assert_eq!(report.violations[0].1.rule, "bad-allow");
        assert!(report.violations[0].1.message.contains("unknown rule"));
    }

    #[test]
    fn cfg_test_trimming_respects_flag() {
        let toml = "[rules.no-unwrap-in-lib]\nskip-cfg-test = true\n";
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod t { fn f() { y.unwrap(); } }\n";
        let report = lint_source(&cfg(toml), "x.rs", src);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].1.line, 1);
    }
}
