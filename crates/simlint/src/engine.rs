//! The driver: walk the tree, scope rules to paths, apply suppression
//! comments, and render diagnostics as `file:line: rule-id: message` (or
//! one stable-ordered JSON object per line with `--format json`).
//!
//! Linting is two passes. Pass one lexes + parses every file and runs the
//! per-file rules. Pass two builds the workspace call graph from the
//! already-parsed files and runs the graph rules (`exec-substrate-
//! transitive`, `probe-passivity`) over it. Suppressions and `#[cfg(test)]`
//! scoping apply uniformly to both passes, and every suppression records
//! whether it actually suppressed something — a stale allow is dead policy
//! and `--list-allows --strict` turns it into an error.

use crate::callgraph::{self, CallGraph, SourceFile};
use crate::config::{Config, RuleConfig, KNOWN_RULES};
use crate::lexer::{lex, Comment, Lexed};
use crate::parser::{parse, ItemTree};
use crate::rules::{is_graph_rule, run_rule, Violation};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

/// One parsed `// simlint: allow(rule-id) — justification` comment.
#[derive(Debug, Clone)]
pub struct Allow {
    pub line: usize,
    pub rules: Vec<String>,
    pub justification: String,
    /// Did this allow suppress at least one violation this run? A `false`
    /// after linting means the suppression is stale.
    pub used: bool,
}

/// Outcome of a whole run.
#[derive(Debug, Default)]
pub struct Report {
    /// `(file, violation)` pairs, sorted for deterministic output.
    pub violations: Vec<(String, Violation)>,
    /// Every well-formed suppression in the tree (for `--list-allows`).
    pub allows: Vec<(String, Allow)>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Render violations in the canonical `file:line: rule-id: message`
    /// shape the CI gate greps for.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (file, v) in &self.violations {
            out.push_str(&format!("{file}:{}: {}: {}\n", v.line, v.rule, v.message));
        }
        out
    }

    /// One JSON object per violation, one per line, keys in the fixed
    /// order `file`, `line`, `rule`, `message` (the schema is documented
    /// in DESIGN.md and consumed by the GitHub Actions problem matcher).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        for (file, v) in &self.violations {
            out.push_str(&format!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}\n",
                json_escape(file),
                v.line,
                json_escape(&v.rule),
                json_escape(&v.message)
            ));
        }
        out
    }

    pub fn render_allows(&self) -> String {
        let mut out = String::new();
        for (file, a) in &self.allows {
            out.push_str(&format!(
                "{file}:{}: {}: {}{}\n",
                a.line,
                a.rules.join(","),
                a.justification,
                if a.used { "" } else { " [stale]" }
            ));
        }
        out
    }

    /// Allows that suppressed nothing this run.
    pub fn stale_allows(&self) -> Vec<&(String, Allow)> {
        self.allows.iter().filter(|(_, a)| !a.used).collect()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse suppression comments out of a file's comments. Malformed ones
/// (bare allows, unknown rule ids) become violations: a suppression that
/// cannot be trusted must fail the gate, not silently widen it.
///
/// The `simlint:` marker must open the comment (leading whitespace aside) —
/// prose that merely *mentions* the directive mid-sentence is not a
/// directive.
fn parse_allows(comments: &[Comment]) -> (Vec<Allow>, Vec<Violation>) {
    let mut allows = Vec::new();
    let mut violations = Vec::new();
    for c in comments {
        let Some(directive) = c.text.trim_start().strip_prefix("simlint:") else {
            continue;
        };
        let directive = directive.trim_start();
        let Some(rest) = directive.strip_prefix("allow") else {
            violations.push(Violation {
                line: c.line,
                rule: "bad-allow".to_string(),
                message: format!("unrecognized simlint directive `{}`", directive.trim()),
            });
            continue;
        };
        let rest = rest.trim_start();
        let (ids, tail) = match rest.strip_prefix('(').and_then(|r| r.split_once(')')) {
            Some(x) => x,
            None => {
                violations.push(Violation {
                    line: c.line,
                    rule: "bad-allow".to_string(),
                    message: "malformed allow — expected `simlint: allow(rule-id) — why`"
                        .to_string(),
                });
                continue;
            }
        };
        let rules: Vec<String> = ids
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let mut bad = false;
        for r in &rules {
            if !KNOWN_RULES.contains(&r.as_str()) {
                violations.push(Violation {
                    line: c.line,
                    rule: "bad-allow".to_string(),
                    message: format!("allow names unknown rule `{r}`"),
                });
                bad = true;
            }
        }
        if rules.is_empty() {
            violations.push(Violation {
                line: c.line,
                rule: "bad-allow".to_string(),
                message: "allow names no rule".to_string(),
            });
            bad = true;
        }
        // Justification: whatever follows the closing paren, minus leading
        // separator punctuation (`—`, `-`, `:`).
        let justification = tail
            .trim_start()
            .trim_start_matches(['—', '-', ':'])
            .trim()
            .to_string();
        if justification.is_empty() {
            violations.push(Violation {
                line: c.line,
                rule: "bad-allow".to_string(),
                message: format!(
                    "bare allow for `{}` — a justification is required",
                    rules.join(",")
                ),
            });
            bad = true;
        }
        if !bad {
            allows.push(Allow {
                line: c.line,
                rules,
                justification,
                used: false,
            });
        }
    }
    (allows, violations)
}

/// Does `rel` fall under the prefix `p`? Exact match, or directory prefix.
fn under(rel: &str, p: &str) -> bool {
    rel == p || rel.starts_with(&format!("{p}/"))
}

fn rule_applies(rule: &RuleConfig, rel: &str) -> bool {
    if !rule.enabled {
        return false;
    }
    if rule.skip_tests_dir && (rel.contains("/tests/") || under(rel, "tests")) {
        return false;
    }
    if rule.exclude.iter().any(|p| under(rel, p)) {
        return false;
    }
    rule.paths.is_empty() || rule.paths.iter().any(|p| under(rel, p))
}

/// A suppression covers its own line and the immediately following line, so
/// both trailing (`stmt; // simlint: allow(..) — why`) and preceding
/// (own-line comment above the statement) styles work. Marks the matching
/// allow as used.
fn suppression(v: &Violation, allows: &mut [Allow]) -> bool {
    let mut hit = false;
    for a in allows.iter_mut() {
        if (v.line == a.line || v.line == a.line + 1) && a.rules.contains(&v.rule) {
            a.used = true;
            hit = true;
        }
    }
    hit
}

/// Pass one for a single file: per-file rules plus suppression parsing.
fn lint_parsed(
    config: &Config,
    rel: &str,
    lexed: &Lexed,
    tree: &ItemTree,
) -> (Vec<Violation>, Vec<Allow>) {
    let (mut allows, mut file_violations) = parse_allows(&lexed.comments);
    for rule in config.rules.values() {
        if is_graph_rule(&rule.id) || !rule_applies(rule, rel) {
            continue;
        }
        for v in run_rule(rule, lexed, tree) {
            if rule.skip_cfg_test && tree.line_in_test(v.line) {
                continue;
            }
            if suppression(&v, &mut allows) {
                continue;
            }
            file_violations.push(v);
        }
    }
    (file_violations, allows)
}

/// Dispatch one graph rule over the built graph. Root scoping reuses the
/// rule's `paths`/`exclude` config via [`rule_applies`].
fn run_graph_rule(rule: &RuleConfig, g: &CallGraph) -> Vec<(String, Violation)> {
    let in_scope = |rel: &str| rule_applies(rule, rel);
    match rule.id.as_str() {
        "exec-substrate-transitive" => callgraph::exec_substrate_transitive(rule, g, &in_scope),
        "probe-passivity" => callgraph::probe_passivity(rule, g, &in_scope),
        _ => Vec::new(),
    }
}

/// Graph pass over already-parsed files; appends surviving violations and
/// marks any suppressions they hit.
fn graph_pass(
    config: &Config,
    parsed: &[(String, Lexed, ItemTree)],
    deps: &callgraph::DepMap,
    allows_by_file: &mut [Vec<Allow>],
    violations: &mut Vec<(String, Violation)>,
) {
    let graph_rules: Vec<&RuleConfig> = config
        .rules
        .values()
        .filter(|r| is_graph_rule(&r.id) && r.enabled)
        .collect();
    if graph_rules.is_empty() {
        return;
    }
    let sources: Vec<SourceFile<'_>> = parsed
        .iter()
        .map(|(rel, lexed, tree)| SourceFile { rel, lexed, tree })
        .collect();
    let g = callgraph::build(&sources, deps);
    let index: BTreeMap<&str, usize> = parsed
        .iter()
        .enumerate()
        .map(|(i, (rel, _, _))| (rel.as_str(), i))
        .collect();
    for rule in graph_rules {
        for (file, v) in run_graph_rule(rule, &g) {
            let Some(&fi) = index.get(file.as_str()) else {
                continue;
            };
            if rule.skip_cfg_test && parsed[fi].2.line_in_test(v.line) {
                continue;
            }
            if suppression(&v, &mut allows_by_file[fi]) {
                continue;
            }
            violations.push((file, v));
        }
    }
}

/// Lint one file's source text (`rel` is the root-relative path used for
/// scoping and reporting). Exposed for fixture tests. Graph rules run over
/// the lone file, so single-file laundering fixtures exercise them too.
pub fn lint_source(config: &Config, rel: &str, src: &str) -> Report {
    let lexed = lex(src);
    let tree = parse(&lexed);
    let parsed = vec![(rel.to_string(), lexed, tree)];
    let (mut violations, allows) = {
        let (vs, als) = lint_parsed(config, rel, &parsed[0].1, &parsed[0].2);
        (
            vs.into_iter()
                .map(|v| (rel.to_string(), v))
                .collect::<Vec<_>>(),
            als,
        )
    };
    let mut allows_by_file = vec![allows];
    graph_pass(
        config,
        &parsed,
        &callgraph::DepMap::default(),
        &mut allows_by_file,
        &mut violations,
    );
    violations.sort();
    Report {
        violations,
        allows: allows_by_file
            .remove(0)
            .into_iter()
            .map(|a| (rel.to_string(), a))
            .collect(),
    }
}

/// Recursively collect `.rs` files under `root`, sorted, honouring the
/// global exclude list. Hidden directories and `target/` are always skipped.
fn collect_files(root: &Path, config: &Config, filter: &[String]) -> Vec<PathBuf> {
    let mut out = BTreeSet::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let rel = rel_path(root, &path);
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with('.') || name == "target" {
                continue;
            }
            if config.exclude.iter().any(|p| under(&rel, p)) {
                continue;
            }
            if path.is_dir() {
                stack.push(path);
            } else if name.ends_with(".rs")
                && (filter.is_empty()
                    || filter.iter().any(|f| under(&rel, f.trim_end_matches('/'))))
            {
                out.insert(path);
            }
        }
    }
    out.into_iter().collect()
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lint the tree under `root`. `filter` optionally restricts to the given
/// root-relative paths.
pub fn lint_tree(config: &Config, root: &Path, filter: &[String]) -> std::io::Result<Report> {
    let mut parsed: Vec<(String, Lexed, ItemTree)> = Vec::new();
    for path in collect_files(root, config, filter) {
        let src = fs::read_to_string(&path)?;
        let rel = rel_path(root, &path);
        let lexed = lex(&src);
        let tree = parse(&lexed);
        parsed.push((rel, lexed, tree));
    }
    let mut violations: Vec<(String, Violation)> = Vec::new();
    let mut allows_by_file: Vec<Vec<Allow>> = Vec::new();
    for (rel, lexed, tree) in &parsed {
        let (vs, als) = lint_parsed(config, rel, lexed, tree);
        violations.extend(vs.into_iter().map(|v| (rel.clone(), v)));
        allows_by_file.push(als);
    }
    let deps = callgraph::load_deps(root);
    graph_pass(config, &parsed, &deps, &mut allows_by_file, &mut violations);
    violations.sort();
    let allows = parsed
        .iter()
        .zip(allows_by_file)
        .flat_map(|((rel, _, _), als)| als.into_iter().map(move |a| (rel.clone(), a)))
        .collect();
    Ok(Report { violations, allows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config;

    fn cfg(toml: &str) -> Config {
        config::parse(toml).unwrap()
    }

    #[test]
    fn scoping_includes_and_excludes() {
        let c = cfg("[rules.no-unsafe]\npaths = [\"crates\"]\nexclude = [\"crates/bench\"]\n");
        let r = &c.rules["no-unsafe"];
        assert!(rule_applies(r, "crates/pdw/src/exec.rs"));
        assert!(!rule_applies(r, "crates/bench/src/lib.rs"));
        assert!(!rule_applies(r, "src/lib.rs"));
    }

    #[test]
    fn justified_allow_suppresses_same_and_next_line() {
        let c = cfg("[rules.no-unordered-iter]\n");
        let src = "\
// simlint: allow(no-unordered-iter) — probe-only table, never iterated
use std::collections::HashMap;
fn f() { let _: HashMap<u8, u8> = HashMap::new(); }
";
        let report = lint_source(&c, "x.rs", src);
        // Line 2 is covered; line 3 is not.
        assert_eq!(report.violations.len(), 2, "{}", report.render());
        assert!(report.violations.iter().all(|(_, v)| v.line == 3));
        assert_eq!(report.allows.len(), 1);
        assert!(report.allows[0].1.used, "allow suppressed line 2");
        assert!(report.stale_allows().is_empty());
    }

    #[test]
    fn stale_allow_is_detected() {
        let c = cfg("[rules.no-unordered-iter]\n");
        let src = "// simlint: allow(no-unordered-iter) — leftover from a refactor\nfn ok() {}\n";
        let report = lint_source(&c, "x.rs", src);
        assert!(report.violations.is_empty(), "{}", report.render());
        assert_eq!(report.stale_allows().len(), 1);
        assert!(report.render_allows().contains("[stale]"));
    }

    #[test]
    fn bare_allow_fails_even_if_rule_matches_nothing() {
        let c = cfg("[rules.no-unsafe]\n");
        let report = lint_source(&c, "x.rs", "// simlint: allow(no-unsafe)\nfn ok() {}\n");
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].1.rule, "bad-allow");
        assert!(report.violations[0].1.message.contains("justification"));
    }

    #[test]
    fn allow_with_unknown_rule_fails() {
        let c = cfg("[rules.no-unsafe]\n");
        let report = lint_source(&c, "x.rs", "// simlint: allow(no-such) — because\n");
        assert_eq!(report.violations[0].1.rule, "bad-allow");
        assert!(report.violations[0].1.message.contains("unknown rule"));
    }

    #[test]
    fn cfg_test_trimming_respects_flag() {
        let toml = "[rules.no-unwrap-in-lib]\nskip-cfg-test = true\n";
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod t { fn f() { y.unwrap(); } }\n";
        let report = lint_source(&cfg(toml), "x.rs", src);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].1.line, 1);
    }

    #[test]
    fn cfg_test_trimming_is_subtree_bounded() {
        // The old heuristic trimmed everything after the *first*
        // `#[cfg(test)]` line; the parser bounds it to the subtree, so a
        // violation after the test module still fires.
        let toml = "[rules.no-unwrap-in-lib]\nskip-cfg-test = true\n";
        let src = "#[cfg(test)]\nmod t { fn f() { y.unwrap(); } }\n\
                   fn lib() { x.unwrap(); }\n";
        let report = lint_source(&cfg(toml), "x.rs", src);
        assert_eq!(report.violations.len(), 1, "{}", report.render());
        assert_eq!(report.violations[0].1.line, 3);
    }

    #[test]
    fn json_rendering_is_stable_and_escaped() {
        let c = cfg("[rules.no-unsafe]\n");
        let report = lint_source(&c, "x.rs", "fn f() { unsafe { } }\n");
        let json = report.render_json();
        assert_eq!(
            json,
            "{\"file\":\"x.rs\",\"line\":1,\"rule\":\"no-unsafe\",\
             \"message\":\"`unsafe` is forbidden workspace-wide\"}\n"
        );
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn graph_rules_run_in_lint_source_for_single_file_fixtures() {
        let c = cfg("[rules.probe-passivity]\n");
        let src = "fn fold(sim: &mut Sim) { sim.schedule_at(t, e); }\n";
        let report = lint_source(&c, "crates/obs/src/fold.rs", src);
        assert_eq!(report.violations.len(), 1, "{}", report.render());
        assert!(report.violations[0].1.message.contains("schedule_at"));
    }
}
