//! `simlint` — the workspace determinism-and-correctness lint.
//!
//! The reproduction's headline guarantee is that regenerated result files
//! are byte-identical across refactors. That only holds while some
//! invariants stay true everywhere: simulated code takes time from the DES
//! clock (never the wall clock), no `HashMap`/`HashSet` iteration order
//! leaks into result paths, every random stream is explicitly seeded, engine
//! library code doesn't panic via `.unwrap()`, nothing is `unsafe`, and the
//! docstore's continuation-passing lock protocol stays paired. `simlint`
//! turns each of those conventions into a checked, CI-gated property.
//!
//! Design constraints: no dependencies (the build environment is offline,
//! so no `syn`/`toml`), a hand-rolled lexer that is exact about comments,
//! strings, raw strings and char literals (a banned token inside any of
//! those must never fire), and per-rule path scoping via `simlint.toml` at
//! the workspace root. See the "Determinism invariants" section of
//! DESIGN.md for the rule catalogue.
//!
//! Suppressions are inline and must carry a justification:
//!
//! ```text
//! // simlint: allow(no-unordered-iter) — probe-only table, never iterated
//! ```
//!
//! A bare `allow` (or one naming an unknown rule) fails the run. The
//! `--list-allows` mode prints every suppression with its justification so
//! the exemption surface can be audited in one screenful.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod config;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod rules;

pub use config::{Config, RuleConfig};
pub use engine::{lint_source, lint_tree, Report};
