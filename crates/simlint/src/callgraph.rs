//! The workspace call graph: a per-crate function index with method/free/
//! path-call edges, `use`-alias following, and crate-dependency pruning —
//! "name resolution lite". On top of it, the two flow-aware rules:
//!
//! * **`exec-substrate-transitive`** — no function in an engine crate may
//!   *reach* a simkit resource acquisition through any call chain whose
//!   intermediate hops avoid the sanctioned substrate (`trusted` paths,
//!   i.e. `crates/cluster` + `crates/simkit`). This closes the laundering
//!   hole in the token-level `exec-substrate-only` rule: a helper in an
//!   allowed crate that acquires resources on the engine's behalf.
//! * **`probe-passivity`** — code reachable from `crates/obs` or from any
//!   `impl Probe for ..` handler must never call a `&mut Sim`/resource-
//!   mutating API. This turns the CI byte-diff passivity gate into a
//!   static proof over the call graph.
//!
//! What the graph can and cannot prove: edges are matched **by name**
//! (free calls resolve within the caller's crate plus imported aliases;
//! method calls resolve to any same-named method in the caller's crate
//! dependency closure), so it over-approximates — a reported chain may
//! be infeasible if two unrelated types share a method name, and a call
//! made through a trait object or function pointer is still followed by
//! the callee's name. It never under-approximates within the parsed tree
//! except for calls constructed by macros at expansion time.

use crate::config::RuleConfig;
use crate::lexer::{Lexed, Spanned, Tok};
use crate::parser::ItemTree;
use crate::rules::{default_bans, Violation};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    pub line: usize,
    /// Callee name (the identifier before the `(`).
    pub name: String,
    pub kind: CallKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `recv.name(..)`.
    Method,
    /// `name(..)` with no path or receiver.
    Free,
    /// `seg::..::name(..)` — the leading segments, name excluded.
    Path(Vec<String>),
}

/// One function in the workspace graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    pub file: String,
    pub crate_name: String,
    pub name: String,
    pub owner: Option<String>,
    pub trait_name: Option<String>,
    pub line: usize,
    pub in_test: bool,
    pub calls: Vec<CallSite>,
}

/// Workspace crate topology: package names and their transitive path-dep
/// closures, read from the Cargo manifests. Empty maps disable pruning
/// (fixture trees have no manifests and resolve everything by name).
#[derive(Debug, Default)]
pub struct DepMap {
    /// `crates/<dir>` name -> package name (underscored).
    pkg_of_dir: BTreeMap<String, String>,
    /// package name -> transitive dependency closure (self excluded).
    closure: BTreeMap<String, BTreeSet<String>>,
    root_pkg: String,
}

fn norm(name: &str) -> String {
    name.replace('-', "_")
}

impl DepMap {
    /// Package owning a root-relative file path.
    pub fn crate_of(&self, rel: &str) -> String {
        if let Some(rest) = rel.strip_prefix("crates/") {
            let dir = rest.split('/').next().unwrap_or("");
            if let Some(pkg) = self.pkg_of_dir.get(dir) {
                return pkg.clone();
            }
            return norm(dir);
        }
        self.root_pkg.clone()
    }

    /// Is `dep` in `pkg`'s dependency closure? Unknown packages (or an
    /// empty map) answer yes: pruning is an accuracy aid, never a gate.
    pub fn allows(&self, pkg: &str, dep: &str) -> bool {
        if pkg == dep {
            return true;
        }
        match self.closure.get(pkg) {
            Some(set) => set.contains(dep),
            None => true,
        }
    }

    /// Does this package name exist in the workspace?
    pub fn is_workspace_pkg(&self, name: &str) -> bool {
        self.closure.contains_key(name)
    }
}

/// Extract `[package] name` and `[dependencies]`/`[dev-dependencies]` keys
/// from one Cargo.toml, with the tiny line-shape subset cargo uses here.
fn manifest_deps(src: &str) -> (Option<String>, Vec<String>) {
    let mut pkg = None;
    let mut deps = Vec::new();
    let mut section = String::new();
    for raw in src.lines() {
        let line = raw.trim();
        if let Some(h) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = h.trim().to_string();
            for s in ["dependencies.", "dev-dependencies."] {
                if let Some(d) = section.strip_prefix(s) {
                    deps.push(norm(d));
                }
            }
            continue;
        }
        let Some((key, val)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        match section.as_str() {
            "package" if key == "name" => {
                pkg = Some(norm(val.trim().trim_matches('"')));
            }
            // `rand.workspace = true` is a dotted key for dependency `rand`.
            "dependencies" | "dev-dependencies" => {
                deps.push(norm(key.split('.').next().unwrap_or(key)))
            }
            _ => {}
        }
    }
    (pkg, deps)
}

/// Read the workspace manifests under `root` into a [`DepMap`].
pub fn load_deps(root: &Path) -> DepMap {
    let mut map = DepMap::default();
    let mut direct: BTreeMap<String, Vec<String>> = BTreeMap::new();
    if let Ok(src) = fs::read_to_string(root.join("Cargo.toml")) {
        let (pkg, deps) = manifest_deps(&src);
        if let Some(pkg) = pkg {
            map.root_pkg = pkg.clone();
            direct.insert(pkg, deps);
        }
    }
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<_> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let Ok(src) = fs::read_to_string(dir.join("Cargo.toml")) else {
                continue;
            };
            let (pkg, deps) = manifest_deps(&src);
            let Some(pkg) = pkg else { continue };
            let dirname = dir
                .file_name()
                .map(|n| n.to_string_lossy().to_string())
                .unwrap_or_default();
            map.pkg_of_dir.insert(dirname, pkg.clone());
            direct.insert(pkg, deps);
        }
    }
    // Transitive closure over workspace packages (external deps pass
    // through `allows` untouched — they are never graph nodes anyway).
    for pkg in direct.keys() {
        let mut seen = BTreeSet::new();
        let mut stack = vec![pkg.clone()];
        while let Some(p) = stack.pop() {
            for d in direct.get(&p).into_iter().flatten() {
                if seen.insert(d.clone()) {
                    stack.push(d.clone());
                }
            }
        }
        map.closure.insert(pkg.clone(), seen);
    }
    map
}

/// One parsed source file handed to the graph builder.
pub struct SourceFile<'a> {
    pub rel: &'a str,
    pub lexed: &'a Lexed,
    pub tree: &'a ItemTree,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    /// Forward edges: `(callee, call-site line in the caller)`.
    edges: Vec<Vec<(usize, usize)>>,
}

/// Scan a body token range for call sites.
fn call_sites(toks: &[Spanned], body: (usize, usize)) -> Vec<CallSite> {
    let mut out = Vec::new();
    let punct = |k: usize| match toks.get(k) {
        Some(Spanned {
            tok: Tok::Punct(c), ..
        }) => Some(*c),
        _ => None,
    };
    for k in body.0..=body.1.min(toks.len().saturating_sub(1)) {
        let Some(Spanned {
            tok: Tok::Ident(name),
            line,
        }) = toks.get(k)
        else {
            continue;
        };
        // The `(` either follows directly or after a turbofish `::<..>`.
        let mut open = k + 1;
        if matches!(toks.get(open).map(|s| &s.tok), Some(Tok::PathSep))
            && punct(open + 1) == Some('<')
        {
            let mut depth = 0usize;
            let mut j = open + 1;
            while j < toks.len() {
                match punct(j) {
                    Some('<') => depth += 1,
                    Some('>') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            open = j + 1;
        }
        if punct(open) != Some('(') {
            continue;
        }
        let kind = if punct(k.wrapping_sub(1)) == Some('.') && k > 0 {
            CallKind::Method
        } else if k > 0 && matches!(toks.get(k - 1).map(|s| &s.tok), Some(Tok::PathSep)) {
            // Walk the path backwards: `a::b::name(`.
            let mut segs = Vec::new();
            let mut j = k - 1;
            while j >= 1 {
                let (Some(Tok::PathSep), Some(Tok::Ident(seg))) =
                    (toks.get(j).map(|s| &s.tok), toks.get(j - 1).map(|s| &s.tok))
                else {
                    break;
                };
                segs.push(seg.clone());
                if j < 2 {
                    break;
                }
                j -= 2;
            }
            segs.reverse();
            CallKind::Path(segs)
        } else if matches!(toks.get(k.wrapping_sub(1)).map(|s| &s.tok), Some(Tok::Ident(kw)) if kw == "fn")
        {
            continue; // nested `fn name(` definition, not a call
        } else {
            CallKind::Free
        };
        out.push(CallSite {
            line: *line,
            name: name.clone(),
            kind,
        });
    }
    out
}

/// Build the graph from parsed files plus the crate topology.
pub fn build(files: &[SourceFile<'_>], deps: &DepMap) -> CallGraph {
    let mut g = CallGraph::default();
    // Per-file alias tables for resolution: name -> path segments.
    let mut aliases: Vec<BTreeMap<String, Vec<String>>> = Vec::new();
    let mut globs: Vec<Vec<String>> = Vec::new(); // first segment of `use ..::*`
    let mut node_file: Vec<usize> = Vec::new();

    for (fi, f) in files.iter().enumerate() {
        let mut table = BTreeMap::new();
        let mut glob = Vec::new();
        for u in &f.tree.uses {
            if u.name == "*" {
                if let Some(first) = u.path.first() {
                    glob.push(norm(first));
                }
            } else {
                table.insert(u.name.clone(), u.path.clone());
            }
        }
        aliases.push(table);
        globs.push(glob);
        let crate_name = deps.crate_of(f.rel);
        for item in &f.tree.fns {
            let calls = item
                .body
                .map(|b| call_sites(&f.lexed.tokens, b))
                .unwrap_or_default();
            g.nodes.push(FnNode {
                file: f.rel.to_string(),
                crate_name: crate_name.clone(),
                name: item.name.clone(),
                owner: item.owner.clone(),
                trait_name: item.trait_name.clone(),
                line: item.line,
                in_test: item.in_test,
                calls,
            });
            node_file.push(fi);
        }
    }

    // Name indexes.
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut free_fns: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut assoc: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new(); // (owner, name)
    for (id, n) in g.nodes.iter().enumerate() {
        match &n.owner {
            Some(owner) => {
                methods.entry(&n.name).or_default().push(id);
                assoc.entry((owner, &n.name)).or_default().push(id);
            }
            None => free_fns.entry(&n.name).or_default().push(id),
        }
    }

    // Crate names actually present in the graph — the fallback namespace
    // when no manifests were loaded (fixture trees).
    let present: BTreeSet<String> = g.nodes.iter().map(|n| n.crate_name.clone()).collect();
    let known = |name: &str| deps.is_workspace_pkg(name) || present.contains(name);

    // Resolve the first segment of a path to a workspace package name.
    let resolve_crate = |seg: &str, caller_crate: &str, table: &BTreeMap<String, Vec<String>>| {
        let seg = norm(seg);
        if seg == "crate" || seg == "self" || seg == "super" {
            return Some(caller_crate.to_string());
        }
        if let Some(path) = table.get(seg.as_str()) {
            if let Some(first) = path.first() {
                let first = norm(first);
                if known(&first) {
                    return Some(first);
                }
            }
        }
        if known(&seg) {
            return Some(seg);
        }
        None
    };

    let mut edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); g.nodes.len()];
    for (id, n) in g.nodes.iter().enumerate() {
        let fi = node_file[id];
        let table = &aliases[fi];
        let glob = &globs[fi];
        let add = |targets: &[usize], line: usize, out: &mut Vec<(usize, usize)>| {
            for &t in targets {
                if t != id && deps.allows(&n.crate_name, &g.nodes[t].crate_name) {
                    out.push((t, line));
                }
            }
        };
        let in_crate = |targets: Option<&Vec<usize>>, pkg: &str| -> Vec<usize> {
            targets
                .into_iter()
                .flatten()
                .copied()
                .filter(|&t| g.nodes[t].crate_name == pkg)
                .collect()
        };
        let mut out = Vec::new();
        for c in &n.calls {
            match &c.kind {
                CallKind::Method => {
                    if let Some(ts) = methods.get(c.name.as_str()) {
                        add(ts, c.line, &mut out);
                    }
                }
                CallKind::Free => {
                    // Same-crate free fns...
                    add(
                        &in_crate(free_fns.get(c.name.as_str()), &n.crate_name),
                        c.line,
                        &mut out,
                    );
                    // ...plus whatever this exact name was imported as.
                    let mut imported: Vec<String> = Vec::new();
                    if let Some(first) = table.get(c.name.as_str()).and_then(|p| p.first()) {
                        imported.push(norm(first));
                    }
                    imported.extend(glob.iter().cloned());
                    for pkg in imported {
                        let pkg = if pkg == "crate" || pkg == "self" || pkg == "super" {
                            n.crate_name.clone()
                        } else {
                            pkg
                        };
                        add(
                            &in_crate(free_fns.get(c.name.as_str()), &pkg),
                            c.line,
                            &mut out,
                        );
                    }
                }
                CallKind::Path(segs) => {
                    // `Type::assoc(..)` — owner is the last leading segment.
                    if let Some(owner) = segs.last() {
                        if let Some(ts) = assoc.get(&(owner.as_str(), c.name.as_str())) {
                            add(ts, c.line, &mut out);
                        }
                    }
                    // `cratename::..::free(..)` (alias-expanded).
                    if let Some(first) = segs.first() {
                        if let Some(pkg) = resolve_crate(first, &n.crate_name, table) {
                            add(
                                &in_crate(free_fns.get(c.name.as_str()), &pkg),
                                c.line,
                                &mut out,
                            );
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        edges[id] = out;
    }
    g.edges = edges;
    g
}

impl CallGraph {
    pub fn edges(&self, id: usize) -> &[(usize, usize)] {
        &self.edges[id]
    }

    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Reverse-BFS reachability: `reach[n]` is true when some call chain
    /// from `n` hits a sink using only non-trusted, non-test hops after
    /// `n`; `next[n]` is the hop to follow for chain reconstruction.
    fn reach(
        &self,
        sink: &dyn Fn(&FnNode) -> bool,
        trusted: &dyn Fn(&FnNode) -> bool,
    ) -> (Vec<bool>, Vec<Option<usize>>) {
        let n = self.nodes.len();
        let mut reach = vec![false; n];
        let mut next: Vec<Option<usize>> = vec![None; n];
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (from, es) in self.edges.iter().enumerate() {
            for &(to, _) in es {
                rev[to].push(from);
            }
        }
        let mut queue: Vec<usize> = Vec::new();
        for (id, node) in self.nodes.iter().enumerate() {
            if !node.in_test && sink(node) {
                reach[id] = true;
                queue.push(id);
            }
        }
        let mut qi = 0;
        while qi < queue.len() {
            let cur = queue[qi];
            qi += 1;
            // Chains may only pass *through* non-trusted, non-test nodes.
            if trusted(&self.nodes[cur]) || self.nodes[cur].in_test {
                continue;
            }
            for &caller in &rev[cur] {
                if !reach[caller] {
                    reach[caller] = true;
                    next[caller] = Some(cur);
                    queue.push(caller);
                }
            }
        }
        (reach, next)
    }

    /// Render the chain from `root` following `next` pointers.
    fn chain_text(&self, root: usize, next: &[Option<usize>]) -> String {
        let mut parts = Vec::new();
        let mut cur = root;
        for _ in 0..6 {
            let Some(n) = next[cur] else { break };
            let node = &self.nodes[n];
            parts.push(format!("`{}` ({}:{})", node.name, node.file, node.line));
            cur = n;
        }
        if next[cur].is_some() {
            parts.push("…".to_string());
        }
        parts.join(" -> ")
    }

    /// Line of the first edge `root -> next[root]` for violation placement.
    fn first_hop_line(&self, root: usize, next: &[Option<usize>]) -> usize {
        match next[root] {
            Some(hop) => self.edges[root]
                .iter()
                .find(|&&(to, _)| to == hop)
                .map(|&(_, line)| line)
                .unwrap_or(self.nodes[root].line),
            None => self.nodes[root].line,
        }
    }
}

/// Single-segment banned names for a graph rule (config override or the
/// rule's built-in list).
fn banned_names(rule: &RuleConfig) -> BTreeSet<String> {
    let from_cfg: Vec<String> = if rule.ban.is_empty() {
        default_bans(&rule.id)
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        rule.ban.clone()
    };
    from_cfg.into_iter().filter(|p| !p.contains("::")).collect()
}

fn under_any(file: &str, prefixes: &[String]) -> bool {
    prefixes
        .iter()
        .any(|p| file == p || file.starts_with(&format!("{p}/")))
}

/// First banned call site in a node, if any.
fn banned_call<'a>(node: &'a FnNode, bans: &BTreeSet<String>) -> Option<&'a CallSite> {
    node.calls.iter().find(|c| bans.contains(&c.name))
}

/// `exec-substrate-transitive`: engine functions must not reach a simkit
/// resource acquisition except through the `trusted` substrate paths.
/// Direct acquisitions (chain length 0) are left to the token-level
/// `exec-substrate-only` rule; this one reports laundered chains only.
pub fn exec_substrate_transitive(
    rule: &RuleConfig,
    g: &CallGraph,
    in_scope: &dyn Fn(&str) -> bool,
) -> Vec<(String, Violation)> {
    let bans = banned_names(rule);
    let trusted = |n: &FnNode| under_any(&n.file, &rule.trusted);
    let sink = |n: &FnNode| !under_any(&n.file, &rule.trusted) && banned_call(n, &bans).is_some();
    let (reach, next) = g.reach(&sink, &trusted);
    let mut out = Vec::new();
    for (id, node) in g.nodes.iter().enumerate() {
        if node.in_test || !in_scope(&node.file) || !reach[id] {
            continue;
        }
        if sink(node) {
            continue; // exec-substrate-only already flags the direct site
        }
        // Walk to the sink to name the acquired token.
        let mut cur = id;
        while let Some(nx) = next[cur] {
            cur = nx;
        }
        let token = banned_call(&g.nodes[cur], &bans)
            .map(|c| c.name.clone())
            .unwrap_or_default();
        out.push((
            node.file.clone(),
            Violation {
                line: g.first_hop_line(id, &next),
                rule: rule.id.clone(),
                message: format!(
                    "fn `{}` reaches simkit resource acquisition `{}` outside the \
                     substrate via {}",
                    node.name,
                    token,
                    g.chain_text(id, &next)
                ),
            },
        ));
    }
    out.sort();
    out.dedup();
    out
}

/// `probe-passivity`: nothing reachable from the observability plane
/// (functions in the rule's `paths`, plus every `impl Probe for ..`
/// method anywhere) may call a mutating `Sim` API. Unlike the substrate
/// rule this also reports direct calls — there is no token-level
/// companion rule.
pub fn probe_passivity(
    rule: &RuleConfig,
    g: &CallGraph,
    in_scope: &dyn Fn(&str) -> bool,
) -> Vec<(String, Violation)> {
    let bans = banned_names(rule);
    let trusted = |n: &FnNode| under_any(&n.file, &rule.trusted);
    let sink = |n: &FnNode| !under_any(&n.file, &rule.trusted) && banned_call(n, &bans).is_some();
    let (reach, next) = g.reach(&sink, &trusted);
    let mut out = Vec::new();
    for (id, node) in g.nodes.iter().enumerate() {
        let is_root =
            !node.in_test && (in_scope(&node.file) || node.trait_name.as_deref() == Some("Probe"));
        if !is_root || !reach[id] {
            continue;
        }
        let (line, detail) = match banned_call(node, &bans) {
            // Direct mutation in the probe-side function itself.
            Some(c) => (c.line, format!("calls mutating `{}` directly", c.name)),
            None => {
                let mut cur = id;
                while let Some(nx) = next[cur] {
                    cur = nx;
                }
                let token = banned_call(&g.nodes[cur], &bans)
                    .map(|c| c.name.clone())
                    .unwrap_or_default();
                (
                    g.first_hop_line(id, &next),
                    format!(
                        "reaches mutating `{}` via {}",
                        token,
                        g.chain_text(id, &next)
                    ),
                )
            }
        };
        out.push((
            node.file.clone(),
            Violation {
                line,
                rule: rule.id.clone(),
                message: format!(
                    "probe-side fn `{}` {} — probes must stay passive",
                    node.name, detail
                ),
            },
        ));
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn build_from(files: &[(&str, &str)], deps: &DepMap) -> CallGraph {
        let parsed: Vec<(String, Lexed, ItemTree)> = files
            .iter()
            .map(|(rel, src)| {
                let lexed = lex(src);
                let tree = parse(&lexed);
                (rel.to_string(), lexed, tree)
            })
            .collect();
        let sources: Vec<SourceFile<'_>> = parsed
            .iter()
            .map(|(rel, lexed, tree)| SourceFile { rel, lexed, tree })
            .collect();
        build(&sources, deps)
    }

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        build_from(files, &DepMap::default())
    }

    fn node<'a>(g: &'a CallGraph, name: &str) -> (usize, &'a FnNode) {
        g.nodes
            .iter()
            .enumerate()
            .find(|(_, n)| n.name == name)
            .expect("node exists")
    }

    fn callees(g: &CallGraph, name: &str) -> Vec<String> {
        let (id, _) = node(g, name);
        g.edges(id)
            .iter()
            .map(|&(t, _)| g.nodes[t].name.clone())
            .collect()
    }

    #[test]
    fn method_vs_free_call_sites_are_distinguished() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn free_target() {}\n\
             impl T { fn method_target(&self) {} }\n\
             fn caller(t: &T) { free_target(); t.method_target(); }\n",
        )]);
        let (_, caller) = node(&g, "caller");
        assert_eq!(
            caller.calls,
            vec![
                CallSite {
                    line: 3,
                    name: "free_target".into(),
                    kind: CallKind::Free
                },
                CallSite {
                    line: 3,
                    name: "method_target".into(),
                    kind: CallKind::Method
                },
            ]
        );
        assert_eq!(callees(&g, "caller"), ["free_target", "method_target"]);
    }

    #[test]
    fn free_calls_do_not_cross_crates_without_an_import() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "fn caller() { helper(); }"),
            ("crates/b/src/lib.rs", "fn helper() {}"),
        ]);
        assert!(callees(&g, "caller").is_empty(), "no use, no edge");
    }

    #[test]
    fn use_alias_following_creates_cross_crate_edges() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "use b::io::helper;\nfn caller() { helper(); }",
            ),
            ("crates/b/src/io.rs", "pub fn helper() {}"),
        ]);
        assert_eq!(callees(&g, "caller"), ["helper"]);
    }

    #[test]
    fn qualified_path_calls_resolve_without_imports() {
        // `b::helper(..)` needs no `use`, and `Type::assoc(..)` resolves
        // through the (owner, name) index.
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "fn caller() { b::helper(); Widget::make(); }",
            ),
            (
                "crates/b/src/lib.rs",
                "pub fn helper() {}\nimpl Widget { pub fn make() {} }",
            ),
        ]);
        let mut cs = callees(&g, "caller");
        cs.sort();
        assert_eq!(cs, ["helper", "make"]);
    }

    #[test]
    fn renamed_import_still_resolves_to_the_target_crate() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "use b as io;\nfn caller() { io::helper(); }",
            ),
            ("crates/b/src/lib.rs", "pub fn helper() {}"),
        ]);
        // `io` is not a workspace package, but the alias table maps it to
        // crate `b` — only possible because DepMap knows b. Without a
        // DepMap there are no package names, so set one up.
        let mut deps = DepMap::default();
        deps.pkg_of_dir.insert("a".into(), "a".into());
        deps.pkg_of_dir.insert("b".into(), "b".into());
        deps.closure
            .insert("a".into(), std::iter::once("b".to_string()).collect());
        deps.closure.insert("b".into(), BTreeSet::new());
        let g2 = build_from(
            &[
                (
                    "crates/a/src/lib.rs",
                    "use b as io;\nfn caller() { io::helper(); }",
                ),
                ("crates/b/src/lib.rs", "pub fn helper() {}"),
            ],
            &deps,
        );
        assert_eq!(callees(&g2, "caller"), ["helper"]);
        drop(g);
    }

    #[test]
    fn turbofish_calls_are_seen() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn target() -> u8 { 0 }\nfn caller() { target::<u8>(); }",
        )]);
        assert_eq!(callees(&g, "caller"), ["target"]);
    }

    #[test]
    fn test_nodes_never_participate_in_reachability() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn root() { helper(); }\n\
             fn helper() {}\n\
             #[cfg(test)]\nmod t { fn helper2() { sim.request(x); } }\n",
        )]);
        let rule = RuleConfig::new("exec-substrate-transitive");
        let v = exec_substrate_transitive(&rule, &g, &|_| true);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn laundered_acquisition_is_reported_with_chain() {
        let g = graph(&[
            (
                "crates/engine/src/run.rs",
                "use helpers::spill;\nfn run_query() { spill(); }",
            ),
            (
                "crates/helpers/src/lib.rs",
                "pub fn spill() { io_inner(); }\npub fn io_inner() { sim.request(disk); }",
            ),
        ]);
        let rule = RuleConfig::new("exec-substrate-transitive");
        let v = exec_substrate_transitive(&rule, &g, &|f| f.starts_with("crates/engine"));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].0, "crates/engine/src/run.rs");
        assert_eq!(v[0].1.line, 2);
        assert!(v[0].1.message.contains("`request`"), "{}", v[0].1.message);
        assert!(v[0].1.message.contains("io_inner"), "{}", v[0].1.message);
    }

    #[test]
    fn trusted_substrate_chains_are_sanctioned() {
        let g = graph(&[
            (
                "crates/engine/src/run.rs",
                "use cluster::exec::run_phase;\nfn run_query() { run_phase(); }",
            ),
            (
                "crates/cluster/src/exec.rs",
                "pub fn run_phase() { sim.request(disk); }",
            ),
        ]);
        let mut rule = RuleConfig::new("exec-substrate-transitive");
        rule.trusted = vec!["crates/cluster".to_string()];
        let v = exec_substrate_transitive(&rule, &g, &|f| f.starts_with("crates/engine"));
        assert!(v.is_empty(), "substrate path must be allowed: {v:?}");
    }

    #[test]
    fn probe_passivity_flags_direct_and_laundered_mutation() {
        let g = graph(&[(
            "crates/obs/src/fold.rs",
            "fn fold(sim: &mut Sim) { sim.schedule_at(t, e); }\n\
             fn fold2() { tick(); }\n\
             fn tick() { sim.schedule_in(d, e); }\n\
             fn clean(ev: &ProbeEvent) { let _ = ev.depth; }\n",
        )]);
        let rule = RuleConfig::new("probe-passivity");
        let v = probe_passivity(&rule, &g, &|f| f.starts_with("crates/obs"));
        assert_eq!(v.len(), 3, "{v:?}");
        let msgs: String = v.iter().map(|(_, v)| v.message.as_str()).collect();
        assert!(msgs.contains("`fold`") && msgs.contains("`fold2`") && msgs.contains("`tick`"));
        assert!(!msgs.contains("`clean`"));
    }

    #[test]
    fn probe_impls_outside_scope_are_roots() {
        let g = graph(&[(
            "crates/other/src/lib.rs",
            "impl Probe for Spy { fn on_event(&mut self, ev: &E) { self.poke(); } }\n\
             impl Spy { fn poke(&self) { sim.request_as(r, s, c, e); } }\n",
        )]);
        let rule = RuleConfig::new("probe-passivity");
        let v = probe_passivity(&rule, &g, &|_| false);
        // `poke` is not a root (not in scope, not a Probe method), so
        // exactly the handler fires, with the chain in its message.
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].1.message.contains("`on_event`"));
        assert!(v[0].1.message.contains("request_as"));
    }

    #[test]
    fn dep_closure_prunes_method_name_collisions() {
        let mut deps = DepMap::default();
        deps.pkg_of_dir.insert("a".into(), "a".into());
        deps.pkg_of_dir.insert("b".into(), "b".into());
        deps.closure.insert("a".into(), BTreeSet::new()); // a deps: none
        deps.closure
            .insert("b".into(), std::iter::once("a".to_string()).collect());
        let g = build_from(
            &[
                (
                    "crates/a/src/lib.rs",
                    "impl X { fn poke(&self) {} }\nfn caller(x: &X) { x.poke(); }",
                ),
                ("crates/b/src/lib.rs", "impl Y { fn poke(&self) {} }"),
            ],
            &deps,
        );
        let (id, _) = node(&g, "caller");
        let targets: Vec<&str> = g
            .edges(id)
            .iter()
            .map(|&(t, _)| g.nodes[t].file.as_str())
            .collect();
        // a does not depend on b, so `.poke()` resolves only to a's method.
        assert_eq!(targets, ["crates/a/src/lib.rs"]);
    }

    #[test]
    fn manifest_parsing_builds_transitive_closures() {
        let (pkg, deps) = manifest_deps(
            "[package]\nname = \"elephants-core\"\n\n[dependencies]\n\
             simkit = { workspace = true }\nrand.workspace = true\n\
             [dependencies.extra]\npath = \"x\"\n",
        );
        assert_eq!(pkg.as_deref(), Some("elephants_core"));
        assert_eq!(deps, ["simkit", "rand", "extra"]);
    }
}
