//! CLI: `cargo run -p simlint [-- --list-allows] [--root DIR] [--config FILE] [PATH...]`
//!
//! Exit codes: 0 clean, 1 violations (or bare/unknown allows), 2 usage or
//! I/O errors. The default root is the nearest ancestor of the current
//! directory containing `simlint.toml`, so the tool works from anywhere in
//! the workspace.

#![forbid(unsafe_code)]

use simlint::{config, engine};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    list_allows: bool,
    strict: bool,
    json: bool,
    paths: Vec<String>,
}

fn usage() -> &'static str {
    "usage: simlint [--root DIR] [--config FILE] [--list-allows [--strict]]\n\
     \u{20}      [--format json|text] [PATH...]\n\
     \n\
     Lints every .rs file under the workspace root against simlint.toml.\n\
     PATH arguments (root-relative) restrict the run to those files/dirs.\n\
     --list-allows prints every inline suppression with its justification\n\
     instead of linting (bare allows still fail); with --strict, an allow\n\
     that suppresses nothing is an error too (stale suppressions rot\n\
     silently otherwise).\n\
     --format json emits one JSON object per violation, one per line, with\n\
     keys file, line, rule, message (schema in DESIGN.md §9)."
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        config: None,
        list_allows: false,
        strict: false,
        json: false,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?))
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a file")?))
            }
            "--list-allows" => args.list_allows = true,
            "--strict" => args.strict = true,
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("text") => args.json = false,
                other => {
                    return Err(format!(
                        "--format needs `json` or `text`, got `{}`",
                        other.unwrap_or("")
                    ))
                }
            },
            "--help" | "-h" => return Err(usage().to_string()),
            p if !p.starts_with('-') => args.paths.push(p.to_string()),
            other => return Err(format!("unknown flag `{other}`\n\n{}", usage())),
        }
    }
    if args.strict && !args.list_allows {
        return Err("--strict only makes sense with --list-allows".to_string());
    }
    Ok(args)
}

/// Nearest ancestor of the current directory that holds `simlint.toml`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("simlint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let root = match args.root {
        Some(r) => r,
        None => find_root()
            .ok_or("no simlint.toml found here or in any parent directory (use --root/--config)")?,
    };
    let config_path = args.config.unwrap_or_else(|| root.join("simlint.toml"));
    let toml = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {}: {e}", config_path.display()))?;
    let config = config::parse(&toml).map_err(|e| e.to_string())?;

    let report = engine::lint_tree(&config, &root, &args.paths)
        .map_err(|e| format!("walking {}: {e}", root.display()))?;

    if args.list_allows {
        print!("{}", report.render_allows());
        // Bad allows are violations; surface them in audit mode too.
        let bad: Vec<_> = report
            .violations
            .iter()
            .filter(|(_, v)| v.rule == "bad-allow")
            .collect();
        for (file, v) in &bad {
            eprintln!("{file}:{}: {}: {}", v.line, v.rule, v.message);
        }
        let stale = report.stale_allows();
        if args.strict {
            for (file, a) in &stale {
                eprintln!(
                    "{file}:{}: stale-allow: allow({}) suppresses nothing — remove it",
                    a.line,
                    a.rules.join(",")
                );
            }
            return Ok(bad.is_empty() && stale.is_empty());
        }
        return Ok(bad.is_empty());
    }

    if args.json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render());
    }
    if report.is_clean() {
        eprintln!(
            "simlint: clean ({} suppression{} in force — audit with --list-allows)",
            report.allows.len(),
            if report.allows.len() == 1 { "" } else { "s" }
        );
    } else {
        eprintln!("simlint: {} violation(s)", report.violations.len());
    }
    Ok(report.is_clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
