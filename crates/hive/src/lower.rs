//! Syntax-directed lowering of logical plans into MapReduce jobs.
//!
//! Every stage both (a) **really computes** its result rows using the
//! shared `relational::ops` kernels and (b) emits a [`JobSpec`] describing
//! per-task volumes, which the `mapreduce` engine turns into simulated
//! time. Joins run in written order; map-side joins are chosen by size
//! heuristics (with the Q22-style runtime failure + common-join fallback);
//! intermediate results are never re-bucketed, so downstream joins lose the
//! bucketed-map-join opportunity — the paper's §3.3.4.3 point (3).

use crate::meta::HiveWarehouse;
use cluster::exec::{ClusterExec, Phase};
use cluster::{Params, ScanFormat};
use mapreduce::{run_job_on, JobReport, JobSpec, MapTaskSpec, ReduceTaskSpec};
use relational::batch;
use relational::expr::{Bounds, Expr};
use relational::value::row_bytes;
use relational::{ops, AggCall, JoinKind, LogicalPlan, Row, SortKey};
use std::collections::{BTreeMap, BTreeSet};
use storage::ScanStats;

/// Map outputs are LZO-compressed (§3.2.1): effective size factor.
const LZO_FACTOR: f64 = 0.5;
/// Java in-memory expansion of raw data bytes (hash tables of boxed
/// objects): drives map-join feasibility.
const JAVA_FACTOR: f64 = 4.0;
/// A join side below this fraction of the task heap is auto-converted to a
/// map-side join (dimension tables, scalar aggregates).
const MAPJOIN_AUTO_FRAC: f64 = 0.01;
/// Memory actually available to a map-join hash table (Hive bounds it well
/// below the full heap). Hinted map joins above this fail at runtime.
const MAPJOIN_MEM_FRAC: f64 = 0.15;
/// Upper bound on broadcast-side rows for *fixed-size* relations (those
/// derived only from nation/region and scalar aggregates — they do not
/// grow with the scale factor, so similitude scaling must not subject them
/// to the scaled memory thresholds).
const MAPJOIN_TINY_ROWS: usize = 1_000;
/// Reducers per job — the paper tuned every job to exactly the cluster's
/// reduce-slot count so one reduce round suffices.
const REDUCERS: usize = 128;
/// Intermediate job outputs land in HDFS as replicated SequenceFiles with
/// serialization overhead — the disk-space amplification that ran Q9 out
/// of space at 16 TB.
const INTERMEDIATE_STORE_FACTOR: f64 = 1.2;

/// One stored "file" of an intermediate or base relation.
#[derive(Clone)]
pub struct Seg {
    pub rows: Vec<Row>,
    /// Stored (compressed) bytes a map task must read.
    pub read_bytes: u64,
    pub node: usize,
    /// HDFS blocks (→ map tasks) backing this file.
    pub blocks: usize,
    /// Decode rate for this file's format (bytes/sec per task): RCFile's
    /// expensive decompress path vs plain text scanning.
    pub decode_bw: f64,
}

/// A lowered relation: physical segments + physical properties.
#[derive(Clone)]
pub struct Staged {
    pub segments: Vec<Seg>,
    pub width: usize,
    /// `Some((col, n))` when the data is physically bucketed on `col` into
    /// `n` files (survives scan-time filter/project; lost at job outputs).
    pub bucketing: Option<(usize, usize)>,
    /// Scratch-space reservation backing this intermediate (released when
    /// it is consumed by a downstream job). Cached/materialized temp tables
    /// carry no reservation here — their space stays held to query end.
    pub reservation: Vec<(usize, u64)>,
    /// True when this relation derives only from fixed-size sources
    /// (nation/region — the PDW-replicated tables — and global-aggregate
    /// scalars): its size is independent of the scale factor, so it is
    /// always broadcastable.
    pub fixed_size: bool,
}

impl Staged {
    pub fn n_rows(&self) -> usize {
        self.segments.iter().map(|s| s.rows.len()).sum()
    }

    pub fn all_rows(&self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.n_rows());
        for s in &self.segments {
            out.extend(s.rows.iter().cloned());
        }
        out
    }

    /// Uncompressed data volume.
    pub fn data_bytes(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| s.rows.iter().map(|r| row_bytes(r)).sum::<u64>())
            .sum()
    }
}

/// Lowering error (disk exhaustion is the one the paper hits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HiveError {
    OutOfDisk {
        node: usize,
        job: String,
    },
    /// The running Hive release lacks the statement (0.7 has no INSERT
    /// INTO existing tables; no release here supports DELETE) — §3.3.1.
    Unsupported(String),
}

impl std::fmt::Display for HiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HiveError::OutOfDisk { node, job } => {
                write!(f, "job `{job}`: node {node} ran out of disk space")
            }
            HiveError::Unsupported(what) => write!(f, "unsupported in this Hive version: {what}"),
        }
    }
}
impl std::error::Error for HiveError {}

/// A completed job with its name.
#[derive(Clone, Debug)]
pub struct NamedJob {
    pub label: String,
    pub report: JobReport,
}

pub struct Lowering<'a> {
    pub w: &'a HiveWarehouse,
    pub jobs: Vec<NamedJob>,
    pub total_secs: f64,
    /// Propagated into every JobSpec (fault-injection ablation).
    pub map_failure_fraction: f64,
    /// One executor shared by the whole job DAG: every job (and every
    /// fixed charge) advances the same clock, so phase spans live on the
    /// query's time axis and an attached probe sees the full query.
    pub exec: ClusterExec,
    label_stack: Vec<String>,
    materialized: BTreeMap<String, Staged>,
    scratch_used: Vec<u64>,
    /// Cluster-wide peak scratch usage over the query (bytes).
    pub peak_scratch: u64,
    /// Block-pruning totals over every colblock scan in the query
    /// (zero for RCFile/text warehouses).
    pub scan_stats: ScanStats,
}

impl<'a> Lowering<'a> {
    pub fn new(w: &'a HiveWarehouse) -> Self {
        Lowering {
            w,
            jobs: Vec::new(),
            total_secs: 0.0,
            label_stack: vec!["main".to_string()],
            map_failure_fraction: 0.0,
            exec: ClusterExec::new(w.params.clone()),
            materialized: BTreeMap::new(),
            scratch_used: vec![0; w.params.nodes],
            peak_scratch: 0,
            scan_stats: ScanStats::default(),
        }
    }

    fn params(&self) -> &Params {
        &self.w.params
    }

    fn label(&self) -> String {
        self.label_stack.last().expect("label stack").clone()
    }

    fn run(&mut self, mut spec: JobSpec) {
        spec.map_failure_fraction = self.map_failure_fraction;
        let report = run_job_on(&mut self.exec, &spec);
        self.total_secs += report.total;
        self.jobs.push(NamedJob {
            label: spec.name.clone(),
            report,
        });
    }

    /// Account a fixed-duration step that has no task structure (metadata
    /// ops, client-side merges). Advances the shared executor clock too, so
    /// later jobs' spans stay aligned with the accumulated `total_secs`.
    fn charge_fixed(&mut self, name: &str, secs: f64) {
        self.total_secs += secs;
        let start_secs = self.exec.now_secs();
        self.exec.run(Phase::new(name).setup(secs));
        self.jobs.push(NamedJob {
            label: name.to_string(),
            report: JobReport {
                name: name.to_string(),
                start_secs,
                total: secs,
                ..JobReport::default()
            },
        });
    }

    /// Reserve scratch space for a job's intermediate output, spread across
    /// nodes; Q9 at 16 TB dies here.
    fn reserve(&mut self, bytes: u64, job: &str) -> Result<Vec<(usize, u64)>, HiveError> {
        let cap = self.w.dfs.config.capacity_per_node;
        let per_node = bytes / self.params().nodes as u64;
        let mut reservation = Vec::with_capacity(self.params().nodes);
        for node in 0..self.params().nodes {
            if let Some(cap) = cap {
                if self.w.dfs.used_bytes(node) + self.scratch_used[node] + per_node > cap {
                    return Err(HiveError::OutOfDisk {
                        node,
                        job: job.to_string(),
                    });
                }
            }
            self.scratch_used[node] += per_node;
            reservation.push((node, per_node));
        }
        self.peak_scratch = self.peak_scratch.max(self.scratch_used.iter().sum());
        Ok(reservation)
    }

    /// Release an intermediate's space once a downstream job has consumed
    /// it (Hive deletes consumed stage outputs as the DAG advances).
    fn release(&mut self, staged: &mut Staged) {
        for (node, b) in staged.reservation.drain(..) {
            self.scratch_used[node] = self.scratch_used[node].saturating_sub(b);
        }
    }

    // ---------------------------------------------------------------------

    /// Lower a plan, producing its staged result.
    pub fn lower(&mut self, plan: &LogicalPlan) -> Result<Staged, HiveError> {
        if let Some(stage) = ScanChain::match_plan(plan) {
            return Ok(self.lower_scan(stage));
        }
        match plan {
            LogicalPlan::Filter { input, pred } => {
                let mut s = self.lower(input)?;
                for seg in &mut s.segments {
                    seg.rows.retain(|r| pred.matches(r));
                }
                Ok(s)
            }
            LogicalPlan::Project { input, exprs } => {
                let mut s = self.lower(input)?;
                for seg in &mut s.segments {
                    seg.rows = ops::project(&seg.rows, exprs);
                }
                // Bucketing survives only if the bucket column is projected
                // as a bare column reference.
                s.bucketing = s.bucketing.and_then(|(c, n)| {
                    exprs
                        .iter()
                        .position(|(e, _)| matches!(e, Expr::Col(i) if *i == c))
                        .map(|pos| (pos, n))
                });
                s.width = exprs.len();
                Ok(s)
            }
            LogicalPlan::Join {
                left,
                right,
                kind,
                on,
                residual,
                mapjoin_hint,
            } => {
                let l = self.lower(left)?;
                let r = self.lower(right)?;
                let rw = r.width;
                self.lower_join(l, r, *kind, on, residual.as_ref(), rw, *mapjoin_hint)
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let s = self.lower(input)?;
                self.lower_aggregate(s, group_by, aggs)
            }
            LogicalPlan::Sort { input, keys } => {
                let s = self.lower(input)?;
                self.lower_sort(s, keys, None)
            }
            LogicalPlan::Limit { input, n } => {
                if let LogicalPlan::Sort { input: si, keys } = input.as_ref() {
                    let s = self.lower(si)?;
                    return self.lower_sort(s, keys, Some(*n));
                }
                let mut s = self.lower(input)?;
                let mut remaining = *n;
                for seg in &mut s.segments {
                    let take = remaining.min(seg.rows.len());
                    seg.rows.truncate(take);
                    remaining -= take;
                }
                Ok(s)
            }
            LogicalPlan::Materialize { input, label } => {
                // Temp tables are computed once and reused (Q2's tmp1 and
                // Q22's sub1 feed two consumers).
                if let Some(cached) = self.materialized.get(label) {
                    return Ok(cached.clone());
                }
                self.label_stack.push(label.clone());
                let mut s = self.lower(input)?;
                // If the sub-plan was pure map-side work (no job emitted for
                // it), the INSERT OVERWRITE forces a map-only job now.
                if s.bucketing.is_some() || !self.last_job_is(label) {
                    s = self.materialize_job(s, label)?;
                }
                self.label_stack.pop();
                // Temp tables lose bucketing.
                s.bucketing = None;
                self.materialized.insert(label.clone(), s.clone());
                Ok(s)
            }
            LogicalPlan::Scan { .. } => unreachable!("handled by ScanChain"),
        }
    }

    fn last_job_is(&self, label: &str) -> bool {
        self.jobs
            .last()
            .map(|j| j.label.contains(label))
            .unwrap_or(false)
    }

    // ---- scan stage -------------------------------------------------------

    fn lower_scan(&mut self, chain: ScanChain<'_>) -> Staged {
        let meta = self.w.table(chain.table);
        let base_schema = &meta.schema;
        // Which base columns does the op stack touch?
        let mut needed: BTreeSet<usize> = BTreeSet::new();
        let mut base_level = true;
        for op in &chain.ops {
            if !base_level {
                break;
            }
            match op {
                ScanOp::Filter(p) => p.referenced_cols(&mut needed),
                ScanOp::Project(exprs) => {
                    for (e, _) in *exprs {
                        e.referenced_cols(&mut needed);
                    }
                    base_level = false;
                }
            }
        }
        if chain.ops.iter().all(|o| matches!(o, ScanOp::Filter(_))) {
            // No projection: all columns flow through.
            needed = (0..base_schema.len()).collect();
        }
        let cols: Vec<usize> = needed.iter().copied().collect();
        let remap: BTreeMap<usize, usize> = cols
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();

        // Partition pruning from base-level equality filters.
        let keep_part = chain.partition_filter(base_schema, meta.layout.partition_col);
        let files = self
            .w
            .pruned_files(chain.table, |p| keep_part.as_ref().is_none_or(|f| f(p)));

        // Bucket column tracking through the op stack.
        let mut bucket_pos: Option<usize> = meta.layout.buckets.and_then(|(c, _)| {
            let base_idx = base_schema.col(c);
            remap.get(&base_idx).copied()
        });

        // Per-column interval restrictions implied by the filter stack, in
        // base-schema indices — colblock files check each block's min/max
        // stats against these and skip blocks that cannot contain a match
        // (RCFile/text have no stats and ignore them). Filters above a
        // bare-column projection still contribute: their columns map back
        // to base indices through the projection.
        let mut bounds: BTreeMap<usize, Bounds> = BTreeMap::new();
        let mut bounds_map: Option<Vec<usize>> = Some((0..base_schema.len()).collect());
        for op in &chain.ops {
            match op {
                ScanOp::Project(exprs) => {
                    bounds_map = bounds_map.and_then(|map| {
                        exprs
                            .iter()
                            .map(|(e, _)| match e {
                                Expr::Col(i) => map.get(*i).copied(),
                                _ => None,
                            })
                            .collect()
                    });
                }
                ScanOp::Filter(p) => {
                    if let Some(map) = &bounds_map {
                        for (c, b) in p.column_bounds() {
                            if let Some(&base) = map.get(c) {
                                let merged = match bounds.remove(&base) {
                                    Some(prev) => prev.intersect(b),
                                    None => b,
                                };
                                bounds.insert(base, merged);
                            }
                        }
                    }
                }
            }
        }

        let w = self.w;
        let mut segments = Vec::with_capacity(files.len());
        for path in &files {
            let dfs_meta = w.dfs.meta(path).expect("file registered");
            // Block count for the *projected* columns approximates how the
            // read is split; task count uses the stored file's block count.
            let blocks = dfs_meta.blocks.len().max(1);
            let node = dfs_meta.blocks[0].replicas[0];
            if let crate::meta::HiveFile::Col(cb) = w.dfs.payload(path).expect("file registered") {
                // Columnar path: decode only the surviving blocks of the
                // needed columns, then run the op stack vectorized — the
                // row-at-a-time loop below never sees these files.
                let (mut b, stats) = cb.read_pruned(&cols, &bounds);
                let mut level_map = Some(&remap);
                let mut cur_bucket = bucket_pos;
                for op in &chain.ops {
                    match op {
                        ScanOp::Filter(p) => {
                            let p2 = match level_map {
                                Some(m) => p.remap_cols(m),
                                None => (*p).clone(),
                            };
                            b = batch::filter(&b, &p2);
                        }
                        ScanOp::Project(exprs) => {
                            let mapped: Vec<(Expr, String)> = exprs
                                .iter()
                                .map(|(e, n)| {
                                    (
                                        match level_map {
                                            Some(m) => e.remap_cols(m),
                                            None => e.clone(),
                                        },
                                        n.clone(),
                                    )
                                })
                                .collect();
                            b = batch::project(&b, &mapped);
                            cur_bucket = cur_bucket.and_then(|c| {
                                mapped
                                    .iter()
                                    .position(|(e, _)| matches!(e, Expr::Col(i) if *i == c))
                            });
                            level_map = None;
                        }
                    }
                }
                bucket_pos = cur_bucket;
                self.scan_stats.merge(&stats);
                segments.push(Seg {
                    rows: b.to_rows(),
                    read_bytes: stats.bytes_read,
                    node,
                    blocks,
                    decode_bw: self.params().format_cost(ScanFormat::ColBlock).decode_bw,
                });
                continue;
            }
            // Decode per stored format: RCFile reads only the projected
            // columns (but pays the decompress CPU); text reads everything
            // at the cheap scan rate.
            let (mut rows, read_bytes, decode_bw) =
                match self.w.dfs.payload(path).expect("file registered") {
                    crate::meta::HiveFile::Rc(rc) => (
                        rc.read_columns(&cols),
                        rc.compressed_size_of(&cols),
                        self.params().rcfile_decode_bw,
                    ),
                    crate::meta::HiveFile::Text(bytes) => {
                        let full = storage::text::decode(bytes, base_schema);
                        let projected: Vec<Row> = full
                            .iter()
                            .map(|r| cols.iter().map(|&c| r[c].clone()).collect())
                            .collect();
                        (projected, bytes.len() as u64, self.params().text_scan_bw)
                    }
                    crate::meta::HiveFile::Col(_) => unreachable!("handled above"),
                };
            let mut level_map = Some(&remap);
            let mut cur_bucket = bucket_pos;
            for op in &chain.ops {
                match op {
                    ScanOp::Filter(p) => {
                        let p2 = match level_map {
                            Some(m) => p.remap_cols(m),
                            None => (*p).clone(),
                        };
                        rows.retain(|r| p2.matches(r));
                    }
                    ScanOp::Project(exprs) => {
                        let mapped: Vec<(Expr, String)> = exprs
                            .iter()
                            .map(|(e, n)| {
                                (
                                    match level_map {
                                        Some(m) => e.remap_cols(m),
                                        None => e.clone(),
                                    },
                                    n.clone(),
                                )
                            })
                            .collect();
                        rows = ops::project(&rows, &mapped);
                        cur_bucket = cur_bucket.and_then(|c| {
                            mapped
                                .iter()
                                .position(|(e, _)| matches!(e, Expr::Col(i) if *i == c))
                        });
                        level_map = None;
                    }
                }
            }
            bucket_pos = cur_bucket;
            segments.push(Seg {
                rows,
                read_bytes,
                node,
                blocks,
                decode_bw,
            });
        }
        let width = if chain.ops.iter().any(|o| matches!(o, ScanOp::Project(_))) {
            segments
                .first()
                .and_then(|s| s.rows.first().map(|r| r.len()))
                .unwrap_or_else(|| {
                    // Empty result: width from the last projection.
                    chain
                        .ops
                        .iter()
                        .rev()
                        .find_map(|o| match o {
                            ScanOp::Project(e) => Some(e.len()),
                            _ => None,
                        })
                        .unwrap_or(cols.len())
                })
        } else {
            base_schema.len()
        };
        let fixed_size = tpch::layout::paper_layouts()
            .iter()
            .any(|l| l.table == chain.table && l.pdw.distribution_col.is_none());
        Staged {
            segments,
            width,
            bucketing: bucket_pos.map(|c| (c, meta.layout.buckets.map(|(_, n)| n).unwrap_or(1))),
            reservation: Vec::new(),
            fixed_size,
        }
    }

    // ---- joins ------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn lower_join(
        &mut self,
        left: Staged,
        right: Staged,
        kind: JoinKind,
        on: &[(usize, usize)],
        residual: Option<&Expr>,
        right_width: usize,
        hinted: bool,
    ) -> Result<Staged, HiveError> {
        let p = self.params().clone();
        let (lb, rb) = (left.data_bytes(), right.data_bytes());
        let small_bytes = lb.min(rb);
        let small_rows = left.n_rows().min(right.n_rows());
        if std::env::var("HIVE_JOIN_DEBUG").is_ok() {
            eprintln!(
                "join decision: l={} rows/{}B r={} rows/{}B small={}B mem_limit={}B",
                left.n_rows(),
                lb,
                right.n_rows(),
                rb,
                small_bytes,
                (self.params().task_mem as f64 * MAPJOIN_MEM_FRAC) as u64
            );
        }
        let mem_limit = p.task_mem as f64 * MAPJOIN_MEM_FRAC;
        let auto_limit = p.task_mem as f64 * MAPJOIN_AUTO_FRAC;

        // Cross joins only appear against scalar aggregates → broadcast.
        if on.is_empty() {
            return self.map_join(left, right, kind, on, residual, right_width, false);
        }

        // Fixed-size dimension tables and scalar subplans are broadcast.
        let small_is_fixed = if lb <= rb {
            left.fixed_size
        } else {
            right.fixed_size
        };
        if small_is_fixed && small_rows <= MAPJOIN_TINY_ROWS {
            return self.map_join(left, right, kind, on, residual, right_width, false);
        }

        // Auto map join for tiny sides (relative to task memory).
        if (small_bytes as f64) <= auto_limit {
            return self.map_join(left, right, kind, on, residual, right_width, false);
        }

        // Bucketed map join: both sides bucketed on the join columns with
        // compatible counts, and the small side's buckets fit in memory.
        if let (Some((lc, ln)), Some((rc, rn))) = (left.bucketing, right.bucketing) {
            let on_match = on.len() == 1 && on[0] == (lc, rc);
            let compatible = ln % rn == 0 || rn % ln == 0;
            let per_bucket = small_bytes as f64 / (ln.min(rn) as f64);
            if on_match && compatible && per_bucket * JAVA_FACTOR <= mem_limit {
                return self.map_join(left, right, kind, on, residual, right_width, true);
            }
        }

        // Small enough that the in-memory hash table genuinely fits.
        if (small_bytes as f64) * JAVA_FACTOR <= mem_limit {
            return self.map_join(left, right, kind, on, residual, right_width, false);
        }

        // A MAPJOIN hint makes Hive try anyway; the hash table overflows
        // the heap and the backup common-join task launches after the
        // failure timeout (Q22 sub-query 4, §3.3.4.2).
        if hinted {
            let label = format!("{}:mapjoin-failed", self.label());
            self.charge_fixed(&label, p.mapjoin_fail_time);
        }

        self.common_join(left, right, kind, on, residual, right_width)
    }

    /// Map-side (broadcast) join: map-only job over the big side.
    #[allow(clippy::too_many_arguments)]
    fn map_join(
        &mut self,
        left: Staged,
        right: Staged,
        kind: JoinKind,
        on: &[(usize, usize)],
        residual: Option<&Expr>,
        right_width: usize,
        bucketed: bool,
    ) -> Result<Staged, HiveError> {
        let p = self.params().clone();
        let (lb, rb) = (left.data_bytes(), right.data_bytes());
        // Semantically we always build on `right` rows / probe with `left`
        // (ops::hash_join contract); the *streamed* side for costing is the
        // bigger one.
        let stream_left = lb >= rb;
        let small_bytes = lb.min(rb);

        let lrows = left.all_rows();
        let rrows = right.all_rows();
        let result = ops::hash_join(&lrows, &rrows, on, kind, residual, right_width);

        let streamed = if stream_left { &left } else { &right };
        let kind_name = if bucketed {
            "bucket-mapjoin"
        } else {
            "mapjoin"
        };
        let mut spec = JobSpec::new(format!("{}:{}", self.label(), kind_name));
        // Distributing the hash table via the distributed cache.
        if !bucketed {
            spec.setup_secs = small_bytes as f64 / p.nic_bw;
        }
        let small_is_fixed = if stream_left {
            right.fixed_size
        } else {
            left.fixed_size
        };
        let per_task_load = if small_is_fixed {
            // Fixed-size dimension tables are a few KB at *hardware* scale;
            // their load time is real-time negligible and must not be
            // charged against similitude-scaled bandwidth.
            0.0
        } else if bucketed {
            // Each task loads only its bucket of the small side.
            let buckets = streamed.segments.len().max(1);
            (small_bytes as f64 / buckets as f64) / p.mapjoin_load_bw
        } else {
            small_bytes as f64 / p.mapjoin_load_bw
        };
        let out_rows = result.len();
        let in_rows = streamed.n_rows().max(1);
        for seg in &streamed.segments {
            for b in 0..seg.blocks.max(1) {
                let _ = b;
                let rows = seg.rows.len() as f64 / seg.blocks.max(1) as f64;
                spec.maps.push(MapTaskSpec {
                    node: seg.node,
                    read_bytes: seg.read_bytes / seg.blocks.max(1) as u64,
                    cpu_secs: seg.read_bytes as f64 / seg.blocks.max(1) as f64 / seg.decode_bw
                        + rows / p.hive_rows_per_sec
                        + per_task_load
                        + (out_rows as f64 * rows / in_rows as f64) / p.hive_rows_per_sec,
                    output_bytes: 0,
                });
            }
        }
        self.run(spec);
        let n_files = streamed.segments.len().max(1);
        let fixed = left.fixed_size && right.fixed_size;
        {
            let mut l = left;
            let mut r = right;
            self.release(&mut l);
            self.release(&mut r);
        }
        let mut out = self.staged_from_rows(result, n_files);
        out.fixed_size = fixed;
        let store = (out.data_bytes() as f64 * INTERMEDIATE_STORE_FACTOR) as u64
            * self.params().hdfs_replication as u64;
        out.reservation = self.reserve(store, "mapjoin-output")?;
        Ok(out)
    }

    /// Common join: full MapReduce job, both sides shuffled on the key.
    fn common_join(
        &mut self,
        left: Staged,
        right: Staged,
        kind: JoinKind,
        on: &[(usize, usize)],
        residual: Option<&Expr>,
        right_width: usize,
    ) -> Result<Staged, HiveError> {
        let p = self.params().clone();
        let lcols: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
        let rcols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
        let lparts = ops::hash_partition(left.all_rows(), &lcols, REDUCERS);
        let rparts = ops::hash_partition(right.all_rows(), &rcols, REDUCERS);

        let shuffle_bytes = ((left.data_bytes() + right.data_bytes()) as f64 * LZO_FACTOR) as u64;
        let label = format!("{}:common-join", self.label());
        let spill = self.reserve(shuffle_bytes, &label)?;

        let mut spec = JobSpec::new(label);
        for staged in [&left, &right] {
            for seg in &staged.segments {
                let blocks = seg.blocks.max(1);
                let out =
                    (seg.rows.iter().map(|r| row_bytes(r)).sum::<u64>() as f64 * LZO_FACTOR) as u64;
                for _ in 0..blocks {
                    spec.maps.push(MapTaskSpec {
                        node: seg.node,
                        read_bytes: seg.read_bytes / blocks as u64,
                        cpu_secs: seg.read_bytes as f64 / blocks as f64 / seg.decode_bw
                            + (seg.rows.len() as f64 / blocks as f64) / p.hive_rows_per_sec,
                        output_bytes: out / blocks as u64,
                    });
                }
            }
        }

        let mut out_segments = Vec::with_capacity(REDUCERS);
        let mut out_total = 0u64;
        for r in 0..REDUCERS {
            let joined = ops::hash_join(&lparts[r], &rparts[r], on, kind, residual, right_width);
            let in_rows = lparts[r].len() + rparts[r].len();
            let in_bytes: u64 = lparts[r]
                .iter()
                .chain(rparts[r].iter())
                .map(|row| row_bytes(row))
                .sum();
            let out_bytes: u64 = joined.iter().map(|row| row_bytes(row)).sum();
            out_total += out_bytes;
            let stored = (out_bytes as f64 * p.rcfile_compression) as u64;
            spec.reduces.push(ReduceTaskSpec {
                node: r % p.nodes,
                shuffle_bytes: (in_bytes as f64 * LZO_FACTOR) as u64,
                cpu_secs: in_rows as f64 / p.hive_rows_per_sec
                    + joined.len() as f64 / p.hive_rows_per_sec,
                output_bytes: stored,
            });
            out_segments.push(Seg {
                rows: joined,
                read_bytes: stored,
                node: r % p.nodes,
                blocks: (stored / p.hdfs_block_size.max(1)).max(1) as usize,
                decode_bw: p.rcfile_decode_bw,
            });
        }
        // The materialized intermediate occupies HDFS until the query ends:
        // replicated, with SequenceFile overhead.
        let store =
            (out_total as f64 * INTERMEDIATE_STORE_FACTOR) as u64 * p.hdfs_replication as u64;
        let label2 = format!("{}:intermediate", self.label());
        self.run(spec);
        // The shuffle spill is cleaned up at job end; the inputs were
        // consumed by this job and their stage outputs get deleted.
        let mut spill_holder = Staged {
            segments: Vec::new(),
            width: 0,
            bucketing: None,
            reservation: spill,
            fixed_size: false,
        };
        self.release(&mut spill_holder);
        let left_width = left.width;
        {
            let mut l = left;
            let mut r = right;
            self.release(&mut l);
            self.release(&mut r);
        }
        let width = out_segments
            .iter()
            .find_map(|s| s.rows.first().map(|r| r.len()))
            .unwrap_or(
                left_width
                    + if matches!(kind, JoinKind::Inner | JoinKind::Left) {
                        right_width
                    } else {
                        0
                    },
            );
        let reservation = self.reserve(store, &label2)?;
        Ok(Staged {
            segments: out_segments,
            width,
            bucketing: None,
            reservation,
            fixed_size: false,
        })
    }

    // ---- aggregation -------------------------------------------------------

    fn lower_aggregate(
        &mut self,
        input: Staged,
        group_by: &[(Expr, String)],
        aggs: &[AggCall],
    ) -> Result<Staged, HiveError> {
        let p = self.params().clone();
        let reducers = if group_by.is_empty() { 1 } else { REDUCERS };
        let mut spec = JobSpec::new(format!("{}:group-by", self.label()));

        // Map side: partial aggregation per task (enabled per §3.2.1).
        let mut partials = Vec::new();
        for seg in &input.segments {
            let partial = ops::aggregate_partial(&seg.rows, group_by, aggs);
            let partial_bytes: u64 = partial
                .iter()
                .map(|(k, states)| {
                    row_bytes(k) + states.iter().map(|s| s.approx_bytes()).sum::<u64>()
                })
                .sum();
            let blocks = seg.blocks.max(1);
            for _ in 0..blocks {
                spec.maps.push(MapTaskSpec {
                    node: seg.node,
                    read_bytes: seg.read_bytes / blocks as u64,
                    cpu_secs: seg.read_bytes as f64 / blocks as f64 / seg.decode_bw
                        + (seg.rows.len() as f64 / blocks as f64) / p.hive_rows_per_sec,
                    output_bytes: ((partial_bytes as f64 * LZO_FACTOR) as u64) / blocks as u64,
                });
            }
            partials.push(partial);
        }

        // Input stage outputs are consumed by this job.
        {
            let mut i = input;
            self.release(&mut i);
        }
        // Merge globally (= what the reducers jointly compute).
        let merged = partials
            .into_iter()
            .fold(ops::GroupTable::new(), ops::aggregate_merge);
        // Distribute groups across reducers by key hash.
        let mut reducer_tables: Vec<ops::GroupTable> =
            (0..reducers).map(|_| ops::GroupTable::new()).collect();
        for (k, v) in merged {
            let r = if reducers == 1 {
                0
            } else {
                ops::bucket_of(&k, &(0..k.len()).collect::<Vec<_>>(), reducers)
            };
            reducer_tables[r].insert(k, v);
        }

        let mut out_segments = Vec::with_capacity(reducers);
        for (r, table) in reducer_tables.into_iter().enumerate() {
            let in_rows: usize = table.len();
            let rows = ops::aggregate_finish(table);
            let bytes: u64 = rows.iter().map(|row| row_bytes(row)).sum();
            let stored = (bytes as f64 * p.rcfile_compression) as u64;
            spec.reduces.push(ReduceTaskSpec {
                node: r % p.nodes,
                shuffle_bytes: (bytes as f64 * LZO_FACTOR) as u64,
                cpu_secs: in_rows as f64 / p.hive_rows_per_sec,
                output_bytes: stored,
            });
            out_segments.push(Seg {
                rows,
                read_bytes: stored,
                node: r % p.nodes,
                blocks: (stored / p.hdfs_block_size.max(1)).max(1) as usize,
                decode_bw: p.rcfile_decode_bw,
            });
        }
        self.run(spec);
        let out_bytes: u64 = out_segments
            .iter()
            .map(|seg| seg.rows.iter().map(|r| row_bytes(r)).sum::<u64>())
            .sum();
        let store = (out_bytes as f64 * INTERMEDIATE_STORE_FACTOR) as u64
            * self.params().hdfs_replication as u64;
        let reservation = self.reserve(store, "agg-output")?;
        Ok(Staged {
            width: group_by.len() + aggs.len(),
            segments: out_segments,
            bucketing: None,
            reservation,
            // A global aggregate is a single scalar row — always fixed.
            fixed_size: group_by.is_empty(),
        })
    }

    // ---- sort / limit -------------------------------------------------------

    fn lower_sort(
        &mut self,
        input: Staged,
        keys: &[SortKey],
        limit: Option<usize>,
    ) -> Result<Staged, HiveError> {
        let p = self.params().clone();
        let mut spec = JobSpec::new(format!("{}:order-by", self.label()));
        for seg in &input.segments {
            let blocks = seg.blocks.max(1);
            let out =
                (seg.rows.iter().map(|r| row_bytes(r)).sum::<u64>() as f64 * LZO_FACTOR) as u64;
            for _ in 0..blocks {
                spec.maps.push(MapTaskSpec {
                    node: seg.node,
                    read_bytes: seg.read_bytes / blocks as u64,
                    cpu_secs: seg.read_bytes as f64 / blocks as f64 / seg.decode_bw
                        + (seg.rows.len() as f64 / blocks as f64) / p.hive_rows_per_sec,
                    output_bytes: out / blocks as u64,
                });
            }
        }
        let mut rows = ops::sort(input.all_rows(), keys);
        if let Some(n) = limit {
            rows.truncate(n);
        }
        let bytes: u64 = rows.iter().map(|r| row_bytes(r)).sum();
        // Hive's total ORDER BY runs on a single reducer.
        spec.reduces.push(ReduceTaskSpec {
            node: 0,
            shuffle_bytes: (input.data_bytes() as f64 * LZO_FACTOR) as u64,
            cpu_secs: input.n_rows() as f64 / p.hive_rows_per_sec,
            output_bytes: (bytes as f64 * p.rcfile_compression) as u64,
        });
        self.run(spec);
        let width = rows.first().map(|r| r.len()).unwrap_or(input.width);
        Ok(Staged {
            segments: vec![Seg {
                read_bytes: (bytes as f64 * p.rcfile_compression) as u64,
                rows,
                node: 0,
                blocks: 1,
                decode_bw: p.rcfile_decode_bw,
            }],
            width,
            bucketing: None,
            reservation: Vec::new(),
            fixed_size: false,
        })
    }

    // ---- materialization ----------------------------------------------------

    /// INSERT OVERWRITE of map-side-only work: a map-only job, plus the
    /// paper's 50-second "filesystem job" merging many small output files
    /// (observed at SF ≤ 4 TB where ≤ 400 map tasks each wrote a sliver).
    fn materialize_job(&mut self, input: Staged, label: &str) -> Result<Staged, HiveError> {
        let p = self.params().clone();
        let mut spec = JobSpec::new(format!("{label}:insert"));
        let mut n_maps = 0;
        for seg in &input.segments {
            let blocks = seg.blocks.max(1);
            n_maps += blocks;
            let out = (seg.rows.iter().map(|r| row_bytes(r)).sum::<u64>() as f64
                * p.rcfile_compression) as u64;
            for _ in 0..blocks {
                spec.maps.push(MapTaskSpec {
                    node: seg.node,
                    read_bytes: seg.read_bytes / blocks as u64,
                    cpu_secs: seg.read_bytes as f64 / blocks as f64 / seg.decode_bw
                        + (seg.rows.len() as f64 / blocks as f64) / p.hive_rows_per_sec,
                    output_bytes: out / blocks as u64,
                });
            }
        }
        self.run(spec);
        if (64..=400).contains(&n_maps) {
            self.charge_fixed(&format!("{label}:fs-merge"), p.hive_fs_job);
        }
        let width = input.width;
        let rows = input.all_rows();
        Ok(self.staged_with_width(rows, n_maps.max(1), width))
    }

    fn staged_from_rows(&self, rows: Vec<Row>, n_files: usize) -> Staged {
        let width = rows.first().map(|r| r.len()).unwrap_or(0);
        self.staged_with_width(rows, n_files, width)
    }

    fn staged_with_width(&self, rows: Vec<Row>, n_files: usize, width: usize) -> Staged {
        let p = self.params();
        let n_files = n_files.clamp(1, 512);
        let chunk = rows.len().div_ceil(n_files).max(1);
        let mut segments = Vec::new();
        for (i, rows) in rows.chunks(chunk).enumerate() {
            let bytes: u64 = rows.iter().map(|r| row_bytes(r)).sum();
            let stored = (bytes as f64 * p.rcfile_compression) as u64;
            segments.push(Seg {
                rows: rows.to_vec(),
                read_bytes: stored,
                node: i % p.nodes,
                blocks: (stored / p.hdfs_block_size.max(1)).max(1) as usize,
                decode_bw: p.rcfile_decode_bw,
            });
        }
        if segments.is_empty() {
            segments.push(Seg {
                rows: Vec::new(),
                read_bytes: 0,
                node: 0,
                blocks: 1,
                decode_bw: p.rcfile_decode_bw,
            });
        }
        Staged {
            segments,
            width,
            bucketing: None,
            reservation: Vec::new(),
            fixed_size: false,
        }
    }
}

// ---- scan-chain matching ----------------------------------------------------

/// Decides whether a partition-directory value survives pruning.
type PartitionPredicate = Box<dyn Fn(&str) -> bool>;

enum ScanOp<'a> {
    Filter(&'a Expr),
    Project(&'a [(Expr, String)]),
}

/// A run of Filter/Project operators directly over a base-table scan —
/// these fuse into the consuming job's map phase.
struct ScanChain<'a> {
    table: &'a str,
    /// Bottom-up op order (closest to the scan first).
    ops: Vec<ScanOp<'a>>,
}

impl<'a> ScanChain<'a> {
    fn match_plan(plan: &'a LogicalPlan) -> Option<ScanChain<'a>> {
        let mut ops_rev = Vec::new();
        let mut cur = plan;
        loop {
            match cur {
                LogicalPlan::Scan { table } => {
                    ops_rev.reverse();
                    return Some(ScanChain {
                        table,
                        ops: ops_rev,
                    });
                }
                LogicalPlan::Filter { input, pred } => {
                    ops_rev.push(ScanOp::Filter(pred));
                    cur = input;
                }
                LogicalPlan::Project { input, exprs } => {
                    ops_rev.push(ScanOp::Project(exprs));
                    cur = input;
                }
                _ => return None,
            }
        }
    }

    /// Extract a partition-pruning predicate from base-level equality /
    /// IN-list filters on the partition column.
    fn partition_filter(
        &self,
        schema: &relational::Schema,
        partition_col: Option<&'static str>,
    ) -> Option<PartitionPredicate> {
        let pcol = schema.col(partition_col?);
        // Only filters *below* any projection see base column indices.
        for op in &self.ops {
            match op {
                ScanOp::Project(_) => break,
                ScanOp::Filter(pred) => {
                    if let Some(keep) = prune_values(pred, pcol) {
                        return Some(Box::new(move |part| keep.contains(&part.to_string())));
                    }
                }
            }
        }
        None
    }
}

/// If `pred` (possibly an AND) pins column `col` to specific values, return
/// their display forms.
fn prune_values(pred: &Expr, col: usize) -> Option<Vec<String>> {
    use relational::expr::CmpOp;
    match pred {
        Expr::Cmp(CmpOp::Eq, a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Col(i), Expr::Lit(v)) | (Expr::Lit(v), Expr::Col(i)) if *i == col => {
                Some(vec![v.to_string()])
            }
            _ => None,
        },
        Expr::InList(e, vals) => match e.as_ref() {
            Expr::Col(i) if *i == col => Some(vals.iter().map(|v| v.to_string()).collect()),
            _ => None,
        },
        Expr::And(parts) => parts.iter().find_map(|p| prune_values(p, col)),
        _ => None,
    }
}
