//! Data loading: dbgen text → HDFS copy → RCFile conversion (the two-phase
//! pipeline of §3.3.3, timed for Table 2).

use crate::meta::{HiveFile, HiveTableMeta, HiveWarehouse};
use cluster::Params;
use dfs::{Dfs, DfsConfig, DfsError};
use relational::Catalog;
use std::collections::BTreeMap;
use tpch::layout::layout_of;

/// Load timing breakdown.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Phase 1: parallel `hdfs put` of the generated text files.
    pub copy_secs: f64,
    /// Phase 2: INSERT ... SELECT converting text to compressed RCFile.
    pub convert_secs: f64,
    pub total_secs: f64,
    /// Compressed bytes stored (before replication).
    pub stored_bytes: u64,
    /// Raw text bytes generated.
    pub text_bytes: u64,
}

/// Build a Hive warehouse from a generated TPC-H catalog, returning the
/// warehouse and load timings.
///
/// `capacity_per_node` optionally enables disk-space accounting (the Q9
/// failure at 16 TB needs it).
pub fn load_warehouse(
    catalog: &Catalog,
    params: &Params,
    capacity_per_node: Option<u64>,
) -> Result<(HiveWarehouse, LoadReport), DfsError> {
    load_warehouse_fmt(
        catalog,
        params,
        capacity_per_node,
        crate::meta::StorageFormat::RcFile,
    )
}

/// Like [`load_warehouse`] but choosing the storage format (the RCFile
/// vs text ablation).
pub fn load_warehouse_fmt(
    catalog: &Catalog,
    params: &Params,
    capacity_per_node: Option<u64>,
    format: crate::meta::StorageFormat,
) -> Result<(HiveWarehouse, LoadReport), DfsError> {
    let mut config = DfsConfig::from_params(params);
    config.capacity_per_node = capacity_per_node;
    let mut warehouse = HiveWarehouse {
        dfs: Dfs::new(config),
        tables: BTreeMap::new(),
        params: params.clone(),
        format,
        version: crate::meta::HiveVersion::V0_7,
    };

    let mut report = LoadReport::default();
    for name in tpch::schema::TABLE_NAMES {
        let table = catalog.get(name);
        let layout = layout_of(name).hive;
        report.text_bytes += table.byte_size();
        let stored = warehouse.create_table(name, &table.schema, &layout, table.rows.clone())?;
        report.stored_bytes += stored;
    }

    // Phase 1 — all 16 nodes copy their local dbgen output into HDFS in
    // parallel; each byte lands on `replication` nodes, so the client-side
    // write bandwidth (which already folds in the replication pipeline) is
    // the bottleneck.
    let per_node_text = report.text_bytes as f64 / params.nodes as f64;
    report.copy_secs = per_node_text / params.hdfs_write_bw_per_node;

    // Phase 2 — a map-only conversion job: scan text, compress + encode
    // the stored format, write back to HDFS. Encode CPU is the bottleneck:
    // each node runs `map_slots` encoders in parallel. Text "conversion"
    // keeps the RCFile rate (the staging copy is the same CPU-bound pass).
    let encode_bw = match format {
        crate::meta::StorageFormat::ColBlock => params.colblock_encode_bw,
        _ => params.rcfile_encode_bw,
    };
    let encode_parallelism = params.map_slots_per_node as f64;
    let per_node_encode = per_node_text / (encode_bw * encode_parallelism);
    let per_node_write =
        (report.stored_bytes as f64 / params.nodes as f64) / params.hdfs_write_bw_per_node;
    report.convert_secs = per_node_encode.max(per_node_write) + params.job_overhead;

    report.total_secs = report.copy_secs + report.convert_secs;
    Ok((warehouse, report))
}

/// Store raw text files (the external-table staging step), used by the
/// ablation that benchmarks text-format scans.
pub fn load_text_table(
    warehouse: &mut HiveWarehouse,
    name: &str,
    catalog: &Catalog,
    files: usize,
) -> Result<(), DfsError> {
    let table = catalog.get(name);
    let chunk = table.rows.len().div_ceil(files.max(1));
    let mut paths = Vec::new();
    for (i, rows) in table.rows.chunks(chunk.max(1)).enumerate() {
        let bytes = storage::text::encode(rows);
        let path = format!("/staging/{name}/{i:05}");
        warehouse
            .dfs
            .create(&path, bytes.len() as u64, HiveFile::Text(bytes))?;
        paths.push(path);
    }
    warehouse.tables.insert(
        format!("{name}_text"),
        HiveTableMeta {
            schema: table.schema.clone(),
            layout: tpch::layout::HiveLayout {
                partition_col: None,
                buckets: None,
            },
            files: paths,
            n_rows: table.rows.len() as u64,
        },
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpch::{generate, GenConfig};

    #[test]
    fn warehouse_loads_all_tables() {
        let cat = generate(&GenConfig::new(0.01));
        let params = Params::paper_dss().scaled(25_000.0); // 250 GB / 0.01
        let (w, report) = load_warehouse(&cat, &params, None).unwrap();
        assert_eq!(w.tables.len(), 8);
        assert_eq!(w.table("lineitem").files.len(), 512);
        assert_eq!(w.table("orders").files.len(), 512);
        assert_eq!(w.table("customer").files.len(), 200);
        assert!(report.stored_bytes > 0);
        assert!(report.stored_bytes < report.text_bytes, "compression");
        assert!(report.total_secs > 0.0);
    }

    #[test]
    fn lineitem_buckets_mostly_empty() {
        let cat = generate(&GenConfig::new(0.01));
        let params = Params::paper_dss().scaled(25_000.0);
        let (w, _) = load_warehouse(&cat, &params, None).unwrap();
        let meta = w.table("lineitem");
        let non_empty = meta
            .files
            .iter()
            .filter(|p| w.rcfile(p).n_rows() > 0)
            .count();
        assert_eq!(non_empty, 128, "sparse orderkeys fill 128 of 512 buckets");
    }

    #[test]
    fn load_time_scales_roughly_linearly() {
        let cat = generate(&GenConfig::new(0.01));
        let p250 = Params::paper_dss().scaled(25_000.0);
        let p1000 = Params::paper_dss().scaled(100_000.0);
        let (_, r250) = load_warehouse(&cat, &p250, None).unwrap();
        let (_, r1000) = load_warehouse(&cat, &p1000, None).unwrap();
        let ratio = r1000.total_secs / r250.total_secs;
        assert!(
            (3.0..=4.5).contains(&ratio),
            "4x data ≈ 4x load time, got {ratio}"
        );
    }

    #[test]
    fn out_of_space_surfaces() {
        let cat = generate(&GenConfig::new(0.01));
        let params = Params::paper_dss().scaled(25_000.0);
        match load_warehouse(&cat, &params, Some(1024)) {
            Err(DfsError::OutOfSpace { .. }) => {}
            Err(other) => panic!("unexpected error {other:?}"),
            Ok(_) => panic!("load should exhaust a 1 KB/node filesystem"),
        }
    }
}
