//! The query engine: lowers a plan, runs its jobs, returns result + timing.

use crate::lower::{Lowering, NamedJob, Staged};
use crate::meta::HiveWarehouse;
use relational::plan::SchemaProvider;
use relational::{LogicalPlan, Row, Schema};
use simkit::probe::Probe;
use simkit::trace::{Span, UtilSummary};
use std::cell::RefCell;
use std::rc::Rc;

pub use crate::lower::HiveError;

/// Outcome of one query execution.
#[derive(Clone, Debug)]
pub struct QueryRun {
    pub rows: Vec<Row>,
    /// Simulated wall-clock seconds (sum over the sequential job DAG).
    pub total_secs: f64,
    pub jobs: Vec<NamedJob>,
    /// Peak cluster-wide scratch usage (spills + live intermediates).
    pub scratch_bytes: u64,
    /// End-of-query utilization of every cluster resource, accumulated
    /// over the whole job DAG on the shared executor (busy time, queue
    /// waits, peak queue depth).
    pub resources: Vec<simkit::resource::ResourceReport>,
    /// Block-pruning totals over every colblock scan in the query (all
    /// zeros for RCFile/text warehouses).
    pub scan_stats: storage::ScanStats,
    /// Kernel events the shared executor processed for this query — the
    /// passivity yardstick: identical with and without a probe attached.
    pub events_executed: u64,
}

impl QueryRun {
    /// Total time of jobs whose label contains `needle` (Table 5's
    /// per-sub-query breakdown).
    pub fn secs_for(&self, needle: &str) -> f64 {
        self.jobs
            .iter()
            .filter(|j| j.label.contains(needle))
            .map(|j| j.report.total)
            .sum()
    }

    /// Every phase span in the job DAG, names qualified by job label
    /// (`"q5-join/map"`) — the same record type PDW steps emit.
    pub fn spans(&self) -> Vec<Span> {
        self.jobs
            .iter()
            .flat_map(|j| {
                j.report.spans.iter().map(|s| Span {
                    name: format!("{}/{}", j.label, s.name),
                    ..s.clone()
                })
            })
            .collect()
    }

    /// Aggregate disk/CPU/NIC service and queue-wait totals over the whole
    /// query (all jobs, all phases).
    pub fn util(&self) -> UtilSummary {
        let mut u = UtilSummary::default();
        for j in &self.jobs {
            for s in &j.report.spans {
                u.merge(&s.util());
            }
        }
        u
    }
}

/// The Hive engine over a loaded warehouse.
pub struct HiveEngine {
    pub warehouse: HiveWarehouse,
    /// Fault injection: fraction of map tasks that fail once and are
    /// retried (Hadoop's task-level fault tolerance; 0.0 = healthy
    /// cluster). See the `ablation_fault_tolerance` bench.
    pub map_failure_fraction: f64,
}

impl SchemaProvider for HiveWarehouse {
    fn table_schema(&self, name: &str) -> &Schema {
        &self.table(name).schema
    }
}

impl HiveEngine {
    pub fn new(warehouse: HiveWarehouse) -> Self {
        HiveEngine {
            warehouse,
            map_failure_fraction: 0.0,
        }
    }

    /// TPC-H RF1 — `INSERT INTO <table>`: supported from Hive 0.8 only
    /// (§3.3.1). Appends the rows as fresh bucket files via a map-only job
    /// and returns simulated seconds.
    pub fn refresh_insert(
        &mut self,
        table: &str,
        rows: Vec<relational::Row>,
    ) -> Result<f64, HiveError> {
        use crate::meta::{HiveFile, HiveVersion, StorageFormat};
        if self.warehouse.version == HiveVersion::V0_7 {
            return Err(HiveError::Unsupported(
                "INSERT INTO existing tables (needs Hive >= 0.8)".to_string(),
            ));
        }
        let p = self.warehouse.params.clone();
        let meta = self.warehouse.table(table);
        let schema = meta.schema.clone();
        let layout = meta.layout.clone();
        let n_buckets = layout.buckets.map(|(_, n)| n).unwrap_or(1);
        let bucket_col = layout.buckets.map(|(c, _)| schema.col(c));
        // Bucket the new rows and append one extra file per non-empty
        // bucket (INSERT INTO adds files; it does not rewrite).
        let mut buckets: Vec<Vec<relational::Row>> = (0..n_buckets).map(|_| Vec::new()).collect();
        for r in rows {
            let b = bucket_col
                .map(|c| crate::hive_bucket(&r[c], n_buckets))
                .unwrap_or(0);
            buckets[b].push(r);
        }
        let mut total_bytes = 0u64;
        let mut stamp = 0usize;
        let mut new_files = Vec::new();
        for (b, bucket_rows) in buckets.into_iter().enumerate() {
            if bucket_rows.is_empty() {
                continue;
            }
            let path = format!("/warehouse/{table}/all/insert-{b:05}-{stamp}");
            stamp += 1;
            match self.warehouse.format {
                StorageFormat::RcFile => {
                    let rc = storage::rcfile::RcFile::write(
                        &bucket_rows,
                        &schema,
                        storage::rcfile::DEFAULT_ROW_GROUP,
                    );
                    let len = rc.compressed_size();
                    total_bytes += len;
                    self.warehouse
                        .dfs
                        .create(&path, len, HiveFile::Rc(rc))
                        .map_err(|e| match e {
                            dfs::DfsError::OutOfSpace { node } => HiveError::OutOfDisk {
                                node,
                                job: "insert".to_string(),
                            },
                            other => HiveError::Unsupported(other.to_string()),
                        })?;
                }
                StorageFormat::Text => {
                    let text = storage::text::encode(&bucket_rows);
                    let len = text.len() as u64;
                    total_bytes += len;
                    self.warehouse
                        .dfs
                        .create(&path, len, HiveFile::Text(text))
                        .map_err(|e| HiveError::Unsupported(e.to_string()))?;
                }
                StorageFormat::ColBlock => {
                    // Inserted files get the same cluster sort as the base
                    // files so their block stats stay prunable.
                    let mut bucket_rows = bucket_rows;
                    if let Some(cc) =
                        tpch::layout::colblock_cluster_col(table).and_then(|c| schema.index_of(c))
                    {
                        bucket_rows.sort_by(|a, z| a[cc].cmp(&z[cc]));
                    }
                    let cb = storage::colblock::ColBlockFile::write(
                        &bucket_rows,
                        &schema,
                        storage::colblock::DEFAULT_ROWS_PER_BLOCK,
                    );
                    let len = cb.compressed_size();
                    total_bytes += len;
                    self.warehouse
                        .dfs
                        .create(&path, len, HiveFile::Col(cb))
                        .map_err(|e| HiveError::Unsupported(e.to_string()))?;
                }
            }
            new_files.push(path);
        }
        let meta = self.warehouse.tables.get_mut(table).expect("table exists");
        meta.files.extend(new_files);
        // Map-only INSERT job: encode + replicated HDFS write.
        let encode_bw = match self.warehouse.format {
            StorageFormat::ColBlock => p.colblock_encode_bw,
            _ => p.rcfile_encode_bw,
        };
        let encode =
            total_bytes as f64 / (encode_bw * p.map_slots_per_node as f64 * p.nodes as f64);
        let write = total_bytes as f64 / (p.hdfs_write_bw_per_node * p.nodes as f64);
        Ok(p.job_overhead + p.task_startup + encode.max(write))
    }

    /// TPC-H RF2 — row-level DELETE: unsupported in every Hive release the
    /// paper considers.
    pub fn refresh_delete(&mut self, _table: &str) -> Result<f64, HiveError> {
        Err(HiveError::Unsupported(
            "DELETE from existing tables/partitions".to_string(),
        ))
    }

    /// Execute a query plan end to end.
    pub fn run_query(&self, plan: &LogicalPlan) -> Result<QueryRun, HiveError> {
        self.run_query_probed(plan, None)
    }

    /// Execute a query plan with an optional passive probe attached to the
    /// shared executor the whole job DAG runs on. The probe observes every
    /// resource event and phase span (on the query's single time axis) but
    /// cannot influence the run: timings and rows are byte-identical with
    /// and without one.
    pub fn run_query_probed(
        &self,
        plan: &LogicalPlan,
        probe: Option<Rc<RefCell<dyn Probe>>>,
    ) -> Result<QueryRun, HiveError> {
        let mut lowering = Lowering::new(&self.warehouse);
        lowering.exec.set_probe(probe);
        lowering.map_failure_fraction = self.map_failure_fraction;
        let staged: Staged = lowering.lower(plan)?;
        let rows = staged.all_rows();
        lowering.exec.set_probe(None);
        Ok(QueryRun {
            rows,
            total_secs: lowering.total_secs,
            jobs: lowering.jobs,
            scratch_bytes: lowering.peak_scratch,
            resources: lowering.exec.resource_reports(),
            scan_stats: lowering.scan_stats,
            events_executed: lowering.exec.events_executed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::load_warehouse;
    use cluster::Params;
    use relational::testing::assert_rows_match;
    use relational::{execute, Catalog};
    use tpch::{generate, GenConfig};

    fn setup(scale: f64, k: f64) -> (HiveEngine, Catalog) {
        let cat = generate(&GenConfig::new(scale));
        let params = Params::paper_dss().scaled(k);
        let (w, _) = load_warehouse(&cat, &params, None).unwrap();
        (HiveEngine::new(w), cat)
    }

    #[test]
    fn q1_matches_reference_and_takes_paper_scale_time() {
        let (engine, cat) = setup(0.01, 25_000.0); // "SF 250"
        let plan = tpch::query(1);
        let run = engine.run_query(&plan).unwrap();
        let (_, want) = execute(&plan, &cat);
        assert_rows_match("hive Q1", &run.rows, &want);
        // Paper Table 3: Hive Q1 at SF 250 ≈ 207 s. Shape check: minutes,
        // not seconds or hours.
        assert!(
            run.total_secs > 60.0 && run.total_secs < 900.0,
            "Q1@250GB ≈ 200s, got {}",
            run.total_secs
        );
    }

    #[test]
    fn q6_matches_reference() {
        let (engine, cat) = setup(0.01, 25_000.0);
        let plan = tpch::query(6);
        let run = engine.run_query(&plan).unwrap();
        let (_, want) = execute(&plan, &cat);
        assert_rows_match("hive Q6", &run.rows, &want);
    }

    #[test]
    fn q3_join_heavy_matches_reference() {
        let (engine, cat) = setup(0.01, 25_000.0);
        let plan = tpch::query(3);
        let run = engine.run_query(&plan).unwrap();
        let (_, want) = execute(&plan, &cat);
        assert_rows_match("hive Q3", &run.rows, &want);
        assert!(!run.jobs.is_empty());
    }

    #[test]
    fn q22_has_subquery_structure_and_failed_mapjoin() {
        let (engine, cat) = setup(0.01, 25_000.0);
        let plan = tpch::query(22);
        let run = engine.run_query(&plan).unwrap();
        let (_, want) = execute(&plan, &cat);
        assert_rows_match("hive Q22", &run.rows, &want);
        // Sub-query labels show up in the job list.
        assert!(run.secs_for("q22_sub1") > 0.0, "sub1 jobs exist");
        assert!(run.secs_for("q22_sub3") > 0.0, "sub3 jobs exist");
        // The paper: the sub-query-4 map join fails after ~400 s at every
        // scale factor.
        assert!(
            run.jobs.iter().any(|j| j.label.contains("mapjoin-failed")),
            "Q22's map join should fail and fall back: {:?}",
            run.jobs.iter().map(|j| j.label.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn colblock_warehouse_matches_reference_and_prunes() {
        let cat = generate(&GenConfig::new(0.01));
        let params = Params::paper_dss().scaled(25_000.0);
        let (w, _) = crate::load::load_warehouse_fmt(
            &cat,
            &params,
            None,
            crate::meta::StorageFormat::ColBlock,
        )
        .unwrap();
        let engine = HiveEngine::new(w);
        let plan = tpch::query(6);
        let run = engine.run_query(&plan).unwrap();
        let (_, want) = execute(&plan, &cat);
        assert_rows_match("hive colblock Q6", &run.rows, &want);
        assert!(
            run.scan_stats.blocks_pruned > 0,
            "Q6's shipdate range should skip blocks: {:?}",
            run.scan_stats
        );
        assert!(run.scan_stats.blocks_pruned < run.scan_stats.blocks_total);
    }

    #[test]
    fn scaling_factor_is_sublinear_for_q1() {
        // Table 3: Q1 time grows 3.9x when data grows 4x at the small end
        // (startup overheads amortize).
        let (e250, _) = setup(0.01, 25_000.0);
        let (e1000, _) = setup(0.04, 25_000.0);
        let plan = tpch::query(1);
        let t250 = e250.run_query(&plan).unwrap().total_secs;
        let t1000 = e1000.run_query(&plan).unwrap().total_secs;
        let factor = t1000 / t250;
        assert!(
            (2.0..4.3).contains(&factor),
            "Q1 250→1000 scaling ≈ 2.1-3.9x, got {factor}"
        );
    }
}
