//! # hive — a Hive 0.7-style MapReduce warehouse
//!
//! The NoSQL contender on the DSS side of the paper. What is modelled — and
//! what deliberately is *not* — mirrors the paper's analysis of why Hive
//! loses to PDW:
//!
//! * **Storage** ([`meta`], [`load`]): tables live in an HDFS-like DFS as
//!   compressed RCFiles, organized into partitions (one directory per
//!   partition-column value) and buckets (one file per hash bucket, sorted
//!   on the bucket column). Hive's integer bucket hash is the identity
//!   (`key % buckets`), so TPC-H's sparse order keys (first 8 of every 32)
//!   leave 384 of `lineitem`'s 512 buckets **empty** — the root cause of
//!   the paper's Q1/Q22 scaling anomalies.
//! * **Planning** ([`lower`]): *syntax-directed*, no cost-based optimizer.
//!   Joins run in exactly the order the query was written (the Hive team's
//!   hand-written TPC-H scripts). Map-side joins are chosen by a file-size
//!   heuristic and can **fail at runtime** (Java heap) after ~400 s, falling
//!   back to a common join — Q22's sub-query 4. Bucketed map joins are used
//!   when both sides are bucketed compatibly. Intermediate results are
//!   never re-bucketed, so downstream joins degrade to common joins — the
//!   paper's point (3) in §3.3.4.3.
//! * **Execution**: every stage is a real MapReduce job: data is actually
//!   partitioned/joined/aggregated with the shared `relational::ops`
//!   kernels, while the `mapreduce` engine turns per-task volumes into
//!   simulated wall-clock time.
//!
//! Set `HIVE_JOIN_DEBUG=1` to trace every join-strategy decision (sizes
//! vs thresholds) to stderr.

#![forbid(unsafe_code)]

pub mod engine;
pub mod load;
pub mod lower;
pub mod meta;

pub use engine::{HiveEngine, HiveError, QueryRun};
pub use load::{load_warehouse, load_warehouse_fmt, LoadReport};
pub use meta::{HiveFile, HiveTableMeta, HiveWarehouse, StorageFormat};

/// Hive's bucket function: identity modulo for integer-like keys (this is
/// what leaves 384 of 512 lineitem buckets empty under sparse order keys),
/// FNV for strings.
pub fn hive_bucket(v: &relational::Value, n: usize) -> usize {
    use relational::Value;
    debug_assert!(n > 0);
    match v {
        Value::I64(x) => (x.rem_euclid(n as i64)) as usize,
        Value::Date(x) => ((*x as i64).rem_euclid(n as i64)) as usize,
        Value::Bool(b) => (*b as usize) % n,
        other => relational::ops::bucket_of(std::slice::from_ref(other), &[0], n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::Value;

    #[test]
    fn integer_bucketing_is_identity_modulo() {
        assert_eq!(hive_bucket(&Value::I64(1), 512), 1);
        assert_eq!(hive_bucket(&Value::I64(513), 512), 1);
        assert_eq!(hive_bucket(&Value::I64(-1), 4), 3); // rem_euclid
    }

    #[test]
    fn sparse_orderkeys_fill_exactly_128_of_512_buckets() {
        // Keys use the first 8 of every 32 values; 512 = 16 * 32, so the
        // reachable residues are {32g + r : g in 0..16, r in 1..=8}.
        let mut used = std::collections::HashSet::new();
        for ordinal in 0..1_000_000i64 {
            let key = tpch_sparse(ordinal);
            used.insert(hive_bucket(&Value::I64(key), 512));
        }
        assert_eq!(used.len(), 128);
    }

    fn tpch_sparse(ordinal: i64) -> i64 {
        (ordinal / 8) * 32 + ordinal % 8 + 1
    }
}
