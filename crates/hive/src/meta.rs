//! The metastore: table layouts and the physical warehouse in DFS.

use crate::hive_bucket;
use cluster::Params;
use dfs::Dfs;
use relational::{Row, Schema};
use std::collections::BTreeMap;
use storage::colblock::ColBlockFile;
use storage::rcfile::RcFile;
use tpch::layout::{colblock_cluster_col, HiveLayout};

/// A file stored in the warehouse.
pub enum HiveFile {
    /// Compressed columnar data (the format the paper benchmarks).
    Rc(RcFile),
    /// Raw delimited text (the pre-conversion external tables).
    Text(Vec<u8>),
    /// Columnar blocks with min/max statistics (the modern-format
    /// ablation; not part of the paper's configuration).
    Col(ColBlockFile),
}

impl HiveFile {
    pub fn byte_len(&self) -> u64 {
        match self {
            HiveFile::Rc(f) => f.compressed_size(),
            HiveFile::Text(t) => t.len() as u64,
            HiveFile::Col(f) => f.compressed_size(),
        }
    }
}

/// Metastore entry for one table.
#[derive(Clone, Debug)]
pub struct HiveTableMeta {
    pub schema: Schema,
    pub layout: HiveLayout,
    /// Data file paths in bucket order (one per partition × bucket).
    pub files: Vec<String>,
    pub n_rows: u64,
}

/// On-disk format for base tables (the paper's RCFile-vs-text discussion,
/// §3.3.4.3 point 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StorageFormat {
    /// Compressed columnar (the paper's configuration).
    RcFile,
    /// Plain delimited text: no compression, no column pruning, but a much
    /// cheaper decode path.
    Text,
    /// Columnar blocks (`storage::colblock`): column pruning plus
    /// block-level min/max pruning and a vectorized decode path — the
    /// "2026 elephant" third leg of the storage ablation.
    ColBlock,
}

/// Hive release behaviour the paper distinguishes (§3.3.1): 0.7 cannot
/// insert into existing tables; 0.8 supports INSERT INTO (deletes remain
/// unsupported in both).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HiveVersion {
    V0_7,
    V0_8,
}

/// The warehouse: DFS + metastore.
pub struct HiveWarehouse {
    pub dfs: Dfs<HiveFile>,
    /// `BTreeMap` so any metastore enumeration is in sorted table order.
    pub tables: BTreeMap<String, HiveTableMeta>,
    pub params: Params,
    pub format: StorageFormat,
    pub version: HiveVersion,
}

impl HiveWarehouse {
    /// Physically organize `rows` according to `layout` and store them as
    /// RCFiles under `/warehouse/<table>/...`. Returns total compressed
    /// bytes written, or the out-of-space error.
    pub fn create_table(
        &mut self,
        name: &str,
        schema: &Schema,
        layout: &HiveLayout,
        rows: Vec<Row>,
    ) -> Result<u64, dfs::DfsError> {
        let n_rows = rows.len() as u64;
        // Partition: directory per partition value (BTreeMap for
        // deterministic directory order).
        let mut partitions: BTreeMap<String, Vec<Row>> = BTreeMap::new();
        match layout.partition_col {
            Some(col) => {
                let idx = schema.col(col);
                for r in rows {
                    let key = r[idx].to_string();
                    partitions.entry(key).or_default().push(r);
                }
            }
            None => {
                partitions.insert("all".to_string(), rows);
            }
        }

        let mut files = Vec::new();
        let mut total = 0u64;
        for (part, part_rows) in partitions {
            let (bucket_col, n_buckets) = match layout.buckets {
                Some((col, n)) => (Some(schema.col(col)), n),
                None => (None, 1),
            };
            // Bucket split (identity modulo for ints — see crate docs).
            let mut buckets: Vec<Vec<Row>> = (0..n_buckets).map(|_| Vec::new()).collect();
            match bucket_col {
                Some(bc) => {
                    for r in part_rows {
                        let b = hive_bucket(&r[bc], n_buckets);
                        buckets[b].push(r);
                    }
                }
                None => buckets[0] = part_rows,
            }
            for (b, mut bucket_rows) in buckets.into_iter().enumerate() {
                // Each bucket is sorted on the bucket column (Table 1).
                if let Some(bc) = bucket_col {
                    bucket_rows.sort_by(|a, z| a[bc].cmp(&z[bc]));
                }
                let path = format!("/warehouse/{name}/{part}/{b:05}");
                match self.format {
                    StorageFormat::RcFile => {
                        let rc =
                            RcFile::write(&bucket_rows, schema, storage::rcfile::DEFAULT_ROW_GROUP);
                        let len = rc.compressed_size();
                        total += len;
                        self.dfs.create(&path, len, HiveFile::Rc(rc))?;
                    }
                    StorageFormat::Text => {
                        let text = storage::text::encode(&bucket_rows);
                        let len = text.len() as u64;
                        total += len;
                        self.dfs.create(&path, len, HiveFile::Text(text))?;
                    }
                    StorageFormat::ColBlock => {
                        // Cluster-sort so block min/max ranges are tight
                        // and disjoint; without it every block spans the
                        // full value range and pruning never fires.
                        if let Some(cc) =
                            colblock_cluster_col(name).and_then(|c| schema.index_of(c))
                        {
                            bucket_rows.sort_by(|a, z| a[cc].cmp(&z[cc]));
                        }
                        let cb = ColBlockFile::write(
                            &bucket_rows,
                            schema,
                            storage::colblock::DEFAULT_ROWS_PER_BLOCK,
                        );
                        let len = cb.compressed_size();
                        total += len;
                        self.dfs.create(&path, len, HiveFile::Col(cb))?;
                    }
                }
                files.push(path);
            }
        }
        self.tables.insert(
            name.to_string(),
            HiveTableMeta {
                schema: schema.clone(),
                layout: layout.clone(),
                files,
                n_rows,
            },
        );
        Ok(total)
    }

    pub fn table(&self, name: &str) -> &HiveTableMeta {
        self.tables
            .get(name)
            .unwrap_or_else(|| panic!("no hive table `{name}`"))
    }

    /// The RCFile behind a path.
    pub fn rcfile(&self, path: &str) -> &RcFile {
        match self.dfs.payload(path).expect("file exists") {
            HiveFile::Rc(f) => f,
            _ => panic!("{path} is not an RCFile"),
        }
    }

    /// The colblock file behind a path.
    pub fn colfile(&self, path: &str) -> &ColBlockFile {
        match self.dfs.payload(path).expect("file exists") {
            HiveFile::Col(f) => f,
            _ => panic!("{path} is not a colblock file"),
        }
    }

    /// Partition pruning: files surviving an (optional) partition-value
    /// restriction. `keep` receives each partition directory value.
    pub fn pruned_files(&self, name: &str, keep: impl Fn(&str) -> bool) -> Vec<String> {
        self.table(name)
            .files
            .iter()
            .filter(|p| {
                let part = p.split('/').nth(3).expect("warehouse path shape");
                keep(part)
            })
            .cloned()
            .collect()
    }
}

/// Total row width helper used for volume estimates.
pub fn rows_bytes(rows: &[Row]) -> u64 {
    rows.iter().map(|r| relational::value::row_bytes(r)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs::DfsConfig;
    use relational::{DataType, Value};

    fn warehouse() -> HiveWarehouse {
        let params = Params::paper_dss();
        HiveWarehouse {
            dfs: Dfs::new(DfsConfig::from_params(&params)),
            tables: BTreeMap::new(),
            params,
            format: StorageFormat::RcFile,
            version: HiveVersion::V0_7,
        }
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| {
                vec![
                    Value::I64(i),
                    Value::I64(i % 25),
                    Value::str(format!("r{i}")),
                ]
            })
            .collect()
    }

    fn schema() -> Schema {
        Schema::of(&[
            ("k", DataType::I64),
            ("nat", DataType::I64),
            ("s", DataType::Str),
        ])
    }

    #[test]
    fn bucketed_table_creates_one_file_per_bucket() {
        let mut w = warehouse();
        let layout = HiveLayout {
            partition_col: None,
            buckets: Some(("k", 8)),
        };
        w.create_table("t", &schema(), &layout, rows(100)).unwrap();
        let meta = w.table("t");
        assert_eq!(meta.files.len(), 8);
        let total: usize = meta.files.iter().map(|p| w.rcfile(p).n_rows()).sum();
        assert_eq!(total, 100);
        // Buckets are sorted on the bucket column.
        let f0 = w.rcfile(&meta.files[0]).read_all();
        let keys: Vec<i64> = f0.iter().map(|r| r[0].as_i64().unwrap()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn partitioned_and_bucketed_like_customer() {
        let mut w = warehouse();
        let layout = HiveLayout {
            partition_col: Some("nat"),
            buckets: Some(("k", 8)),
        };
        w.create_table("cust", &schema(), &layout, rows(1000))
            .unwrap();
        // 25 partitions x 8 buckets = 200 files — the paper's customer
        // table map-task count.
        assert_eq!(w.table("cust").files.len(), 200);
        // Pruning to one nation keeps 8 files.
        let pruned = w.pruned_files("cust", |p| p == "7");
        assert_eq!(pruned.len(), 8);
    }

    #[test]
    fn sparse_keys_leave_buckets_empty_but_files_exist() {
        let mut w = warehouse();
        let layout = HiveLayout {
            partition_col: None,
            buckets: Some(("k", 64)),
        };
        // keys 32g + (1..=8): residues mod 64 cover {1..8, 33..40} = 16.
        let rows: Vec<Row> = (0..512)
            .map(|i| {
                vec![
                    Value::I64((i / 8) * 32 + i % 8 + 1),
                    Value::I64(0),
                    Value::str("x"),
                ]
            })
            .collect();
        w.create_table("sparse", &schema(), &layout, rows).unwrap();
        let meta = w.table("sparse");
        assert_eq!(meta.files.len(), 64, "empty buckets still get files");
        let non_empty = meta
            .files
            .iter()
            .filter(|p| w.rcfile(p).n_rows() > 0)
            .count();
        assert_eq!(non_empty, 16);
    }
}
