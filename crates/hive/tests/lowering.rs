//! Behavioural tests of the Hive lowering: which join strategy gets
//! picked, partition pruning, text-format equality, and job structure.

use cluster::Params;
use hive::{load_warehouse, load_warehouse_fmt, HiveEngine, StorageFormat};
use relational::expr::{col, lit_i64, lit_str};
use relational::{AggCall, LogicalPlan};
use tpch::{generate, GenConfig};

fn engine(scale: f64, paper: f64) -> HiveEngine {
    let cat = generate(&GenConfig::new(scale));
    let params = Params::paper_dss().scaled(paper / scale);
    let (w, _) = load_warehouse(&cat, &params, None).unwrap();
    HiveEngine::new(w)
}

#[test]
fn q12_uses_the_bucketed_map_join() {
    // lineitem and orders are both bucketed 512-ways on the order key and
    // Q12 joins exactly on it: the lowering must pick the bucketed map join
    // (no shuffle of either table).
    let e = engine(0.01, 250.0);
    let run = e.run_query(&tpch::query(12)).unwrap();
    assert!(
        run.jobs.iter().any(|j| j.label.contains("bucket-mapjoin")),
        "Q12 should use a bucketed map join: {:?}",
        run.jobs.iter().map(|j| j.label.clone()).collect::<Vec<_>>()
    );
}

#[test]
fn q5_lineitem_join_is_a_common_join() {
    // §3.3.4.1: the nation⋈region⋈supplier chain map-joins, but the join
    // against lineitem runs as the expensive common join.
    let e = engine(0.01, 250.0);
    let run = e.run_query(&tpch::query(5)).unwrap();
    let labels: Vec<&str> = run.jobs.iter().map(|j| j.label.as_str()).collect();
    assert!(
        labels.iter().filter(|l| l.contains("common-join")).count() >= 2,
        "Q5 needs common joins for lineitem/orders/customer: {labels:?}"
    );
    assert!(
        labels.iter().any(|l| l.contains("mapjoin")),
        "the dimension chain should map-join: {labels:?}"
    );
}

#[test]
fn nation_region_always_broadcast_at_any_scale() {
    // Fixed-size dimension tables are broadcastable regardless of the
    // similitude factor (the scaled task memory cannot be the yardstick).
    for paper in [250.0, 16000.0] {
        let e = engine(0.01, paper);
        let plan = LogicalPlan::scan("nation")
            .project(vec![(col(0), "n_nationkey"), (col(2), "n_regionkey")])
            .join(
                LogicalPlan::scan("region").project(vec![(col(0), "r_regionkey")]),
                vec![(1, 0)],
            )
            .aggregate(vec![], vec![AggCall::count_star("n")]);
        let run = e.run_query(&plan).unwrap();
        assert!(
            run.jobs.iter().any(|j| j.label.contains("mapjoin")),
            "@{paper}: nation⋈region must broadcast"
        );
        assert!(
            !run.jobs.iter().any(|j| j.label.contains("common-join")),
            "@{paper}: no shuffle for fixed dimension tables"
        );
    }
}

#[test]
fn partition_pruning_reads_only_matching_directories() {
    // customer is partitioned by c_nationkey into 25 directories; an
    // equality filter must scan 8 files (one partition's buckets), not 200.
    let e = engine(0.01, 250.0);
    let s = tpch::schema::customer();
    let pruned = LogicalPlan::scan("customer")
        .filter(col(s.col("c_nationkey")).eq(lit_i64(7)))
        .aggregate(vec![], vec![AggCall::count_star("n")]);
    let run_pruned = e.run_query(&pruned).unwrap();
    let full = LogicalPlan::scan("customer")
        .filter(col(s.col("c_mktsegment")).eq(lit_str("BUILDING")))
        .aggregate(vec![], vec![AggCall::count_star("n")]);
    let run_full = e.run_query(&full).unwrap();
    let maps = |r: &hive::QueryRun| r.jobs.iter().map(|j| j.report.n_maps).max().unwrap();
    assert_eq!(maps(&run_pruned), 8, "one partition = 8 bucket files");
    assert_eq!(maps(&run_full), 200, "unprunable filter scans all files");
}

#[test]
fn text_format_gives_identical_answers() {
    let cat = generate(&GenConfig::new(0.01));
    let params = Params::paper_dss().scaled(25_000.0);
    let (wr, _) = load_warehouse_fmt(&cat, &params, None, StorageFormat::RcFile).unwrap();
    let (wt, _) = load_warehouse_fmt(&cat, &params, None, StorageFormat::Text).unwrap();
    let er = HiveEngine::new(wr);
    let et = HiveEngine::new(wt);
    for q in [1usize, 6, 14] {
        let plan = tpch::query(q);
        let a = er.run_query(&plan).unwrap();
        let b = et.run_query(&plan).unwrap();
        assert!(
            relational::testing::rows_approx_eq(&a.rows, &b.rows, 1e-9),
            "format must not change Q{q}'s answer"
        );
    }
}

#[test]
fn empty_bucket_map_tasks_still_launch() {
    // The Q1 phenomenon: all 512 lineitem bucket files get a map task even
    // though 384 are empty.
    let e = engine(0.01, 250.0);
    let run = e.run_query(&tpch::query(1)).unwrap();
    let scan_job = run
        .jobs
        .iter()
        .find(|j| j.report.n_maps >= 512)
        .expect("the lineitem scan launches one task per bucket file");
    // ≥ 4 waves: 384 empty files + ≥ 1 task per non-empty bucket. (Our LZ
    // compressor is weaker than GZIP, so non-empty buckets can span an
    // extra block vs the paper's exactly-512.)
    assert!(
        (4..=8).contains(&scan_job.report.min_waves),
        "waves = {}",
        scan_job.report.min_waves
    );
}
