//! One SQL Server instance: clustered storage, buffer pool, row locks, WAL.

use simkit::{Event, Sim};
use std::collections::{HashMap, VecDeque};
use storage::bufpool::{Access, BufferPool};
use storage::BTree;

type S = Sim<()>;

/// Node-level configuration (already similitude-scaled by the caller).
#[derive(Clone, Debug)]
pub struct SqlNodeConfig {
    /// Buffer pool capacity in pages.
    pub bufpool_pages: usize,
    /// Records per 8 KB page (7 for the paper's 1 KB records).
    pub records_per_page: u64,
    /// Page size in bytes (8 KB).
    pub page_bytes: u64,
}

/// Per-key exclusive-lock state (read committed: writers exclude everyone).
#[derive(Default)]
struct LockState {
    x_held: bool,
    waiters: VecDeque<Event<()>>,
}

/// Access statistics used by the tests and the harness.
#[derive(Clone, Debug, Default)]
pub struct NodeStats {
    pub reads: u64,
    pub writes: u64,
    pub lock_waits: u64,
}

/// One SQL Server node: real row versions (for correctness checks), a real
/// LRU buffer pool (for hit rates), and a lock table.
pub struct SqlNode {
    pub cfg: SqlNodeConfig,
    pub pool: BufferPool,
    /// key → version; the clustered index over this node's shard.
    pub rows: BTree<u64, u32>,
    locks: HashMap<u64, LockState>,
    pub stats: NodeStats,
    /// Write-ahead log: one record per *acknowledged* write (appended when
    /// the commit's log flush completes). Recovery replays it over the
    /// loaded base — full durability, the thing MongoDB's paper
    /// configuration gave up.
    pub wal: Vec<(u64, u32)>,
}

impl SqlNode {
    pub fn new(cfg: SqlNodeConfig) -> SqlNode {
        SqlNode {
            pool: BufferPool::new(cfg.bufpool_pages.max(1)),
            cfg,
            rows: BTree::new(),
            locks: HashMap::new(),
            stats: NodeStats::default(),
            wal: Vec::new(),
        }
    }

    /// Data page holding `key` (clustered by key).
    pub fn page_of(&self, key: u64) -> u64 {
        key / self.cfg.records_per_page
    }

    /// Touch the page for `key`; returns whether a disk read is needed and
    /// any dirty page that must be written back.
    pub fn touch(&mut self, key: u64, dirty: bool) -> (bool, Option<u64>) {
        let page = self.page_of(key);
        match self.pool.access(page, dirty) {
            Access::Hit => (false, None),
            Access::Miss { evicted_dirty } => (true, evicted_dirty),
        }
    }

    /// Try to take the X lock on `key`. On contention the continuation is
    /// queued and replayed at release time.
    pub fn lock_x(&mut self, key: u64, cont: Event<()>) -> Option<Event<()>> {
        let state = self.locks.entry(key).or_default();
        if state.x_held {
            self.stats.lock_waits += 1;
            state.waiters.push_back(cont);
            None
        } else {
            state.x_held = true;
            Some(cont)
        }
    }

    /// Read-committed S lock: blocks only while an X lock is held.
    pub fn lock_s(&mut self, key: u64, cont: Event<()>) -> Option<Event<()>> {
        match self.locks.get_mut(&key) {
            Some(state) if state.x_held => {
                self.stats.lock_waits += 1;
                state.waiters.push_back(cont);
                None
            }
            _ => Some(cont),
        }
    }

    /// Release the X lock, waking all waiters (they re-contend in order).
    pub fn unlock_x(&mut self, key: u64, sim: &mut S) {
        if let Some(state) = self.locks.get_mut(&key) {
            state.x_held = false;
            let waiters: Vec<_> = state.waiters.drain(..).collect();
            if state.waiters.is_empty() && !state.x_held {
                // Keep the table small: drop idle entries.
                if waiters.is_empty() {
                    self.locks.remove(&key);
                }
            }
            for w in waiters {
                sim.schedule_in(0, w);
            }
        }
    }

    /// Number of dirty pages (checkpoint working set); marks them clean.
    pub fn checkpoint_take(&mut self) -> usize {
        let n = self.pool.dirty_pages().len();
        self.pool.mark_all_clean();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn node(pages: usize) -> SqlNode {
        SqlNode::new(SqlNodeConfig {
            bufpool_pages: pages,
            records_per_page: 7,
            page_bytes: 8192,
        })
    }

    #[test]
    fn page_mapping_is_clustered() {
        let n = node(10);
        assert_eq!(n.page_of(0), 0);
        assert_eq!(n.page_of(6), 0);
        assert_eq!(n.page_of(7), 1);
        assert_eq!(n.page_of(700), 100);
    }

    #[test]
    fn touch_tracks_hits_and_dirty_evictions() {
        let mut n = node(1);
        let (miss, evicted) = n.touch(0, true);
        assert!(miss);
        assert_eq!(evicted, None);
        let (hit_miss, _) = n.touch(1, false); // same page 0
        assert!(!hit_miss);
        let (miss2, evicted2) = n.touch(100, false); // evicts dirty page 0
        assert!(miss2);
        assert_eq!(evicted2, Some(0));
    }

    #[test]
    fn x_lock_excludes_and_wakes_in_order() {
        let mut sim: S = Sim::new();
        let mut n = node(10);
        let order: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        let (o1, o2, o3) = (order.clone(), order.clone(), order.clone());
        // First writer gets the lock immediately.
        let got = n.lock_x(42, Box::new(move |_, _| o1.borrow_mut().push("w1")));
        assert!(got.is_some());
        got.unwrap()(&mut sim, &mut ());
        // Second writer and a reader queue.
        assert!(n
            .lock_x(42, Box::new(move |_, _| o2.borrow_mut().push("w2")))
            .is_none());
        assert!(n
            .lock_s(42, Box::new(move |_, _| o3.borrow_mut().push("r1")))
            .is_none());
        assert_eq!(n.stats.lock_waits, 2);
        // Release wakes both.
        n.unlock_x(42, &mut sim);
        sim.run(&mut ());
        assert_eq!(*order.borrow(), vec!["w1", "w2", "r1"]);
    }

    #[test]
    fn s_lock_free_when_uncontended() {
        let mut n = node(10);
        assert!(n.lock_s(7, Box::new(|_, _| {})).is_some());
        assert_eq!(n.stats.lock_waits, 0);
    }

    #[test]
    fn checkpoint_clears_dirty_set() {
        let mut n = node(10);
        n.touch(0, true);
        n.touch(7, true);
        n.touch(14, false);
        assert_eq!(n.checkpoint_take(), 2);
        assert_eq!(n.checkpoint_take(), 0);
    }
}
