//! # sqlengine — a single-node OLTP engine (SQL Server stand-in) and the
//! client-sharded cluster (SQL-CS) of the paper's YCSB experiments
//!
//! What the paper's analysis depends on, all modelled:
//!
//! * **8 KB pages, clustered PK index**: every record access touches exactly
//!   one data page; a buffer-pool miss costs one 8 KB random read ("SQL
//!   Server reads 8KB from disk for each request that leads to a buffer
//!   pool miss"),
//! * a real **LRU buffer pool** per node (24 GB of the 32 GB RAM), so hit
//!   rates — e.g. workload D's 99.5 % — *emerge* from the access pattern,
//! * **write-ahead logging** on the dedicated log disk (sequential, no
//!   seeks) — full durability, unlike the MongoDB configuration,
//! * **checkpoints** every interval flushing dirty pages through the data
//!   disks — the workload-B throughput dip during checkpoints emerges from
//!   disk queueing,
//! * **read-committed row locks**: writers hold X locks for the duration of
//!   the operation; readers block behind them (the workload-A latency
//!   effect; the read-uncommitted ablation simply skips the S-lock wait),
//! * **client-side hash sharding** across 8 server nodes (SQL-CS), so range
//!   scans fan out to every shard and read scattered pages.

#![forbid(unsafe_code)]

pub mod node;
pub mod sharded;

pub use node::{SqlNode, SqlNodeConfig};
pub use sharded::{IsolationLevel, SqlCluster};
