//! SQL-CS: client-side hash sharding over 8 SQL Server nodes, with the full
//! simulated operation pipelines (network hop → CPU → locks → buffer pool →
//! disks → log).

use crate::node::{SqlNode, SqlNodeConfig};
use cluster::{Cluster, Params};
use simkit::{secs, Latch, ResourceId, Sim, SimTime};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

type S = Sim<()>;
/// Completion callback carrying a small result (version read / records
/// scanned) for correctness checks.
pub type Done = Box<dyn FnOnce(&mut S, u64)>;

/// Isolation level for reads (the paper's §3.4.3 ablation).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IsolationLevel {
    ReadCommitted,
    ReadUncommitted,
}

/// Approximate WAL record size per write.
const LOG_BYTES: u64 = 256;
/// Minimum latency of a commit's log flush (sequential write, no seek).
const LOG_WRITE_LATENCY: f64 = 0.000_4;

/// The client-sharded SQL Server cluster.
pub struct SqlCluster {
    pub nodes: Vec<Rc<RefCell<SqlNode>>>,
    pub cluster: Rc<Cluster>,
    pub log_disks: Vec<ResourceId>,
    pub params: Params,
    pub isolation: IsolationLevel,
    rr_disk: Cell<usize>,
    loaded_records: Cell<u64>,
}

/// FNV-1a over the key (the client-side sharding hash).
pub fn shard_of(key: u64, shards: usize) -> usize {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % shards as u64) as usize
}

impl SqlCluster {
    /// Register resources and build empty nodes (read committed).
    pub fn build(sim: &mut S, params: &Params) -> Rc<SqlCluster> {
        Self::build_with_isolation(sim, params, IsolationLevel::ReadCommitted)
    }

    /// Build with an explicit isolation level (the §3.4.3 read-uncommitted
    /// ablation).
    pub fn build_with_isolation(
        sim: &mut S,
        params: &Params,
        isolation: IsolationLevel,
    ) -> Rc<SqlCluster> {
        let cluster = Rc::new(Cluster::build(sim, params.clone()));
        // Group commit: one physical flush carries every commit that
        // arrived while the previous flush was in flight, so commits see
        // the flush *latency* but throughput is far above 1/latency.
        // Modelled as parallel flush slots.
        let log_disks = (0..params.nodes)
            .map(|n| sim.add_resource(format!("node{n}.logdisk"), 32))
            .collect();
        let cfg = SqlNodeConfig {
            bufpool_pages: (params.bufpool_bytes() / 8192).max(1) as usize,
            records_per_page: 7,
            page_bytes: 8192,
        };
        let nodes = (0..params.nodes)
            .map(|_| Rc::new(RefCell::new(SqlNode::new(cfg.clone()))))
            .collect();
        Rc::new(SqlCluster {
            nodes,
            cluster,
            log_disks,
            params: params.clone(),
            isolation,
            rr_disk: Cell::new(0),
            loaded_records: Cell::new(0),
        })
    }

    /// Bulk-populate keys `0..n` (untimed; the paper reloads between
    /// workloads and flushes memory — so the pools start cold).
    pub fn load(&self, n_records: u64) {
        self.loaded_records.set(n_records);
        for key in 0..n_records {
            let node = shard_of(key, self.nodes.len());
            self.nodes[node].borrow_mut().rows.insert(key, 0);
        }
    }

    /// Simulate a hard crash followed by recovery: in-memory state is
    /// wiped, the loaded base is restored, and the WAL is replayed. Every
    /// *acknowledged* write survives — SQL Server's durability contract.
    pub fn simulate_crash_and_recover(&self) {
        let n = self.loaded_records.get();
        for (node_id, node) in self.nodes.iter().enumerate() {
            let mut node = node.borrow_mut();
            let wal = std::mem::take(&mut node.wal);
            node.rows = storage::BTree::new();
            node.pool.clear();
            for key in 0..n {
                if shard_of(key, self.nodes.len()) == node_id {
                    node.rows.insert(key, 0);
                }
            }
            for &(key, version) in &wal {
                node.rows.insert(key, version);
            }
            node.wal = wal;
        }
    }

    /// Paper-scale load time (§3.4.2: 146 minutes — each insert was its own
    /// transaction, no bulk path).
    pub fn load_time_secs(&self, paper_records: u64, insert_rate_per_node: f64) -> f64 {
        paper_records as f64 / (self.nodes.len() as f64 * insert_rate_per_node)
    }

    /// Local clustered ordinal of a key on its shard (hash spreading keeps
    /// every `nodes`-th key on a shard, densely packed by the clustered
    /// index).
    fn local_ordinal(&self, key: u64) -> u64 {
        key / self.nodes.len() as u64
    }

    fn next_disk(&self) -> usize {
        let d = self.rr_disk.get();
        self.rr_disk.set(d + 1);
        d
    }

    // ---- operation pipelines ------------------------------------------

    /// Point read: net → cpu → (S lock) → buffer pool → maybe 8 KB read.
    pub fn read(self: &Rc<Self>, sim: &mut S, key: u64, done: Done) {
        let this = self.clone();
        let net = secs(self.params.net_latency);
        sim.after(net, move |sim, _| {
            let node = shard_of(key, this.nodes.len());
            let cpu = this.params.oltp_cpu_per_op;
            let t2 = this.clone();
            this.cluster.clone().cpu(
                sim,
                node,
                cpu,
                Box::new(move |sim, _| {
                    let t3 = t2.clone();
                    let after_lock: simkit::Event<()> = Box::new(move |sim, _| {
                        t3.finish_read(sim, node, key, done);
                    });
                    // Read committed: S lock at page granularity (latch
                    // coupling / escalation under contention) — readers
                    // wait for writers touching any row of the page.
                    let page = {
                        let n = t2.nodes[node].borrow();
                        key / t2.nodes.len() as u64 / n.cfg.records_per_page
                    };
                    let cont = if t2.isolation == IsolationLevel::ReadCommitted {
                        t2.nodes[node].borrow_mut().lock_s(page, after_lock)
                    } else {
                        Some(after_lock)
                    };
                    if let Some(c) = cont {
                        sim.schedule_in(0, c);
                    }
                }),
            );
        });
    }

    fn finish_read(self: Rc<Self>, sim: &mut S, node: usize, key: u64, done: Done) {
        let ordinal = self.local_ordinal(key);
        let (miss, evicted) = {
            let mut n = self.nodes[node].borrow_mut();
            n.stats.reads += 1;
            n.touch(ordinal, false)
        };
        self.writeback_if(sim, node, evicted);
        let version = self.nodes[node]
            .borrow()
            .rows
            .get(&key)
            .copied()
            .unwrap_or(u64::MAX as u32);
        let net = secs(self.params.net_latency);
        if miss {
            let bytes = self.params.sql_read_per_miss;
            let disk = self.next_disk();
            self.cluster.clone().disk_read_rand(
                sim,
                node,
                disk,
                bytes,
                Box::new(move |sim, _| {
                    sim.after(net, move |sim, _| done(sim, version as u64));
                }),
            );
        } else {
            sim.after(net, move |sim, _| done(sim, version as u64));
        }
    }

    /// Update: net → cpu → X lock → page (maybe read) → log flush → unlock.
    pub fn update(self: &Rc<Self>, sim: &mut S, key: u64, done: Done) {
        self.write_op(sim, key, false, done);
    }

    /// Insert of a fresh key (workloads D/E).
    pub fn insert(self: &Rc<Self>, sim: &mut S, key: u64, done: Done) {
        self.write_op(sim, key, true, done);
    }

    fn write_op(self: &Rc<Self>, sim: &mut S, key: u64, insert: bool, done: Done) {
        let this = self.clone();
        let net = secs(self.params.net_latency);
        sim.after(net, move |sim, _| {
            let node = shard_of(key, this.nodes.len());
            let cpu = this.params.oltp_cpu_per_op;
            let t2 = this.clone();
            this.cluster.clone().cpu(
                sim,
                node,
                cpu,
                Box::new(move |sim, _| {
                    let t3 = t2.clone();
                    let body: simkit::Event<()> = Box::new(move |sim, _| {
                        t3.locked_write(sim, node, key, insert, done);
                    });
                    let page = {
                        let n = t2.nodes[node].borrow();
                        key / t2.nodes.len() as u64 / n.cfg.records_per_page
                    };
                    if let Some(c) = t2.nodes[node].borrow_mut().lock_x(page, body) {
                        sim.schedule_in(0, c);
                    }
                }),
            );
        });
    }

    fn locked_write(self: Rc<Self>, sim: &mut S, node: usize, key: u64, insert: bool, done: Done) {
        let ordinal = self.local_ordinal(key);
        let (miss, evicted) = {
            let mut n = self.nodes[node].borrow_mut();
            n.stats.writes += 1;
            if insert {
                n.rows.insert(key, 0);
            } else if let Some(v) = n.rows.get_mut(&key) {
                *v += 1;
            }
            n.touch(ordinal, true)
        };
        self.writeback_if(sim, node, evicted);
        let this = self.clone();
        let after_page: simkit::Event<()> = Box::new(move |sim, _| {
            // Commit: flush the WAL record on the dedicated log disk.
            let log_t = secs((LOG_BYTES as f64 / this.params.disk_seq_bw).max(LOG_WRITE_LATENCY));
            let log = this.log_disks[node];
            let t2 = this.clone();
            sim.request(
                log,
                log_t,
                Box::new(move |sim, _| {
                    let page = {
                        let n = t2.nodes[node].borrow();
                        key / t2.nodes.len() as u64 / n.cfg.records_per_page
                    };
                    {
                        // The flush made the write durable: WAL-record it.
                        let mut n = t2.nodes[node].borrow_mut();
                        let version = n.rows.get(&key).copied().unwrap_or(0);
                        n.wal.push((key, version));
                        n.unlock_x(page, sim);
                    }
                    let net = secs(t2.params.net_latency);
                    sim.after(net, move |sim, _| done(sim, 0));
                }),
            );
        });
        if miss {
            // Updating a non-resident page first reads it.
            let bytes = self.params.sql_read_per_miss;
            let disk = self.next_disk();
            self.cluster
                .clone()
                .disk_read_rand(sim, node, disk, bytes, after_page);
        } else {
            sim.schedule_in(0, after_page);
        }
    }

    /// Range scan: the client must ask *every* shard for up to `len`
    /// records from `start` (it cannot know where the records live under
    /// hash sharding — the inefficiency §3.4.3 describes for workload E).
    pub fn scan(self: &Rc<Self>, sim: &mut S, start: u64, len: usize, done: Done) {
        let this = self.clone();
        let net = secs(self.params.net_latency);
        sim.after(net, move |sim, _| {
            let shards = this.nodes.len();
            let found = Rc::new(Cell::new(0u64));
            let found_out = found.clone();
            let net_back = secs(this.params.net_latency);
            let latch = Latch::with(shards as u64, move |sim: &mut S, _| {
                sim.after(net_back, move |sim, _| done(sim, found_out.get()));
            });
            for node in 0..shards {
                let t2 = this.clone();
                let latch = latch.clone();
                let found = found.clone();
                let cpu = this.params.oltp_cpu_per_op;
                this.cluster.clone().cpu(
                    sim,
                    node,
                    cpu,
                    Box::new(move |sim, _| {
                        // Each shard is asked for the key range
                        // [start, start+len): it returns its local members
                        // (≈ len / shards of them) by walking its clustered
                        // index.
                        let (n_local, miss_pages) = {
                            let mut n = t2.nodes[node].borrow_mut();
                            let end = start.saturating_add(len as u64);
                            let keys: Vec<u64> = n
                                .rows
                                .scan_from(&start, len)
                                .into_iter()
                                .map(|(k, _)| *k)
                                .take_while(|&k| k < end)
                                .collect();
                            let n_local = keys.len();
                            let mut misses = 0;
                            let mut last_page = u64::MAX;
                            for k in keys {
                                let ord = k / t2.nodes.len() as u64;
                                let page = ord / n.cfg.records_per_page;
                                if page == last_page {
                                    continue;
                                }
                                last_page = page;
                                let (miss, _) = n.touch(ord, false);
                                if miss {
                                    misses += 1;
                                }
                            }
                            (n_local, misses)
                        };
                        found.set(found.get() + n_local as u64);
                        if miss_pages > 0 {
                            // Clustered pages: one seek + sequential read.
                            let bytes = miss_pages as u64 * 8192;
                            let disk = t2.next_disk();
                            t2.cluster.clone().disk_read_rand(
                                sim,
                                node,
                                disk,
                                bytes,
                                Box::new(move |sim, _| latch.count_down(sim)),
                            );
                        } else {
                            latch.count_down(sim);
                        }
                    }),
                );
            }
        });
    }

    /// Asynchronous write-back of an evicted dirty page (does not block the
    /// requesting operation, but does occupy the disk).
    fn writeback_if(&self, sim: &mut S, node: usize, evicted: Option<u64>) {
        if evicted.is_some() {
            let disk = self.next_disk();
            self.cluster
                .disk_write_seq(sim, node, disk, 8192, Box::new(|_, _| {}));
        }
    }

    /// Periodic checkpoints until `horizon`: dirty pages are flushed
    /// through the data disks, stealing bandwidth from user I/O (the
    /// workload-B throughput dip).
    pub fn start_checkpoints(self: &Rc<Self>, sim: &mut S, horizon: SimTime) {
        let interval = secs(self.params.checkpoint_interval);
        let mut t = interval;
        while t <= horizon {
            let this = self.clone();
            sim.schedule_at(
                t,
                Box::new(move |sim, _| {
                    for node in 0..this.nodes.len() {
                        let dirty = this.nodes[node].borrow_mut().checkpoint_take();
                        if dirty == 0 {
                            continue;
                        }
                        let disks = this.params.disks_per_node as usize;
                        let bytes = dirty as u64 * 8192 / disks as u64;
                        for d in 0..disks {
                            this.cluster
                                .disk_write_seq(sim, node, d, bytes, Box::new(|_, _| {}));
                        }
                    }
                }),
            );
            t += interval;
        }
    }

    /// Aggregate buffer-pool hit rate (diagnostics).
    pub fn hit_rate(&self) -> f64 {
        let (mut h, mut m) = (0u64, 0u64);
        for n in &self.nodes {
            let n = n.borrow();
            h += n.pool.hits();
            m += n.pool.misses();
        }
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> Params {
        // Scale down hard so the pool is small and misses happen.
        Params::paper_ycsb().scaled_ycsb(1_000_000.0)
    }

    #[test]
    fn shard_of_spreads_keys() {
        let mut counts = [0usize; 8];
        for k in 0..8000u64 {
            counts[shard_of(k, 8)] += 1;
        }
        for c in counts {
            assert!((700..=1300).contains(&c), "skewed shard: {c}");
        }
    }

    #[test]
    fn read_returns_written_version() {
        let mut sim: S = Sim::new();
        let cl = SqlCluster::build(&mut sim, &small_params());
        cl.load(1000);
        let result: Rc<Cell<u64>> = Rc::default();
        let r2 = result.clone();
        let cl2 = cl.clone();
        cl.update(
            &mut sim,
            42,
            Box::new(move |sim, _| {
                cl2.read(sim, 42, Box::new(move |_, v| r2.set(v)));
            }),
        );
        sim.run(&mut ());
        assert_eq!(result.get(), 1, "read sees the update");
    }

    #[test]
    fn cold_read_pays_a_disk_io() {
        let mut sim: S = Sim::new();
        let cl = SqlCluster::build(&mut sim, &small_params());
        cl.load(1000);
        let finish: Rc<Cell<SimTime>> = Rc::default();
        let f = finish.clone();
        cl.read(&mut sim, 7, Box::new(move |sim, _| f.set(sim.now())));
        sim.run(&mut ());
        let t = simkit::as_secs(finish.get());
        // seek (5ms) dominates: net + cpu + seek + net ≈ 5.5ms.
        assert!(t > 0.005 && t < 0.01, "cold read ≈ 5.5ms, got {t}");
        // Second read of the same key hits the pool.
        let mut sim2: S = Sim::new();
        let cl2 = SqlCluster::build(&mut sim2, &small_params());
        cl2.load(1000);
        let f2: Rc<Cell<SimTime>> = Rc::default();
        let (fa, fb) = (f2.clone(), f2.clone());
        let cl3 = cl2.clone();
        cl2.read(
            &mut sim2,
            7,
            Box::new(move |sim, _| {
                let t0 = sim.now();
                let _ = fa;
                cl3.read(sim, 7, Box::new(move |sim, _| fb.set(sim.now() - t0)));
            }),
        );
        sim2.run(&mut ());
        let warm = simkit::as_secs(f2.get());
        assert!(warm < 0.002, "warm read avoids the disk, got {warm}");
    }

    #[test]
    fn writers_serialize_on_hot_keys() {
        let mut sim: S = Sim::new();
        let cl = SqlCluster::build(&mut sim, &small_params());
        cl.load(100);
        let done_count: Rc<Cell<u32>> = Rc::default();
        for _ in 0..5 {
            let d = done_count.clone();
            cl.update(&mut sim, 1, Box::new(move |_, _| d.set(d.get() + 1)));
        }
        sim.run(&mut ());
        assert_eq!(done_count.get(), 5);
        let node = shard_of(1, cl.nodes.len());
        assert!(
            cl.nodes[node].borrow().stats.lock_waits >= 4,
            "later writers must queue on the X lock"
        );
        let version = cl.nodes[node].borrow().rows.get(&1).copied();
        assert_eq!(version, Some(5));
    }

    #[test]
    fn scan_touches_every_shard_and_finds_records() {
        let mut sim: S = Sim::new();
        let cl = SqlCluster::build(&mut sim, &small_params());
        cl.load(10_000);
        let found: Rc<Cell<u64>> = Rc::default();
        let f = found.clone();
        cl.scan(&mut sim, 100, 50, Box::new(move |_, n| f.set(n)));
        sim.run(&mut ());
        // The shards jointly return exactly the keys in [100, 150).
        assert_eq!(found.get(), 50);
    }

    #[test]
    fn checkpoints_only_flush_dirty_pages() {
        let mut sim: S = Sim::new();
        let cl = SqlCluster::build(&mut sim, &small_params());
        cl.load(1000);
        cl.update(&mut sim, 3, Box::new(|_, _| {}));
        cl.start_checkpoints(&mut sim, secs(130.0));
        sim.run_until(&mut (), secs(130.0));
        // After the checkpoint, no pages are dirty.
        let node = shard_of(3, cl.nodes.len());
        assert!(cl.nodes[node].borrow().pool.dirty_pages().is_empty());
    }
}
