//! Passive observation of a running simulation.
//!
//! A [`Probe`] is a read-only tap on the event loop: the kernel (and the
//! execution layers built on it) emit [`ProbeEvent`]s at well-defined points
//! — resource enqueue / service start / service complete, span open / close,
//! task lifecycle — and the probe may record whatever it likes. Probes are
//! **strictly passive**: they receive borrowed event data and have no handle
//! back into the [`Sim`](crate::Sim), so attaching one cannot schedule
//! events, consume randomness, or otherwise perturb the simulation. Runs
//! with and without a probe are byte-identical (`tests/observability.rs`
//! holds this as an invariant).
//!
//! Event order is deterministic: events are emitted synchronously from the
//! (deterministic) event loop, so the same workload always produces the
//! same event stream.
//!
//! The kernel emits resource-level events only; span and task events are
//! emitted by higher layers (the `cluster` phase executor) through
//! [`Sim::emit_probe`](crate::Sim::emit_probe), so one probe sees a single
//! ordered stream for a whole run.

use crate::resource::ResourceId;
use crate::sim::SimTime;

/// One observation from the event loop. Timestamps are sim time; string
/// fields are borrowed so emission never allocates.
#[derive(Clone, Copy, Debug)]
pub enum ProbeEvent<'a> {
    /// A resource exists (replayed for pre-existing resources when a probe
    /// is attached mid-run, so probes always know every resource).
    ResourceRegistered {
        res: ResourceId,
        name: &'a str,
        servers: u32,
    },
    /// A request joined the resource's FIFO queue. `waiting` counts queued
    /// requests *including this one*; a request that starts immediately is
    /// popped again by the [`ProbeEvent::ServiceStarted`] event at the same
    /// timestamp.
    ///
    /// `req` is a kernel-assigned id, unique per [`Sim`](crate::Sim) and
    /// monotone in issue order, that links this event to the matching
    /// [`ProbeEvent::ServiceStarted`] / [`ProbeEvent::ServiceCompleted`].
    /// `ctx` is the span context active when the request was issued (see
    /// [`Sim::set_probe_ctx`](crate::Sim::set_probe_ctx)) — the
    /// span↔resource linkage a critical-path analysis needs. `client` is
    /// the round-robin client tag from
    /// [`Sim::request_as`](crate::Sim::request_as), which doubles as the
    /// kernel-level tenant tag.
    Enqueued {
        at: SimTime,
        res: ResourceId,
        service: SimTime,
        waiting: usize,
        req: u64,
        ctx: Option<u64>,
        client: Option<u32>,
    },
    /// A server picked up a request after `wait` in the queue.
    ServiceStarted {
        at: SimTime,
        res: ResourceId,
        service: SimTime,
        wait: SimTime,
        waiting: usize,
        req: u64,
        ctx: Option<u64>,
        client: Option<u32>,
    },
    /// A request finished service.
    ServiceCompleted {
        at: SimTime,
        res: ResourceId,
        waiting: usize,
        req: u64,
        ctx: Option<u64>,
        client: Option<u32>,
    },
    /// A named phase opened (emitted by the phase executor). `id` is the
    /// executor-allocated span id (see
    /// [`Sim::next_span_id`](crate::Sim::next_span_id)); requests issued
    /// while this span is the probe context carry it as their `ctx`.
    SpanOpened {
        at: SimTime,
        name: &'a str,
        node: Option<usize>,
        id: u64,
    },
    /// The matching phase closed.
    SpanClosed {
        at: SimTime,
        name: &'a str,
        node: Option<usize>,
        id: u64,
    },
    /// A slot-scheduled task began running on `node`.
    TaskStarted { at: SimTime, node: usize },
    /// A slot-scheduled task finished (its slot is about to be released).
    TaskFinished { at: SimTime, node: usize },
    /// A task attempt failed and was re-enqueued.
    TaskRetried { at: SimTime, node: usize },
}

/// A passive observer of [`ProbeEvent`]s. Implementations must be cheap:
/// they run synchronously inside the event loop.
pub trait Probe {
    fn on_event(&mut self, ev: &ProbeEvent<'_>);
}

/// A probe that counts events by class — the "does the bus fire" probe used
/// in tests and as the simplest example implementation.
#[derive(Clone, Debug, Default)]
pub struct CountingProbe {
    pub registered: u64,
    pub enqueued: u64,
    pub started: u64,
    pub completed: u64,
    pub spans_opened: u64,
    pub spans_closed: u64,
    pub tasks_started: u64,
    pub tasks_finished: u64,
    pub tasks_retried: u64,
}

impl Probe for CountingProbe {
    fn on_event(&mut self, ev: &ProbeEvent<'_>) {
        match ev {
            ProbeEvent::ResourceRegistered { .. } => self.registered += 1,
            ProbeEvent::Enqueued { .. } => self.enqueued += 1,
            ProbeEvent::ServiceStarted { .. } => self.started += 1,
            ProbeEvent::ServiceCompleted { .. } => self.completed += 1,
            ProbeEvent::SpanOpened { .. } => self.spans_opened += 1,
            ProbeEvent::SpanClosed { .. } => self.spans_closed += 1,
            ProbeEvent::TaskStarted { .. } => self.tasks_started += 1,
            ProbeEvent::TaskFinished { .. } => self.tasks_finished += 1,
            ProbeEvent::TaskRetried { .. } => self.tasks_retried += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{secs, Sim};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn probe_sees_resource_lifecycle_in_order() {
        #[derive(Default)]
        struct OrderProbe(Vec<&'static str>);
        impl Probe for OrderProbe {
            fn on_event(&mut self, ev: &ProbeEvent<'_>) {
                self.0.push(match ev {
                    ProbeEvent::ResourceRegistered { .. } => "reg",
                    ProbeEvent::Enqueued { .. } => "enq",
                    ProbeEvent::ServiceStarted { .. } => "start",
                    ProbeEvent::ServiceCompleted { .. } => "done",
                    _ => "other",
                });
            }
        }
        let mut sim: Sim<()> = Sim::new();
        let probe = Rc::new(RefCell::new(OrderProbe::default()));
        sim.set_probe(Some(probe.clone()));
        let disk = sim.add_resource("disk", 1);
        sim.use_resource(disk, secs(1.0), |_, _| {});
        sim.use_resource(disk, secs(1.0), |_, _| {});
        sim.run(&mut ());
        assert_eq!(
            probe.borrow().0,
            vec!["reg", "enq", "start", "enq", "done", "start", "done"]
        );
    }

    #[test]
    fn attaching_a_probe_replays_existing_resources() {
        let mut sim: Sim<()> = Sim::new();
        sim.add_resource("a", 1);
        sim.add_resource("b", 2);
        let probe = Rc::new(RefCell::new(CountingProbe::default()));
        sim.set_probe(Some(probe.clone()));
        assert_eq!(probe.borrow().registered, 2);
        sim.add_resource("c", 1);
        assert_eq!(probe.borrow().registered, 3);
    }

    #[test]
    fn probe_reports_queue_wait_on_service_start() {
        let waits: Rc<RefCell<Vec<SimTime>>> = Rc::default();
        struct WaitProbe(Rc<RefCell<Vec<SimTime>>>);
        impl Probe for WaitProbe {
            fn on_event(&mut self, ev: &ProbeEvent<'_>) {
                if let ProbeEvent::ServiceStarted { wait, .. } = ev {
                    self.0.borrow_mut().push(*wait);
                }
            }
        }
        let mut sim: Sim<()> = Sim::new();
        sim.set_probe(Some(Rc::new(RefCell::new(WaitProbe(waits.clone())))));
        let disk = sim.add_resource("disk", 1);
        for _ in 0..3 {
            sim.use_resource(disk, secs(1.0), |_, _| {});
        }
        sim.run(&mut ());
        assert_eq!(*waits.borrow(), vec![0, secs(1.0), secs(2.0)]);
    }
}
