//! Structured execution traces: every phase an engine runs on the cluster
//! emits a [`Span`] recording *when* it ran (sim-time start/end) and *where*
//! the time went (per-resource service vs. queue wait).
//!
//! Spans are engine-agnostic: PDW steps, MapReduce job phases, and Hive
//! stage DAGs all reduce to the same record, so a single report path can
//! render per-resource busy time and contention for any engine.

use crate::sim::SimTime;

/// The resource classes a span can charge work against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ResKind {
    Disk,
    Cpu,
    Net,
}

impl ResKind {
    pub const ALL: [ResKind; 3] = [ResKind::Disk, ResKind::Cpu, ResKind::Net];

    pub fn label(self) -> &'static str {
        match self {
            ResKind::Disk => "disk",
            ResKind::Cpu => "cpu",
            ResKind::Net => "net",
        }
    }
}

/// One resource request's contribution to a span: `service` seconds of
/// actual work on a `kind` resource of `node`, plus the `queue_wait`
/// seconds it spent blocked behind other requests (possibly from other
/// concurrent phases or engines sharing the cluster).
#[derive(Clone, Debug)]
pub struct Contrib {
    pub kind: ResKind,
    /// Node index, or `None` for cluster-global resources (e.g. the control
    /// node's ingest link).
    pub node: Option<usize>,
    pub service: f64,
    pub queue_wait: f64,
}

/// One executed phase: a named unit of work with wall-clock (sim) bounds
/// and the resource requests that made it up.
#[derive(Clone, Debug)]
pub struct Span {
    pub name: String,
    /// Node the phase is pinned to, or `None` for cluster-wide phases.
    pub node: Option<usize>,
    pub start: SimTime,
    pub end: SimTime,
    pub contribs: Vec<Contrib>,
}

impl Span {
    /// Makespan in seconds.
    pub fn secs(&self) -> f64 {
        crate::as_secs(self.end.saturating_sub(self.start))
    }

    /// Aggregate service/wait per resource kind.
    pub fn util(&self) -> UtilSummary {
        let mut u = UtilSummary::default();
        for c in &self.contribs {
            u.add(c);
        }
        u
    }
}

/// Per-kind totals of service time and queue wait, summed over requests.
/// Service sums can exceed the makespan — that just means the work ran on
/// parallel servers (disks, cores, per-node NICs).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct UtilSummary {
    pub disk_busy: f64,
    pub cpu_busy: f64,
    pub net_busy: f64,
    pub disk_wait: f64,
    pub cpu_wait: f64,
    pub net_wait: f64,
    pub requests: u64,
}

impl UtilSummary {
    pub fn add(&mut self, c: &Contrib) {
        match c.kind {
            ResKind::Disk => {
                self.disk_busy += c.service;
                self.disk_wait += c.queue_wait;
            }
            ResKind::Cpu => {
                self.cpu_busy += c.service;
                self.cpu_wait += c.queue_wait;
            }
            ResKind::Net => {
                self.net_busy += c.service;
                self.net_wait += c.queue_wait;
            }
        }
        self.requests += 1;
    }

    pub fn merge(&mut self, other: &UtilSummary) {
        self.disk_busy += other.disk_busy;
        self.cpu_busy += other.cpu_busy;
        self.net_busy += other.net_busy;
        self.disk_wait += other.disk_wait;
        self.cpu_wait += other.cpu_wait;
        self.net_wait += other.net_wait;
        self.requests += other.requests;
    }

    pub fn busy(&self, kind: ResKind) -> f64 {
        match kind {
            ResKind::Disk => self.disk_busy,
            ResKind::Cpu => self.cpu_busy,
            ResKind::Net => self.net_busy,
        }
    }

    pub fn wait(&self, kind: ResKind) -> f64 {
        match kind {
            ResKind::Disk => self.disk_wait,
            ResKind::Cpu => self.cpu_wait,
            ResKind::Net => self.net_wait,
        }
    }

    /// Mean queue wait per request, in seconds.
    pub fn mean_wait(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        (self.disk_wait + self.cpu_wait + self.net_wait) / self.requests as f64
    }
}

/// An ordered collection of spans from one run.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    pub spans: Vec<Span>,
}

impl Trace {
    pub fn push(&mut self, span: Span) {
        self.spans.push(span);
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Totals over the whole trace.
    pub fn util(&self) -> UtilSummary {
        let mut u = UtilSummary::default();
        for s in &self.spans {
            u.merge(&s.util());
        }
        u
    }

    /// End of the last span (0 for an empty trace).
    pub fn end(&self) -> SimTime {
        self.spans.iter().map(|s| s.end).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::secs;

    fn span() -> Span {
        Span {
            name: "scan:lineitem".into(),
            node: None,
            start: secs(1.0),
            end: secs(3.5),
            contribs: vec![
                Contrib {
                    kind: ResKind::Disk,
                    node: Some(0),
                    service: 2.0,
                    queue_wait: 0.5,
                },
                Contrib {
                    kind: ResKind::Cpu,
                    node: Some(0),
                    service: 1.0,
                    queue_wait: 0.0,
                },
                Contrib {
                    kind: ResKind::Net,
                    node: None,
                    service: 0.25,
                    queue_wait: 0.75,
                },
            ],
        }
    }

    #[test]
    fn span_secs_and_util() {
        let s = span();
        assert!((s.secs() - 2.5).abs() < 1e-12);
        let u = s.util();
        assert_eq!(u.requests, 3);
        assert!((u.disk_busy - 2.0).abs() < 1e-12);
        assert!((u.cpu_busy - 1.0).abs() < 1e-12);
        assert!((u.net_busy - 0.25).abs() < 1e-12);
        assert!((u.wait(ResKind::Net) - 0.75).abs() < 1e-12);
        assert!((u.mean_wait() - (0.5 + 0.75) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn trace_totals_merge_spans() {
        let mut t = Trace::default();
        t.push(span());
        t.push(span());
        let u = t.util();
        assert_eq!(u.requests, 6);
        assert!((u.disk_busy - 4.0).abs() < 1e-12);
        assert_eq!(t.end(), secs(3.5));
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_trace_is_benign() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.end(), 0);
        assert_eq!(t.util().requests, 0);
        assert_eq!(t.util().mean_wait(), 0.0);
    }
}
