//! k-server FIFO resources.
//!
//! A resource models a contended piece of hardware or a pool of slots:
//! a disk (1 server), a NIC direction (1 server), a CPU (k cores), the
//! cluster-wide map-slot pool (128 servers), a mongod global write lock
//! (1 server). Requests carry a pre-computed *service time*; requests queue
//! FIFO when all servers are busy.

use crate::sim::{Event, Sim, SimTime};
use std::collections::VecDeque;

/// Handle to a resource registered with a [`Sim`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ResourceId(pub(crate) usize);

impl ResourceId {
    /// Dense registration index (0-based, in `add_resource` order). Probes
    /// use it to key per-resource tables without hashing.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

pub(crate) struct ResourceState<W> {
    name: String,
    servers: u32,
    busy: u32,
    queue: VecDeque<Pending<W>>,
    completions: u64,
    busy_integral: SimTime,
    last_change: SimTime,
    total_queue_wait: SimTime,
    max_queue_len: usize,
}

struct Pending<W> {
    enqueued_at: SimTime,
    service: SimTime,
    done: Event<W>,
}

impl<W> ResourceState<W> {
    pub(crate) fn new(name: String, servers: u32) -> Self {
        ResourceState {
            name,
            servers,
            busy: 0,
            queue: VecDeque::new(),
            completions: 0,
            busy_integral: 0,
            last_change: 0,
            total_queue_wait: 0,
            max_queue_len: 0,
        }
    }

    fn account(&mut self, now: SimTime) {
        self.busy_integral += (now - self.last_change) * self.busy as SimTime;
        self.last_change = now;
    }

    /// Enqueue a request. Returns true if a server is free so service can
    /// start immediately.
    pub(crate) fn enqueue(&mut self, now: SimTime, service: SimTime, done: Event<W>) -> bool {
        self.queue.push_back(Pending {
            enqueued_at: now,
            service,
            done,
        });
        if self.busy >= self.servers {
            // All servers busy: this request genuinely waits. (A request
            // that starts immediately transits the queue in zero time and
            // is not a "depth" in any meaningful sense.)
            self.max_queue_len = self.max_queue_len.max(self.queue.len());
        }
        self.busy < self.servers
    }

    /// Pop the next queued request and mark one server busy. Returns the
    /// service time, the queue wait it experienced, and its completion.
    pub(crate) fn start_next(&mut self, now: SimTime) -> Option<(SimTime, SimTime, Event<W>)> {
        if self.busy >= self.servers {
            return None;
        }
        let p = self.queue.pop_front()?;
        self.account(now);
        self.busy += 1;
        let wait = now - p.enqueued_at;
        self.total_queue_wait += wait;
        Some((p.service, wait, p.done))
    }

    /// A service completed. Returns true if more work is queued.
    pub(crate) fn finish_one(&mut self, now: SimTime) -> bool {
        self.account(now);
        debug_assert!(self.busy > 0);
        self.busy -= 1;
        self.completions += 1;
        !self.queue.is_empty()
    }

    pub(crate) fn busy_time(&self, now: SimTime) -> SimTime {
        self.busy_integral + (now - self.last_change) * self.busy as SimTime
    }

    pub(crate) fn completions(&self) -> u64 {
        self.completions
    }

    pub(crate) fn total_queue_wait(&self) -> SimTime {
        self.total_queue_wait
    }

    pub(crate) fn name(&self) -> &str {
        &self.name
    }

    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }

    pub(crate) fn max_queue_len(&self) -> usize {
        self.max_queue_len
    }

    pub(crate) fn servers(&self) -> u32 {
        self.servers
    }
}

/// Utilization summary for reporting.
///
/// `mean_queue_wait_secs` averages over *completed* requests only: a request
/// still queued at snapshot time has accrued wait that is not yet counted.
/// `queued_at_end` exposes how many such requests exist, so a nonzero value
/// flags the mean as a lower bound.
#[derive(Clone, Debug)]
pub struct ResourceReport {
    pub name: String,
    pub busy_secs: f64,
    pub completions: u64,
    pub mean_queue_wait_secs: f64,
    /// Peak number of requests waiting (queued behind busy servers) at any
    /// instant during the run.
    pub max_queue_depth: usize,
    /// Requests still waiting in the queue at snapshot time.
    pub queued_at_end: usize,
}

/// Snapshot utilization of a set of resources at the current sim time.
pub fn report<W: 'static>(sim: &Sim<W>, ids: &[ResourceId]) -> Vec<ResourceReport> {
    ids.iter()
        .map(|&id| {
            let completions = sim.resource_completions(id);
            ResourceReport {
                name: sim.resource_name(id).to_string(),
                busy_secs: crate::as_secs(sim.resource_busy_time(id)),
                completions,
                mean_queue_wait_secs: if completions == 0 {
                    0.0
                } else {
                    crate::as_secs(sim.resource_queue_wait(id)) / completions as f64
                },
                max_queue_depth: sim.resource_max_queue_len(id),
                queued_at_end: sim.resource_queue_len(id),
            }
        })
        .collect()
}
