//! k-server FIFO resources.
//!
//! A resource models a contended piece of hardware or a pool of slots:
//! a disk (1 server), a NIC direction (1 server), a CPU (k cores), the
//! cluster-wide map-slot pool (128 servers), a mongod global write lock
//! (1 server). Requests carry a pre-computed *service time*; requests queue
//! FIFO when all servers are busy.
//!
//! Requests may additionally carry a *client tag* (see
//! [`crate::sim::Sim::request_as`]): when tagged requests are waiting, the
//! resource serves client tags round-robin (FIFO within a tag) so that one
//! client's burst cannot starve another — the fairness a concurrent
//! workload mix needs. Untagged requests keep strict FIFO and take the
//! exact dispatch path they always did, so single-stream runs are
//! byte-identical with or without this feature compiled in.

use crate::sim::{Event, ReqTiming, Sim, SimTime, TimedEvent};
use crate::trace::ResKind;
use std::collections::VecDeque;

/// Handle to a resource registered with a [`Sim`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ResourceId(pub(crate) usize);

impl ResourceId {
    /// Dense registration index (0-based, in `add_resource` order). Probes
    /// use it to key per-resource tables without hashing.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A request's completion continuation. The timed form receives the
/// kernel-held [`ReqTiming`] instants (enqueue, service start, completion)
/// so callers attribute queue wait from the kernel's own bookkeeping
/// instead of re-deriving it from their issue-time arithmetic.
pub(crate) enum Done<W> {
    Plain(Event<W>),
    Timed(TimedEvent<W>),
}

pub(crate) struct ResourceState<W> {
    name: String,
    /// Structural classification declared at registration (see
    /// [`crate::sim::Sim::add_resource_kind`]); `None` for resources
    /// registered without one.
    kind: Option<ResKind>,
    servers: u32,
    busy: u32,
    queue: VecDeque<Pending<W>>,
    completions: u64,
    busy_integral: SimTime,
    last_change: SimTime,
    total_queue_wait: SimTime,
    max_queue_len: usize,
    /// Queued requests carrying a client tag (fast-path guard: when zero,
    /// dispatch is plain FIFO `pop_front`).
    tagged: usize,
    /// Most recently served client tag; the round-robin cursor.
    last_client: u32,
}

struct Pending<W> {
    enqueued_at: SimTime,
    service: SimTime,
    client: Option<u32>,
    /// Kernel-assigned request id (monotone in issue order; probe linkage).
    req: u64,
    /// Span context captured at issue time (probe linkage).
    ctx: Option<u64>,
    done: Done<W>,
}

/// A dequeued request about to enter service: everything the grant path
/// needs to schedule the completion and describe the request to a probe.
pub(crate) struct Started<W> {
    pub(crate) service: SimTime,
    pub(crate) wait: SimTime,
    pub(crate) req: u64,
    pub(crate) ctx: Option<u64>,
    pub(crate) client: Option<u32>,
    pub(crate) done: Done<W>,
}

impl<W: 'static> Started<W> {
    /// Resolve the continuation into a plain event, binding the kernel's
    /// timing instants into a timed completion. `started` is the grant
    /// instant; the completion instant is read off the clock when it fires.
    pub(crate) fn into_done(self, started: SimTime) -> Event<W> {
        match self.done {
            Done::Plain(f) => f,
            Done::Timed(f) => {
                let enqueued = started - self.wait;
                Box::new(move |sim, w| {
                    let timing = ReqTiming {
                        enqueued,
                        started,
                        completed: sim.now(),
                    };
                    f(sim, w, timing)
                })
            }
        }
    }
}

impl<W> ResourceState<W> {
    pub(crate) fn new(name: String, kind: Option<ResKind>, servers: u32) -> Self {
        ResourceState {
            name,
            kind,
            servers,
            busy: 0,
            queue: VecDeque::new(),
            completions: 0,
            busy_integral: 0,
            last_change: 0,
            total_queue_wait: 0,
            max_queue_len: 0,
            tagged: 0,
            last_client: u32::MAX,
        }
    }

    fn account(&mut self, now: SimTime) {
        self.busy_integral += (now - self.last_change) * self.busy as SimTime;
        self.last_change = now;
    }

    /// Enqueue a request. Returns true if a server is free so service can
    /// start immediately.
    pub(crate) fn enqueue(
        &mut self,
        now: SimTime,
        service: SimTime,
        client: Option<u32>,
        req: u64,
        ctx: Option<u64>,
        done: Done<W>,
    ) -> bool {
        if client.is_some() {
            self.tagged += 1;
        }
        self.queue.push_back(Pending {
            enqueued_at: now,
            service,
            client,
            req,
            ctx,
            done,
        });
        if self.busy >= self.servers {
            // All servers busy: this request genuinely waits. (A request
            // that starts immediately transits the queue in zero time and
            // is not a "depth" in any meaningful sense.)
            self.max_queue_len = self.max_queue_len.max(self.queue.len());
        }
        self.busy < self.servers
    }

    /// Index of the next request to serve: plain FIFO unless tagged
    /// requests are waiting, in which case client tags are served
    /// round-robin (cyclically, starting after the last served tag) with
    /// FIFO order within each tag. Untagged requests sort as tag
    /// `u32::MAX`.
    fn next_index(&self) -> usize {
        if self.tagged == 0 {
            return 0;
        }
        let after = self.last_client.wrapping_add(1);
        self.queue
            .iter()
            .enumerate()
            .min_by_key(|(i, p)| (p.client.unwrap_or(u32::MAX).wrapping_sub(after), *i))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Pop the next queued request and mark one server busy. Returns the
    /// service time, the queue wait it experienced, its probe identity, and
    /// its completion.
    pub(crate) fn start_next(&mut self, now: SimTime) -> Option<Started<W>> {
        if self.busy >= self.servers {
            return None;
        }
        let p = self.queue.remove(self.next_index())?;
        if let Some(c) = p.client {
            self.tagged -= 1;
            self.last_client = c;
        }
        self.account(now);
        self.busy += 1;
        let wait = now - p.enqueued_at;
        self.total_queue_wait += wait;
        Some(Started {
            service: p.service,
            wait,
            req: p.req,
            ctx: p.ctx,
            client: p.client,
            done: p.done,
        })
    }

    /// A service completed. Returns true if more work is queued.
    pub(crate) fn finish_one(&mut self, now: SimTime) -> bool {
        self.account(now);
        debug_assert!(self.busy > 0);
        self.busy -= 1;
        self.completions += 1;
        !self.queue.is_empty()
    }

    pub(crate) fn busy_time(&self, now: SimTime) -> SimTime {
        self.busy_integral + (now - self.last_change) * self.busy as SimTime
    }

    pub(crate) fn completions(&self) -> u64 {
        self.completions
    }

    pub(crate) fn total_queue_wait(&self) -> SimTime {
        self.total_queue_wait
    }

    /// Wait accrued *so far* by requests still sitting in the queue at
    /// `now`. `total_queue_wait` only accumulates when service starts, so
    /// a snapshot taken mid-run would otherwise silently drop this time.
    pub(crate) fn pending_wait(&self, now: SimTime) -> SimTime {
        self.queue.iter().map(|p| now - p.enqueued_at).sum()
    }

    pub(crate) fn name(&self) -> &str {
        &self.name
    }

    pub(crate) fn kind(&self) -> Option<ResKind> {
        self.kind
    }

    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }

    pub(crate) fn max_queue_len(&self) -> usize {
        self.max_queue_len
    }

    pub(crate) fn servers(&self) -> u32 {
        self.servers
    }
}

/// Utilization summary for reporting.
///
/// `mean_queue_wait_secs` averages over *completed* requests only; wait
/// accrued by requests still queued at snapshot time is reported separately
/// in `pending_wait_secs` (so the mean is exact for finished work and
/// nothing is silently dropped for unfinished work). `queued_at_end`
/// exposes how many such in-flight requests exist.
#[derive(Clone, Debug)]
pub struct ResourceReport {
    pub name: String,
    /// Structural kind declared at registration (`None` if the resource
    /// was registered without one). Consumers that classify resources —
    /// e.g. `pdw::FeedbackCosts` picking out network links — must key on
    /// this, not on naming conventions.
    pub kind: Option<ResKind>,
    pub busy_secs: f64,
    pub completions: u64,
    pub mean_queue_wait_secs: f64,
    /// Peak number of requests waiting (queued behind busy servers) at any
    /// instant during the run.
    pub max_queue_depth: usize,
    /// Requests still waiting in the queue at snapshot time.
    pub queued_at_end: usize,
    /// Total wait accrued *so far* by the `queued_at_end` requests (from
    /// their enqueue times to the snapshot). Zero for a drained run.
    pub pending_wait_secs: f64,
}

/// Snapshot utilization of a set of resources at the current sim time.
pub fn report<W: 'static>(sim: &Sim<W>, ids: &[ResourceId]) -> Vec<ResourceReport> {
    ids.iter()
        .map(|&id| {
            let completions = sim.resource_completions(id);
            ResourceReport {
                name: sim.resource_name(id).to_string(),
                kind: sim.resource_kind(id),
                busy_secs: crate::as_secs(sim.resource_busy_time(id)),
                completions,
                mean_queue_wait_secs: if completions == 0 {
                    0.0
                } else {
                    crate::as_secs(sim.resource_queue_wait(id)) / completions as f64
                },
                max_queue_depth: sim.resource_max_queue_len(id),
                queued_at_end: sim.resource_queue_len(id),
                pending_wait_secs: crate::as_secs(sim.resource_pending_wait(id)),
            }
        })
        .collect()
}
