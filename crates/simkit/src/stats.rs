//! Online statistics used by the benchmark harnesses: streaming mean /
//! variance (Welford), and a log-bucketed histogram for latency percentiles
//! (HdrHistogram-style, coarse but allocation-free and O(1) insert).

use crate::SimTime;

/// Streaming mean / variance / min / max (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (the paper reports this for YCSB points).
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Log-bucketed latency histogram over [`SimTime`] values.
///
/// Buckets have ~4.5% relative width (16 sub-buckets per power of two),
/// which is plenty for reporting p50/p95/p99 of operation latencies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: SimTime,
}

const SUB_BITS: u32 = 4; // 16 sub-buckets per octave
const SUB: u64 = 1 << SUB_BITS;

fn bucket_index(v: SimTime) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) - SUB) as usize;
    ((msb - SUB_BITS + 1) as usize) * SUB as usize + sub
}

fn bucket_upper_bound(idx: usize) -> SimTime {
    let s = SUB as usize;
    if idx < s {
        return idx as SimTime;
    }
    // Inverse of `bucket_index`: bucket idx covers
    // [(SUB+sub) << octave, (SUB+sub+1) << octave - 1] with octave = idx/SUB - 1.
    let octave = ((idx / s) as u32 - 1).min(48);
    let sub = (idx % s) as u64;
    ((SUB + sub + 1) << octave) - 1
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; 64 * SUB as usize],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    pub fn record(&mut self, v: SimTime) {
        let idx = bucket_index(v).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn max(&self) -> SimTime {
        self.max
    }

    /// Approximate quantile (0.0..=1.0) in [`SimTime`] units.
    pub fn quantile(&self, q: f64) -> SimTime {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_bound(idx).min(self.max);
            }
        }
        self.max
    }

    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.max = 0;
    }

    /// Samples recorded in a strictly higher bucket than `threshold`'s —
    /// the histogram-resolution answer to "how many ops exceeded the SLO
    /// threshold". Exact when `threshold` is a bucket upper bound;
    /// otherwise off by at most the threshold bucket's population (~4.5%
    /// relative bucket width). Deterministic either way, which is what the
    /// burn-rate artifacts need.
    pub fn count_over(&self, threshold: SimTime) -> u64 {
        let cut = bucket_index(threshold).min(self.buckets.len() - 1);
        self.buckets[cut + 1..].iter().sum()
    }

    /// Fold another histogram into this one (cross-shard / cross-client
    /// aggregation). Because bucketing is deterministic, merging and then
    /// asking for a quantile gives *exactly* the same answer as recording
    /// the concatenated sample stream into one histogram
    /// (`tests/prop.rs` holds this as a property).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        debug_assert_eq!(self.buckets.len(), other.buckets.len());
        for (b, ob) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += ob;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{millis, MILLISECOND};

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample std-dev of that classic dataset is ~2.138.
        assert!((s.std_dev() - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty_is_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_err(), 0.0);
        assert_eq!(s.min(), 0.0);
    }

    #[test]
    fn histogram_mean_exact() {
        let mut h = LatencyHistogram::new();
        h.record(10 * MILLISECOND);
        h.record(20 * MILLISECOND);
        h.record(30 * MILLISECOND);
        assert_eq!(h.count(), 3);
        assert!((h.mean() - 20.0 * MILLISECOND as f64).abs() < 1.0);
        assert_eq!(h.max(), 30 * MILLISECOND);
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * MILLISECOND);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // ~4.5% relative-error buckets.
        let rel = |got: SimTime, want: SimTime| (got as f64 - want as f64).abs() / want as f64;
        assert!(rel(p50, millis(500.0)) < 0.10, "p50={p50}");
        assert!(rel(p99, millis(990.0)) < 0.10, "p99={p99}");
        assert!(h.quantile(1.0) >= millis(990.0));
    }

    #[test]
    fn histogram_clear_resets() {
        let mut h = LatencyHistogram::new();
        h.record(123);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn bucket_index_monotone() {
        let mut last = 0usize;
        for v in [0u64, 1, 5, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, 1 << 40] {
            let idx = bucket_index(v);
            assert!(idx >= last, "index not monotone at {v}");
            last = idx;
        }
    }
}
