//! # simkit — a small deterministic discrete-event simulation kernel
//!
//! Everything in this reproduction that "takes time" — disk reads, network
//! transfers, CPU work, lock waits — is charged against a virtual clock
//! managed by [`Sim`]. The kernel provides:
//!
//! * a calendar-queue event scheduler with deterministic FIFO
//!   tie-breaking, arena-recycled event storage, and a binary-heap
//!   fallback backend for A/B verification (see [`sched`]),
//! * k-server FIFO [`resource`]s (disks, NICs, CPU pools, map slots, locks),
//! * [`latch`]es for barrier-style joins ("when all N tasks finish, ..."),
//! * online [`stats`] (mean/percentile latencies, resource utilization),
//! * the [`trace`] vocabulary every timing report bottoms out in: a
//!   [`trace::Span`] (named phase with sim-time start/end) carries
//!   [`trace::Contrib`]s splitting each resource's *service time* from its
//!   *FIFO queue wait*; [`trace::UtilSummary`] folds spans into per-kind
//!   busy/wait totals,
//! * a passive [`probe`] bus: attach a [`probe::Probe`] to a [`Sim`] and it
//!   receives every resource/span/task event in deterministic order without
//!   being able to perturb the run.
//!
//! The kernel is generic over a *world* type `W`: the mutable simulation
//! state owned by the caller. Event handlers receive `(&mut Sim<W>, &mut W)`
//! so they can both mutate world state and schedule further events, without
//! interior mutability.
//!
//! Time is measured in integer **nanoseconds** ([`SimTime`]); helpers convert
//! from floating-point seconds. Determinism: two events scheduled for the
//! same instant fire in scheduling order.
//!
//! ```
//! use simkit::{secs, Sim};
//!
//! let mut sim: Sim<Vec<&str>> = Sim::new();
//! let disk = sim.add_resource("disk", 1);
//! // Two 1-second reads on a single-server disk serialize.
//! sim.use_resource(disk, secs(1.0), |_, log: &mut Vec<_>| log.push("first"));
//! sim.use_resource(disk, secs(1.0), |_, log| log.push("second"));
//! let mut log = Vec::new();
//! let end = sim.run(&mut log);
//! assert_eq!(log, vec!["first", "second"]);
//! assert_eq!(end, secs(2.0));
//! ```

#![forbid(unsafe_code)]

pub mod latch;
pub mod probe;
pub mod resource;
pub mod sched;
pub mod sim;
pub mod stats;
pub mod trace;

pub use latch::Latch;
pub use probe::{Probe, ProbeEvent};
pub use resource::ResourceId;
pub use sched::SchedulerKind;
pub use sim::{Event, ReqTiming, Sim, SimTime, TimedEvent};
pub use trace::{Contrib, ResKind, Span, Trace, UtilSummary};

/// One microsecond in [`SimTime`] units.
pub const MICROSECOND: SimTime = 1_000;
/// One millisecond in [`SimTime`] units.
pub const MILLISECOND: SimTime = 1_000_000;
/// One second in [`SimTime`] units.
pub const SECOND: SimTime = 1_000_000_000;

/// Convert floating-point seconds to [`SimTime`] (saturating, never negative).
#[inline]
pub fn secs(s: f64) -> SimTime {
    debug_assert!(s.is_finite(), "non-finite duration");
    if s <= 0.0 {
        0
    } else {
        (s * 1e9).round() as SimTime
    }
}

/// Convert [`SimTime`] to floating-point seconds.
#[inline]
pub fn as_secs(t: SimTime) -> f64 {
    t as f64 / 1e9
}

/// Convert floating-point milliseconds to [`SimTime`].
#[inline]
pub fn millis(ms: f64) -> SimTime {
    secs(ms / 1e3)
}

/// Convert [`SimTime`] to floating-point milliseconds.
#[inline]
pub fn as_millis(t: SimTime) -> f64 {
    t as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions_round_trip() {
        assert_eq!(secs(1.0), SECOND);
        assert_eq!(secs(0.001), MILLISECOND);
        assert_eq!(secs(-5.0), 0);
        assert_eq!(secs(0.0), 0);
        assert!((as_secs(secs(123.456)) - 123.456).abs() < 1e-9);
        assert!((as_millis(millis(7.5)) - 7.5).abs() < 1e-9);
    }
}
