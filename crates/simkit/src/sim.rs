//! The event loop: virtual clock, calendar-queue event scheduling, arena
//! event storage, batched resource grant/re-dispatch.
//!
//! See [`crate::sched`] for the queue backends and the arena; this module
//! owns the clock, the dispatch loop, and the resource grant path. The
//! observable contract is frozen: event order is strictly `(at, seq)` and
//! the probe stream is byte-identical across scheduler backends — the
//! scheduler-equivalence suite (`tests/scheduler_equivalence.rs`) runs
//! whole engine workloads under both to prove it.

use std::cell::RefCell;
use std::rc::Rc;

use crate::probe::{Probe, ProbeEvent};
use crate::resource::{Done, ResourceId, ResourceState};
use crate::sched::{Action, Arena, Entry, EventQueue, SchedulerKind};
use crate::trace::ResKind;

/// Virtual time in nanoseconds since simulation start.
pub type SimTime = u64;

/// A scheduled action. Receives the simulator (to schedule more work) and the
/// caller's world state.
pub type Event<W> = Box<dyn FnOnce(&mut Sim<W>, &mut W)>;

/// A completion that also receives the kernel's [`ReqTiming`] for the
/// request (see [`Sim::request_as_timed`]).
pub type TimedEvent<W> = Box<dyn FnOnce(&mut Sim<W>, &mut W, ReqTiming)>;

/// The kernel's own record of one request's life: when it was enqueued on
/// the resource, when a server granted it, and when service completed.
/// Handed to [`TimedEvent`] completions so callers attribute queue wait
/// from these instants instead of re-deriving it from issue-time
/// arithmetic (which would fold any completion-dispatch skew into the
/// wait).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReqTiming {
    /// Instant the request entered the resource's queue.
    pub enqueued: SimTime,
    /// Instant a server started serving it.
    pub started: SimTime,
    /// Instant service completed (== the instant the completion fires).
    pub completed: SimTime,
}

impl ReqTiming {
    /// Time spent queued behind other work: `started - enqueued`.
    pub fn queue_wait(&self) -> SimTime {
        self.started - self.enqueued
    }

    /// Time in service: `completed - started`.
    pub fn service(&self) -> SimTime {
        self.completed - self.started
    }
}

/// A discrete-event simulator over world type `W`.
///
/// Resources live inside the simulator so that event handlers (which hold
/// `&mut Sim<W>`) can request service without interior mutability.
///
/// Pending events are stored in a recycling arena; the priority structure
/// (calendar queue by default, binary heap as the A/B fallback — see
/// [`SchedulerKind`]) orders lightweight `(at, seq, slot)` triples.
/// Resource-service completions are kernel-native events: a request costs
/// one allocation (the caller's `done` closure), not two, and a completion
/// re-dispatches every startable queued request in one frame instead of
/// bouncing through a per-grant closure.
pub struct Sim<W> {
    now: SimTime,
    seq: u64,
    arena: Arena<W>,
    queue: EventQueue,
    resources: Vec<ResourceState<W>>,
    executed: u64,
    /// Optional passive observer (see [`crate::probe`]). `None` (the
    /// default) costs one branch per emission point; a probe receives
    /// borrowed event data only, so it cannot perturb the run.
    probe: Option<Rc<RefCell<dyn Probe>>>,
    /// Next request id; every request gets one (monotone in issue order)
    /// whether or not a probe is attached, so probed and unprobed runs take
    /// identical code paths.
    next_req: u64,
    /// Span context stamped onto requests at issue time (probe metadata
    /// only — dispatch never reads it). Execution layers set this around
    /// the requests a span issues; see [`Sim::set_probe_ctx`].
    probe_ctx: Option<u64>,
    /// Next span id handed out by [`Sim::next_span_id`].
    next_span: u64,
}

impl<W: 'static> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W: 'static> Sim<W> {
    /// A simulator on the thread-default scheduler backend: the calendar
    /// queue, unless a [`crate::sched::override_thread_default`] guard or
    /// the `heap-scheduler` feature says otherwise.
    pub fn new() -> Self {
        Self::with_scheduler(crate::sched::thread_default())
    }

    /// A simulator on an explicitly chosen scheduler backend. Both
    /// backends produce bit-identical event order; this exists for A/B
    /// verification and benchmarking.
    pub fn with_scheduler(kind: SchedulerKind) -> Self {
        Sim {
            now: 0,
            seq: 0,
            arena: Arena::new(),
            queue: EventQueue::new(kind),
            resources: Vec::new(),
            executed: 0,
            probe: None,
            next_req: 0,
            probe_ctx: None,
            next_span: 0,
        }
    }

    /// Which scheduler backend this simulator runs on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.queue.kind()
    }

    /// Attach (or detach, with `None`) a passive [`Probe`]. Resources that
    /// already exist are replayed as [`ProbeEvent::ResourceRegistered`] so
    /// the probe has the full resource table regardless of attach order.
    pub fn set_probe(&mut self, probe: Option<Rc<RefCell<dyn Probe>>>) {
        self.probe = probe;
        if let Some(p) = &self.probe {
            for (i, rs) in self.resources.iter().enumerate() {
                p.borrow_mut().on_event(&ProbeEvent::ResourceRegistered {
                    res: ResourceId(i),
                    name: rs.name(),
                    servers: rs.servers(),
                });
            }
        }
    }

    /// Whether a probe is attached (lets callers skip building event data).
    #[inline]
    pub fn has_probe(&self) -> bool {
        self.probe.is_some()
    }

    /// Set the span context stamped onto requests issued from now on (the
    /// span↔resource linkage carried by [`ProbeEvent::Enqueued`] and
    /// friends). Returns the previous context so callers can nest scopes.
    /// Pure probe metadata: dispatch order, timing, and randomness are
    /// unaffected, so setting it never perturbs a run.
    pub fn set_probe_ctx(&mut self, ctx: Option<u64>) -> Option<u64> {
        std::mem::replace(&mut self.probe_ctx, ctx)
    }

    /// The span context currently stamped onto issued requests.
    #[inline]
    pub fn probe_ctx(&self) -> Option<u64> {
        self.probe_ctx
    }

    /// Allocate a fresh span id (unique per `Sim`, monotone). Execution
    /// layers put it on [`ProbeEvent::SpanOpened`]/[`ProbeEvent::SpanClosed`]
    /// and pass it to [`Sim::set_probe_ctx`] while the span's requests are
    /// issued.
    pub fn next_span_id(&mut self) -> u64 {
        let id = self.next_span;
        self.next_span += 1;
        id
    }

    /// Emit an event to the attached probe, if any. Public so execution
    /// layers above the kernel (phase executors, engines) can feed span and
    /// task events into the same ordered stream.
    #[inline]
    pub fn emit_probe(&self, ev: ProbeEvent<'_>) {
        if let Some(p) = &self.probe {
            p.borrow_mut().on_event(&ev);
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far (diagnostics).
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Events currently pending (scheduled but not yet fired).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// High-water mark of the event arena: the peak number of events that
    /// were ever pending at once. The arena recycles slots, so this stays
    /// flat however many events flow through — the property the arena
    /// recycling test pins down.
    pub fn arena_capacity(&self) -> usize {
        self.arena.capacity()
    }

    /// Arena slots currently holding a pending event. Always equals
    /// [`Sim::pending_events`]; exposed separately so tests can check the
    /// slab and the queue agree.
    pub fn arena_live(&self) -> usize {
        self.arena.live()
    }

    #[inline]
    fn schedule_action(&mut self, at: SimTime, action: Action<W>) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let slot = self.arena.insert(action);
        self.queue.push(Entry { at, seq, slot });
    }

    /// Schedule `event` to fire at absolute time `at` (clamped to `now`).
    pub fn schedule_at(&mut self, at: SimTime, event: Event<W>) {
        self.schedule_action(at, Action::Call(event));
    }

    /// Schedule `event` to fire after `delay`.
    pub fn schedule_in(&mut self, delay: SimTime, event: Event<W>) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Schedule a closure after `delay` (avoids `Box::new` at call sites).
    pub fn after(&mut self, delay: SimTime, f: impl FnOnce(&mut Sim<W>, &mut W) + 'static) {
        self.schedule_in(delay, Box::new(f));
    }

    /// Create a k-server FIFO resource (see [`crate::resource`]).
    pub fn add_resource(&mut self, name: impl Into<String>, servers: u32) -> ResourceId {
        self.add_resource_inner(name.into(), None, servers)
    }

    /// Like [`Sim::add_resource`], but declaring the resource's structural
    /// [`ResKind`]. The kind rides on [`crate::resource::ResourceReport`]s
    /// so consumers classify resources by what they *are* (disk / CPU /
    /// network link), never by naming conventions a rename would break.
    pub fn add_resource_kind(
        &mut self,
        name: impl Into<String>,
        kind: ResKind,
        servers: u32,
    ) -> ResourceId {
        self.add_resource_inner(name.into(), Some(kind), servers)
    }

    fn add_resource_inner(
        &mut self,
        name: String,
        kind: Option<ResKind>,
        servers: u32,
    ) -> ResourceId {
        assert!(servers > 0, "resource must have at least one server");
        let id = ResourceId(self.resources.len());
        self.resources.push(ResourceState::new(name, kind, servers));
        if self.probe.is_some() {
            self.emit_probe(ProbeEvent::ResourceRegistered {
                res: id,
                name: self.resources[id.0].name(),
                servers,
            });
        }
        id
    }

    /// Request `service` time on resource `r`; `done` fires when service
    /// completes (after any FIFO queueing delay).
    pub fn request(&mut self, r: ResourceId, service: SimTime, done: Event<W>) {
        self.request_inner(r, service, None, Done::Plain(done));
    }

    /// Like [`Sim::request`], but tagged with a `client` id. When tagged
    /// requests are queued, the resource serves client tags round-robin
    /// (FIFO within a tag) instead of globally FIFO, so one client's burst
    /// cannot starve another's — see [`crate::resource`]. Untagged and
    /// tagged requests may share a resource; untagged ones sort last.
    pub fn request_as(&mut self, r: ResourceId, service: SimTime, client: u32, done: Event<W>) {
        self.request_inner(r, service, Some(client), Done::Plain(done));
    }

    /// Like [`Sim::request_as`], but the completion receives the kernel's
    /// [`ReqTiming`] (enqueue / service-start / completion instants) so the
    /// caller can attribute queue wait from the resource's own bookkeeping.
    /// Dispatch, accounting, and the probe stream are identical to
    /// [`Sim::request_as`].
    pub fn request_as_timed(
        &mut self,
        r: ResourceId,
        service: SimTime,
        client: u32,
        done: TimedEvent<W>,
    ) {
        self.request_inner(r, service, Some(client), Done::Timed(done));
    }

    fn request_inner(
        &mut self,
        r: ResourceId,
        service: SimTime,
        client: Option<u32>,
        done: Done<W>,
    ) {
        let now = self.now;
        let req = self.next_req;
        self.next_req += 1;
        let ctx = self.probe_ctx;
        let start = {
            let rs = &mut self.resources[r.0];
            rs.enqueue(now, service, client, req, ctx, done)
        };
        if self.probe.is_some() {
            self.emit_probe(ProbeEvent::Enqueued {
                at: now,
                res: r,
                service,
                waiting: self.resources[r.0].queue_len(),
                req,
                ctx,
                client,
            });
        }
        if start {
            self.grant(r);
        }
    }

    /// Convenience: request with a closure completion.
    pub fn use_resource(
        &mut self,
        r: ResourceId,
        service: SimTime,
        done: impl FnOnce(&mut Sim<W>, &mut W) + 'static,
    ) {
        self.request(r, service, Box::new(done));
    }

    /// Structural kind of `r`, if one was declared at registration.
    pub fn resource_kind(&self, r: ResourceId) -> Option<ResKind> {
        self.resources[r.0].kind()
    }

    /// Start service on every startable queued request of `r` — the batched
    /// grant path. A single freed server grants one request, but the loop
    /// means any caller that frees or adds capacity re-dispatches the whole
    /// eligible queue in one frame, with one probe guard check per grant
    /// and a kernel-native completion event (no per-grant closure).
    fn grant(&mut self, r: ResourceId) {
        let now = self.now;
        while let Some(s) = self.resources[r.0].start_next(now) {
            if self.probe.is_some() {
                self.emit_probe(ProbeEvent::ServiceStarted {
                    at: now,
                    res: r,
                    service: s.service,
                    wait: s.wait,
                    waiting: self.resources[r.0].queue_len(),
                    req: s.req,
                    ctx: s.ctx,
                    client: s.client,
                });
            }
            let (service, req, ctx, client) = (s.service, s.req, s.ctx, s.client);
            // Timed completions bind the kernel's grant instant here; plain
            // ones pass through untouched (no extra allocation).
            let done = s.into_done(now);
            self.schedule_action(
                now.saturating_add(service),
                Action::Completion {
                    res: r,
                    req,
                    ctx,
                    client,
                    done,
                },
            );
        }
    }

    /// A kernel-native service completion fired: emit the probe event, run
    /// the caller's `done`, release the server, re-dispatch the queue.
    /// Order matches the pre-arena kernel exactly: completed-probe, done,
    /// finish, grant.
    fn complete(
        &mut self,
        r: ResourceId,
        req: u64,
        ctx: Option<u64>,
        client: Option<u32>,
        done: Event<W>,
        w: &mut W,
    ) {
        if self.probe.is_some() {
            self.emit_probe(ProbeEvent::ServiceCompleted {
                at: self.now,
                res: r,
                waiting: self.resources[r.0].queue_len(),
                req,
                ctx,
                client,
            });
        }
        done(self, w);
        let more = self.resources[r.0].finish_one(self.now);
        if more {
            self.grant(r);
        }
    }

    #[inline]
    fn fire(&mut self, e: Entry, w: &mut W) {
        debug_assert!(e.at >= self.now, "time went backwards");
        self.now = e.at;
        self.executed += 1;
        match self.arena.take(e.slot) {
            Action::Call(ev) => ev(self, w),
            Action::Completion {
                res,
                req,
                ctx,
                client,
                done,
            } => self.complete(res, req, ctx, client, done, w),
        }
    }

    /// Drain every event. Returns the final clock value.
    pub fn run(&mut self, w: &mut W) -> SimTime {
        while let Some(e) = self.queue.pop() {
            self.fire(e, w);
        }
        self.now
    }

    /// Run until the clock would pass `deadline`; events at exactly
    /// `deadline` still fire. Returns true if the queue drained.
    pub fn run_until(&mut self, w: &mut W, deadline: SimTime) -> bool {
        loop {
            let Some(at) = self.queue.peek_time() else {
                return true;
            };
            if at > deadline {
                // A deadline already in the past must not rewind the clock.
                self.now = self.now.max(deadline);
                return false;
            }
            let e = self.queue.pop().expect("peeked");
            self.fire(e, w);
        }
    }

    /// Busy-time integral of a resource (for utilization reporting).
    pub fn resource_busy_time(&self, r: ResourceId) -> SimTime {
        self.resources[r.0].busy_time(self.now)
    }

    /// Total completed services on a resource.
    pub fn resource_completions(&self, r: ResourceId) -> u64 {
        self.resources[r.0].completions()
    }

    /// Time spent queued (not being served) summed over all requests.
    pub fn resource_queue_wait(&self, r: ResourceId) -> SimTime {
        self.resources[r.0].total_queue_wait()
    }

    /// Wait accrued *so far* by requests still queued at the current clock
    /// (not yet included in [`Sim::resource_queue_wait`], which only counts
    /// requests whose service has started).
    pub fn resource_pending_wait(&self, r: ResourceId) -> SimTime {
        self.resources[r.0].pending_wait(self.now)
    }

    /// Resource name (diagnostics).
    pub fn resource_name(&self, r: ResourceId) -> &str {
        self.resources[r.0].name()
    }

    /// Current queue length of a resource.
    pub fn resource_queue_len(&self, r: ResourceId) -> usize {
        self.resources[r.0].queue_len()
    }

    /// Peak number of requests that were *waiting* (queued behind busy
    /// servers) at any instant so far.
    pub fn resource_max_queue_len(&self, r: ResourceId) -> usize {
        self.resources[r.0].max_queue_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{secs, SECOND};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Default)]
    struct World {
        log: Vec<(SimTime, &'static str)>,
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.after(secs(2.0), |s, w| w.log.push((s.now(), "b")));
        sim.after(secs(1.0), |s, w| w.log.push((s.now(), "a")));
        sim.after(secs(3.0), |s, w| w.log.push((s.now(), "c")));
        sim.run(&mut w);
        assert_eq!(
            w.log,
            vec![(SECOND, "a"), (2 * SECOND, "b"), (3 * SECOND, "c")]
        );
    }

    #[test]
    fn equal_times_fire_fifo() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        for name in ["x", "y", "z"] {
            sim.after(secs(1.0), move |s, w| w.log.push((s.now(), name)));
        }
        sim.run(&mut w);
        let names: Vec<_> = w.log.iter().map(|(_, n)| *n).collect();
        assert_eq!(names, vec!["x", "y", "z"]);
    }

    #[test]
    fn nested_scheduling_works() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.after(secs(1.0), |s, w| {
            w.log.push((s.now(), "outer"));
            s.after(secs(1.0), |s, w| w.log.push((s.now(), "inner")));
        });
        let end = sim.run(&mut w);
        assert_eq!(end, 2 * SECOND);
        assert_eq!(w.log.len(), 2);
        assert_eq!(w.log[1], (2 * SECOND, "inner"));
    }

    #[test]
    fn single_server_resource_serializes() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        let disk = sim.add_resource("disk", 1);
        // Three 1s requests issued at t=0 should finish at 1,2,3s.
        for name in ["r1", "r2", "r3"] {
            sim.use_resource(disk, SECOND, move |s, w| w.log.push((s.now(), name)));
        }
        sim.run(&mut w);
        assert_eq!(
            w.log,
            vec![(SECOND, "r1"), (2 * SECOND, "r2"), (3 * SECOND, "r3")]
        );
        assert_eq!(sim.resource_completions(disk), 3);
        assert_eq!(sim.resource_busy_time(disk), 3 * SECOND);
        // r2 waited 1s, r3 waited 2s.
        assert_eq!(sim.resource_queue_wait(disk), 3 * SECOND);
    }

    #[test]
    fn multi_server_resource_runs_in_parallel() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        let cpu = sim.add_resource("cpu", 2);
        for name in ["a", "b", "c"] {
            sim.use_resource(cpu, SECOND, move |s, w| w.log.push((s.now(), name)));
        }
        sim.run(&mut w);
        // a,b finish at 1s; c queued behind and finishes at 2s.
        assert_eq!(w.log[0].0, SECOND);
        assert_eq!(w.log[1].0, SECOND);
        assert_eq!(w.log[2], (2 * SECOND, "c"));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.after(secs(1.0), |s, w| w.log.push((s.now(), "early")));
        sim.after(secs(10.0), |s, w| w.log.push((s.now(), "late")));
        let drained = sim.run_until(&mut w, secs(5.0));
        assert!(!drained);
        assert_eq!(w.log.len(), 1);
        assert_eq!(sim.now(), secs(5.0));
        sim.run(&mut w);
        assert_eq!(w.log.len(), 2);
    }

    #[test]
    fn run_until_past_deadline_never_rewinds_clock() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.after(secs(3.0), |s, w| w.log.push((s.now(), "a")));
        sim.after(secs(10.0), |s, w| w.log.push((s.now(), "late")));
        let drained = sim.run_until(&mut w, secs(4.0));
        assert!(!drained);
        assert_eq!(sim.now(), secs(4.0));
        // Deadline earlier than the current clock: a no-op, not a rewind.
        let drained = sim.run_until(&mut w, secs(2.0));
        assert!(!drained);
        assert_eq!(sim.now(), secs(4.0), "clock must not move backwards");
        sim.run(&mut w);
        assert_eq!(sim.now(), secs(10.0));
        assert_eq!(w.log.len(), 2);
    }

    #[test]
    fn schedule_after_partial_run_until_fires_in_order() {
        // Regression for the calendar window: peeking a far-future event
        // jumps the ring forward; a later schedule between `now` and that
        // event must still fire first (window rewind).
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.after(secs(100.0), |s, w| w.log.push((s.now(), "far")));
        let drained = sim.run_until(&mut w, secs(1.0));
        assert!(!drained);
        sim.after(secs(1.0), |s, w| w.log.push((s.now(), "near")));
        sim.run(&mut w);
        assert_eq!(w.log, vec![(secs(2.0), "near"), (secs(100.0), "far")]);
    }

    #[test]
    fn tagged_requests_served_round_robin_across_clients() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        let disk = sim.add_resource("disk", 1);
        // Client 0 floods the disk with four requests at t=0; client 1
        // submits a single request at the same instant, after the burst.
        // Round-robin dispatch must serve client 1 second, not fifth.
        let order: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        for name in ["a1", "a2", "a3", "a4"] {
            let o = order.clone();
            sim.request_as(
                disk,
                SECOND,
                0,
                Box::new(move |_, _| o.borrow_mut().push(name)),
            );
        }
        let o = order.clone();
        sim.request_as(
            disk,
            SECOND,
            1,
            Box::new(move |_, _| o.borrow_mut().push("b1")),
        );
        sim.run(&mut w);
        assert_eq!(*order.borrow(), vec!["a1", "b1", "a2", "a3", "a4"]);
    }

    #[test]
    fn untagged_requests_stay_strict_fifo() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        let disk = sim.add_resource("disk", 1);
        let order: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        for name in ["r1", "r2", "r3", "r4"] {
            let o = order.clone();
            sim.request(
                disk,
                SECOND,
                Box::new(move |_, _| o.borrow_mut().push(name)),
            );
        }
        sim.run(&mut w);
        assert_eq!(*order.borrow(), vec!["r1", "r2", "r3", "r4"]);
    }

    #[test]
    fn untagged_sorts_after_tagged_clients() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        let disk = sim.add_resource("disk", 1);
        let order: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        // First request (untagged) occupies the server; then one untagged
        // and one tagged request queue. The tagged one is served first
        // even though it enqueued later: untagged sorts as tag u32::MAX.
        for name in ["u0", "u1"] {
            let o = order.clone();
            sim.request(
                disk,
                SECOND,
                Box::new(move |_, _| o.borrow_mut().push(name)),
            );
        }
        let o = order.clone();
        sim.request_as(
            disk,
            SECOND,
            7,
            Box::new(move |_, _| o.borrow_mut().push("t7")),
        );
        sim.run(&mut w);
        assert_eq!(*order.borrow(), vec!["u0", "t7", "u1"]);
    }

    #[test]
    fn pending_wait_counts_still_queued_requests() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        let disk = sim.add_resource("disk", 1);
        // One 10s request holds the server; two more enqueue at t=0 and
        // are still waiting at the t=4s snapshot, having accrued 4s each.
        for _ in 0..3 {
            sim.use_resource(disk, secs(10.0), |_, _| {});
        }
        sim.run_until(&mut w, secs(4.0));
        assert_eq!(sim.resource_queue_len(disk), 2);
        assert_eq!(sim.resource_pending_wait(disk), 2 * secs(4.0));
        // Started-but-unfinished service contributes nothing extra.
        assert_eq!(sim.resource_queue_wait(disk), 0);
        // Drained run: pending wait collapses to zero and the accrued wait
        // moves into the completed-request total (10s + 20s).
        sim.run(&mut w);
        assert_eq!(sim.resource_pending_wait(disk), 0);
        assert_eq!(sim.resource_queue_wait(disk), secs(30.0));
    }

    #[test]
    fn resource_requests_issued_later_queue_behind_earlier() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        let disk = sim.add_resource("disk", 1);
        let order: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        let (o1, o2) = (order.clone(), order.clone());
        sim.use_resource(disk, secs(5.0), move |_, _| o1.borrow_mut().push("long"));
        sim.after(secs(1.0), move |s, _| {
            let o2 = o2.clone();
            s.use_resource(disk, secs(1.0), move |_, _| o2.borrow_mut().push("short"));
        });
        sim.run(&mut w);
        assert_eq!(*order.borrow(), vec!["long", "short"]);
        assert_eq!(sim.now(), secs(6.0));
    }

    #[test]
    fn backends_replay_identical_logs() {
        // The same workload on both backends, including resource traffic
        // and same-instant ties, must produce the same log.
        let run = |kind: SchedulerKind| {
            let mut sim: Sim<World> = Sim::with_scheduler(kind);
            assert_eq!(sim.scheduler_kind(), kind);
            let mut w = World::default();
            let disk = sim.add_resource("disk", 1);
            let cpu = sim.add_resource("cpu", 2);
            for i in 0..20u64 {
                sim.after(secs(0.1) * i, move |s, w| {
                    w.log.push((s.now(), "tick"));
                    let svc = MICRO_MIX[i as usize % MICRO_MIX.len()];
                    s.use_resource(if i % 3 == 0 { disk } else { cpu }, svc, |s, w| {
                        w.log.push((s.now(), "done"));
                    });
                });
            }
            sim.run(&mut w);
            (w.log, sim.events_executed())
        };
        const MICRO_MIX: [SimTime; 4] = [1_000, 250_000, 70_000_000, 2_000_000_000];
        assert_eq!(run(SchedulerKind::Calendar), run(SchedulerKind::Heap));
    }

    #[test]
    fn arena_stays_flat_across_sequential_events() {
        // A self-rescheduling timer fires 10_000 times but only ever has
        // one pending event: the arena must not grow past the peak.
        fn tick(s: &mut Sim<World>, remaining: u32) {
            if remaining > 0 {
                s.after(1_000, move |s, _| tick(s, remaining - 1));
            }
        }
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        tick(&mut sim, 10_000);
        sim.run(&mut w);
        assert_eq!(sim.events_executed(), 10_000);
        assert_eq!(sim.arena_capacity(), 1, "one pending event at a time");
        assert_eq!(sim.pending_events(), 0);
    }
}
