//! Event scheduling backends and the event arena.
//!
//! The kernel's hot loop is "pop the earliest event, run it, repeat" — at
//! the 16 TB scale factors and million-user serving scenarios the ROADMAP
//! targets, hundreds of millions of events flow through it, so both the
//! *queue discipline* and the *allocation pattern* matter:
//!
//! * **Arena (slab) storage.** Every scheduled action lives in a recycled
//!   slot of a `Arena`: the priority structure itself holds only `Copy`
//!   `Entry` triples `(at, seq, slot)` — 24 bytes, no destructor — so
//!   sift/bucket operations are plain memmoves and the slab's free list
//!   recycles slots instead of round-tripping the allocator per event.
//!   The slab grows to the peak number of *concurrently pending* events
//!   and then stays flat (see the arena-recycling property test).
//!
//! * **Calendar queue** (`CalendarQueue`, the default backend): a ring
//!   of time buckets of power-of-two width. Push indexes straight into a
//!   bucket (O(1)); pop scans the small current bucket for its minimum
//!   `(at, seq)` key. Events beyond the ring's horizon wait in a spill
//!   heap and are claimed by the same year check every pop performs, so
//!   ordering is exact — **bit-identical to the binary heap** — while the
//!   common case never pays an O(log n) sift over a pointer-fat heap.
//!   The ring resizes (grow-only, deterministically, from event count and
//!   span) as the pending population grows.
//!
//! * **Binary heap** ([`SchedulerKind::Heap`]): the pre-calendar discipline,
//!   kept as an always-available A/B oracle. The scheduler-equivalence
//!   suite runs whole engine workloads under both backends and requires
//!   identical probe streams; compiling with the `heap-scheduler` feature
//!   flips the *default* backend for every `Sim::new` in the process.
//!
//! Ordering contract (both backends): strictly increasing `(at, seq)` —
//! earliest time first, FIFO among equal times via the monotone sequence
//! number. This is the determinism contract every byte-diffed artifact in
//! `results/` rests on.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::resource::ResourceId;
use crate::sim::{Event, SimTime};

/// Which event-queue discipline a [`Sim`](crate::Sim) uses. Both produce
/// the exact same event order; they differ only in constant factors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedulerKind {
    /// Bucketed calendar queue (the default): O(1) push, small-scan pop.
    Calendar,
    /// Binary heap of `(at, seq, slot)` triples: the fallback/oracle.
    Heap,
}

/// The compiled-in default backend: [`SchedulerKind::Calendar`], unless the
/// `heap-scheduler` feature is enabled (A/B verification builds).
pub fn compiled_default() -> SchedulerKind {
    if cfg!(feature = "heap-scheduler") {
        SchedulerKind::Heap
    } else {
        SchedulerKind::Calendar
    }
}

thread_local! {
    static THREAD_DEFAULT: std::cell::Cell<Option<SchedulerKind>> =
        const { std::cell::Cell::new(None) };
}

/// The backend `Sim::new` uses on this thread: the innermost live
/// [`SchedulerOverride`], or [`compiled_default`] when none is active.
pub fn thread_default() -> SchedulerKind {
    THREAD_DEFAULT
        .with(|c| c.get())
        .unwrap_or_else(compiled_default)
}

/// RAII guard that makes every `Sim::new` on this thread use `kind` until
/// the guard drops. This is how the scheduler-equivalence tests run whole
/// engine workloads (which construct their `Sim` internally) under the
/// heap oracle without threading a parameter through every engine API.
#[must_use = "the override lasts only while the guard is alive"]
pub struct SchedulerOverride {
    prev: Option<SchedulerKind>,
}

/// Install a thread-local default-scheduler override (see
/// [`SchedulerOverride`]). Overrides nest; each guard restores what it saw.
pub fn override_thread_default(kind: SchedulerKind) -> SchedulerOverride {
    let prev = THREAD_DEFAULT.with(|c| c.replace(Some(kind)));
    SchedulerOverride { prev }
}

impl Drop for SchedulerOverride {
    fn drop(&mut self) {
        THREAD_DEFAULT.with(|c| c.set(self.prev));
    }
}

/// What a scheduled event *does* when it fires. `Call` is a user closure;
/// `Completion` is a kernel-native resource-service completion, which the
/// old kernel modelled as a second `Box` wrapped around the user's `done`
/// closure — one allocation per resource request that the arena kills.
pub(crate) enum Action<W> {
    Call(Event<W>),
    Completion {
        res: ResourceId,
        req: u64,
        ctx: Option<u64>,
        client: Option<u32>,
        done: Event<W>,
    },
}

/// Recycling slab of pending [`Action`]s. Slots freed by fired events are
/// reused before the slab grows, so capacity tracks *peak concurrency*,
/// not total event count.
pub(crate) struct Arena<W> {
    slots: Vec<Option<Action<W>>>,
    free: Vec<u32>,
}

impl<W> Arena<W> {
    pub(crate) fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    pub(crate) fn insert(&mut self, action: Action<W>) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(action);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len())
                    .expect("more than u32::MAX events concurrently pending");
                self.slots.push(Some(action));
                slot
            }
        }
    }

    pub(crate) fn take(&mut self, slot: u32) -> Action<W> {
        let action = self.slots[slot as usize]
            .take()
            .expect("event slot fired twice or never filled");
        self.free.push(slot);
        action
    }

    /// Total slots ever allocated — the peak-concurrency high-water mark.
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Slots currently holding a pending event.
    pub(crate) fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

/// Queue entry: the full ordering key plus the arena slot. `Copy`, no
/// destructor — both backends shuffle only these.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Entry {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) slot: u32,
}

impl Entry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// The pending-event priority structure, behind a runtime-selected backend.
pub(crate) enum EventQueue {
    Calendar(CalendarQueue),
    Heap(BinaryHeap<Reverse<(SimTime, u64, u32)>>),
}

impl EventQueue {
    pub(crate) fn new(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::Calendar => EventQueue::Calendar(CalendarQueue::new()),
            SchedulerKind::Heap => EventQueue::Heap(BinaryHeap::new()),
        }
    }

    pub(crate) fn kind(&self) -> SchedulerKind {
        match self {
            EventQueue::Calendar(_) => SchedulerKind::Calendar,
            EventQueue::Heap(_) => SchedulerKind::Heap,
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, e: Entry) {
        match self {
            EventQueue::Calendar(c) => c.push(e),
            EventQueue::Heap(h) => h.push(Reverse((e.at, e.seq, e.slot))),
        }
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> Option<Entry> {
        match self {
            EventQueue::Calendar(c) => c.pop(),
            EventQueue::Heap(h) => h
                .pop()
                .map(|Reverse((at, seq, slot))| Entry { at, seq, slot }),
        }
    }

    /// Earliest pending event time, without disturbing order.
    #[inline]
    pub(crate) fn peek_time(&mut self) -> Option<SimTime> {
        match self {
            EventQueue::Calendar(c) => c.peek_time(),
            EventQueue::Heap(h) => h.peek().map(|Reverse((at, ..))| *at),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Calendar(c) => c.len(),
            EventQueue::Heap(h) => h.len(),
        }
    }
}

/// Initial ring size; grows (powers of two) as the pending set grows.
const INITIAL_BUCKETS: usize = 256;
/// Initial bucket width exponent: 2^17 ns ≈ 131 µs. Resizes re-derive the
/// width from the observed event span, so this only seeds small sims.
const INITIAL_SHIFT: u32 = 17;
/// Ring size cap: beyond this, extra events deepen buckets instead.
/// 2^21 buckets ≈ 50 MB of bucket headers — large enough that
/// multi-million-event populations keep buckets short (the pop scan is
/// the calendar's only super-constant work), small enough to stay a
/// rounding error next to the events themselves.
const MAX_BUCKETS: usize = 1 << 21;
/// Bucket width ceiling: 2^40 ns (~18 min of sim time) per bucket keeps
/// window jumps cheap. No floor: nanosecond-dense workloads want
/// single-nanosecond buckets.
const MAX_SHIFT: u32 = 40;
/// Recalibration cadence: every this-many pops, compare the measured
/// insert/advance work against the thresholds below and re-derive the
/// bucket width if the ring is mis-tuned for the current event density.
const RECAL_PERIOD: u64 = 4096;
/// Width too *wide*: pops scan more than this many bucket entries on
/// average (entries pile into few long buckets).
const MAX_SCAN_PER_POP: u64 = 16;
/// Width too *narrow*: pops step over more than this many empty buckets
/// on average.
const MAX_ADVANCE_PER_POP: u64 = 6;

/// A calendar queue: `nb` buckets (power of two) of `2^shift` ns each,
/// covering a rolling window ("year" per bucket) of `nb << shift` ns from
/// `ring_start`. Events beyond the window spill to an overflow heap.
///
/// Buckets are unsorted: push is a pure append (one streamed write) and
/// pop scans the small current bucket for its minimum — cheaper than
/// keeping buckets sorted as long as buckets stay short, which the width
/// tuning guarantees. Besides growing with the pending population, the
/// queue counts the work its two loops actually do — bucket entries
/// scanned per pop (width too wide: everything piles into few long
/// buckets) and empty buckets stepped over (width too narrow) — and
/// re-derives the width from the live event span whenever a
/// [`RECAL_PERIOD`] window shows the ring mis-tuned. Both triggers depend
/// only on event data, so resizing is deterministic.
///
/// Invariant: `ring_start <= at` for every stored event — maintained by
/// pop (which advances the window only past empty-or-future buckets) and
/// by push (which *rewinds* the window when handed an earlier event, legal
/// precisely because such an event is a new global minimum).
pub(crate) struct CalendarQueue {
    buckets: Vec<Vec<Entry>>,
    mask: usize,
    shift: u32,
    /// Index of the bucket whose year starts at `ring_start`.
    cur: usize,
    /// Start time of the current bucket's year (multiple of bucket width).
    ring_start: SimTime,
    /// Events stored in the ring (the overflow heap is counted separately).
    ring_len: usize,
    overflow: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    /// A popped-but-unconsumed entry (backs [`CalendarQueue::peek_time`]).
    staged: Option<Entry>,
    /// Pops since the last recalibration check.
    pops: u64,
    /// Bucket entries scanned by pops since the last check.
    scanned: u64,
    /// Empty buckets stepped over since the last check.
    advances: u64,
    /// Largest event time ever stored (stale after pops; used only to
    /// estimate the span when deciding whether to re-derive the width).
    max_seen: SimTime,
}

impl CalendarQueue {
    pub(crate) fn new() -> Self {
        CalendarQueue {
            buckets: (0..INITIAL_BUCKETS).map(|_| Vec::new()).collect(),
            mask: INITIAL_BUCKETS - 1,
            shift: INITIAL_SHIFT,
            cur: 0,
            ring_start: 0,
            ring_len: 0,
            overflow: BinaryHeap::new(),
            staged: None,
            pops: 0,
            scanned: 0,
            advances: 0,
            max_seen: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.ring_len + self.overflow.len() + usize::from(self.staged.is_some())
    }

    #[inline]
    fn width(&self) -> SimTime {
        1u64 << self.shift
    }

    #[inline]
    fn span(&self) -> SimTime {
        (self.buckets.len() as u64)
            .checked_shl(self.shift)
            .unwrap_or(u64::MAX)
    }

    #[inline]
    fn bucket_of(&self, at: SimTime) -> usize {
        ((at >> self.shift) as usize) & self.mask
    }

    #[inline]
    fn year_start(&self, at: SimTime) -> SimTime {
        (at >> self.shift) << self.shift
    }

    pub(crate) fn push(&mut self, e: Entry) {
        // A staged peek is conceptually "next out"; re-queue it so the new
        // event competes on the ordinary (at, seq) key.
        if let Some(s) = self.staged.take() {
            self.raw_push(s);
        }
        self.raw_push(e);
        self.maybe_grow();
    }

    fn raw_push(&mut self, e: Entry) {
        self.max_seen = self.max_seen.max(e.at);
        if e.at < self.ring_start {
            // Rewind: every stored event is >= ring_start > e.at, so `e`
            // is the new global minimum and moving the window back to its
            // year preserves the scan order exactly.
            self.cur = self.bucket_of(e.at);
            self.ring_start = self.year_start(e.at);
        }
        if e.at - self.ring_start < self.span() {
            let b = self.bucket_of(e.at);
            self.buckets[b].push(e);
            self.ring_len += 1;
        } else {
            self.overflow.push(Reverse((e.at, e.seq, e.slot)));
        }
    }

    pub(crate) fn pop(&mut self) -> Option<Entry> {
        if let Some(s) = self.staged.take() {
            return Some(s);
        }
        self.pop_scan()
    }

    pub(crate) fn peek_time(&mut self) -> Option<SimTime> {
        if self.staged.is_none() {
            self.staged = self.pop_scan();
        }
        self.staged.map(|e| e.at)
    }

    fn pop_scan(&mut self) -> Option<Entry> {
        self.pops += 1;
        if self.pops >= RECAL_PERIOD {
            self.maybe_recalibrate();
        }
        if self.ring_len == 0 {
            // Ring empty: the overflow heap holds the global minimum.
            let Reverse((at, seq, slot)) = self.overflow.pop()?;
            self.cur = self.bucket_of(at);
            self.ring_start = self.year_start(at);
            return Some(Entry { at, seq, slot });
        }
        let mut steps = 0usize;
        loop {
            let year_end = self.ring_start.saturating_add(self.width());
            // Best in-year candidate from a scan of the current bucket
            // (buckets are short by construction — the scan IS the width
            // tuning signal)...
            let bucket = &self.buckets[self.cur];
            self.scanned += bucket.len() as u64;
            let mut best: Option<(usize, (SimTime, u64))> = None;
            for (i, e) in bucket.iter().enumerate() {
                let better = match best {
                    None => e.at < year_end,
                    Some((_, k)) => e.at < year_end && e.key() < k,
                };
                if better {
                    best = Some((i, e.key()));
                }
            }
            // ...competing with the overflow head if it entered the year.
            let over = self
                .overflow
                .peek()
                .map(|Reverse(k)| *k)
                .filter(|&(at, ..)| at < year_end);
            match (best, over) {
                (Some((_, bk)), Some((at, seq, _))) if (at, seq) < bk => {
                    let Reverse((at, seq, slot)) =
                        self.overflow.pop().expect("peeked overflow head");
                    return Some(Entry { at, seq, slot });
                }
                (Some((i, _)), _) => {
                    let e = self.buckets[self.cur].swap_remove(i);
                    self.ring_len -= 1;
                    return Some(e);
                }
                (None, Some(_)) => {
                    let Reverse((at, seq, slot)) =
                        self.overflow.pop().expect("peeked overflow head");
                    return Some(Entry { at, seq, slot });
                }
                (None, None) => {
                    steps += 1;
                    if steps > self.buckets.len() {
                        // Full rotation without an in-year event: everything
                        // left in the ring aliases a later year. Jump the
                        // window straight to the global minimum.
                        let min_at = self
                            .buckets
                            .iter()
                            .flatten()
                            .map(|e| e.at)
                            .min()
                            .expect("ring_len > 0 guarantees a ring event");
                        self.cur = self.bucket_of(min_at);
                        self.ring_start = self.year_start(min_at);
                        steps = 0;
                        continue;
                    }
                    self.advances += 1;
                    self.cur = (self.cur + 1) & self.mask;
                    self.ring_start = year_end;
                }
            }
        }
    }

    /// Grow resize: when the pending set outgrows one-event-per-bucket,
    /// rebuild with headroom (load factor ~0.5) and a re-derived width.
    /// Purely a constant-factor change — order is unaffected — and driven
    /// only by event data, so it is deterministic.
    fn maybe_grow(&mut self) {
        let total = self.ring_len + self.overflow.len();
        if total <= self.buckets.len() * 2 || self.buckets.len() >= MAX_BUCKETS {
            return;
        }
        let nb = total
            .next_power_of_two()
            .clamp(INITIAL_BUCKETS, MAX_BUCKETS);
        self.rebuild(nb);
    }

    /// Work-driven recalibration (every [`RECAL_PERIOD`] pops): if pops
    /// scanned too many bucket entries (buckets too long → width too
    /// wide) or stepped over too many empty buckets (width too narrow),
    /// re-derive the width from the live span at the current ring size.
    /// Cheap to check; the rebuild itself is O(n) and rare.
    fn maybe_recalibrate(&mut self) {
        let (pops, scanned, advs) = (self.pops, self.scanned, self.advances);
        self.pops = 0;
        self.scanned = 0;
        self.advances = 0;
        if scanned <= pops * MAX_SCAN_PER_POP && advs <= pops * MAX_ADVANCE_PER_POP {
            return;
        }
        let total = self.ring_len + self.overflow.len();
        if total < 2 {
            return;
        }
        // Hysteresis: rebuild only if the re-derived width actually
        // differs — a workload sitting at the work threshold must not pay
        // an O(n) rebuild into the same geometry every window. The span
        // estimate is O(1): `ring_start` tracks the minimum (window
        // invariant) and `max_seen` the high-water mark.
        if self.derive_shift(self.ring_start, self.max_seen, self.buckets.len()) == self.shift {
            return;
        }
        self.rebuild(self.buckets.len());
    }

    /// Width exponent for `nb` buckets spanning twice `[min_at, max_at]`.
    fn derive_shift(&self, min_at: SimTime, max_at: SimTime, nb: usize) -> u32 {
        let target_width = ((max_at - min_at).saturating_mul(4) / nb as u64).max(1);
        (64 - target_width.leading_zeros()).min(MAX_SHIFT)
    }

    /// Re-bucket every stored event into `nb` buckets (power of two) with
    /// a width derived from the observed span: window target is twice the
    /// span, so steady-state pushes land in the ring, not the overflow
    /// heap. No-op on ordering; `staged` is untouched.
    fn rebuild(&mut self, nb: usize) {
        let total = self.ring_len + self.overflow.len();
        let mut entries: Vec<Entry> = Vec::with_capacity(total);
        for b in &mut self.buckets {
            entries.append(b);
        }
        for Reverse((at, seq, slot)) in self.overflow.drain() {
            entries.push(Entry { at, seq, slot });
        }
        if entries.is_empty() {
            return;
        }
        let min_at = entries.iter().map(|e| e.at).min().expect("total > 0");
        let max_at = entries.iter().map(|e| e.at).max().expect("total > 0");
        self.max_seen = max_at;
        self.shift = self.derive_shift(min_at, max_at, nb);
        if self.buckets.len() < nb {
            self.buckets.resize_with(nb, Vec::new);
        }
        self.mask = self.buckets.len() - 1;
        self.ring_len = 0;
        self.cur = self.bucket_of(min_at);
        self.ring_start = self.year_start(min_at);
        for e in entries {
            self.raw_push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(at: SimTime, seq: u64) -> Entry {
        Entry {
            at,
            seq,
            slot: seq as u32,
        }
    }

    /// Oracle check: any push sequence drains in exact (at, seq) order.
    fn drains_sorted(mut q: CalendarQueue, mut entries: Vec<Entry>) {
        for e in &entries {
            q.push(*e);
        }
        entries.sort_by_key(|e| (e.at, e.seq));
        for want in entries {
            assert_eq!(q.pop(), Some(want));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn orders_dense_same_bucket_and_ties() {
        let es = vec![
            entry(5, 3),
            entry(5, 1),
            entry(4, 2),
            entry(5, 0),
            entry(0, 4),
        ];
        drains_sorted(CalendarQueue::new(), es);
    }

    #[test]
    fn orders_across_years_and_overflow() {
        // Mix of near events, far events (beyond the initial window), and
        // events that alias the same bucket from different years.
        let width = 1u64 << INITIAL_SHIFT;
        let span = width * INITIAL_BUCKETS as u64;
        let mut es = Vec::new();
        for i in 0..50u64 {
            es.push(entry(i * width * 3, i)); // walks past several buckets
            es.push(entry(i * span + 7, 100 + i)); // same bucket, year i
            es.push(entry(10 * span + i, 200 + i)); // deep overflow
        }
        drains_sorted(CalendarQueue::new(), es);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = CalendarQueue::new();
        let mut seq = 0u64;
        let mut state = 0x243F6A8885A308D3u64; // deterministic LCG-ish walk
        let mut next = |lo: u64, hi: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lo + (state >> 33) % (hi - lo)
        };
        let mut now = 0u64;
        let mut pending = std::collections::BTreeSet::new();
        for _ in 0..10_000 {
            if pending.is_empty() || next(0, 3) > 0 {
                let at = now + next(0, 1 << 22);
                q.push(entry(at, seq));
                pending.insert((at, seq));
                seq += 1;
            } else {
                let want = *pending.iter().next().expect("non-empty");
                pending.remove(&want);
                let got = q.pop().expect("queue tracks the model");
                assert_eq!(got.key(), want);
                now = got.at;
            }
        }
        while let Some(got) = q.pop() {
            let want = *pending.iter().next().expect("model has it");
            pending.remove(&want);
            assert_eq!(got.key(), want);
        }
        assert!(pending.is_empty());
    }

    #[test]
    fn peek_then_earlier_push_reorders() {
        let mut q = CalendarQueue::new();
        q.push(entry(1_000_000_000, 0));
        assert_eq!(q.peek_time(), Some(1_000_000_000));
        // Window has jumped to the staged event's year; an earlier push
        // must rewind and still come out first.
        q.push(entry(500, 1));
        assert_eq!(q.pop(), Some(entry(500, 1)));
        assert_eq!(q.pop(), Some(entry(1_000_000_000, 0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn grow_preserves_order() {
        // Enough events to force several rebuilds.
        let mut es = Vec::new();
        for i in 0..5_000u64 {
            es.push(entry((i * 7919) % 1_000_000_000, i));
        }
        drains_sorted(CalendarQueue::new(), es);
    }

    #[test]
    fn arena_recycles_slots() {
        let mut a: Arena<()> = Arena::new();
        let s0 = a.insert(Action::Call(Box::new(|_, _| {})));
        let s1 = a.insert(Action::Call(Box::new(|_, _| {})));
        assert_eq!(a.capacity(), 2);
        assert_eq!(a.live(), 2);
        a.take(s0);
        let s2 = a.insert(Action::Call(Box::new(|_, _| {})));
        assert_eq!(s2, s0, "freed slot is reused before the slab grows");
        assert_eq!(a.capacity(), 2);
        a.take(s1);
        a.take(s2);
        assert_eq!(a.live(), 0);
    }
}
