//! Countdown latches: fire a continuation when N contributing activities
//! have all completed (e.g., "reduce phase starts when every map task is
//! done", "query finishes when every compute node reports").

use crate::sim::{Event, Sim};
use std::cell::RefCell;
use std::rc::Rc;

/// A countdown latch. Cheap to clone; all clones share the same counter.
pub struct Latch<W> {
    inner: Rc<RefCell<Inner<W>>>,
}

struct Inner<W> {
    remaining: u64,
    action: Option<Event<W>>,
}

impl<W> Clone for Latch<W> {
    fn clone(&self) -> Self {
        Latch {
            inner: self.inner.clone(),
        }
    }
}

impl<W: 'static> Latch<W> {
    /// Create a latch expecting `count` completions; `action` is scheduled
    /// (immediately, at the current sim time) when the count reaches zero.
    /// A `count` of zero fires on the first [`Sim`] interaction via
    /// [`Latch::arm`].
    pub fn new(count: u64, action: Event<W>) -> Self {
        Latch {
            inner: Rc::new(RefCell::new(Inner {
                remaining: count,
                action: Some(action),
            })),
        }
    }

    /// Like [`Latch::new`] but takes a closure.
    pub fn with(count: u64, action: impl FnOnce(&mut Sim<W>, &mut W) + 'static) -> Self {
        Self::new(count, Box::new(action))
    }

    /// If the latch was created with count 0, fire it now.
    pub fn arm(&self, sim: &mut Sim<W>) {
        let mut inner = self.inner.borrow_mut();
        if inner.remaining == 0 {
            if let Some(action) = inner.action.take() {
                sim.schedule_in(0, action);
            }
        }
    }

    /// Record one completion; schedules the action when the last arrives.
    pub fn count_down(&self, sim: &mut Sim<W>) {
        let mut inner = self.inner.borrow_mut();
        assert!(inner.remaining > 0, "latch counted down too many times");
        inner.remaining -= 1;
        if inner.remaining == 0 {
            if let Some(action) = inner.action.take() {
                sim.schedule_in(0, action);
            }
        }
    }

    /// Completions still outstanding.
    pub fn remaining(&self) -> u64 {
        self.inner.borrow().remaining
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::secs;

    #[derive(Default)]
    struct World {
        fired_at: Option<crate::SimTime>,
    }

    #[test]
    fn latch_fires_after_all_countdowns() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        let latch = Latch::with(3, |s, w: &mut World| w.fired_at = Some(s.now()));
        for i in 1..=3u64 {
            let l = latch.clone();
            sim.after(secs(i as f64), move |s, _| l.count_down(s));
        }
        sim.run(&mut w);
        assert_eq!(w.fired_at, Some(secs(3.0)));
        assert_eq!(latch.remaining(), 0);
    }

    #[test]
    fn zero_latch_fires_on_arm() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        let latch = Latch::with(0, |s, w: &mut World| w.fired_at = Some(s.now()));
        latch.arm(&mut sim);
        sim.run(&mut w);
        assert_eq!(w.fired_at, Some(0));
    }

    #[test]
    #[should_panic(expected = "counted down too many times")]
    fn over_countdown_panics() {
        let mut sim: Sim<World> = Sim::new();
        let latch: Latch<World> = Latch::with(1, |_, _| {});
        latch.count_down(&mut sim);
        latch.count_down(&mut sim);
    }
}
