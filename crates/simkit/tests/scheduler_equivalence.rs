//! Scheduler-equivalence regression suite, kernel level: the calendar
//! queue and the binary-heap fallback must produce **bit-identical**
//! behaviour — same event firing order (including FIFO ties), same final
//! clock, same probe stream — on the same workload. The engine-level
//! half of this suite (TPC-H Q5 phase replay, YCSB mix) lives in
//! `crates/bench/tests/scheduler_equivalence.rs`.
//!
//! Workloads are generated from splitmix64 integer mixing seeded by an
//! explicit seed list, so every run of this test is identical too.

use simkit::probe::{Probe, ProbeEvent};
use simkit::{SchedulerKind, Sim, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// splitmix64 finalizer — deterministic pseudo-random integers.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Probe that renders every event to a line; streams compare with `==`.
#[derive(Default)]
struct RecordingProbe(Vec<String>);

impl Probe for RecordingProbe {
    fn on_event(&mut self, ev: &ProbeEvent<'_>) {
        self.0.push(format!("{ev:?}"));
    }
}

/// The per-kernel run: a mixed workload of one-shot timers (clustered so
/// FIFO ties happen), self-rescheduling timers, and two FIFO resources,
/// all driven by `seed`. Returns every observable the kernel produces.
fn run_mixed(kind: SchedulerKind, seed: u64) -> (Vec<(SimTime, u64)>, Vec<String>, SimTime, u64) {
    let mut sim: Sim<Vec<(SimTime, u64)>> = Sim::with_scheduler(kind);
    assert_eq!(sim.scheduler_kind(), kind);
    let probe = Rc::new(RefCell::new(RecordingProbe::default()));
    sim.set_probe(Some(probe.clone()));
    let mut w: Vec<(SimTime, u64)> = Vec::new();

    // One-shot timers, deliberately clustered on few distinct instants so
    // same-time FIFO ordering is exercised hard.
    for i in 0..500u64 {
        let at = mix(seed ^ i) % 64; // many ties
        sim.after(at, move |s, w: &mut Vec<_>| w.push((s.now(), i)));
    }
    // Self-rescheduling timers: events scheduled *from* events, far apart.
    for i in 0..50u64 {
        fn tick(sim: &mut Sim<Vec<(SimTime, u64)>>, seed: u64, i: u64, left: u32) {
            let d = mix(seed.wrapping_mul(31).wrapping_add(i)) % 10_000 + 1;
            sim.after(d, move |s, w: &mut Vec<_>| {
                w.push((s.now(), 1_000 + i));
                if left > 0 {
                    tick(s, seed.wrapping_add(left as u64), i, left - 1);
                }
            });
        }
        tick(&mut sim, seed, i, 8);
    }
    // Two FIFO resources fed with pseudo-random service demands.
    let disk = sim.add_resource("disk", 2);
    let cpu = sim.add_resource("cpu", 4);
    for i in 0..200u64 {
        let h = mix(seed.rotate_left(17) ^ i);
        let r = if h.is_multiple_of(2) { disk } else { cpu };
        let service = (h >> 8) % 5_000 + 1;
        sim.use_resource(r, service, move |s, w: &mut Vec<_>| {
            w.push((s.now(), 2_000 + i));
        });
    }

    let end = sim.run(&mut w);
    let lines = std::mem::take(&mut probe.borrow_mut().0);
    (w, lines, end, sim.events_executed())
}

#[test]
fn calendar_and_heap_agree_on_mixed_workloads() {
    for seed in [7, 1_234, 0xDEAD_BEEF, u64::MAX / 3] {
        let cal = run_mixed(SchedulerKind::Calendar, seed);
        let heap = run_mixed(SchedulerKind::Heap, seed);
        assert_eq!(cal.0, heap.0, "firing order diverged (seed {seed})");
        assert_eq!(cal.1, heap.1, "probe stream diverged (seed {seed})");
        assert_eq!(cal.2, heap.2, "final clock diverged (seed {seed})");
        assert_eq!(cal.3, heap.3, "event count diverged (seed {seed})");
    }
}

#[test]
fn thread_override_selects_the_backend_for_plain_new() {
    let guard = simkit::sched::override_thread_default(SchedulerKind::Heap);
    let sim: Sim<()> = Sim::new();
    assert_eq!(sim.scheduler_kind(), SchedulerKind::Heap);
    drop(guard);
    let sim: Sim<()> = Sim::new();
    assert_eq!(sim.scheduler_kind(), simkit::sched::compiled_default());
}
