//! Property-based tests of the DES kernel: causal ordering, FIFO resource
//! algebra, and latch counting.

use proptest::prelude::*;
use simkit::{Latch, Sim, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

type S = Sim<()>;

proptest! {
    /// Events fire in non-decreasing time order, with FIFO tie-breaking.
    #[test]
    fn events_fire_in_causal_order(delays in proptest::collection::vec(0u64..1_000, 1..100)) {
        let mut sim: S = Sim::new();
        let fired: Rc<RefCell<Vec<(SimTime, usize)>>> = Rc::default();
        for (i, &d) in delays.iter().enumerate() {
            let f = fired.clone();
            sim.after(d, move |s, _| f.borrow_mut().push((s.now(), i)));
        }
        sim.run(&mut ());
        let log = fired.borrow();
        prop_assert_eq!(log.len(), delays.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                // Same instant → scheduling (index) order.
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// A single-server resource is work-conserving: makespan == total work
    /// when all requests arrive at t=0, and completions preserve order.
    #[test]
    fn single_server_is_work_conserving(services in proptest::collection::vec(1u64..1_000, 1..60)) {
        let mut sim: S = Sim::new();
        let r = sim.add_resource("r", 1);
        let completions: Rc<RefCell<Vec<(usize, SimTime)>>> = Rc::default();
        for (i, &svc) in services.iter().enumerate() {
            let c = completions.clone();
            sim.use_resource(r, svc, move |s, _| c.borrow_mut().push((i, s.now())));
        }
        let end = sim.run(&mut ());
        let total: u64 = services.iter().sum();
        prop_assert_eq!(end, total);
        let log = completions.borrow();
        // FIFO: completion order == submission order, at prefix sums.
        let mut acc = 0;
        for (pos, &(idx, at)) in log.iter().enumerate() {
            prop_assert_eq!(idx, pos);
            acc += services[pos];
            prop_assert_eq!(at, acc);
        }
    }

    /// k servers: makespan within [total/k, total/k + max] (list scheduling
    /// bound) and never less than the longest single request.
    #[test]
    fn multi_server_makespan_bounds(
        services in proptest::collection::vec(1u64..1_000, 1..60),
        k in 1u32..8,
    ) {
        let mut sim: S = Sim::new();
        let r = sim.add_resource("r", k);
        for &svc in &services {
            sim.use_resource(r, svc, |_, _| {});
        }
        let end = sim.run(&mut ());
        let total: u64 = services.iter().sum();
        let max = *services.iter().max().unwrap();
        let lower = (total / k as u64).max(max);
        prop_assert!(end >= lower.min(total), "makespan {end} below bound {lower}");
        prop_assert!(end <= total, "makespan {end} above serial time {total}");
    }

    /// A latch fires exactly when the last of n contributors finishes.
    #[test]
    fn latch_fires_at_max_delay(delays in proptest::collection::vec(1u64..10_000, 1..50)) {
        let mut sim: S = Sim::new();
        let fired: Rc<RefCell<Option<SimTime>>> = Rc::default();
        let f = fired.clone();
        let latch = Latch::with(delays.len() as u64, move |s: &mut S, _| {
            *f.borrow_mut() = Some(s.now());
        });
        for &d in &delays {
            let l = latch.clone();
            sim.after(d, move |s, _| l.count_down(s));
        }
        sim.run(&mut ());
        prop_assert_eq!(*fired.borrow(), Some(*delays.iter().max().unwrap()));
    }
}

proptest! {
    /// Arena recycling: however many events flow through the kernel, the
    /// arena's high-water mark tracks the peak number *simultaneously*
    /// pending, not the total. Waves of events run back-to-back (each
    /// wave scheduled from within the previous wave's last event, so the
    /// kernel never goes idle) must leave capacity at the widest wave.
    #[test]
    fn arena_capacity_tracks_peak_not_total(
        waves in proptest::collection::vec(1usize..40, 1..12),
    ) {
        let mut sim: S = Sim::new();
        let waves = Rc::new(waves);
        let fired = Rc::new(RefCell::new(0u64));
        fn launch(sim: &mut S, waves: Rc<Vec<usize>>, wave: usize, fired: Rc<RefCell<u64>>) {
            let Some(&n) = waves.get(wave) else { return };
            for i in 0..n {
                let waves = waves.clone();
                let fired = fired.clone();
                sim.after(10 + i as u64, move |s, _| {
                    *fired.borrow_mut() += 1;
                    // Last event of the wave launches the next wave.
                    if i + 1 == n {
                        launch(s, waves, wave + 1, fired);
                    }
                });
            }
        }
        launch(&mut sim, waves.clone(), 0, fired.clone());
        sim.run(&mut ());
        let total: usize = waves.iter().sum();
        prop_assert_eq!(*fired.borrow() as usize, total);
        // +1: the launching event of the next wave may still be live
        // while it schedules its successors.
        let peak = waves.iter().copied().max().unwrap_or(0) + 1;
        prop_assert!(
            sim.arena_capacity() <= peak,
            "arena grew to {} slots for peak concurrency {}",
            sim.arena_capacity(), peak
        );
        prop_assert_eq!(sim.arena_live(), 0);
    }

    /// Slot recycling never confuses identities: interleaved schedule /
    /// fire traffic (a sliding window of pending events) delivers every
    /// payload exactly once, in time order, on both scheduler backends.
    #[test]
    fn recycled_slots_deliver_every_payload_once(
        delays in proptest::collection::vec(1u64..500, 1..120),
        backend_sel in 0u64..2,
    ) {
        let kind = if backend_sel == 1 {
            simkit::SchedulerKind::Heap
        } else {
            simkit::SchedulerKind::Calendar
        };
        let mut sim: S = Sim::with_scheduler(kind);
        let seen: Rc<RefCell<Vec<usize>>> = Rc::default();
        // Chain: event i schedules event i+1 (slot of i is recycled for
        // i+1 on the default backend), with a decoy event in between so
        // the freelist is exercised out of order.
        fn chain(sim: &mut S, delays: Rc<Vec<u64>>, i: usize, seen: Rc<RefCell<Vec<usize>>>) {
            let Some(&d) = delays.get(i) else { return };
            sim.after(d, {
                let seen2 = seen.clone();
                let delays = delays.clone();
                move |s, _| {
                    seen2.borrow_mut().push(i);
                    s.after(0, |_, _| {}); // decoy occupying a slot
                    chain(s, delays, i + 1, seen2.clone());
                }
            });
        }
        let n = delays.len();
        chain(&mut sim, Rc::new(delays), 0, seen.clone());
        sim.run(&mut ());
        let seen = seen.borrow();
        prop_assert_eq!(seen.clone(), (0..n).collect::<Vec<_>>());
        prop_assert_eq!(sim.arena_live(), 0);
    }

    /// S2 invariant: merging per-shard histograms then asking for a
    /// quantile equals recording the concatenated sample stream into one
    /// histogram. Bucketing is deterministic, so this is exact equality,
    /// not approximate.
    #[test]
    fn merged_histogram_quantiles_match_concatenated_stream(
        shards in proptest::collection::vec(
            proptest::collection::vec(1u64..50_000_000, 0..80),
            1..6,
        ),
        q_mille in 0u64..=1000,
    ) {
        use simkit::stats::LatencyHistogram;
        let mut merged = LatencyHistogram::new();
        let mut concat = LatencyHistogram::new();
        for samples in &shards {
            let mut shard = LatencyHistogram::new();
            for &v in samples {
                shard.record(v);
                concat.record(v);
            }
            merged.merge(&shard);
        }
        prop_assert_eq!(merged.count(), concat.count());
        prop_assert_eq!(merged.max(), concat.max());
        prop_assert_eq!(merged.mean().to_bits(), concat.mean().to_bits());
        let q = q_mille as f64 / 1000.0;
        prop_assert_eq!(merged.quantile(q), concat.quantile(q));
        for fixed in [0.5, 0.95, 0.99] {
            prop_assert_eq!(merged.quantile(fixed), concat.quantile(fixed));
        }
    }
}
