//! Property-based tests of the DES kernel: causal ordering, FIFO resource
//! algebra, and latch counting.

use proptest::prelude::*;
use simkit::{Latch, Sim, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

type S = Sim<()>;

proptest! {
    /// Events fire in non-decreasing time order, with FIFO tie-breaking.
    #[test]
    fn events_fire_in_causal_order(delays in proptest::collection::vec(0u64..1_000, 1..100)) {
        let mut sim: S = Sim::new();
        let fired: Rc<RefCell<Vec<(SimTime, usize)>>> = Rc::default();
        for (i, &d) in delays.iter().enumerate() {
            let f = fired.clone();
            sim.after(d, move |s, _| f.borrow_mut().push((s.now(), i)));
        }
        sim.run(&mut ());
        let log = fired.borrow();
        prop_assert_eq!(log.len(), delays.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                // Same instant → scheduling (index) order.
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// A single-server resource is work-conserving: makespan == total work
    /// when all requests arrive at t=0, and completions preserve order.
    #[test]
    fn single_server_is_work_conserving(services in proptest::collection::vec(1u64..1_000, 1..60)) {
        let mut sim: S = Sim::new();
        let r = sim.add_resource("r", 1);
        let completions: Rc<RefCell<Vec<(usize, SimTime)>>> = Rc::default();
        for (i, &svc) in services.iter().enumerate() {
            let c = completions.clone();
            sim.use_resource(r, svc, move |s, _| c.borrow_mut().push((i, s.now())));
        }
        let end = sim.run(&mut ());
        let total: u64 = services.iter().sum();
        prop_assert_eq!(end, total);
        let log = completions.borrow();
        // FIFO: completion order == submission order, at prefix sums.
        let mut acc = 0;
        for (pos, &(idx, at)) in log.iter().enumerate() {
            prop_assert_eq!(idx, pos);
            acc += services[pos];
            prop_assert_eq!(at, acc);
        }
    }

    /// k servers: makespan within [total/k, total/k + max] (list scheduling
    /// bound) and never less than the longest single request.
    #[test]
    fn multi_server_makespan_bounds(
        services in proptest::collection::vec(1u64..1_000, 1..60),
        k in 1u32..8,
    ) {
        let mut sim: S = Sim::new();
        let r = sim.add_resource("r", k);
        for &svc in &services {
            sim.use_resource(r, svc, |_, _| {});
        }
        let end = sim.run(&mut ());
        let total: u64 = services.iter().sum();
        let max = *services.iter().max().unwrap();
        let lower = (total / k as u64).max(max);
        prop_assert!(end >= lower.min(total), "makespan {end} below bound {lower}");
        prop_assert!(end <= total, "makespan {end} above serial time {total}");
    }

    /// A latch fires exactly when the last of n contributors finishes.
    #[test]
    fn latch_fires_at_max_delay(delays in proptest::collection::vec(1u64..10_000, 1..50)) {
        let mut sim: S = Sim::new();
        let fired: Rc<RefCell<Option<SimTime>>> = Rc::default();
        let f = fired.clone();
        let latch = Latch::with(delays.len() as u64, move |s: &mut S, _| {
            *f.borrow_mut() = Some(s.now());
        });
        for &d in &delays {
            let l = latch.clone();
            sim.after(d, move |s, _| l.count_down(s));
        }
        sim.run(&mut ());
        prop_assert_eq!(*fired.borrow(), Some(*delays.iter().max().unwrap()));
    }
}

proptest! {
    /// S2 invariant: merging per-shard histograms then asking for a
    /// quantile equals recording the concatenated sample stream into one
    /// histogram. Bucketing is deterministic, so this is exact equality,
    /// not approximate.
    #[test]
    fn merged_histogram_quantiles_match_concatenated_stream(
        shards in proptest::collection::vec(
            proptest::collection::vec(1u64..50_000_000, 0..80),
            1..6,
        ),
        q_mille in 0u64..=1000,
    ) {
        use simkit::stats::LatencyHistogram;
        let mut merged = LatencyHistogram::new();
        let mut concat = LatencyHistogram::new();
        for samples in &shards {
            let mut shard = LatencyHistogram::new();
            for &v in samples {
                shard.record(v);
                concat.record(v);
            }
            merged.merge(&shard);
        }
        prop_assert_eq!(merged.count(), concat.count());
        prop_assert_eq!(merged.max(), concat.max());
        prop_assert_eq!(merged.mean().to_bits(), concat.mean().to_bits());
        let q = q_mille as f64 / 1000.0;
        prop_assert_eq!(merged.quantile(q), concat.quantile(q));
        for fixed in [0.5, 0.95, 0.99] {
            prop_assert_eq!(merged.quantile(fixed), concat.quantile(fixed));
        }
    }
}
